# Empty compiler generated dependencies file for bench_fig12_pt_stages.
# This may be replaced when dependencies are built.
