file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shadow.dir/bench_ablation_shadow.cpp.o"
  "CMakeFiles/bench_ablation_shadow.dir/bench_ablation_shadow.cpp.o.d"
  "bench_ablation_shadow"
  "bench_ablation_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
