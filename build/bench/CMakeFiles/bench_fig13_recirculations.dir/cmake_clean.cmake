file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_recirculations.dir/bench_fig13_recirculations.cpp.o"
  "CMakeFiles/bench_fig13_recirculations.dir/bench_fig13_recirculations.cpp.o.d"
  "bench_fig13_recirculations"
  "bench_fig13_recirculations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_recirculations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
