# Empty compiler generated dependencies file for bench_fig13_recirculations.
# This may be replaced when dependencies are built.
