# Empty dependencies file for bench_ablation_rt_size.
# This may be replaced when dependencies are built.
