file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_interception.dir/bench_fig8_interception.cpp.o"
  "CMakeFiles/bench_fig8_interception.dir/bench_fig8_interception.cpp.o.d"
  "bench_fig8_interception"
  "bench_fig8_interception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_interception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
