# Empty dependencies file for bench_fig8_interception.
# This may be replaced when dependencies are built.
