file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_quic.dir/bench_ablation_quic.cpp.o"
  "CMakeFiles/bench_ablation_quic.dir/bench_ablation_quic.cpp.o.d"
  "bench_ablation_quic"
  "bench_ablation_quic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
