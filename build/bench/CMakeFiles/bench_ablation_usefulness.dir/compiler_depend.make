# Empty compiler generated dependencies file for bench_ablation_usefulness.
# This may be replaced when dependencies are built.
