file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_usefulness.dir/bench_ablation_usefulness.cpp.o"
  "CMakeFiles/bench_ablation_usefulness.dir/bench_ablation_usefulness.cpp.o.d"
  "bench_ablation_usefulness"
  "bench_ablation_usefulness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_usefulness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
