# Empty compiler generated dependencies file for bench_fig9_infinite_memory.
# This may be replaced when dependencies are built.
