# Empty dependencies file for bench_fig11_pt_size.
# This may be replaced when dependencies are built.
