# Empty compiler generated dependencies file for campus_monitor.
# This may be replaced when dependencies are built.
