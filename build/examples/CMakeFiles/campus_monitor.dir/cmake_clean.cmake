file(REMOVE_RECURSE
  "CMakeFiles/campus_monitor.dir/campus_monitor.cpp.o"
  "CMakeFiles/campus_monitor.dir/campus_monitor.cpp.o.d"
  "campus_monitor"
  "campus_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
