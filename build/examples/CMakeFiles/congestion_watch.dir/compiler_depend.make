# Empty compiler generated dependencies file for congestion_watch.
# This may be replaced when dependencies are built.
