# Empty compiler generated dependencies file for bufferbloat_probe.
# This may be replaced when dependencies are built.
