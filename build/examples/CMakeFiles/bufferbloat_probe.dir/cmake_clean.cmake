file(REMOVE_RECURSE
  "CMakeFiles/bufferbloat_probe.dir/bufferbloat_probe.cpp.o"
  "CMakeFiles/bufferbloat_probe.dir/bufferbloat_probe.cpp.o.d"
  "bufferbloat_probe"
  "bufferbloat_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bufferbloat_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
