# Empty compiler generated dependencies file for path_localization.
# This may be replaced when dependencies are built.
