file(REMOVE_RECURSE
  "CMakeFiles/path_localization.dir/path_localization.cpp.o"
  "CMakeFiles/path_localization.dir/path_localization.cpp.o.d"
  "path_localization"
  "path_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
