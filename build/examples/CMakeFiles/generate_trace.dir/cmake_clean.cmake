file(REMOVE_RECURSE
  "CMakeFiles/generate_trace.dir/generate_trace.cpp.o"
  "CMakeFiles/generate_trace.dir/generate_trace.cpp.o.d"
  "generate_trace"
  "generate_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
