# Empty compiler generated dependencies file for generate_trace.
# This may be replaced when dependencies are built.
