file(REMOVE_RECURSE
  "CMakeFiles/server_selection.dir/server_selection.cpp.o"
  "CMakeFiles/server_selection.dir/server_selection.cpp.o.d"
  "server_selection"
  "server_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
