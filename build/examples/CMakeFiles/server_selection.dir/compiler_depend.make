# Empty compiler generated dependencies file for server_selection.
# This may be replaced when dependencies are built.
