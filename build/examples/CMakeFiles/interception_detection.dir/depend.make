# Empty dependencies file for interception_detection.
# This may be replaced when dependencies are built.
