file(REMOVE_RECURSE
  "CMakeFiles/interception_detection.dir/interception_detection.cpp.o"
  "CMakeFiles/interception_detection.dir/interception_detection.cpp.o.d"
  "interception_detection"
  "interception_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interception_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
