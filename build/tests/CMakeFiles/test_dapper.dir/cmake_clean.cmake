file(REMOVE_RECURSE
  "CMakeFiles/test_dapper.dir/baseline/dapper_test.cpp.o"
  "CMakeFiles/test_dapper.dir/baseline/dapper_test.cpp.o.d"
  "test_dapper"
  "test_dapper.pdb"
  "test_dapper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
