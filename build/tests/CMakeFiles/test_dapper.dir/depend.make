# Empty dependencies file for test_dapper.
# This may be replaced when dependencies are built.
