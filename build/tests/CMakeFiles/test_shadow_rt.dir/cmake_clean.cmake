file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_rt.dir/core/shadow_rt_test.cpp.o"
  "CMakeFiles/test_shadow_rt.dir/core/shadow_rt_test.cpp.o.d"
  "test_shadow_rt"
  "test_shadow_rt.pdb"
  "test_shadow_rt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
