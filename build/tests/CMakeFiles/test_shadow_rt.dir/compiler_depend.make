# Empty compiler generated dependencies file for test_shadow_rt.
# This may be replaced when dependencies are built.
