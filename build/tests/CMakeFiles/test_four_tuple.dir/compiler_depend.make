# Empty compiler generated dependencies file for test_four_tuple.
# This may be replaced when dependencies are built.
