file(REMOVE_RECURSE
  "CMakeFiles/test_four_tuple.dir/common/four_tuple_test.cpp.o"
  "CMakeFiles/test_four_tuple.dir/common/four_tuple_test.cpp.o.d"
  "test_four_tuple"
  "test_four_tuple.pdb"
  "test_four_tuple[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_four_tuple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
