# Empty dependencies file for test_payload_lut.
# This may be replaced when dependencies are built.
