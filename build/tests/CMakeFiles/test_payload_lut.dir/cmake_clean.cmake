file(REMOVE_RECURSE
  "CMakeFiles/test_payload_lut.dir/dataplane/payload_lut_test.cpp.o"
  "CMakeFiles/test_payload_lut.dir/dataplane/payload_lut_test.cpp.o.d"
  "test_payload_lut"
  "test_payload_lut.pdb"
  "test_payload_lut[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_payload_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
