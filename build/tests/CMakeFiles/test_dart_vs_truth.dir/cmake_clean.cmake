file(REMOVE_RECURSE
  "CMakeFiles/test_dart_vs_truth.dir/integration/dart_vs_truth_test.cpp.o"
  "CMakeFiles/test_dart_vs_truth.dir/integration/dart_vs_truth_test.cpp.o.d"
  "test_dart_vs_truth"
  "test_dart_vs_truth.pdb"
  "test_dart_vs_truth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dart_vs_truth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
