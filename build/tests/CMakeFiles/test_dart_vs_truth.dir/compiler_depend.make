# Empty compiler generated dependencies file for test_dart_vs_truth.
# This may be replaced when dependencies are built.
