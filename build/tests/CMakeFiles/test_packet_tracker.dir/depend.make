# Empty dependencies file for test_packet_tracker.
# This may be replaced when dependencies are built.
