file(REMOVE_RECURSE
  "CMakeFiles/test_packet_tracker.dir/core/packet_tracker_test.cpp.o"
  "CMakeFiles/test_packet_tracker.dir/core/packet_tracker_test.cpp.o.d"
  "test_packet_tracker"
  "test_packet_tracker.pdb"
  "test_packet_tracker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
