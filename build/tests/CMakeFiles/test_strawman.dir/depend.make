# Empty dependencies file for test_strawman.
# This may be replaced when dependencies are built.
