# Empty dependencies file for test_min_filter.
# This may be replaced when dependencies are built.
