file(REMOVE_RECURSE
  "CMakeFiles/test_min_filter.dir/analytics/min_filter_test.cpp.o"
  "CMakeFiles/test_min_filter.dir/analytics/min_filter_test.cpp.o.d"
  "test_min_filter"
  "test_min_filter.pdb"
  "test_min_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_min_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
