file(REMOVE_RECURSE
  "CMakeFiles/test_leg_decomposition.dir/integration/leg_decomposition_test.cpp.o"
  "CMakeFiles/test_leg_decomposition.dir/integration/leg_decomposition_test.cpp.o.d"
  "test_leg_decomposition"
  "test_leg_decomposition.pdb"
  "test_leg_decomposition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leg_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
