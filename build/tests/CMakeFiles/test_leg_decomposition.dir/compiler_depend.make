# Empty compiler generated dependencies file for test_leg_decomposition.
# This may be replaced when dependencies are built.
