# Empty dependencies file for test_prefix_agg.
# This may be replaced when dependencies are built.
