file(REMOVE_RECURSE
  "CMakeFiles/test_prefix_agg.dir/analytics/prefix_agg_test.cpp.o"
  "CMakeFiles/test_prefix_agg.dir/analytics/prefix_agg_test.cpp.o.d"
  "test_prefix_agg"
  "test_prefix_agg.pdb"
  "test_prefix_agg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefix_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
