file(REMOVE_RECURSE
  "CMakeFiles/test_flow_sim_more.dir/gen/flow_sim_more_test.cpp.o"
  "CMakeFiles/test_flow_sim_more.dir/gen/flow_sim_more_test.cpp.o.d"
  "test_flow_sim_more"
  "test_flow_sim_more.pdb"
  "test_flow_sim_more[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_sim_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
