# Empty dependencies file for test_flow_sim_more.
# This may be replaced when dependencies are built.
