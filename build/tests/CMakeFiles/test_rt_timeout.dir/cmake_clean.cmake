file(REMOVE_RECURSE
  "CMakeFiles/test_rt_timeout.dir/core/rt_timeout_test.cpp.o"
  "CMakeFiles/test_rt_timeout.dir/core/rt_timeout_test.cpp.o.d"
  "test_rt_timeout"
  "test_rt_timeout.pdb"
  "test_rt_timeout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
