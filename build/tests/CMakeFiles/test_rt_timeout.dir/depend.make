# Empty dependencies file for test_rt_timeout.
# This may be replaced when dependencies are built.
