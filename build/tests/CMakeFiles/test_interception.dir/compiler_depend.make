# Empty compiler generated dependencies file for test_interception.
# This may be replaced when dependencies are built.
