file(REMOVE_RECURSE
  "CMakeFiles/test_interception.dir/integration/interception_test.cpp.o"
  "CMakeFiles/test_interception.dir/integration/interception_test.cpp.o.d"
  "test_interception"
  "test_interception.pdb"
  "test_interception[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
