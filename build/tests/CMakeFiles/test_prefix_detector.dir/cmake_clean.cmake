file(REMOVE_RECURSE
  "CMakeFiles/test_prefix_detector.dir/analytics/prefix_detector_test.cpp.o"
  "CMakeFiles/test_prefix_detector.dir/analytics/prefix_detector_test.cpp.o.d"
  "test_prefix_detector"
  "test_prefix_detector.pdb"
  "test_prefix_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefix_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
