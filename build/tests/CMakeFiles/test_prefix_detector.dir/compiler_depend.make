# Empty compiler generated dependencies file for test_prefix_detector.
# This may be replaced when dependencies are built.
