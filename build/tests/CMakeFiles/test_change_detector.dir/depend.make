# Empty dependencies file for test_change_detector.
# This may be replaced when dependencies are built.
