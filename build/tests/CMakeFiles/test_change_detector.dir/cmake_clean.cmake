file(REMOVE_RECURSE
  "CMakeFiles/test_change_detector.dir/analytics/change_detector_test.cpp.o"
  "CMakeFiles/test_change_detector.dir/analytics/change_detector_test.cpp.o.d"
  "test_change_detector"
  "test_change_detector.pdb"
  "test_change_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_change_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
