# Empty dependencies file for test_flow_filter.
# This may be replaced when dependencies are built.
