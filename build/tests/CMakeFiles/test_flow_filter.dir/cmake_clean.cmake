file(REMOVE_RECURSE
  "CMakeFiles/test_flow_filter.dir/core/flow_filter_test.cpp.o"
  "CMakeFiles/test_flow_filter.dir/core/flow_filter_test.cpp.o.d"
  "test_flow_filter"
  "test_flow_filter.pdb"
  "test_flow_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
