# Empty compiler generated dependencies file for test_tcptrace_legs.
# This may be replaced when dependencies are built.
