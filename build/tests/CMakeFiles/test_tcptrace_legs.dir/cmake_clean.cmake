file(REMOVE_RECURSE
  "CMakeFiles/test_tcptrace_legs.dir/baseline/tcptrace_legs_test.cpp.o"
  "CMakeFiles/test_tcptrace_legs.dir/baseline/tcptrace_legs_test.cpp.o.d"
  "test_tcptrace_legs"
  "test_tcptrace_legs.pdb"
  "test_tcptrace_legs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcptrace_legs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
