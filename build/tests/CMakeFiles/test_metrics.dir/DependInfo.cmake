
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytics/metrics_test.cpp" "tests/CMakeFiles/test_metrics.dir/analytics/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_metrics.dir/analytics/metrics_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dart_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/dart_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/dart_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dart_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dart_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/dart_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/quic/CMakeFiles/dart_quic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
