# Empty compiler generated dependencies file for test_dart_monitor.
# This may be replaced when dependencies are built.
