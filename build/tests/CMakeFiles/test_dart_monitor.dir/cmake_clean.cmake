file(REMOVE_RECURSE
  "CMakeFiles/test_dart_monitor.dir/core/dart_monitor_test.cpp.o"
  "CMakeFiles/test_dart_monitor.dir/core/dart_monitor_test.cpp.o.d"
  "test_dart_monitor"
  "test_dart_monitor.pdb"
  "test_dart_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dart_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
