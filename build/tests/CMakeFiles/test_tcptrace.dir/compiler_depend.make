# Empty compiler generated dependencies file for test_tcptrace.
# This may be replaced when dependencies are built.
