file(REMOVE_RECURSE
  "CMakeFiles/test_tcptrace.dir/baseline/tcptrace_test.cpp.o"
  "CMakeFiles/test_tcptrace.dir/baseline/tcptrace_test.cpp.o.d"
  "test_tcptrace"
  "test_tcptrace.pdb"
  "test_tcptrace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcptrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
