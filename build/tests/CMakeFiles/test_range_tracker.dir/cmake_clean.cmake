file(REMOVE_RECURSE
  "CMakeFiles/test_range_tracker.dir/core/range_tracker_test.cpp.o"
  "CMakeFiles/test_range_tracker.dir/core/range_tracker_test.cpp.o.d"
  "test_range_tracker"
  "test_range_tracker.pdb"
  "test_range_tracker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_range_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
