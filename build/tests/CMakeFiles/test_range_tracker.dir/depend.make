# Empty dependencies file for test_range_tracker.
# This may be replaced when dependencies are built.
