file(REMOVE_RECURSE
  "CMakeFiles/test_monitor_more.dir/core/monitor_more_test.cpp.o"
  "CMakeFiles/test_monitor_more.dir/core/monitor_more_test.cpp.o.d"
  "test_monitor_more"
  "test_monitor_more.pdb"
  "test_monitor_more[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monitor_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
