# Empty compiler generated dependencies file for test_monitor_more.
# This may be replaced when dependencies are built.
