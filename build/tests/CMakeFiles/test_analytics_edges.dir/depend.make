# Empty dependencies file for test_analytics_edges.
# This may be replaced when dependencies are built.
