file(REMOVE_RECURSE
  "CMakeFiles/test_analytics_edges.dir/analytics/analytics_edges_test.cpp.o"
  "CMakeFiles/test_analytics_edges.dir/analytics/analytics_edges_test.cpp.o.d"
  "test_analytics_edges"
  "test_analytics_edges.pdb"
  "test_analytics_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytics_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
