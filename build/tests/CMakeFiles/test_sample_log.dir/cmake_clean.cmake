file(REMOVE_RECURSE
  "CMakeFiles/test_sample_log.dir/analytics/sample_log_test.cpp.o"
  "CMakeFiles/test_sample_log.dir/analytics/sample_log_test.cpp.o.d"
  "test_sample_log"
  "test_sample_log.pdb"
  "test_sample_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sample_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
