# Empty compiler generated dependencies file for test_sample_log.
# This may be replaced when dependencies are built.
