# Empty dependencies file for test_spin_bit.
# This may be replaced when dependencies are built.
