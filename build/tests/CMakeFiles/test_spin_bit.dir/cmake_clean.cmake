file(REMOVE_RECURSE
  "CMakeFiles/test_spin_bit.dir/quic/spin_bit_test.cpp.o"
  "CMakeFiles/test_spin_bit.dir/quic/spin_bit_test.cpp.o.d"
  "test_spin_bit"
  "test_spin_bit.pdb"
  "test_spin_bit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spin_bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
