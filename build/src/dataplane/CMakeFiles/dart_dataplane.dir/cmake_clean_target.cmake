file(REMOVE_RECURSE
  "libdart_dataplane.a"
)
