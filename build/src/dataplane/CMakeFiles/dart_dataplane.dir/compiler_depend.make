# Empty compiler generated dependencies file for dart_dataplane.
# This may be replaced when dependencies are built.
