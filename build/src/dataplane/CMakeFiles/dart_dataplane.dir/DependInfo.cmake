
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/payload_lut.cpp" "src/dataplane/CMakeFiles/dart_dataplane.dir/payload_lut.cpp.o" "gcc" "src/dataplane/CMakeFiles/dart_dataplane.dir/payload_lut.cpp.o.d"
  "/root/repo/src/dataplane/resource_model.cpp" "src/dataplane/CMakeFiles/dart_dataplane.dir/resource_model.cpp.o" "gcc" "src/dataplane/CMakeFiles/dart_dataplane.dir/resource_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dart_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
