file(REMOVE_RECURSE
  "CMakeFiles/dart_dataplane.dir/payload_lut.cpp.o"
  "CMakeFiles/dart_dataplane.dir/payload_lut.cpp.o.d"
  "CMakeFiles/dart_dataplane.dir/resource_model.cpp.o"
  "CMakeFiles/dart_dataplane.dir/resource_model.cpp.o.d"
  "libdart_dataplane.a"
  "libdart_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
