
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/dapper.cpp" "src/baseline/CMakeFiles/dart_baseline.dir/dapper.cpp.o" "gcc" "src/baseline/CMakeFiles/dart_baseline.dir/dapper.cpp.o.d"
  "/root/repo/src/baseline/strawman.cpp" "src/baseline/CMakeFiles/dart_baseline.dir/strawman.cpp.o" "gcc" "src/baseline/CMakeFiles/dart_baseline.dir/strawman.cpp.o.d"
  "/root/repo/src/baseline/tcptrace.cpp" "src/baseline/CMakeFiles/dart_baseline.dir/tcptrace.cpp.o" "gcc" "src/baseline/CMakeFiles/dart_baseline.dir/tcptrace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dart_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
