file(REMOVE_RECURSE
  "CMakeFiles/dart_baseline.dir/dapper.cpp.o"
  "CMakeFiles/dart_baseline.dir/dapper.cpp.o.d"
  "CMakeFiles/dart_baseline.dir/strawman.cpp.o"
  "CMakeFiles/dart_baseline.dir/strawman.cpp.o.d"
  "CMakeFiles/dart_baseline.dir/tcptrace.cpp.o"
  "CMakeFiles/dart_baseline.dir/tcptrace.cpp.o.d"
  "libdart_baseline.a"
  "libdart_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
