file(REMOVE_RECURSE
  "libdart_trace.a"
)
