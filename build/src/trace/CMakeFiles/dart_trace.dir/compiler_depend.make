# Empty compiler generated dependencies file for dart_trace.
# This may be replaced when dependencies are built.
