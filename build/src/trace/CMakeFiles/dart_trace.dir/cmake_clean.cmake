file(REMOVE_RECURSE
  "CMakeFiles/dart_trace.dir/pcap.cpp.o"
  "CMakeFiles/dart_trace.dir/pcap.cpp.o.d"
  "CMakeFiles/dart_trace.dir/trace.cpp.o"
  "CMakeFiles/dart_trace.dir/trace.cpp.o.d"
  "CMakeFiles/dart_trace.dir/trace_io.cpp.o"
  "CMakeFiles/dart_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/dart_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/dart_trace.dir/trace_stats.cpp.o.d"
  "libdart_trace.a"
  "libdart_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
