
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/flow_sim.cpp" "src/gen/CMakeFiles/dart_gen.dir/flow_sim.cpp.o" "gcc" "src/gen/CMakeFiles/dart_gen.dir/flow_sim.cpp.o.d"
  "/root/repo/src/gen/rtt_model.cpp" "src/gen/CMakeFiles/dart_gen.dir/rtt_model.cpp.o" "gcc" "src/gen/CMakeFiles/dart_gen.dir/rtt_model.cpp.o.d"
  "/root/repo/src/gen/workload.cpp" "src/gen/CMakeFiles/dart_gen.dir/workload.cpp.o" "gcc" "src/gen/CMakeFiles/dart_gen.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dart_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
