# Empty dependencies file for dart_gen.
# This may be replaced when dependencies are built.
