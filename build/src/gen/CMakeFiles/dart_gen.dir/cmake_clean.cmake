file(REMOVE_RECURSE
  "CMakeFiles/dart_gen.dir/flow_sim.cpp.o"
  "CMakeFiles/dart_gen.dir/flow_sim.cpp.o.d"
  "CMakeFiles/dart_gen.dir/rtt_model.cpp.o"
  "CMakeFiles/dart_gen.dir/rtt_model.cpp.o.d"
  "CMakeFiles/dart_gen.dir/workload.cpp.o"
  "CMakeFiles/dart_gen.dir/workload.cpp.o.d"
  "libdart_gen.a"
  "libdart_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
