file(REMOVE_RECURSE
  "libdart_gen.a"
)
