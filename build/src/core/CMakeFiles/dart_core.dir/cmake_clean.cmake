file(REMOVE_RECURSE
  "CMakeFiles/dart_core.dir/dart_monitor.cpp.o"
  "CMakeFiles/dart_core.dir/dart_monitor.cpp.o.d"
  "CMakeFiles/dart_core.dir/packet_tracker.cpp.o"
  "CMakeFiles/dart_core.dir/packet_tracker.cpp.o.d"
  "CMakeFiles/dart_core.dir/range_tracker.cpp.o"
  "CMakeFiles/dart_core.dir/range_tracker.cpp.o.d"
  "CMakeFiles/dart_core.dir/stats.cpp.o"
  "CMakeFiles/dart_core.dir/stats.cpp.o.d"
  "libdart_core.a"
  "libdart_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
