
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dart_monitor.cpp" "src/core/CMakeFiles/dart_core.dir/dart_monitor.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/dart_monitor.cpp.o.d"
  "/root/repo/src/core/packet_tracker.cpp" "src/core/CMakeFiles/dart_core.dir/packet_tracker.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/packet_tracker.cpp.o.d"
  "/root/repo/src/core/range_tracker.cpp" "src/core/CMakeFiles/dart_core.dir/range_tracker.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/range_tracker.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/dart_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/dart_core.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dart_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
