
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/four_tuple.cpp" "src/common/CMakeFiles/dart_common.dir/four_tuple.cpp.o" "gcc" "src/common/CMakeFiles/dart_common.dir/four_tuple.cpp.o.d"
  "/root/repo/src/common/hashing.cpp" "src/common/CMakeFiles/dart_common.dir/hashing.cpp.o" "gcc" "src/common/CMakeFiles/dart_common.dir/hashing.cpp.o.d"
  "/root/repo/src/common/ipv4.cpp" "src/common/CMakeFiles/dart_common.dir/ipv4.cpp.o" "gcc" "src/common/CMakeFiles/dart_common.dir/ipv4.cpp.o.d"
  "/root/repo/src/common/ipv6.cpp" "src/common/CMakeFiles/dart_common.dir/ipv6.cpp.o" "gcc" "src/common/CMakeFiles/dart_common.dir/ipv6.cpp.o.d"
  "/root/repo/src/common/packet.cpp" "src/common/CMakeFiles/dart_common.dir/packet.cpp.o" "gcc" "src/common/CMakeFiles/dart_common.dir/packet.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/common/CMakeFiles/dart_common.dir/strings.cpp.o" "gcc" "src/common/CMakeFiles/dart_common.dir/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
