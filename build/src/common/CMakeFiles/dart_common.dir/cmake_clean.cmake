file(REMOVE_RECURSE
  "CMakeFiles/dart_common.dir/four_tuple.cpp.o"
  "CMakeFiles/dart_common.dir/four_tuple.cpp.o.d"
  "CMakeFiles/dart_common.dir/hashing.cpp.o"
  "CMakeFiles/dart_common.dir/hashing.cpp.o.d"
  "CMakeFiles/dart_common.dir/ipv4.cpp.o"
  "CMakeFiles/dart_common.dir/ipv4.cpp.o.d"
  "CMakeFiles/dart_common.dir/ipv6.cpp.o"
  "CMakeFiles/dart_common.dir/ipv6.cpp.o.d"
  "CMakeFiles/dart_common.dir/packet.cpp.o"
  "CMakeFiles/dart_common.dir/packet.cpp.o.d"
  "CMakeFiles/dart_common.dir/strings.cpp.o"
  "CMakeFiles/dart_common.dir/strings.cpp.o.d"
  "libdart_common.a"
  "libdart_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
