
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/change_detector.cpp" "src/analytics/CMakeFiles/dart_analytics.dir/change_detector.cpp.o" "gcc" "src/analytics/CMakeFiles/dart_analytics.dir/change_detector.cpp.o.d"
  "/root/repo/src/analytics/congestion.cpp" "src/analytics/CMakeFiles/dart_analytics.dir/congestion.cpp.o" "gcc" "src/analytics/CMakeFiles/dart_analytics.dir/congestion.cpp.o.d"
  "/root/repo/src/analytics/histogram.cpp" "src/analytics/CMakeFiles/dart_analytics.dir/histogram.cpp.o" "gcc" "src/analytics/CMakeFiles/dart_analytics.dir/histogram.cpp.o.d"
  "/root/repo/src/analytics/metrics.cpp" "src/analytics/CMakeFiles/dart_analytics.dir/metrics.cpp.o" "gcc" "src/analytics/CMakeFiles/dart_analytics.dir/metrics.cpp.o.d"
  "/root/repo/src/analytics/min_filter.cpp" "src/analytics/CMakeFiles/dart_analytics.dir/min_filter.cpp.o" "gcc" "src/analytics/CMakeFiles/dart_analytics.dir/min_filter.cpp.o.d"
  "/root/repo/src/analytics/percentile.cpp" "src/analytics/CMakeFiles/dart_analytics.dir/percentile.cpp.o" "gcc" "src/analytics/CMakeFiles/dart_analytics.dir/percentile.cpp.o.d"
  "/root/repo/src/analytics/prefix_agg.cpp" "src/analytics/CMakeFiles/dart_analytics.dir/prefix_agg.cpp.o" "gcc" "src/analytics/CMakeFiles/dart_analytics.dir/prefix_agg.cpp.o.d"
  "/root/repo/src/analytics/prefix_detector.cpp" "src/analytics/CMakeFiles/dart_analytics.dir/prefix_detector.cpp.o" "gcc" "src/analytics/CMakeFiles/dart_analytics.dir/prefix_detector.cpp.o.d"
  "/root/repo/src/analytics/sample_log.cpp" "src/analytics/CMakeFiles/dart_analytics.dir/sample_log.cpp.o" "gcc" "src/analytics/CMakeFiles/dart_analytics.dir/sample_log.cpp.o.d"
  "/root/repo/src/analytics/usefulness.cpp" "src/analytics/CMakeFiles/dart_analytics.dir/usefulness.cpp.o" "gcc" "src/analytics/CMakeFiles/dart_analytics.dir/usefulness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dart_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dart_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
