file(REMOVE_RECURSE
  "CMakeFiles/dart_analytics.dir/change_detector.cpp.o"
  "CMakeFiles/dart_analytics.dir/change_detector.cpp.o.d"
  "CMakeFiles/dart_analytics.dir/congestion.cpp.o"
  "CMakeFiles/dart_analytics.dir/congestion.cpp.o.d"
  "CMakeFiles/dart_analytics.dir/histogram.cpp.o"
  "CMakeFiles/dart_analytics.dir/histogram.cpp.o.d"
  "CMakeFiles/dart_analytics.dir/metrics.cpp.o"
  "CMakeFiles/dart_analytics.dir/metrics.cpp.o.d"
  "CMakeFiles/dart_analytics.dir/min_filter.cpp.o"
  "CMakeFiles/dart_analytics.dir/min_filter.cpp.o.d"
  "CMakeFiles/dart_analytics.dir/percentile.cpp.o"
  "CMakeFiles/dart_analytics.dir/percentile.cpp.o.d"
  "CMakeFiles/dart_analytics.dir/prefix_agg.cpp.o"
  "CMakeFiles/dart_analytics.dir/prefix_agg.cpp.o.d"
  "CMakeFiles/dart_analytics.dir/prefix_detector.cpp.o"
  "CMakeFiles/dart_analytics.dir/prefix_detector.cpp.o.d"
  "CMakeFiles/dart_analytics.dir/sample_log.cpp.o"
  "CMakeFiles/dart_analytics.dir/sample_log.cpp.o.d"
  "CMakeFiles/dart_analytics.dir/usefulness.cpp.o"
  "CMakeFiles/dart_analytics.dir/usefulness.cpp.o.d"
  "libdart_analytics.a"
  "libdart_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
