# Empty compiler generated dependencies file for dart_analytics.
# This may be replaced when dependencies are built.
