# Empty dependencies file for dart_analytics.
# This may be replaced when dependencies are built.
