file(REMOVE_RECURSE
  "libdart_analytics.a"
)
