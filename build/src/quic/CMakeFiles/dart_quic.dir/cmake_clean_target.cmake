file(REMOVE_RECURSE
  "libdart_quic.a"
)
