file(REMOVE_RECURSE
  "CMakeFiles/dart_quic.dir/spin_bit.cpp.o"
  "CMakeFiles/dart_quic.dir/spin_bit.cpp.o.d"
  "CMakeFiles/dart_quic.dir/spin_flow.cpp.o"
  "CMakeFiles/dart_quic.dir/spin_flow.cpp.o.d"
  "libdart_quic.a"
  "libdart_quic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dart_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
