# Empty dependencies file for dart_quic.
# This may be replaced when dependencies are built.
