#include "baseline/tcptrace.hpp"

namespace dart::baseline {

TcpTrace::TcpTrace(const TcpTraceConfig& config,
                   core::SampleCallback on_sample)
    : config_(config), on_sample_(std::move(on_sample)) {}

std::uint64_t TcpTrace::unwrap(SeqNum wire, std::uint64_t ref) {
  // Candidate positions with the same low 32 bits nearest to `ref`.
  const std::uint64_t epoch = ref >> 32;
  std::uint64_t best = (epoch << 32) | wire;
  std::uint64_t best_dist = best > ref ? best - ref : ref - best;
  for (std::int64_t delta : {-1, 1}) {
    const std::int64_t e = static_cast<std::int64_t>(epoch) + delta;
    if (e < 0) continue;
    const std::uint64_t candidate =
        (static_cast<std::uint64_t>(e) << 32) | wire;
    const std::uint64_t dist =
        candidate > ref ? candidate - ref : ref - candidate;
    if (dist < best_dist) {
      best = candidate;
      best_dist = dist;
    }
  }
  return best;
}

bool TcpTrace::overlaps_seen(const FlowState& flow, std::uint64_t start,
                             std::uint64_t end) {
  // `seen` maps range start -> range end, ranges disjoint and sorted.
  auto it = flow.seen.upper_bound(start);
  if (it != flow.seen.begin()) {
    auto prev = std::prev(it);
    if (prev->second > start) return true;  // previous range covers start
  }
  return it != flow.seen.end() && it->first < end;
}

void TcpTrace::merge_seen(FlowState& flow, std::uint64_t start,
                          std::uint64_t end) {
  auto it = flow.seen.upper_bound(start);
  if (it != flow.seen.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      it = flow.seen.erase(prev);
    }
  }
  while (it != flow.seen.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = flow.seen.erase(it);
  }
  flow.seen.emplace(start, end);
}

void TcpTrace::process(const PacketRecord& packet) {
  ++stats_.packets_processed;
  if (!config_.include_syn && packet.is_syn()) return;

  const bool external = config_.leg == core::LegMode::kExternal ||
                        config_.leg == core::LegMode::kBoth;
  const bool internal = config_.leg == core::LegMode::kInternal ||
                        config_.leg == core::LegMode::kBoth;

  if (external) {
    if (packet.outbound && packet.carries_data()) {
      handle_seq(packet.tuple, packet, core::LegMode::kExternal);
    } else if (!packet.outbound && packet.is_ack()) {
      handle_ack(packet.tuple.reversed(), packet.ack, packet.ts,
                 core::LegMode::kExternal);
    }
  }
  if (internal) {
    if (!packet.outbound && packet.carries_data()) {
      handle_seq(packet.tuple, packet, core::LegMode::kInternal);
    } else if (packet.outbound && packet.is_ack()) {
      handle_ack(packet.tuple.reversed(), packet.ack, packet.ts,
                 core::LegMode::kInternal);
    }
  }
}

void TcpTrace::process_all(std::span<const PacketRecord> packets) {
  for (const PacketRecord& packet : packets) process(packet);
}

void TcpTrace::handle_seq(const FourTuple& tuple, const PacketRecord& packet,
                          core::LegMode leg) {
  (void)leg;
  auto [it, inserted] = flows_.try_emplace(tuple);
  FlowState& flow = it->second;
  if (inserted) ++stats_.flows;

  std::uint64_t start;
  if (!flow.initialized) {
    flow.initialized = true;
    start = packet.seq;
    flow.highest_ack = start;
  } else {
    start = unwrap(packet.seq, flow.ref);
  }
  const std::uint64_t end = start + packet.seq_span();
  flow.ref = end;

  if (overlaps_seen(flow, start, end)) {
    // Retransmission: Karn's rule — every outstanding segment overlapping
    // this range becomes ineligible for sampling, including the new copy.
    ++stats_.retransmissions;
    auto seg = flow.outstanding.upper_bound(start);
    while (seg != flow.outstanding.end() && seg->second.start < end) {
      seg->second.retransmitted = true;
      ++seg;
    }
    // Track the retransmitted copy itself (marked ambiguous) so a future
    // exact-match ACK is consumed without emitting a sample.
    auto& record = flow.outstanding[end];
    record.start = start;
    record.ts = packet.ts;
    record.retransmitted = true;
    merge_seen(flow, start, end);
    return;
  }

  merge_seen(flow, start, end);
  Segment segment;
  segment.start = start;
  segment.ts = packet.ts;
  flow.outstanding.emplace(end, segment);
  ++stats_.segments_tracked;
}

void TcpTrace::handle_ack(const FourTuple& data_tuple, SeqNum ack,
                          Timestamp now, core::LegMode leg) {
  auto it = flows_.find(data_tuple);
  if (it == flows_.end() || !it->second.initialized) return;
  FlowState& flow = it->second;

  const std::uint64_t ack64 = unwrap(ack, flow.ref);
  if (flow.any_ack && ack64 <= flow.highest_ack) return;  // dup or stale
  flow.any_ack = true;
  flow.highest_ack = ack64;

  auto exact = flow.outstanding.find(ack64);
  if (exact != flow.outstanding.end() && !exact->second.retransmitted) {
    ++stats_.samples;
    if (on_sample_) {
      core::RttSample sample;
      sample.tuple = data_tuple;
      sample.eack = ack;
      sample.seq_ts = exact->second.ts;
      sample.ack_ts = now;
      sample.leg = leg;
      on_sample_(sample);
    }
    if (config_.emulate_quadrant_bug) {
      // tcptrace splits the 32-bit space into four quadrants and emits an
      // extra sample when a segment straddles a quadrant boundary.
      const std::uint64_t quadrant_mask = 0x3FFFFFFFULL;
      const std::uint64_t q_start =
          (exact->second.start & 0xFFFFFFFFULL) >> 30;
      const std::uint64_t q_end = ((ack64 - 1) & 0xFFFFFFFFULL) >> 30;
      (void)quadrant_mask;
      if (q_start != q_end) {
        ++stats_.samples;
        ++stats_.quadrant_extra_samples;
        if (on_sample_) {
          core::RttSample sample;
          sample.tuple = data_tuple;
          sample.eack = ack;
          sample.seq_ts = exact->second.ts;
          sample.ack_ts = now;
          sample.leg = leg;
          on_sample_(sample);
        }
      }
    }
  }

  // Retire everything the cumulative ACK covers.
  auto seg = flow.outstanding.begin();
  while (seg != flow.outstanding.end() && seg->first <= ack64) {
    seg = flow.outstanding.erase(seg);
  }
}

}  // namespace dart::baseline
