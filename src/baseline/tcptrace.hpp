// A tcptrace-like offline RTT analyzer: the paper's software ground truth.
//
// Unlike Dart, this baseline has unlimited, fully associative memory and
// keeps *every* outstanding byte-range per flow (so holes in the sequence
// space do not forgo samples), applies Karn's rule per segment (only the
// retransmitted range is excluded, not the whole window), and handles
// sequence-number wraparound with unwrapped 64-bit arithmetic. These are
// exactly the behaviours the paper credits for tcptrace's higher sample
// count in Figure 9a.
//
// tcptrace also has a quadrant-related design flaw the paper footnotes: a
// sample whose segment spans two of the four sequence-space quadrants is
// double-counted. `emulate_quadrant_bug` reproduces it for count
// comparisons; it is off by default.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>

#include "common/packet.hpp"
#include "core/rtt_sample.hpp"

namespace dart::baseline {

struct TcpTraceConfig {
  bool include_syn = true;  ///< tcptrace(+SYN) by default
  core::LegMode leg = core::LegMode::kExternal;
  bool emulate_quadrant_bug = false;
};

struct TcpTraceStats {
  std::uint64_t packets_processed = 0;
  std::uint64_t segments_tracked = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t samples = 0;
  std::uint64_t quadrant_extra_samples = 0;
  std::uint64_t flows = 0;
};

class TcpTrace {
 public:
  explicit TcpTrace(const TcpTraceConfig& config,
                    core::SampleCallback on_sample = {});

  void process(const PacketRecord& packet);
  void process_all(std::span<const PacketRecord> packets);

  const TcpTraceStats& stats() const { return stats_; }

 private:
  struct Segment {
    std::uint64_t start = 0;
    Timestamp ts = 0;
    bool retransmitted = false;
  };

  struct FlowState {
    bool initialized = false;
    std::uint64_t ref = 0;  ///< unwrap reference (last seen seq64)
    std::map<std::uint64_t, std::uint64_t> seen;  ///< sent ranges, merged
    std::map<std::uint64_t, Segment> outstanding;  ///< keyed by eACK64
    std::uint64_t highest_ack = 0;
    bool any_ack = false;
  };

  void handle_seq(const FourTuple& tuple, const PacketRecord& packet,
                  core::LegMode leg);
  void handle_ack(const FourTuple& data_tuple, SeqNum ack, Timestamp now,
                  core::LegMode leg);

  /// Unwrap a 32-bit wire sequence number to the 64-bit position nearest
  /// the flow's reference point.
  static std::uint64_t unwrap(SeqNum wire, std::uint64_t ref);

  /// True when [start, end) overlaps any range in `seen`.
  static bool overlaps_seen(const FlowState& flow, std::uint64_t start,
                            std::uint64_t end);
  static void merge_seen(FlowState& flow, std::uint64_t start,
                         std::uint64_t end);

  TcpTraceConfig config_;
  core::SampleCallback on_sample_;
  TcpTraceStats stats_;
  std::unordered_map<FourTuple, FlowState, FourTupleHash> flows_;
};

}  // namespace dart::baseline
