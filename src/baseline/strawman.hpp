// The strawman data-plane design of Section 2.1 (Chen et al. [12]).
//
// A single hash table keyed by (flow signature, expected ACK) stores a
// timestamp per SEQ packet; a matching ACK emits a sample and deletes the
// entry. There is no Range Tracker: retransmissions and reordering produce
// incorrect samples (Section 2.2), and entries that never match an ACK
// strand until overwritten or timed out (Section 2.3). Eviction is
// new-overwrites-old on collision, with an optional entry timeout — the
// biased scheme the paper argues against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/hashing.hpp"
#include "common/packet.hpp"
#include "core/rtt_sample.hpp"

namespace dart::baseline {

struct StrawmanConfig {
  std::size_t table_size = 1 << 17;
  /// Entries older than this are treated as absent; 0 disables the timeout.
  Timestamp entry_timeout = 0;
  bool include_syn = false;
  core::LegMode leg = core::LegMode::kExternal;
  std::uint64_t hash_seed = 0x57AA'0001;
};

struct StrawmanStats {
  std::uint64_t packets_processed = 0;
  std::uint64_t inserted = 0;
  std::uint64_t overwrites = 0;
  std::uint64_t timeout_evictions = 0;
  std::uint64_t samples = 0;
};

class Strawman {
 public:
  explicit Strawman(const StrawmanConfig& config,
                    core::SampleCallback on_sample = {});

  void process(const PacketRecord& packet);
  void process_all(std::span<const PacketRecord> packets);

  const StrawmanStats& stats() const { return stats_; }

 private:
  struct Slot {
    bool valid = false;
    std::uint32_t flow_sig = 0;
    SeqNum eack = 0;
    Timestamp ts = 0;
  };

  void handle_seq(const FourTuple& tuple, const PacketRecord& packet);
  void handle_ack(const FourTuple& data_tuple, SeqNum ack, Timestamp now,
                  core::LegMode leg);
  bool expired(const Slot& slot, Timestamp now) const {
    return config_.entry_timeout != 0 && slot.ts + config_.entry_timeout < now;
  }

  StrawmanConfig config_;
  core::SampleCallback on_sample_;
  StrawmanStats stats_;
  HashFamily hash_;
  std::vector<Slot> slots_;
};

}  // namespace dart::baseline
