// tcptrace_const: the paper's constant-space baseline (Section 6.2).
//
// The paper observes that Dart with unlimited, fully associative memory is
// "a variant of tcptrace with constant space" — identical matching
// semantics, but only one measurement range per flow. It is exactly a
// DartMonitor with unbounded RT and PT tables; this header provides the
// canonical configuration so benches and tests construct it uniformly.
#pragma once

#include "core/config.hpp"
#include "core/dart_monitor.hpp"

namespace dart::baseline {

inline core::DartConfig tcptrace_const_config(
    bool include_syn = false,
    core::LegMode leg = core::LegMode::kExternal) {
  core::DartConfig config;
  config.rt_size = 0;  // unbounded, fully associative
  config.pt_size = 0;
  config.include_syn = include_syn;
  config.leg = leg;
  return config;
}

}  // namespace dart::baseline
