#include "baseline/dapper.hpp"

namespace dart::baseline {

DapperLike::DapperLike(const DapperConfig& config,
                       core::SampleCallback on_sample)
    : config_(config), on_sample_(std::move(on_sample)) {}

void DapperLike::process(const PacketRecord& packet) {
  ++stats_.packets_processed;
  if (!config_.include_syn && packet.is_syn()) return;

  const bool external = config_.leg == core::LegMode::kExternal ||
                        config_.leg == core::LegMode::kBoth;
  const bool internal = config_.leg == core::LegMode::kInternal ||
                        config_.leg == core::LegMode::kBoth;

  if (external) {
    if (packet.outbound && packet.carries_data()) {
      handle_seq(packet.tuple, packet);
    } else if (!packet.outbound && packet.is_ack()) {
      handle_ack(packet.tuple.reversed(), packet.ack, packet.ts,
                 core::LegMode::kExternal);
    }
  }
  if (internal) {
    if (!packet.outbound && packet.carries_data()) {
      handle_seq(packet.tuple, packet);
    } else if (packet.outbound && packet.is_ack()) {
      handle_ack(packet.tuple.reversed(), packet.ack, packet.ts,
                 core::LegMode::kInternal);
    }
  }
}

void DapperLike::process_all(std::span<const PacketRecord> packets) {
  for (const PacketRecord& packet : packets) process(packet);
}

void DapperLike::handle_seq(const FourTuple& tuple,
                            const PacketRecord& packet) {
  Pending& pending = flows_[tuple];
  if (pending.armed) {
    ++stats_.skipped;  // one measurement in flight per flow, per Dapper
    return;
  }
  pending.armed = true;
  pending.eack = packet.expected_ack();
  pending.ts = packet.ts;
  ++stats_.armed;
}

void DapperLike::handle_ack(const FourTuple& data_tuple, SeqNum ack,
                            Timestamp now, core::LegMode leg) {
  auto it = flows_.find(data_tuple);
  if (it == flows_.end() || !it->second.armed) return;
  Pending& pending = it->second;

  if (ack == pending.eack) {
    ++stats_.samples;
    if (on_sample_) {
      core::RttSample sample;
      sample.tuple = data_tuple;
      sample.eack = ack;
      sample.seq_ts = pending.ts;
      sample.ack_ts = now;
      sample.leg = leg;
      on_sample_(sample);
    }
    pending.armed = false;
  } else if (seq_gt(ack, pending.eack)) {
    pending.armed = false;  // cumulative ACK skipped past our packet
  }
}

}  // namespace dart::baseline
