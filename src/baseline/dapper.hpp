// A Dapper-style single-sample tracker (Ghasemi et al., Section 8).
//
// Dapper tracks at most one outstanding SEQ per flow: it must wait for that
// packet's ACK before arming the next measurement. The paper's critique —
// too few samples per unit time for aggregate analytics — falls out directly
// when this baseline is compared against Dart on the same trace.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "common/packet.hpp"
#include "core/rtt_sample.hpp"

namespace dart::baseline {

struct DapperConfig {
  bool include_syn = false;
  core::LegMode leg = core::LegMode::kExternal;
};

struct DapperStats {
  std::uint64_t packets_processed = 0;
  std::uint64_t armed = 0;     ///< measurements started
  std::uint64_t skipped = 0;   ///< SEQs ignored while a measurement pending
  std::uint64_t samples = 0;
};

class DapperLike {
 public:
  explicit DapperLike(const DapperConfig& config,
                      core::SampleCallback on_sample = {});

  void process(const PacketRecord& packet);
  void process_all(std::span<const PacketRecord> packets);

  const DapperStats& stats() const { return stats_; }

 private:
  struct Pending {
    bool armed = false;
    SeqNum eack = 0;
    Timestamp ts = 0;
  };

  void handle_seq(const FourTuple& tuple, const PacketRecord& packet);
  void handle_ack(const FourTuple& data_tuple, SeqNum ack, Timestamp now,
                  core::LegMode leg);

  DapperConfig config_;
  core::SampleCallback on_sample_;
  DapperStats stats_;
  std::unordered_map<FourTuple, Pending, FourTupleHash> flows_;
};

}  // namespace dart::baseline
