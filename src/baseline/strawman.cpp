#include "baseline/strawman.hpp"

namespace dart::baseline {

Strawman::Strawman(const StrawmanConfig& config,
                   core::SampleCallback on_sample)
    : config_(config),
      on_sample_(std::move(on_sample)),
      hash_(config.hash_seed),
      slots_(config.table_size == 0 ? 1 : config.table_size) {}

void Strawman::process(const PacketRecord& packet) {
  ++stats_.packets_processed;
  if (!config_.include_syn && packet.is_syn()) return;

  const bool external = config_.leg == core::LegMode::kExternal ||
                        config_.leg == core::LegMode::kBoth;
  const bool internal = config_.leg == core::LegMode::kInternal ||
                        config_.leg == core::LegMode::kBoth;

  if (external) {
    if (packet.outbound && packet.carries_data()) {
      handle_seq(packet.tuple, packet);
    } else if (!packet.outbound && packet.is_ack()) {
      handle_ack(packet.tuple.reversed(), packet.ack, packet.ts,
                 core::LegMode::kExternal);
    }
  }
  if (internal) {
    if (!packet.outbound && packet.carries_data()) {
      handle_seq(packet.tuple, packet);
    } else if (packet.outbound && packet.is_ack()) {
      handle_ack(packet.tuple.reversed(), packet.ack, packet.ts,
                 core::LegMode::kInternal);
    }
  }
}

void Strawman::process_all(std::span<const PacketRecord> packets) {
  for (const PacketRecord& packet : packets) process(packet);
}

void Strawman::handle_seq(const FourTuple& tuple,
                          const PacketRecord& packet) {
  const std::uint32_t sig = flow_signature(tuple);
  const SeqNum eack = packet.expected_ack();
  const std::uint64_t key = (std::uint64_t{sig} << 32) | eack;
  Slot& slot = slots_[hash_(key, 0) % slots_.size()];

  if (slot.valid && !expired(slot, packet.ts)) {
    ++stats_.overwrites;  // blind replacement: biased against long RTTs
  } else if (slot.valid) {
    ++stats_.timeout_evictions;
  }
  slot = Slot{true, sig, eack, packet.ts};
  ++stats_.inserted;
}

void Strawman::handle_ack(const FourTuple& data_tuple, SeqNum ack,
                          Timestamp now, core::LegMode leg) {
  const std::uint32_t sig = flow_signature(data_tuple);
  const std::uint64_t key = (std::uint64_t{sig} << 32) | ack;
  Slot& slot = slots_[hash_(key, 0) % slots_.size()];
  if (!slot.valid || slot.flow_sig != sig || slot.eack != ack) return;
  if (expired(slot, now)) {
    slot.valid = false;
    ++stats_.timeout_evictions;
    return;
  }

  slot.valid = false;
  ++stats_.samples;
  if (on_sample_) {
    core::RttSample sample;
    sample.tuple = data_tuple;
    sample.eack = ack;
    sample.seq_ts = slot.ts;
    sample.ack_ts = now;
    sample.leg = leg;
    on_sample_(sample);
  }
}

}  // namespace dart::baseline
