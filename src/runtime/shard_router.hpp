// Flow-affinity packet routing.
//
// The Dart pipeline is embarrassingly parallel across connections: every
// RT/PT lookup is keyed by the flow's 4-tuple, so any partitioning that (a)
// sends both directions of a connection to the same shard and (b) preserves
// the arrival order of each connection's packets leaves every per-flow
// decision identical to a single-monitor run. The router hashes the
// *canonical* (direction-insensitive) 4-tuple, which gives (a); a single
// in-order producer feeding FIFO queues gives (b).
#pragma once

#include <cstdint>

#include "common/four_tuple.hpp"

namespace dart::runtime {

class ShardRouter {
 public:
  /// `shards` must be >= 1. `seed` decorrelates the routing hash from the
  /// RT/PT table hashes so shard skew and table collisions are independent.
  ShardRouter(std::uint32_t shards, std::uint64_t seed);

  /// Shard index in [0, shards) for this tuple; identical for `tuple` and
  /// `tuple.reversed()`.
  std::uint32_t route(const FourTuple& tuple) const;

  std::uint32_t shards() const { return shards_; }

 private:
  std::uint32_t shards_;
  std::uint64_t seed_;
};

}  // namespace dart::runtime
