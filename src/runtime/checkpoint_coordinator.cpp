#include "runtime/checkpoint_coordinator.hpp"

#include <iterator>
#include <utility>

namespace dart::runtime {

CheckpointCoordinator::CheckpointCoordinator(std::uint32_t shards) {
  slots_.reserve(shards);
  for (std::uint32_t i = 0; i < shards; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

std::uint64_t CheckpointCoordinator::begin_incarnation(std::uint32_t shard) {
  Slot& slot = *slots_[shard];
  const common::MutexLock lock(slot.mutex);
  slot.owner = slot.next_id++;
  return slot.owner;
}

bool CheckpointCoordinator::commit(std::uint32_t shard,
                                   std::uint64_t incarnation,
                                   core::CheckpointImage&& image,
                                   const core::SnapshotMeta& meta,
                                   std::vector<core::RttSample>&& samples) {
  Slot& slot = *slots_[shard];
  const common::MutexLock lock(slot.mutex);
  if (slot.owner != incarnation) return false;
  slot.committed.insert(slot.committed.end(),
                        std::make_move_iterator(samples.begin()),
                        std::make_move_iterator(samples.end()));
  if (!image.empty()) {
    slot.image = std::move(image);
    slot.meta = meta;
    slot.has_image = true;
    ++slot.cuts;
  }
  return true;
}

bool CheckpointCoordinator::commit_samples(
    std::uint32_t shard, std::uint64_t incarnation,
    std::vector<core::RttSample>&& samples) {
  return commit(shard, incarnation, core::CheckpointImage{}, {},
                std::move(samples));
}

bool CheckpointCoordinator::latest(std::uint32_t shard,
                                   core::CheckpointImage* image,
                                   core::SnapshotMeta* meta) const {
  const Slot& slot = *slots_[shard];
  const common::MutexLock lock(slot.mutex);
  if (!slot.has_image) return false;
  if (image != nullptr) *image = slot.image;
  if (meta != nullptr) *meta = slot.meta;
  return true;
}

std::vector<core::RttSample> CheckpointCoordinator::committed_samples(
    std::uint32_t shard) const {
  const Slot& slot = *slots_[shard];
  const common::MutexLock lock(slot.mutex);
  return slot.committed;
}

std::uint64_t CheckpointCoordinator::committed_sample_count(
    std::uint32_t shard) const {
  const Slot& slot = *slots_[shard];
  const common::MutexLock lock(slot.mutex);
  return slot.committed.size();
}

std::uint64_t CheckpointCoordinator::checkpoints_cut(
    std::uint32_t shard) const {
  const Slot& slot = *slots_[shard];
  const common::MutexLock lock(slot.mutex);
  return slot.cuts;
}

std::uint64_t CheckpointCoordinator::total_checkpoints_cut() const {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < shards(); ++i) total += checkpoints_cut(i);
  return total;
}

}  // namespace dart::runtime
