// ShardedMonitor: flow-affinity parallel replay across N worker threads.
//
//                      +-> [ring] -> worker 0: DartMonitor -> SampleLog 0
//   packets -> router -+-> [ring] -> worker 1: DartMonitor -> SampleLog 1
//                      +-> [ring] -> worker 2: DartMonitor -> SampleLog 2
//
// The caller's thread routes each packet by the canonical 4-tuple hash onto
// one of N shards; each shard is a worker thread owning a private monitor
// (no shared mutable state between shards). Handoff is batched (~256
// packets per push) through bounded SPSC rings; a full ring backpressures
// the router, bounding memory at O(shards * queue depth * batch).
//
// Determinism: both directions of a connection hash to the same shard and
// the single router preserves arrival order into each FIFO ring, so every
// flow sees exactly the packet subsequence — in exactly the order — it
// would see in a single-monitor run. With per-flow monitor state (unbounded
// tables), the merged sample stream is therefore bit-identical *as a
// multiset* to the single-monitor reference, and merged DartStats equal the
// reference counters; `merged_samples()` returns the canonical sorted order
// so equal multisets compare equal as vectors. Bounded tables shared by
// many flows break this equivalence by design (shards see different
// collision patterns); the differential tests pin down both regimes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "analytics/sample_log.hpp"
#include "common/packet.hpp"
#include "core/config.hpp"
#include "core/rtt_sample.hpp"
#include "core/stats.hpp"
#include "runtime/replay_monitor.hpp"
#include "runtime/shard_router.hpp"
#include "runtime/spsc_ring.hpp"

namespace dart::runtime {

struct ShardedConfig {
  /// Number of worker threads / monitor partitions (>= 1).
  std::uint32_t shards = 1;

  /// Packets accumulated per shard before a queue handoff. One push
  /// amortizes the ring synchronization over the whole batch.
  std::size_t batch_size = 256;

  /// Bounded ring capacity per shard, in batches. A full ring stalls the
  /// router (backpressure) rather than growing without bound.
  std::size_t queue_batches = 64;

  /// Routing hash seed; independent of the monitors' table hash seeds.
  std::uint64_t route_seed = 0xDA27'0002;
};

class ShardedMonitor {
 public:
  /// Workers are started immediately; `factory` is invoked once per shard
  /// on the constructing thread.
  ShardedMonitor(const ShardedConfig& config, MonitorFactory factory);

  /// Convenience: every shard runs a private DartMonitor with this config.
  ShardedMonitor(const ShardedConfig& config,
                 const core::DartConfig& dart_config);

  /// Joins the workers (finish()) if the caller has not already.
  ~ShardedMonitor();

  ShardedMonitor(const ShardedMonitor&) = delete;
  ShardedMonitor& operator=(const ShardedMonitor&) = delete;

  /// Route one packet to its shard. Caller thread only; packets must arrive
  /// in monitor order (as for DartMonitor::process).
  void process(const PacketRecord& packet);

  /// Route a whole time-ordered stream.
  void process_all(std::span<const PacketRecord> packets);

  /// Flush partial batches, signal end-of-stream, and join all workers.
  /// Idempotent. Results are available afterwards.
  void finish();

  std::uint32_t shards() const { return router_.shards(); }
  const ShardedConfig& config() const { return config_; }

  /// Per-shard results; valid only after finish().
  const analytics::SampleLog& shard_samples(std::uint32_t shard) const;
  core::DartStats shard_stats(std::uint32_t shard) const;

  /// Sum of all per-shard counters; valid only after finish().
  core::DartStats merged_stats() const;

  /// All shards' samples in the canonical `sample_less` order — the
  /// deterministic merge. Valid only after finish().
  std::vector<core::RttSample> merged_samples() const;

 private:
  using PacketBatch = std::vector<PacketRecord>;

  struct Shard {
    explicit Shard(std::size_t queue_batches) : queue(queue_batches) {}

    SpscRing<PacketBatch> queue;
    std::unique_ptr<ReplayMonitor> monitor;  // worker-owned while running
    analytics::SampleLog samples;            // worker-written while running
    core::DartStats final_stats;             // written by worker before exit
    PacketBatch pending;                     // router-side accumulation
    std::thread thread;
    std::atomic<bool> input_done{false};
  };

  void start(MonitorFactory factory);
  void flush_shard(Shard& shard);
  static void worker_loop(Shard& shard);

  ShardedConfig config_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool finished_ = false;
};

/// Canonicalize a sample stream into the `sample_less` total order, in
/// place. Applying this to a single-monitor run and comparing against
/// `merged_samples()` is the multiset-equality test.
void deterministic_order(std::vector<core::RttSample>& samples);

}  // namespace dart::runtime
