// ShardedMonitor: flow-affinity parallel replay across N worker threads.
//
//                      +-> [ring] -> worker 0: DartMonitor -> SampleLog 0
//   packets -> router -+-> [ring] -> worker 1: DartMonitor -> SampleLog 1
//                      +-> [ring] -> worker 2: DartMonitor -> SampleLog 2
//
// The caller's thread routes each packet by the canonical 4-tuple hash onto
// one of N shards; each shard is a worker thread owning a private monitor
// (no shared mutable state between shards). Handoff is batched (~256
// packets per push) through bounded SPSC rings; a full ring backpressures
// the router, bounding memory at O(shards * queue depth * batch).
//
// Determinism: both directions of a connection hash to the same shard and
// the single router preserves arrival order into each FIFO ring, so every
// flow sees exactly the packet subsequence — in exactly the order — it
// would see in a single-monitor run. With per-flow monitor state (unbounded
// tables), the merged sample stream is therefore bit-identical *as a
// multiset* to the single-monitor reference, and merged DartStats equal the
// reference counters; `merged_samples()` returns the canonical sorted order
// so equal multisets compare equal as vectors. Bounded tables shared by
// many flows break this equivalence by design (shards see different
// collision patterns); the differential tests pin down both regimes.
//
// Graceful degradation: backpressure is *bounded*. When a shard's ring
// stays full past the OverloadPolicy's deadline (spin -> exponential
// backoff -> shed), the router drops that batch and accounts it in the
// shard's RuntimeHealth (shed_batches / shed_packets) instead of freezing
// the whole pipeline behind one sick worker — the invariant is
//
//     processed + shed + abandoned == routed        (per shard and merged)
//
// where `abandoned` is nonzero only for a worker that wedged so hard the
// shutdown join timed out and the runtime force-detached it. A worker that
// exits early (a kill fault, or a crash-turned-clean-exit) flips its dead
// flag; the router then sheds immediately and finish() drains and accounts
// whatever was left in the ring. See DESIGN.md "Failure model".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "analytics/sample_log.hpp"
#include "common/packet.hpp"
#include "common/thread_annotations.hpp"
#include "core/config.hpp"
#include "core/rtt_sample.hpp"
#include "core/stats.hpp"
#include "runtime/lifecycle.hpp"
#include "runtime/overload_policy.hpp"
#include "runtime/replay_monitor.hpp"
#include "runtime/shard_router.hpp"
#include "runtime/spsc_ring.hpp"

#if defined(DART_TELEMETRY)
namespace dart::telemetry {
struct RuntimeMetrics;
}  // namespace dart::telemetry
#endif

namespace dart::runtime {

#if defined(DART_FAULT_INJECTION)
class FaultPlan;
#endif

struct ShardedConfig {
  /// Number of worker threads / monitor partitions (>= 1).
  std::uint32_t shards = 1;

  /// Packets accumulated per shard before a queue handoff. One push
  /// amortizes the ring synchronization over the whole batch.
  std::size_t batch_size = 256;

  /// Bounded ring capacity per shard, in batches. A full ring stalls the
  /// router (backpressure) rather than growing without bound.
  std::size_t queue_batches = 64;

  /// Routing hash seed; independent of the monitors' table hash seeds.
  std::uint64_t route_seed = 0xDA27'0002;

  /// Workers hand each dequeued ring batch to ReplayMonitor::process_batch
  /// (DartMonitor's batched SoA fast path). false forces the per-packet
  /// virtual loop — the scalar baseline the batch differential suite and
  /// bench_throughput's scalar rows compare against. Routing, ordering,
  /// shed/backpressure accounting, and result merging are identical in
  /// both modes; only the worker's inner loop changes.
  bool batched_workers = true;

  /// How hard the router waits on a full ring before shedding the batch.
  OverloadPolicy overload;

  /// Epoch hook: when nonzero, `on_epoch(epoch, routed)` fires on the
  /// *router thread* after every `epoch_interval_packets` routed packets
  /// (epoch counts from 1; `routed` is the total routed so far, i.e.
  /// epoch * interval). This is the fleet exporter's barrier source: the
  /// callback runs between process() calls, so it may inspect router-side
  /// state and publish progress frames, but the workers have not
  /// necessarily consumed up to the cursor yet — it is a routing barrier,
  /// not a quiesce point. Keep the callback cheap; it stalls routing.
  std::uint64_t epoch_interval_packets = 0;
  std::function<void(std::uint64_t epoch, std::uint64_t routed)> on_epoch;

  /// How long finish() waits for a worker to exit before force-detaching
  /// it (diagnosed in RuntimeHealth::forced_detaches). After end-of-input a
  /// healthy worker only has the ring's backlog left, so this bounds
  /// shutdown: it fires only for a genuinely wedged worker. 0 waits
  /// forever (the pre-timeout behavior).
  std::uint64_t join_timeout_ns = 30'000'000'000ULL;  // 30 s

#if defined(DART_FAULT_INJECTION)
  /// Fault-injection hooks for the chaos suite; must outlive the monitor
  /// (or at least every worker). Only exists in DART_FAULT_INJECTION
  /// builds — the release worker loop contains no hook sites at all.
  FaultPlan* faults = nullptr;
#endif

#if defined(DART_TELEMETRY)
  /// Standard metric families to instrument; must outlive every worker
  /// (keepalive-referenced like the shards themselves is overkill — the
  /// registry typically outlives the whole run). nullptr runs
  /// uninstrumented. Only exists in DART_TELEMETRY builds; with the option
  /// OFF the hot path contains no telemetry sites at all.
  telemetry::RuntimeMetrics* telemetry = nullptr;
#endif
};

class ShardedMonitor {
 public:
  /// Workers are started immediately; `factory` is invoked once per shard
  /// on the constructing thread.
  ShardedMonitor(const ShardedConfig& config, MonitorFactory factory);

  /// Convenience: every shard runs a private DartMonitor with this config.
  ShardedMonitor(const ShardedConfig& config,
                 const core::DartConfig& dart_config);

  /// Joins the workers (shutdown) if the caller has not already finished.
  ~ShardedMonitor();

  ShardedMonitor(const ShardedMonitor&) = delete;
  ShardedMonitor& operator=(const ShardedMonitor&) = delete;

  /// Route one packet to its shard. Caller thread only; packets must arrive
  /// in monitor order (as for DartMonitor::process). Throws LifecycleError
  /// (kProcessAfterFinish) once finish() has run — the workers have joined
  /// and a routed batch would land in a ring with no consumer.
  void process(const PacketRecord& packet);

  /// Route a whole time-ordered stream. Same lifecycle contract as
  /// process().
  void process_all(std::span<const PacketRecord> packets);

  /// Flush partial batches, signal end-of-stream, and join all workers
  /// (bounded by join_timeout_ns per worker). Results are available
  /// afterwards. A second explicit call throws LifecycleError
  /// (kFinishAfterFinish): the batch-era "idempotent finish" contract hid
  /// daemon restart bugs where two owners both believed they ended the
  /// cycle. Destruction after finish() remains legal (the destructor uses
  /// the noexcept shutdown path, never this method).
  void finish();

  /// True once finish() has settled results (queries allowed, ingest not).
  bool finished() const { return finished_; }

  std::uint32_t shards() const { return router_.shards(); }
  const ShardedConfig& config() const { return config_; }

  /// Router-side epoch clock: packets routed so far. Router thread only
  /// while running (it is the writer); any thread after finish().
  std::uint64_t routed_total() const { return routed_total_; }

  /// Router-side per-shard cursor: packets routed to `shard` so far,
  /// including the pending partial batch not yet handed to the ring. The
  /// cursors sum to routed_total(); an on_epoch callback may snapshot them
  /// to stamp a barrier frame. Same threading contract as routed_total().
  std::uint64_t shard_routed_cursor(std::uint32_t shard) const;

  /// Per-shard results; valid only after finish(). A force-detached
  /// shard's samples are unreadable (its worker may still touch them) and
  /// come back empty; its stats carry only the RuntimeHealth accounting.
  const analytics::SampleLog& shard_samples(std::uint32_t shard) const;
  core::DartStats shard_stats(std::uint32_t shard) const;

  /// Sum of all per-shard counters (including RuntimeHealth); valid only
  /// after finish().
  core::DartStats merged_stats() const;

  /// Merged degradation accounting alone; valid only after finish().
  core::RuntimeHealth health() const;

  /// All shards' samples in the canonical `sample_less` order — the
  /// deterministic merge. Valid only after finish(); skips force-detached
  /// shards (their logs are not safely readable).
  std::vector<core::RttSample> merged_samples() const;

  /// Wait up to `timeout_ns` for any force-detached workers to finally
  /// exit (e.g. after a fault plan released a hang). Returns true when
  /// none remain running. Valid only after finish().
  bool await_detached(std::uint64_t timeout_ns) const;

 private:
  using PacketBatch = std::vector<PacketRecord>;

  // Lock-free cross-thread protocol, in DART_PUBLISHED_BY terms: the
  // constructing thread publishes monitor/faults/metrics to the worker via
  // thread creation; the worker publishes samples/final_stats back with its
  // exited release-store, which finish() acquires via join (or an exited
  // load, for a detached worker). Everything else is single-thread-owned.
  struct Shard {
    explicit Shard(std::size_t queue_batches) : queue(queue_batches) {}

    SpscRing<PacketBatch> queue;
    // Worker-owned while running; readable only after exited.
    std::unique_ptr<ReplayMonitor> monitor DART_PUBLISHED_BY(exited);
    analytics::SampleLog samples DART_PUBLISHED_BY(exited);
    core::DartStats final_stats DART_PUBLISHED_BY(exited);
    PacketBatch pending;  // router-side accumulation
    std::thread thread;
    std::uint32_t index = 0;
    bool batched = true;  // worker-loop mode, copied from the config
    std::atomic<bool> input_done{false};
    std::atomic<bool> dead{false};    // worker exited before end-of-input
    std::atomic<bool> exited{false};  // worker loop finished (all paths)
    bool detached = false;            // join timed out; worker abandoned
    std::uint64_t routed_packets = 0;      // router-side: handed to flush
    core::RuntimeHealth health;            // router-side accounting
    core::DartStats result;                // snapshot assembled by finish()
#if defined(DART_FAULT_INJECTION)
    FaultPlan* faults = nullptr;
#endif
#if defined(DART_TELEMETRY)
    telemetry::RuntimeMetrics* metrics = nullptr;  // worker-read, may be null
#endif
  };

  void start(MonitorFactory factory);
  // The whole finish() sequence minus the lifecycle check, safe from the
  // destructor: flush, end-of-input, join/detach, settle results, fold
  // telemetry. Idempotent.
  void shutdown() noexcept;
  void flush_shard(Shard& shard);
  void push_or_shed(Shard& shard, PacketBatch&& batch);
  void join_or_detach(Shard& shard);
  static void drain_as_shed(Shard& shard);
  static void worker_loop(Shard& shard);

  ShardedConfig config_;
  ShardRouter router_;
  std::uint64_t routed_total_ = 0;  ///< router-side packets, epoch clock
  std::uint64_t epochs_fired_ = 0;
  // shared_ptr, not unique_ptr: each worker holds a reference to its own
  // Shard, so a force-detached worker that wakes up later still touches
  // live memory even after the ShardedMonitor is gone.
  std::vector<std::shared_ptr<Shard>> shards_;
  bool finished_ = false;
};

/// Canonicalize a sample stream into the `sample_less` total order, in
/// place. Applying this to a single-monitor run and comparing against
/// `merged_samples()` is the multiset-equality test.
void deterministic_order(std::vector<core::RttSample>& samples);

}  // namespace dart::runtime
