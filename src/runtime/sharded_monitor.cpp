#include "runtime/sharded_monitor.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "core/config_check.hpp"
#include "runtime/epoch_math.hpp"

#if defined(DART_FAULT_INJECTION)
#include "runtime/fault_injection.hpp"
#endif

#if defined(DART_TELEMETRY)
#include "telemetry/runtime_metrics.hpp"
#endif

namespace dart::runtime {

ShardedMonitor::ShardedMonitor(const ShardedConfig& config,
                               MonitorFactory factory)
    : config_(config),
      router_(config.shards == 0 ? 1 : config.shards, config.route_seed) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.queue_batches == 0) config_.queue_batches = 1;
  start(std::move(factory));
}

// Validate before any shard exists so an infeasible config throws the
// pipeline checker's diagnostics without starting a single worker.
ShardedMonitor::ShardedMonitor(const ShardedConfig& config,
                               const core::DartConfig& dart_config)
    : ShardedMonitor(config,
                     dart_factory(core::ensure_feasible(dart_config))) {}

ShardedMonitor::~ShardedMonitor() { shutdown(); }

void ShardedMonitor::start(MonitorFactory factory) {
  shards_.reserve(config_.shards);
  for (std::uint32_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_shared<Shard>(config_.queue_batches);
    shard->index = i;
    shard->batched = config_.batched_workers;
#if defined(DART_FAULT_INJECTION)
    shard->faults = config_.faults;
#endif
#if defined(DART_TELEMETRY)
    shard->metrics = config_.telemetry;
#endif
    // The callback writes the worker-private log: the worker thread is the
    // only caller of monitor->process, hence the only writer.
    shard->monitor = factory(i, shard->samples.callback());
    shard->pending.reserve(config_.batch_size);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    // The worker keeps its own reference so a force-detached thread that
    // wakes up after this monitor is destroyed still touches live memory.
    shard->thread = std::thread(
        [keepalive = shard] { worker_loop(*keepalive); });
  }
}

void ShardedMonitor::worker_loop(Shard& shard) {
  PacketBatch batch;
  std::uint64_t batches_done = 0;
  bool killed = false;
  bool done_seen = false;
  for (;;) {
#if defined(DART_FAULT_INJECTION)
    if (shard.faults != nullptr &&
        shard.faults->before_pop(shard.index, batches_done) ==
            FaultPlan::Action::kExit) {
      killed = true;
      break;
    }
#endif
    if (shard.queue.try_pop(batch)) {
#if defined(DART_FAULT_INJECTION)
      if (shard.faults != nullptr) {
        shard.faults->after_pop(shard.index, batches_done);
      }
#endif
#if defined(DART_TELEMETRY)
      const auto batch_start = shard.metrics != nullptr
                                   ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
#endif
      if (shard.batched) {
        shard.monitor->process_batch(batch);
      } else {
        for (const PacketRecord& packet : batch) {
          shard.monitor->process(packet);
        }
      }
#if defined(DART_TELEMETRY)
      if (shard.metrics != nullptr) {
        const auto elapsed =
            std::chrono::steady_clock::now() - batch_start;
        shard.metrics->batch_latency->at(shard.index)
            .observe(static_cast<Timestamp>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                    .count()));
        shard.metrics->batch_fill->at(shard.index)
            .observe(static_cast<Timestamp>(batch.size()));
        shard.metrics->worker_batches->at(shard.index).inc();
        shard.metrics->worker_packets->at(shard.index).inc(batch.size());
      }
#endif
      batch.clear();
      ++batches_done;
      continue;
    }
    // The done flag is published after the router's last push, so an empty
    // pop observed *after* the flag means the ring is empty for good.
    if (done_seen) break;
    if (shard.input_done.load(std::memory_order_acquire)) {
      done_seen = true;
      continue;  // one more pass drains anything pushed before the flag
    }
    std::this_thread::yield();
  }
  if (killed) shard.dead.store(true, std::memory_order_release);
  shard.final_stats = shard.monitor->stats();
  shard.exited.store(true, std::memory_order_release);
}

void ShardedMonitor::flush_shard(Shard& shard) {
  if (shard.pending.empty()) return;
  PacketBatch batch = std::move(shard.pending);
  shard.pending.clear();  // moved-from: restore a defined empty state
  shard.pending.reserve(config_.batch_size);
  shard.routed_packets += batch.size();
  push_or_shed(shard, std::move(batch));
#if defined(DART_TELEMETRY)
  if (config_.telemetry != nullptr) {
    config_.telemetry->ring_occupancy->at(shard.index)
        .set(static_cast<std::int64_t>(shard.queue.size_approx()));
  }
#endif
}

void ShardedMonitor::push_or_shed(Shard& shard, PacketBatch&& batch) {
  OverloadGovernor governor(config_.overload);
  bool contended = false;
#if defined(DART_TELEMETRY)
  telemetry::RuntimeMetrics* const tm = config_.telemetry;
  bool backoff_counted = false;
#endif
  for (;;) {
    // A dead worker consumes nothing ever again: shed without waiting.
    if (shard.dead.load(std::memory_order_relaxed)) break;
    if (shard.queue.try_push(std::move(batch))) return;
    if (!contended) {
      contended = true;
      ++shard.health.backpressure_events;
    }
    const OverloadDecision decision = governor.next();
    if (decision.action == OverloadAction::kShed) {
#if defined(DART_TELEMETRY)
      if (tm != nullptr) tm->governor_sheds->at(shard.index).inc();
#endif
      break;
    }
    if (decision.action == OverloadAction::kSleep) {
      ++shard.health.backoff_sleeps;
#if defined(DART_TELEMETRY)
      if (tm != nullptr) {
        tm->backpressure_sleeps->at(shard.index).inc();
        if (!backoff_counted) {
          backoff_counted = true;  // ladder transition, not per-sleep
          tm->governor_backoffs->at(shard.index).inc();
        }
      }
#endif
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(decision.sleep_ns));
    } else {
      std::this_thread::yield();
    }
  }
  ++shard.health.shed_batches;
  shard.health.shed_packets += batch.size();
}

void ShardedMonitor::process(const PacketRecord& packet) {
  if (finished_) {
    throw LifecycleError(LifecycleViolation::kProcessAfterFinish);
  }
  Shard& shard = *shards_[router_.route(packet.tuple)];
  shard.pending.push_back(packet);
  if (shard.pending.size() >= config_.batch_size) flush_shard(shard);
  ++routed_total_;
  if (config_.on_epoch &&
      closes_epoch(routed_total_, config_.epoch_interval_packets)) {
    // Router-thread barrier: fires between packets, so the callback can
    // publish fleet progress without racing the routing state.
    config_.on_epoch(++epochs_fired_, routed_total_);
  }
}

void ShardedMonitor::process_all(std::span<const PacketRecord> packets) {
  if (finished_) {
    throw LifecycleError(LifecycleViolation::kProcessAfterFinish);
  }
  for (const PacketRecord& packet : packets) process(packet);
}

std::uint64_t ShardedMonitor::shard_routed_cursor(std::uint32_t shard) const {
  const Shard& s = *shards_[shard];
  return s.routed_packets + s.pending.size();
}

void ShardedMonitor::join_or_detach(Shard& shard) {
  if (!shard.thread.joinable()) return;
  if (config_.join_timeout_ns == 0) {
    shard.thread.join();
    return;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(config_.join_timeout_ns);
  while (!shard.exited.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() >= deadline) {
      // Deadline racing a clean exit must side with the worker: without
      // this final re-check, a worker that finishes its last batch right
      // at the deadline gets detached and its fully-merged stats and
      // samples silently discarded.
      if (shard.exited.load(std::memory_order_acquire)) break;
      // The worker is wedged. Abandon it with a diagnostic rather than
      // hanging shutdown forever; its keepalive reference makes a later
      // wake-up safe, and its results are written off as abandoned.
      shard.thread.detach();
      shard.detached = true;
      shard.health.forced_detaches = 1;
      shard.health.abandoned_packets =
          shard.routed_packets - shard.health.shed_packets;
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  shard.thread.join();
}

void ShardedMonitor::drain_as_shed(Shard& shard) {
  // Only called after the worker has exited (acquire on `exited` +
  // join), so this thread is the sole consumer of the ring.
  PacketBatch batch;
  while (shard.queue.try_pop(batch)) {
    ++shard.health.shed_batches;
    shard.health.shed_packets += batch.size();
    batch.clear();
  }
}

void ShardedMonitor::finish() {
  if (finished_) {
    throw LifecycleError(LifecycleViolation::kFinishAfterFinish);
  }
  shutdown();
}

void ShardedMonitor::shutdown() noexcept {
  if (finished_) return;
  finished_ = true;
  for (auto& shard : shards_) {
    flush_shard(*shard);
    shard->input_done.store(true, std::memory_order_release);
  }
  // Join only after every shard got its done flag, so workers drain in
  // parallel rather than serially behind the first join.
  for (auto& shard : shards_) join_or_detach(*shard);
  for (auto& shard : shards_) {
    if (shard->detached) {
      // Worker may still be running: its monitor stats and samples are
      // unreadable. Report only the router-side accounting (the dead flag
      // is atomic, so a kill observed before the detach still counts).
      if (shard->dead.load(std::memory_order_acquire)) {
        shard->health.workers_killed = 1;
      }
      shard->result = core::DartStats{};
    } else {
      if (shard->dead.load(std::memory_order_acquire)) {
        shard->health.workers_killed = 1;
        drain_as_shed(*shard);
      }
      shard->result = shard->final_stats;
    }
    shard->result.runtime = shard->health;
  }
#if defined(DART_TELEMETRY)
  // Quiesce fold: authoritative counters are written exactly once, from
  // the merged per-shard results, after workers have joined. Folding live
  // would double-count work a force-detached worker did but the merge
  // discarded.
  if (config_.telemetry != nullptr) {
    for (const auto& shard : shards_) {
      config_.telemetry->fold_authoritative(shard->index,
                                            shard->routed_packets,
                                            shard->result);
    }
  }
#endif
}

const analytics::SampleLog& ShardedMonitor::shard_samples(
    std::uint32_t shard) const {
  assert(finished_ && "results require finish()");
  static const analytics::SampleLog kEmpty;
  if (shards_[shard]->detached) return kEmpty;
  return shards_[shard]->samples;
}

core::DartStats ShardedMonitor::shard_stats(std::uint32_t shard) const {
  assert(finished_ && "results require finish()");
  return shards_[shard]->result;
}

core::DartStats ShardedMonitor::merged_stats() const {
  assert(finished_ && "results require finish()");
  core::DartStats merged;
  for (const auto& shard : shards_) merged += shard->result;
  return merged;
}

core::RuntimeHealth ShardedMonitor::health() const {
  assert(finished_ && "results require finish()");
  core::RuntimeHealth merged;
  for (const auto& shard : shards_) merged += shard->health;
  return merged;
}

std::vector<core::RttSample> ShardedMonitor::merged_samples() const {
  assert(finished_ && "results require finish()");
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    if (!shard->detached) total += shard->samples.size();
  }
  std::vector<core::RttSample> merged;
  merged.reserve(total);
  for (const auto& shard : shards_) {
    if (shard->detached) continue;
    const auto& samples = shard->samples.samples();
    merged.insert(merged.end(), samples.begin(), samples.end());
  }
  deterministic_order(merged);
  return merged;
}

bool ShardedMonitor::await_detached(std::uint64_t timeout_ns) const {
  assert(finished_ && "await_detached() requires finish()");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(timeout_ns);
  for (const auto& shard : shards_) {
    if (!shard->detached) continue;
    while (!shard->exited.load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  return true;
}

void deterministic_order(std::vector<core::RttSample>& samples) {
  std::sort(samples.begin(), samples.end(), core::sample_less);
}

}  // namespace dart::runtime
