#include "runtime/sharded_monitor.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/config_check.hpp"

namespace dart::runtime {

ShardedMonitor::ShardedMonitor(const ShardedConfig& config,
                               MonitorFactory factory)
    : config_(config),
      router_(config.shards == 0 ? 1 : config.shards, config.route_seed) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.queue_batches == 0) config_.queue_batches = 1;
  start(std::move(factory));
}

// Validate before any shard exists so an infeasible config throws the
// pipeline checker's diagnostics without starting a single worker.
ShardedMonitor::ShardedMonitor(const ShardedConfig& config,
                               const core::DartConfig& dart_config)
    : ShardedMonitor(config,
                     dart_factory(core::ensure_feasible(dart_config))) {}

ShardedMonitor::~ShardedMonitor() { finish(); }

void ShardedMonitor::start(MonitorFactory factory) {
  shards_.reserve(config_.shards);
  for (std::uint32_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>(config_.queue_batches);
    // The callback writes the worker-private log: the worker thread is the
    // only caller of monitor->process, hence the only writer.
    shard->monitor = factory(i, shard->samples.callback());
    shard->pending.reserve(config_.batch_size);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread(&ShardedMonitor::worker_loop,
                                std::ref(*shard));
  }
}

void ShardedMonitor::worker_loop(Shard& shard) {
  PacketBatch batch;
  for (;;) {
    if (shard.queue.try_pop(batch)) {
      for (const PacketRecord& packet : batch) {
        shard.monitor->process(packet);
      }
      batch.clear();
      continue;
    }
    if (shard.input_done.load(std::memory_order_acquire)) {
      // The done flag was published after the router's last push, so one
      // final drain observes every batch.
      while (shard.queue.try_pop(batch)) {
        for (const PacketRecord& packet : batch) {
          shard.monitor->process(packet);
        }
        batch.clear();
      }
      break;
    }
    std::this_thread::yield();
  }
  shard.final_stats = shard.monitor->stats();
}

void ShardedMonitor::flush_shard(Shard& shard) {
  if (shard.pending.empty()) return;
  PacketBatch batch = std::move(shard.pending);
  shard.pending.clear();  // moved-from: restore a defined empty state
  shard.pending.reserve(config_.batch_size);
  while (!shard.queue.try_push(std::move(batch))) {
    // Ring full: the shard is behind. Backpressure the router instead of
    // buffering unboundedly.
    std::this_thread::yield();
  }
}

void ShardedMonitor::process(const PacketRecord& packet) {
  assert(!finished_ && "process() after finish()");
  Shard& shard = *shards_[router_.route(packet.tuple)];
  shard.pending.push_back(packet);
  if (shard.pending.size() >= config_.batch_size) flush_shard(shard);
}

void ShardedMonitor::process_all(std::span<const PacketRecord> packets) {
  for (const PacketRecord& packet : packets) process(packet);
}

void ShardedMonitor::finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& shard : shards_) {
    flush_shard(*shard);
    shard->input_done.store(true, std::memory_order_release);
  }
  // Join only after every shard got its done flag, so workers drain in
  // parallel rather than serially behind the first join.
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

const analytics::SampleLog& ShardedMonitor::shard_samples(
    std::uint32_t shard) const {
  assert(finished_ && "results require finish()");
  return shards_[shard]->samples;
}

core::DartStats ShardedMonitor::shard_stats(std::uint32_t shard) const {
  assert(finished_ && "results require finish()");
  return shards_[shard]->final_stats;
}

core::DartStats ShardedMonitor::merged_stats() const {
  assert(finished_ && "results require finish()");
  core::DartStats merged;
  for (const auto& shard : shards_) merged += shard->final_stats;
  return merged;
}

std::vector<core::RttSample> ShardedMonitor::merged_samples() const {
  assert(finished_ && "results require finish()");
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->samples.size();
  std::vector<core::RttSample> merged;
  merged.reserve(total);
  for (const auto& shard : shards_) {
    const auto& samples = shard->samples.samples();
    merged.insert(merged.end(), samples.begin(), samples.end());
  }
  deterministic_order(merged);
  return merged;
}

void deterministic_order(std::vector<core::RttSample>& samples) {
  std::sort(samples.begin(), samples.end(), core::sample_less);
}

}  // namespace dart::runtime
