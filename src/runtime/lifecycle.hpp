// Typed lifetime errors for the replay runtime.
//
// The batch-era contract ("construct, process everything, finish(), read
// results, destroy") survived on caller discipline: process() after
// finish() pushed batches into rings whose workers had already joined, and
// a second finish() silently re-ran the shutdown path. A long-running
// daemon breaks that discipline by design — its restart path tears a
// monitor down and builds a fresh one while queries are still in flight —
// so misuse must fail fast with a typed, catchable error instead of
// touching freed worker state.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace dart::runtime {

enum class LifecycleViolation : std::uint8_t {
  /// process()/process_all() on a monitor whose workers already joined.
  kProcessAfterFinish,
  /// A second explicit finish(); destruction after finish() stays legal.
  kFinishAfterFinish,
};

constexpr const char* to_string(LifecycleViolation violation) {
  switch (violation) {
    case LifecycleViolation::kProcessAfterFinish:
      return "process() after finish(): the workers have joined and their "
             "rings have no consumer; build a fresh monitor for a new cycle";
    case LifecycleViolation::kFinishAfterFinish:
      return "finish() called twice: results are already settled";
  }
  return "unknown lifecycle violation";
}

/// Thrown by the sharded runtime on batch-lifetime misuse. logic_error:
/// every instance is a caller bug (a use-after-finish), never a runtime
/// condition to retry.
class LifecycleError : public std::logic_error {
 public:
  explicit LifecycleError(LifecycleViolation violation)
      : std::logic_error(to_string(violation)), violation_(violation) {}

  LifecycleViolation violation() const { return violation_; }

 private:
  LifecycleViolation violation_;
};

}  // namespace dart::runtime
