// ShardSupervisor: the sharded replay runtime with crash recovery.
//
//                       +-> [ring] -> worker 0 --cut--> coordinator
//   packets -> router --+-> [ring] -> worker 1 --cut-->    |
//              (epoch barriers)                         restore on crash
//
// Same flow-affinity sharding contract as ShardedMonitor (one router
// thread, one worker per shard, batched SPSC handoff, bounded backpressure
// with shedding), plus a recovery layer that survives worker crashes
// without losing the whole measurement window:
//
//   * The router injects *epoch barrier* markers into each shard's stream
//     (every N delivered packets and/or T virtual seconds — see
//     CheckpointPolicy). A marker is an in-band quiesce point: when the
//     worker pops it, everything before it has been processed, so the
//     monitor is consistent with a well-defined replay cursor and the
//     worker cuts a CheckpointImage and commits it — together with the
//     samples emitted since the last commit — to the CheckpointCoordinator.
//
//   * The router watches worker health while delivering: a worker that
//     exited early (kill fault / crash-turned-clean-exit) is detected by
//     its dead flag; a worker whose packets_done heartbeat stays frozen
//     through hang_detection_ns of backpressure is declared hung and
//     force-detached (its ring is unsalvageable — the zombie may still pop
//     from it — so undelivered packets are accounted `abandoned`).
//
//   * Recovery rehydrates a fresh monitor from the last committed image,
//     fast-forwards the shard's input from the checkpoint cursor (a dead
//     worker's unconsumed ring content and parked batch are requeued to the
//     successor in FIFO order — `replayed_after_restore`), applies a linear
//     restart backoff, and is bounded by `restart_budget` restarts per
//     shard; exceeding the budget tombstones the shard, which degrades to
//     the shed path (stats salvaged from the last committed image, all
//     further input shed and accounted).
//
// The crash window is exact: packets a dead worker processed after its
// last committed cut — and only those — are `lost_to_crash`, and the
// extended identity
//
//     processed + shed + abandoned + lost_to_crash == routed
//
// holds per shard and merged, under any number of crashes. With barriers
// flowing, the loss window is bounded by the checkpoint cadence; a kill
// landing exactly on a barrier loses nothing.
//
// Determinism: kill points, barrier cursors, lost_to_crash, and the final
// processed/sample totals are functions of the (trace, seed, plan) alone.
// Only replayed_after_restore and the backpressure counters depend on
// timing (how much the router managed to enqueue before noticing).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "analytics/sample_log.hpp"
#include "common/packet.hpp"
#include "common/thread_annotations.hpp"
#include "core/config.hpp"
#include "core/rtt_sample.hpp"
#include "core/stats.hpp"
#include "runtime/checkpoint_coordinator.hpp"
#include "runtime/overload_policy.hpp"
#include "runtime/replay_monitor.hpp"
#include "runtime/shard_router.hpp"
#include "runtime/spsc_ring.hpp"

#if defined(DART_TELEMETRY)
namespace dart::telemetry {
struct RuntimeMetrics;
}  // namespace dart::telemetry
#endif

namespace dart::runtime {

#if defined(DART_FAULT_INJECTION)
class FaultPlan;
#endif

struct SupervisorConfig {
  std::uint32_t shards = 1;
  std::size_t batch_size = 256;
  std::size_t queue_batches = 64;
  std::uint64_t route_seed = 0xDA27'0002;
  OverloadPolicy overload;

  /// Workers process dequeued batches via ReplayMonitor::process_batch
  /// (the batched SoA fast path); false forces the per-packet loop. See
  /// ShardedConfig::batched_workers. Barrier markers are separate ring
  /// entries, so checkpoint placement is identical in both modes: a batch
  /// is always processed whole on one side of a barrier.
  bool batched_workers = true;

  /// Per-worker shutdown join bound (0 = wait forever), as in
  /// ShardedConfig. A worker that misses it at finish() is abandoned; its
  /// stats are salvaged from its last committed checkpoint.
  std::uint64_t join_timeout_ns = 30'000'000'000ULL;  // 30 s

  /// Barrier cadence. Disabled (the default) means no checkpoints are ever
  /// cut: recovery still restarts crashed workers, but from empty state,
  /// and the whole pre-crash window counts as lost.
  CheckpointPolicy checkpoint;

  /// Restarts each shard may consume before it is tombstoned (degraded to
  /// the shed path for the rest of the run).
  std::uint32_t restart_budget = 3;

  /// Linear restart backoff: restart #k sleeps k * restart_backoff_ns
  /// before the replacement worker starts (0 = none).
  std::uint64_t restart_backoff_ns = 0;

  /// A worker whose heartbeat makes no progress for this long while the
  /// router is backpressured on its full ring is declared hung and
  /// force-detached. 0 disables hang detection (hangs then surface at
  /// finish() via join_timeout_ns).
  std::uint64_t hang_detection_ns = 2'000'000'000ULL;  // 2 s

#if defined(DART_FAULT_INJECTION)
  /// Fault-injection hooks (chaos suite); must outlive the supervisor.
  /// Hooks apply to packet batches only — barrier markers commit even at a
  /// kill point, which is what makes kill-at-barrier lossless.
  FaultPlan* faults = nullptr;
#endif

#if defined(DART_TELEMETRY)
  /// Standard metric families to instrument (see ShardedConfig::telemetry);
  /// must outlive every worker. nullptr runs uninstrumented.
  telemetry::RuntimeMetrics* telemetry = nullptr;
#endif
};

class ShardSupervisor {
 public:
  ShardSupervisor(const SupervisorConfig& config, MonitorFactory factory);

  /// Every shard runs a private DartMonitor with this config (checkpoint
  /// support included).
  ShardSupervisor(const SupervisorConfig& config,
                  const core::DartConfig& dart_config);

  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Route one packet (caller thread only, monitor arrival order).
  void process(const PacketRecord& packet);
  void process_all(std::span<const PacketRecord> packets);

  /// Flush, run end-of-input recovery (a worker that dies while draining is
  /// still restarted and its backlog replayed), join everyone, assemble
  /// results. Idempotent.
  void finish();

  std::uint32_t shards() const { return router_.shards(); }
  const SupervisorConfig& config() const { return config_; }

  /// Per-shard / merged counters; valid only after finish(). Shards that
  /// ended tombstoned or abandoned report the stats of their last committed
  /// checkpoint (zeros if none) plus the router-side RuntimeHealth.
  core::DartStats shard_stats(std::uint32_t shard) const;
  core::DartStats merged_stats() const;
  core::RuntimeHealth health() const;

  /// All *committed* samples in canonical sample_less order; valid only
  /// after finish(). Samples a crashed worker emitted after its last
  /// commit are part of the loss window and absent by design.
  std::vector<core::RttSample> merged_samples() const;

  /// Committed checkpoint images cut across the run.
  std::uint64_t checkpoints_cut() const {
    return coordinator_.total_checkpoints_cut();
  }

  const CheckpointCoordinator& coordinator() const { return coordinator_; }

  /// Wait for force-detached workers (hung, later released) to exit.
  /// Valid only after finish(); true when none remain running.
  bool await_detached(std::uint64_t timeout_ns) const;

 private:
  using PacketBatch = std::vector<PacketRecord>;

  /// One ring entry: either a packet batch or an epoch barrier marker.
  struct Work {
    PacketBatch batch;
    bool marker = false;
    std::uint64_t epoch = 0;
    std::uint64_t cursor = 0;  ///< shard packets delivered before this point
  };

  /// One worker lifetime. Each restart builds a fresh Incarnation — ring
  /// included, because a hung predecessor may still pop from its own ring.
  /// shared_ptr keepalive as in ShardedMonitor: a detached zombie that
  /// wakes up later only ever touches its own, still-live Incarnation.
  struct Incarnation {
    explicit Incarnation(std::size_t queue_batches) : queue(queue_batches) {}

    SpscRing<Work> queue;
    // Published to the worker by thread creation; published back to the
    // supervisor by the exited release-store (acquired via join or an
    // exited load). pending/limbo are additionally read by the supervisor
    // after wait_exited() proves the worker is gone.
    std::unique_ptr<ReplayMonitor> monitor DART_PUBLISHED_BY(exited);
    std::vector<core::RttSample> pending DART_PUBLISHED_BY(exited);
    core::DartStats final_stats DART_PUBLISHED_BY(exited);
    std::thread thread;
    std::uint32_t shard = 0;
    bool batched = true;            ///< worker-loop mode, from the config
    std::uint64_t id = 0;           ///< coordinator incarnation id
    std::uint64_t base_cursor = 0;  ///< shard-stream position at start
    CheckpointCoordinator* coordinator = nullptr;
    /// Popped-unprocessed work parked at a kill.
    std::vector<Work> limbo DART_PUBLISHED_BY(exited);

    /// Heartbeat: shard-stream packets processed by *this* incarnation.
    /// base_cursor + packets_done is the incarnation's absolute frontier.
    std::atomic<std::uint64_t> packets_done{0};
    std::atomic<bool> input_done{false};
    std::atomic<bool> dead{false};    ///< exited early (kill fault)
    std::atomic<bool> exited{false};  ///< worker loop finished (all paths)

#if defined(DART_FAULT_INJECTION)
    FaultPlan* faults = nullptr;
    std::uint64_t batches_done = 0;  ///< hook clock, incarnation-local
#endif
#if defined(DART_TELEMETRY)
    telemetry::RuntimeMetrics* metrics = nullptr;  ///< worker-read, may be null
#endif
  };

  struct Shard {
    std::uint32_t index = 0;
    std::shared_ptr<Incarnation> inc;  ///< current owner; null once tombstoned
    std::vector<std::shared_ptr<Incarnation>> detached;  ///< hung zombies
    PacketBatch pending;               ///< router-side accumulation
    std::uint64_t routed = 0;          ///< handed to flush (incl. later shed)
    std::uint64_t delivered = 0;       ///< pushed into the pipeline
    std::uint64_t epoch = 0;
    std::uint64_t last_barrier_delivered = 0;
    std::uint64_t last_barrier_ts = 0;
    bool barrier_ts_armed = false;
    std::uint64_t last_ts = 0;
    std::uint32_t restarts = 0;
    bool tombstoned = false;
    bool abandoned_at_shutdown = false;
    core::DartStats salvage_stats;  ///< from the last image, for dead ends
    core::RuntimeHealth health;     ///< router-side accounting
    core::DartStats result;         ///< assembled by finish()

    // Heartbeat tracking for hang detection (router-side).
    std::uint64_t hb_incarnation = 0;
    std::uint64_t hb_done = 0;
    std::uint64_t hb_since_ns = 0;
    bool hb_armed = false;
  };

  /// Launch a fresh incarnation (claiming coordinator ownership); returns
  /// whether `image` was successfully restored into its monitor.
  bool start(Shard& shard, std::uint64_t base_cursor,
             const core::CheckpointImage* image);
  void flush_shard(Shard& shard);
  void maybe_barrier(Shard& shard);
  void deliver(Shard& shard, Work&& work);
  void requeue(Shard& shard, std::vector<Work>&& carryover);
  void shed_work(Shard& shard, const Work& work);
  void recover_dead(Shard& shard);
  void recover_hung(Shard& shard);
  void tombstone(Shard& shard, std::vector<Work>&& carryover);
  void account_crash_window(Shard& shard, std::uint64_t base,
                            std::uint64_t frontier,
                            std::uint64_t restored_cursor);
  bool wait_exited(const Incarnation& inc, std::uint64_t timeout_ns) const;
  static void worker_loop(Incarnation& inc);
  static void commit_barrier(Incarnation& inc, const Work& marker);

  SupervisorConfig config_;
  MonitorFactory factory_;
  ShardRouter router_;
  CheckpointCoordinator coordinator_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool finished_ = false;
};

}  // namespace dart::runtime
