#include "runtime/fault_injection.hpp"

#include <chrono>
#include <thread>

#include "common/hashing.hpp"

namespace dart::runtime {

FaultPlan::ShardFaults& FaultPlan::shard_faults(std::uint32_t shard) {
  if (shards_.size() <= shard) {
    while (shards_.size() <= shard) {
      auto& state = shards_.emplace_back();
      state.jitter_rng =
          Rng{mix64(seed_ ^ (0x9E3779B97F4A7C15ULL *
                             (static_cast<std::uint64_t>(shards_.size()))))};
    }
  }
  return shards_[shard];
}

FaultPlan& FaultPlan::stall(std::uint32_t shard, std::uint64_t first_batch,
                            std::uint64_t batches, std::uint64_t delay_ns) {
  ShardFaults& state = shard_faults(shard);
  state.stall_first = first_batch;
  state.stall_count = batches;
  state.stall_delay_ns = delay_ns;
  return *this;
}

FaultPlan& FaultPlan::kill(std::uint32_t shard, std::uint64_t after_batches,
                           std::uint64_t times) {
  ShardFaults& state = shard_faults(shard);
  state.kill_after = after_batches;
  state.kill_times = times;
  return *this;
}

FaultPlan& FaultPlan::hang(std::uint32_t shard, std::uint64_t at_batch) {
  shard_faults(shard).hang_at = at_batch;
  return *this;
}

FaultPlan& FaultPlan::jitter(std::uint32_t shard,
                             std::uint64_t max_delay_ns) {
  shard_faults(shard).jitter_max_ns = max_delay_ns;
  return *this;
}

FaultPlan& FaultPlan::exporter_kill(std::uint64_t after_frames) {
  exporter_.kill_after = after_frames;
  return *this;
}

FaultPlan& FaultPlan::exporter_stall(std::uint64_t first_frame,
                                     std::uint64_t frames,
                                     std::uint64_t delay_ns) {
  exporter_.stall_first = first_frame;
  exporter_.stall_count = frames;
  exporter_.stall_delay_ns = delay_ns;
  return *this;
}

FaultPlan& FaultPlan::exporter_truncate(std::uint64_t sequence,
                                        std::uint64_t keep_bytes) {
  exporter_.truncate.emplace_back(sequence, keep_bytes);
  return *this;
}

FaultPlan& FaultPlan::exporter_duplicate(std::uint64_t sequence) {
  exporter_.duplicate.push_back(sequence);
  return *this;
}

FaultPlan& FaultPlan::exporter_reorder(std::uint64_t sequence) {
  exporter_.reorder.push_back(sequence);
  return *this;
}

FaultPlan& FaultPlan::exporter_epoch_skew(std::int64_t offset,
                                          std::int64_t drift_per_epoch,
                                          std::uint64_t lag) {
  exporter_.has_skew = true;
  exporter_.skew_offset = offset;
  exporter_.skew_drift = drift_per_epoch;
  exporter_.skew_lag = lag;
  return *this;
}

FaultPlan::Action FaultPlan::exporter_before_publish(
    std::uint64_t frames_published) {
  if (frames_published >= exporter_.kill_after) {
    return Action::kExit;
  }
  if (frames_published >= exporter_.stall_first &&
      frames_published - exporter_.stall_first < exporter_.stall_count &&
      exporter_.stall_delay_ns > 0) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(exporter_.stall_delay_ns));
  }
  return Action::kContinue;
}

bool FaultPlan::exporter_truncate_bytes(std::uint64_t sequence,
                                        std::uint64_t* keep_bytes) const {
  for (const auto& [seq, keep] : exporter_.truncate) {
    if (seq == sequence) {
      *keep_bytes = keep;
      return true;
    }
  }
  return false;
}

bool FaultPlan::exporter_duplicate_frame(std::uint64_t sequence) const {
  for (const std::uint64_t seq : exporter_.duplicate) {
    if (seq == sequence) return true;
  }
  return false;
}

bool FaultPlan::exporter_hold_frame(std::uint64_t sequence) const {
  for (const std::uint64_t seq : exporter_.reorder) {
    if (seq == sequence) return true;
  }
  return false;
}

bool FaultPlan::exporter_skewed_epoch(std::uint64_t epoch,
                                      std::uint64_t* skewed) const {
  if (!exporter_.has_skew) return false;
  // Signed arithmetic so offset/drift can run the clock backwards; a skew
  // that would underflow epoch 0 clamps there (epochs are unsigned on the
  // wire).
  long long value = static_cast<long long>(epoch);
  value += exporter_.skew_offset;
  value += exporter_.skew_drift * static_cast<long long>(epoch);
  value -= static_cast<long long>(exporter_.skew_lag);
  *skewed = value < 0 ? 0 : static_cast<std::uint64_t>(value);
  return true;
}

FaultPlan::Action FaultPlan::before_pop(std::uint32_t shard,
                                        std::uint64_t batches_done) {
  if (shard >= shards_.size()) return Action::kContinue;
  ShardFaults& state = shards_[shard];
  if (batches_done >= state.hang_at) {
    // hang_fired lives under the hang mutex: with a supervised runtime the
    // blocked zombie and its restarted successor exist concurrently, and
    // both reach this check.
    common::UniqueLock lock(hang_mutex_);
    if (!state.hang_fired) {
      state.hang_fired = true;  // one-shot: after release the worker resumes
      // Explicit loop, not the predicate overload: the analysis cannot see
      // into a predicate lambda, but it tracks the capability as held
      // across wait(), so the guarded read below checks cleanly.
      while (!hangs_released_) hang_cv_.wait(lock);
    }
  }
  if (batches_done >= state.kill_after &&
      state.kills_fired < state.kill_times) {
    ++state.kills_fired;
    return Action::kExit;
  }
  return Action::kContinue;
}

void FaultPlan::after_pop(std::uint32_t shard, std::uint64_t batch_index) {
  if (shard >= shards_.size()) return;
  ShardFaults& state = shards_[shard];
  std::uint64_t delay_ns = 0;
  if (batch_index >= state.stall_first &&
      batch_index - state.stall_first < state.stall_count) {
    delay_ns += state.stall_delay_ns;
  }
  if (state.jitter_max_ns > 0) {
    delay_ns += state.jitter_rng.uniform_int(0, state.jitter_max_ns - 1);
  }
  if (delay_ns > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(delay_ns));
  }
}

void FaultPlan::release_hangs() {
  {
    const common::MutexLock lock(hang_mutex_);
    hangs_released_ = true;
  }
  hang_cv_.notify_all();
}

bool FaultPlan::hangs_released() const {
  const common::MutexLock lock(hang_mutex_);
  return hangs_released_;
}

void inject_timestamp_skew(std::vector<PacketRecord>& packets,
                           std::uint64_t seed, std::uint64_t max_skew_ns) {
  if (max_skew_ns == 0) return;
  Rng rng(mix64(seed ^ 0xC0FF'EE5E'ED00ULL));
  for (PacketRecord& packet : packets) {
    const std::uint64_t magnitude = rng.uniform_int(0, max_skew_ns);
    if (rng.bernoulli(0.5)) {
      packet.ts += magnitude;
    } else {
      packet.ts -= std::min(packet.ts, magnitude);
    }
  }
}

}  // namespace dart::runtime
