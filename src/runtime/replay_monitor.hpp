// The per-shard monitor interface of the sharded replay runtime.
//
// Each worker thread owns one ReplayMonitor and is its only caller, so
// implementations need no internal synchronization — the runtime provides
// the happens-before edges (queue publication on the way in, thread join on
// the way out). DartMonitor is the primary implementation; any baseline
// monitor with a `process(const PacketRecord&)` member fits behind
// `BasicReplayMonitor` so differential runs can shard baselines too.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <utility>

#include "common/packet.hpp"
#include "core/dart_monitor.hpp"
#include "core/rtt_sample.hpp"
#include "core/stats.hpp"

namespace dart::runtime {

class ReplayMonitor {
 public:
  virtual ~ReplayMonitor() = default;

  /// Process one packet of this shard's stream, in arrival order.
  virtual void process(const PacketRecord& packet) = 0;

  /// Process a whole dequeued ring batch, in arrival order. The default
  /// forwards to process() one packet at a time so existing monitors keep
  /// working unchanged; DartReplayMonitor overrides it with DartMonitor's
  /// batched SoA fast path. An override must be observably identical to
  /// the scalar loop — the batch differential suite holds the two worker
  /// modes to identical merged stats, samples, and snapshots.
  virtual void process_batch(std::span<const PacketRecord> packets) {
    for (const PacketRecord& packet : packets) process(packet);
  }

  /// Counters to fold into the run's merged statistics. Implementations
  /// without Dart-shaped counters may return a default-constructed value.
  virtual core::DartStats stats() const = 0;

  /// Checkpoint support (the supervised runtime's crash-recovery path).
  /// A monitor that opts in must make snapshot()/restore() a faithful
  /// round-trip of its entire measurement state; the default opts out, and
  /// the supervisor then restarts such shards from empty state (barrier-
  /// committed samples are still salvaged).
  virtual bool supports_checkpoint() const { return false; }
  virtual core::CheckpointImage snapshot(const core::SnapshotMeta&) const {
    return {};
  }
  virtual core::CheckpointError restore(const core::CheckpointImage&) {
    return core::CheckpointError::at(core::CheckpointErrorCode::kUnsupported,
                                     0);
  }
};

/// Builds the monitor for shard `shard`; samples must be forwarded to
/// `on_sample` (the runtime routes them into that shard's log).
using MonitorFactory = std::function<std::unique_ptr<ReplayMonitor>(
    std::uint32_t shard, core::SampleCallback on_sample)>;

/// DartMonitor behind the shard interface.
class DartReplayMonitor : public ReplayMonitor {
 public:
  DartReplayMonitor(const core::DartConfig& config,
                    core::SampleCallback on_sample)
      : monitor_(config, std::move(on_sample)) {}

  void process(const PacketRecord& packet) override {
    monitor_.process(packet);
  }
  void process_batch(std::span<const PacketRecord> packets) override {
    monitor_.process_batch(packets);
  }
  core::DartStats stats() const override { return monitor_.stats(); }

  bool supports_checkpoint() const override { return true; }
  core::CheckpointImage snapshot(const core::SnapshotMeta& meta) const override {
    return monitor_.snapshot(meta);
  }
  core::CheckpointError restore(const core::CheckpointImage& image) override {
    return monitor_.restore(image);
  }

  core::DartMonitor& monitor() { return monitor_; }
  const core::DartMonitor& monitor() const { return monitor_; }

 private:
  core::DartMonitor monitor_;
};

/// Every shard runs a private DartMonitor built from the same config.
inline MonitorFactory dart_factory(const core::DartConfig& config) {
  return [config](std::uint32_t /*shard*/, core::SampleCallback on_sample) {
    return std::make_unique<DartReplayMonitor>(config, std::move(on_sample));
  };
}

/// Adapter for baseline monitors (TcpTrace, Strawman, DapperLike, ...):
/// any type with `process(const PacketRecord&)` works. Construct with a
/// ready-made instance whose sample callback is already wired:
///
///   ShardedMonitor sharded(cfg, [](std::uint32_t, core::SampleCallback cb) {
///     return make_basic_replay_monitor(
///         baseline::Strawman(sm_config, std::move(cb)));
///   });
template <typename M>
class BasicReplayMonitor : public ReplayMonitor {
 public:
  explicit BasicReplayMonitor(M monitor) : monitor_(std::move(monitor)) {}

  void process(const PacketRecord& packet) override {
    monitor_.process(packet);
  }
  core::DartStats stats() const override { return {}; }

  M& monitor() { return monitor_; }
  const M& monitor() const { return monitor_; }

 private:
  M monitor_;
};

template <typename M>
std::unique_ptr<ReplayMonitor> make_basic_replay_monitor(M monitor) {
  return std::make_unique<BasicReplayMonitor<M>>(std::move(monitor));
}

}  // namespace dart::runtime
