// Bounded single-producer/single-consumer ring queue.
//
// The handoff primitive of the sharded replay runtime: the router thread is
// the only producer and each shard worker the only consumer of its queue, so
// a wait-free SPSC ring with acquire/release publication suffices — no locks
// and no CAS loops on the hot path. Slots hold whole packet *batches*
// (vectors), so one push/pop pair amortizes the synchronization cost over
// ~256 packets.
//
// The implementation is the classic Lamport ring with cached indices: the
// producer re-reads the consumer index only when the ring looks full, and
// vice versa, keeping most operations free of cross-core traffic (the same
// structure as folly::ProducerConsumerQueue or DPDK's rte_ring SP/SC mode).
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"

namespace dart::runtime {

// A fixed 64 rather than std::hardware_destructive_interference_size: the
// standard constant is ABI-unstable across -mtune settings (GCC warns on
// every use) and 64 is the destructive-interference size on every platform
// this targets.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  /// Largest capacity a ring will allocate. Requests beyond it are clamped,
  /// not honored: the rounding loop below would otherwise overflow the
  /// power-of-two accumulator to zero and spin forever on huge requests
  /// (and any such request is a caller bug — this runtime sizes rings in
  /// batches, thousands at most). 2^20 slots of batch pointers is already
  /// far past any useful backlog.
  static constexpr std::size_t kMaxCapacity = std::size_t{1} << 20;

  /// `capacity` is rounded up to a power of two (minimum 2, maximum
  /// kMaxCapacity) so index wrapping is a mask, not a modulo.
  explicit SpscRing(std::size_t capacity) {
    if (capacity > kMaxCapacity) capacity = kMaxCapacity;
    std::size_t rounded = 2;
    while (rounded < capacity) rounded <<= 1;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when the ring is full (the caller applies
  /// backpressure — in this runtime, by yielding and retrying).
  bool try_push(T&& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Approximate (racy) occupancy — for monitoring only.
  std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return head - tail;
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  // A slot's contents cross threads only through the index release-stores:
  // the producer's head_ release publishes the slot it just wrote and the
  // consumer's matching acquire load makes it visible (and symmetrically
  // tail_ hands the emptied slot back). The cached indices never cross
  // threads at all.
  std::vector<T> slots_ DART_PUBLISHED_BY(head_ /* and reclaimed by tail_ */);
  std::size_t mask_ = 0;

  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // next write
  alignas(kCacheLine) std::size_t cached_tail_ = 0;       // producer-private
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // next read
  alignas(kCacheLine) std::size_t cached_head_ = 0;       // consumer-private
};

}  // namespace dart::runtime
