#include "runtime/shard_router.hpp"

#include "common/hashing.hpp"

namespace dart::runtime {

ShardRouter::ShardRouter(std::uint32_t shards, std::uint64_t seed)
    : shards_(shards == 0 ? 1 : shards), seed_(seed) {}

std::uint32_t ShardRouter::route(const FourTuple& tuple) const {
  if (shards_ == 1) return 0;
  const std::uint64_t h = mix64(hash_tuple(tuple.canonical()) ^ seed_);
  return static_cast<std::uint32_t>(h % shards_);
}

}  // namespace dart::runtime
