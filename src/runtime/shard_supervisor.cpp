#include "runtime/shard_supervisor.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "core/config_check.hpp"

#if defined(DART_FAULT_INJECTION)
#include "runtime/fault_injection.hpp"
#endif

#if defined(DART_TELEMETRY)
#include "telemetry/runtime_metrics.hpp"
#endif

namespace dart::runtime {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ShardSupervisor::ShardSupervisor(const SupervisorConfig& config,
                                 MonitorFactory factory)
    : config_(config),
      factory_(std::move(factory)),
      router_(config.shards == 0 ? 1 : config.shards, config.route_seed),
      coordinator_(config.shards == 0 ? 1 : config.shards) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.queue_batches == 0) config_.queue_batches = 1;
  shards_.reserve(config_.shards);
  for (std::uint32_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->pending.reserve(config_.batch_size);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) start(*shard, 0, nullptr);
}

ShardSupervisor::ShardSupervisor(const SupervisorConfig& config,
                                 const core::DartConfig& dart_config)
    : ShardSupervisor(config,
                      dart_factory(core::ensure_feasible(dart_config))) {}

ShardSupervisor::~ShardSupervisor() { finish(); }

bool ShardSupervisor::start(Shard& shard, std::uint64_t base_cursor,
                            const core::CheckpointImage* image) {
  auto inc = std::make_shared<Incarnation>(config_.queue_batches);
  inc->shard = shard.index;
  inc->batched = config_.batched_workers;
  // Taking ownership here is the fence: any commit still in flight from a
  // predecessor (or a released zombie) is rejected from this instant.
  inc->id = coordinator_.begin_incarnation(shard.index);
  inc->base_cursor = base_cursor;
  inc->coordinator = &coordinator_;
#if defined(DART_FAULT_INJECTION)
  inc->faults = config_.faults;
#endif
#if defined(DART_TELEMETRY)
  inc->metrics = config_.telemetry;
#endif
  Incarnation* raw = inc.get();
  inc->monitor = factory_(shard.index, [raw](const core::RttSample& sample) {
    raw->pending.push_back(sample);
  });
  bool restored = false;
  if (image != nullptr && inc->monitor->supports_checkpoint()) {
    restored = !inc->monitor->restore(*image);
  }
  inc->thread =
      std::thread([keepalive = inc] { worker_loop(*keepalive); });
  shard.inc = std::move(inc);
  shard.hb_armed = false;
  return restored;
}

// ---------------------------------------------------------------------------
// Worker side.

void ShardSupervisor::commit_barrier(Incarnation& inc, const Work& marker) {
  // The marker is an in-band quiesce point: every packet delivered before it
  // has been processed, so the monitor state *is* the state at stream
  // position marker.cursor.
  assert(inc.base_cursor +
             inc.packets_done.load(std::memory_order_relaxed) ==
         marker.cursor);
  core::SnapshotMeta meta;
  meta.epoch = marker.epoch;
  meta.cursor = marker.cursor;
  meta.sample_cursor = inc.monitor->stats().samples;
  core::CheckpointImage image;
  if (inc.monitor->supports_checkpoint()) image = inc.monitor->snapshot(meta);
  std::vector<core::RttSample> samples = std::move(inc.pending);
  inc.pending.clear();
#if defined(DART_TELEMETRY)
  const auto commit_start = inc.metrics != nullptr
                                ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
#endif
  // Fenced: a zombie's commit is rejected and its samples discarded — they
  // belong to a window already written off as lost.
  const bool accepted = inc.coordinator->commit(
      inc.shard, inc.id, std::move(image), meta, std::move(samples));
#if defined(DART_TELEMETRY)
  if (inc.metrics != nullptr) {
    const auto elapsed = std::chrono::steady_clock::now() - commit_start;
    inc.metrics->commit_latency->at(0).observe(static_cast<Timestamp>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
    if (accepted) {
      inc.metrics->checkpoint_commits->at(inc.shard).inc();
    } else {
      inc.metrics->checkpoint_rejected->at(inc.shard).inc();
    }
  }
#else
  (void)accepted;
#endif
}

void ShardSupervisor::worker_loop(Incarnation& inc) {
  Work work;
  bool done_seen = false;
  for (;;) {
    if (inc.queue.try_pop(work)) {
      if (work.marker) {
        commit_barrier(inc, work);
        continue;
      }
#if defined(DART_FAULT_INJECTION)
      if (inc.faults != nullptr) {
        if (inc.faults->before_pop(inc.shard, inc.batches_done) ==
            FaultPlan::Action::kExit) {
          // Park the popped-but-unprocessed batch for the successor: a kill
          // loses only processed-uncommitted state, never in-flight input —
          // which is why a kill landing on a barrier loses nothing at all.
          inc.limbo.push_back(std::move(work));
          inc.dead.store(true, std::memory_order_release);
          break;
        }
        inc.faults->after_pop(inc.shard, inc.batches_done);
      }
#endif
#if defined(DART_TELEMETRY)
      const auto batch_start = inc.metrics != nullptr
                                   ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
#endif
      if (inc.batched) {
        inc.monitor->process_batch(work.batch);
      } else {
        for (const PacketRecord& packet : work.batch) {
          inc.monitor->process(packet);
        }
      }
      inc.packets_done.fetch_add(work.batch.size(),
                                 std::memory_order_release);
#if defined(DART_TELEMETRY)
      if (inc.metrics != nullptr) {
        const auto elapsed =
            std::chrono::steady_clock::now() - batch_start;
        inc.metrics->batch_latency->at(inc.shard).observe(
            static_cast<Timestamp>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                    .count()));
        inc.metrics->batch_fill->at(inc.shard).observe(
            static_cast<Timestamp>(work.batch.size()));
        inc.metrics->worker_batches->at(inc.shard).inc();
        inc.metrics->worker_packets->at(inc.shard).inc(work.batch.size());
      }
#endif
#if defined(DART_FAULT_INJECTION)
      ++inc.batches_done;
#endif
      work.batch.clear();
      continue;
    }
    if (done_seen) break;
    if (inc.input_done.load(std::memory_order_acquire)) {
      done_seen = true;
      continue;  // one more pass drains anything pushed before the flag
    }
    std::this_thread::yield();
  }
  if (!inc.dead.load(std::memory_order_relaxed)) {
    // Clean end of input: commit the trailing samples (fenced, so a
    // released zombie draining its abandoned ring commits nothing).
    inc.coordinator->commit_samples(inc.shard, inc.id,
                                    std::move(inc.pending));
    inc.pending.clear();
  }
  inc.final_stats = inc.monitor->stats();
  inc.exited.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Router side: delivery, barriers, health watching.

void ShardSupervisor::process(const PacketRecord& packet) {
  assert(!finished_ && "process() after finish()");
  Shard& shard = *shards_[router_.route(packet.tuple)];
  shard.last_ts = packet.ts;
  if (!shard.barrier_ts_armed) {
    shard.barrier_ts_armed = true;
    shard.last_barrier_ts = packet.ts;
  }
  shard.pending.push_back(packet);
  if (shard.pending.size() >= config_.batch_size) flush_shard(shard);
  maybe_barrier(shard);
}

void ShardSupervisor::process_all(std::span<const PacketRecord> packets) {
  for (const PacketRecord& packet : packets) process(packet);
}

void ShardSupervisor::flush_shard(Shard& shard) {
  if (shard.pending.empty()) return;
  Work work;
  work.batch = std::move(shard.pending);
  shard.pending.clear();  // moved-from: restore a defined empty state
  shard.pending.reserve(config_.batch_size);
  shard.routed += work.batch.size();
  deliver(shard, std::move(work));
}

void ShardSupervisor::maybe_barrier(Shard& shard) {
  if (!config_.checkpoint.enabled() || shard.tombstoned) return;
  const std::uint64_t since_packets = shard.delivered +
                                      shard.pending.size() -
                                      shard.last_barrier_delivered;
  const bool packets_due = config_.checkpoint.interval_packets != 0 &&
                           since_packets >=
                               config_.checkpoint.interval_packets;
  const bool vtime_due = config_.checkpoint.interval_vtime_ns != 0 &&
                         shard.barrier_ts_armed &&
                         shard.last_ts - shard.last_barrier_ts >=
                             config_.checkpoint.interval_vtime_ns;
  if (!packets_due && !vtime_due) return;
  // Epoch barrier: everything routed so far goes in front of the marker,
  // so the marker's cursor is exactly the shard stream position it cuts.
  flush_shard(shard);
  Work marker;
  marker.marker = true;
  marker.epoch = ++shard.epoch;
  marker.cursor = shard.delivered;
  shard.last_barrier_delivered = shard.delivered;
  shard.last_barrier_ts = shard.last_ts;
  deliver(shard, std::move(marker));
}

void ShardSupervisor::shed_work(Shard& shard, const Work& work) {
  if (work.marker) return;  // a skipped barrier sheds no coverage
  ++shard.health.shed_batches;
  shard.health.shed_packets += work.batch.size();
}

void ShardSupervisor::deliver(Shard& shard, Work&& work) {
  const std::uint64_t packets = work.batch.size();
  OverloadGovernor governor(config_.overload);
  bool contended = false;
#if defined(DART_TELEMETRY)
  telemetry::RuntimeMetrics* const tm = config_.telemetry;
  bool backoff_counted = false;
#endif
  for (;;) {
    if (shard.tombstoned) {
      shed_work(shard, work);
      return;
    }
    Incarnation& inc = *shard.inc;
    if (inc.dead.load(std::memory_order_acquire)) {
      recover_dead(shard);
      continue;
    }
    if (inc.queue.try_push(std::move(work))) {
      shard.delivered += packets;
#if defined(DART_TELEMETRY)
      if (tm != nullptr) {
        tm->ring_occupancy->at(shard.index)
            .set(static_cast<std::int64_t>(inc.queue.size_approx()));
      }
#endif
      return;
    }
    if (!contended) {
      contended = true;
      ++shard.health.backpressure_events;
    }
    // Hang detection: the heartbeat only matters while we are backpressured
    // — an idle worker's frozen counter just means an empty ring.
    if (config_.hang_detection_ns != 0) {
      const std::uint64_t done =
          inc.packets_done.load(std::memory_order_acquire);
      const std::uint64_t now = now_ns();
      if (!shard.hb_armed || shard.hb_incarnation != inc.id ||
          shard.hb_done != done) {
        shard.hb_armed = true;
        shard.hb_incarnation = inc.id;
        shard.hb_done = done;
        shard.hb_since_ns = now;
      } else if (now - shard.hb_since_ns >= config_.hang_detection_ns) {
        recover_hung(shard);
        continue;
      }
    }
    const OverloadDecision decision = governor.next();
    if (decision.action == OverloadAction::kShed) {
#if defined(DART_TELEMETRY)
      if (tm != nullptr) tm->governor_sheds->at(shard.index).inc();
#endif
      shed_work(shard, work);
      return;
    }
    if (decision.action == OverloadAction::kSleep) {
      ++shard.health.backoff_sleeps;
#if defined(DART_TELEMETRY)
      if (tm != nullptr) {
        tm->backpressure_sleeps->at(shard.index).inc();
        if (!backoff_counted) {
          backoff_counted = true;  // ladder transition, not per-sleep
          tm->governor_backoffs->at(shard.index).inc();
        }
      }
#endif
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(decision.sleep_ns));
    } else {
      std::this_thread::yield();
    }
  }
}

void ShardSupervisor::requeue(Shard& shard, std::vector<Work>&& carryover) {
  // Redeliver a dead predecessor's unconsumed input to the successor, in
  // FIFO order, ahead of anything the router routes next (recovery runs
  // synchronously on the router thread, so nothing can interleave).
  for (Work& work : carryover) {
    const std::uint64_t packets = work.batch.size();
    const bool marker = work.marker;
    for (;;) {
      if (shard.tombstoned) {
        shed_work(shard, work);
        break;
      }
      Incarnation& inc = *shard.inc;
      if (inc.dead.load(std::memory_order_acquire)) {
        // The successor died before swallowing the backlog; recursion is
        // bounded by the restart budget.
        recover_dead(shard);
        continue;
      }
      if (inc.queue.try_push(std::move(work))) {
        if (!marker) shard.health.replayed_after_restore += packets;
        break;
      }
      std::this_thread::yield();
    }
  }
}

// ---------------------------------------------------------------------------
// Recovery.

void ShardSupervisor::account_crash_window(Shard& shard, std::uint64_t base,
                                           std::uint64_t frontier,
                                           std::uint64_t restored_cursor) {
  // The loss window is exactly what the crashed incarnation processed
  // beyond the state its successor resumes from. max() keeps repeated
  // crashes from re-counting a window an earlier crash already lost.
  const std::uint64_t floor = std::max(restored_cursor, base);
  if (frontier > floor) shard.health.lost_to_crash += frontier - floor;
}

void ShardSupervisor::recover_dead(Shard& shard) {
  std::shared_ptr<Incarnation> inc = shard.inc;
  // Fence before touching anything else (symmetry with the hung path; a
  // dead worker has already stopped committing).
  coordinator_.begin_incarnation(shard.index);
  if (inc->thread.joinable()) inc->thread.join();

  // Salvage unconsumed input: the parked limbo batch precedes the ring
  // content in stream order (it was popped first).
  std::vector<Work> carryover = std::move(inc->limbo);
  {
    Work work;
    while (inc->queue.try_pop(work)) carryover.push_back(std::move(work));
  }

  const std::uint64_t frontier =
      inc->base_cursor + inc->packets_done.load(std::memory_order_acquire);
  shard.health.workers_killed += 1;

  core::CheckpointImage image;
  core::SnapshotMeta meta;
  const bool has_image = coordinator_.latest(shard.index, &image, &meta);

  if (shard.restarts >= config_.restart_budget) {
    core::DartStats salvaged;
    const bool ok = has_image && !core::read_stats(image, &salvaged);
    if (ok) shard.salvage_stats = salvaged;
    account_crash_window(shard, inc->base_cursor, frontier,
                         ok ? meta.cursor : 0);
    tombstone(shard, std::move(carryover));
    return;
  }

  ++shard.restarts;
  if (config_.restart_backoff_ns != 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(
        config_.restart_backoff_ns * shard.restarts));
  }
  shard.health.recovered += 1;
  const bool restored =
      start(shard, frontier, has_image ? &image : nullptr);
  account_crash_window(shard, inc->base_cursor, frontier,
                       restored ? meta.cursor : 0);
  requeue(shard, std::move(carryover));
}

void ShardSupervisor::recover_hung(Shard& shard) {
  std::shared_ptr<Incarnation> inc = shard.inc;
  // Fence FIRST: if the zombie wakes between here and the restart, its
  // commit must already be rejected — otherwise it could overwrite the very
  // image the successor is about to restore.
  coordinator_.begin_incarnation(shard.index);
  const std::uint64_t frontier =
      inc->base_cursor + inc->packets_done.load(std::memory_order_acquire);
  shard.health.forced_detaches += 1;

  core::CheckpointImage image;
  core::SnapshotMeta meta;
  const bool has_image = coordinator_.latest(shard.index, &image, &meta);

  // The zombie's ring is unsalvageable (it may still pop from it), so
  // everything delivered beyond its frontier is abandoned, not replayed.
  if (shard.delivered > frontier) {
    shard.health.abandoned_packets += shard.delivered - frontier;
  }

  // Hand the zombie its exit condition for a later wake-up, then abandon
  // it; the keepalive reference keeps its world alive indefinitely.
  inc->input_done.store(true, std::memory_order_release);
  inc->thread.detach();
  shard.detached.push_back(inc);

  if (shard.restarts >= config_.restart_budget) {
    core::DartStats salvaged;
    const bool ok = has_image && !core::read_stats(image, &salvaged);
    if (ok) shard.salvage_stats = salvaged;
    account_crash_window(shard, inc->base_cursor, frontier,
                         ok ? meta.cursor : 0);
    tombstone(shard, {});
    return;
  }

  ++shard.restarts;
  if (config_.restart_backoff_ns != 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(
        config_.restart_backoff_ns * shard.restarts));
  }
  shard.health.recovered += 1;
  const bool restored =
      start(shard, shard.delivered, has_image ? &image : nullptr);
  account_crash_window(shard, inc->base_cursor, frontier,
                       restored ? meta.cursor : 0);
}

void ShardSupervisor::tombstone(Shard& shard,
                                std::vector<Work>&& carryover) {
  // Budget exhausted: degrade to the shed path for the rest of the run.
  // Stats salvage (from the last committed image) is the caller's job —
  // it needs the image anyway for loss accounting.
  shard.tombstoned = true;
  shard.inc.reset();
  for (const Work& work : carryover) shed_work(shard, work);
}

// ---------------------------------------------------------------------------
// Shutdown and results.

bool ShardSupervisor::wait_exited(const Incarnation& inc,
                                  std::uint64_t timeout_ns) const {
  if (timeout_ns == 0) {
    while (!inc.exited.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return true;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(timeout_ns);
  while (!inc.exited.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() >= deadline) {
      // Final re-check: the deadline racing a clean exit must side with
      // the worker.
      return inc.exited.load(std::memory_order_acquire);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return true;
}

void ShardSupervisor::finish() {
  if (finished_) return;
  finished_ = true;
  for (auto& shard : shards_) flush_shard(*shard);
  // Signal everyone first so workers drain in parallel, then reap one by
  // one — restarting any worker that crashes while draining.
  for (auto& shard : shards_) {
    if (shard->inc) {
      shard->inc->input_done.store(true, std::memory_order_release);
    }
  }
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    for (;;) {
      if (shard.tombstoned || !shard.inc) break;
      Incarnation& inc = *shard.inc;
      inc.input_done.store(true, std::memory_order_release);
      if (wait_exited(inc, config_.join_timeout_ns)) {
        inc.thread.join();
        if (inc.dead.load(std::memory_order_acquire)) {
          // Died while draining: restart (or tombstone), replay the
          // backlog, drain again.
          recover_dead(shard);
          continue;
        }
        break;  // clean exit; final_stats and commits are in
      }
      // Wedged past the shutdown budget: account like a hung worker, but
      // start no successor — there is no further input to feed one.
      coordinator_.begin_incarnation(shard.index);
      const std::uint64_t frontier =
          inc.base_cursor +
          inc.packets_done.load(std::memory_order_acquire);
      shard.health.forced_detaches += 1;
      core::CheckpointImage image;
      core::SnapshotMeta meta;
      const bool has_image = coordinator_.latest(shard.index, &image, &meta);
      core::DartStats salvaged;
      const bool ok = has_image && !core::read_stats(image, &salvaged);
      if (ok) shard.salvage_stats = salvaged;
      account_crash_window(shard, inc.base_cursor, frontier,
                           ok ? meta.cursor : 0);
      if (shard.delivered > frontier) {
        shard.health.abandoned_packets += shard.delivered - frontier;
      }
      inc.thread.detach();
      shard.detached.push_back(shard.inc);
      shard.inc.reset();
      shard.abandoned_at_shutdown = true;
      break;
    }
  }
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    if (shard.inc) {
      shard.result = shard.inc->final_stats;
    } else {
      // Tombstoned or abandoned: the last committed checkpoint is the best
      // surviving account of the shard's measurement work.
      shard.result = shard.salvage_stats;
    }
    shard.result.runtime = shard.health;
  }
#if defined(DART_TELEMETRY)
  // Quiesce fold: authoritative counters come from the merged result only
  // (see RuntimeMetrics) — live per-batch counts include crash windows the
  // rollback discarded, so they must never feed this tier.
  if (config_.telemetry != nullptr) {
    for (const auto& shard : shards_) {
      config_.telemetry->fold_authoritative(shard->index, shard->routed,
                                            shard->result);
    }
  }
#endif
}

core::DartStats ShardSupervisor::shard_stats(std::uint32_t shard) const {
  assert(finished_ && "results require finish()");
  return shards_[shard]->result;
}

core::DartStats ShardSupervisor::merged_stats() const {
  assert(finished_ && "results require finish()");
  core::DartStats merged;
  for (const auto& shard : shards_) merged += shard->result;
  return merged;
}

core::RuntimeHealth ShardSupervisor::health() const {
  assert(finished_ && "results require finish()");
  core::RuntimeHealth merged;
  for (const auto& shard : shards_) merged += shard->health;
  return merged;
}

std::vector<core::RttSample> ShardSupervisor::merged_samples() const {
  assert(finished_ && "results require finish()");
  std::vector<core::RttSample> merged;
  for (std::uint32_t i = 0; i < shards(); ++i) {
    std::vector<core::RttSample> committed =
        coordinator_.committed_samples(i);
    merged.insert(merged.end(), committed.begin(), committed.end());
  }
  std::sort(merged.begin(), merged.end(), core::sample_less);
  return merged;
}

bool ShardSupervisor::await_detached(std::uint64_t timeout_ns) const {
  assert(finished_ && "await_detached() requires finish()");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(timeout_ns);
  for (const auto& shard : shards_) {
    for (const auto& inc : shard->detached) {
      while (!inc->exited.load(std::memory_order_acquire)) {
        if (std::chrono::steady_clock::now() >= deadline) return false;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  }
  return true;
}

}  // namespace dart::runtime
