// Epoch-boundary arithmetic for the routed-packet clock.
//
// The sharded router counts routed packets and fires the epoch hook at
// every interval boundary; the fleet collector aligns frames by the same
// cursor arithmetic, and the daemon rotates its query snapshots on it.
// Centralizing the two expressions keeps every consumer agreeing on the
// boundary cases — no hook for a trailing partial epoch, no overflow for
// cursors adjacent to 2^63 — and makes them testable without routing a
// packet (mirrors the collector's cursor-ceiling test).
#pragma once

#include <cstdint>

namespace dart::runtime {

/// Epochs completed after `routed` packets: floor(routed / interval).
/// A trailing partial epoch never counts; interval 0 means "no epochs".
constexpr std::uint64_t epochs_completed(std::uint64_t routed,
                                         std::uint64_t interval) {
  return interval == 0 ? 0 : routed / interval;
}

/// True exactly when packet number `routed` (1-based: the count *after*
/// routing it) closes an epoch — i.e. the hook fires at this packet.
constexpr bool closes_epoch(std::uint64_t routed, std::uint64_t interval) {
  return interval != 0 && routed != 0 && routed % interval == 0;
}

}  // namespace dart::runtime
