// Backpressure / load-shedding policy for the sharded replay runtime.
//
// When a shard's ring is full the router must decide how hard to wait for
// the worker before declaring it sick and shedding the batch. The paper's
// premise (Sections 3.1 and 7) is that a continuous monitor must stay live
// under degenerate traffic; the software analogue is that one stalled
// worker must cost *that shard's coverage*, never the whole pipeline.
//
// The policy escalates in three phases:
//
//   1. spin    — up to `spin_budget` yield-and-retry attempts (covers the
//                common case: the worker is healthy and frees a slot within
//                microseconds; no clock is read in this phase);
//   2. backoff — exponential sleeps from `backoff_initial_ns` doubling to
//                `backoff_max_ns`, releasing the core while the worker
//                catches up;
//   3. shed    — once the accumulated backoff reaches `shed_deadline_ns`,
//                give up on this batch. The runtime drops it and accounts
//                it in RuntimeHealth (shed_batches / shed_packets).
//
// The decision sequence is a pure function of the attempt count and the
// requested sleep total — no wall clock — so the escalation path itself is
// deterministic and unit-testable without threads.
#pragma once

#include <algorithm>
#include <cstdint>

namespace dart::runtime {

struct OverloadPolicy {
  /// Yield-and-retry attempts before the first sleep.
  std::uint32_t spin_budget = 256;

  /// First backoff sleep; doubles each subsequent sleep.
  std::uint64_t backoff_initial_ns = 2'000;  // 2 us

  /// Backoff ceiling per sleep.
  std::uint64_t backoff_max_ns = 1'000'000;  // 1 ms

  /// Total backoff (sum of sleeps) after which the batch is shed. A worker
  /// that makes *any* progress within this window is never shed; only one
  /// that stays wedged for the whole deadline loses the batch. 0 sheds on
  /// the first post-spin attempt.
  std::uint64_t shed_deadline_ns = 2'000'000'000;  // 2 s

  /// When false the router waits forever (the pre-shedding behavior); a
  /// permanently wedged worker then stalls the pipeline, so this is only
  /// for runs where losing coverage is worse than losing liveness.
  bool shed_enabled = true;
};

enum class OverloadAction : std::uint8_t { kSpin, kSleep, kShed };

struct OverloadDecision {
  OverloadAction action = OverloadAction::kSpin;
  std::uint64_t sleep_ns = 0;  ///< Valid when action == kSleep.
};

/// Per-flush escalation state. Construct one governor per full-ring episode
/// and call next() before every retry; it walks spin -> backoff -> shed.
class OverloadGovernor {
 public:
  explicit OverloadGovernor(const OverloadPolicy& policy)
      : policy_(policy), backoff_ns_(policy.backoff_initial_ns) {}

  OverloadDecision next() {
    if (attempts_ < policy_.spin_budget) {
      ++attempts_;
      return {OverloadAction::kSpin, 0};
    }
    if (policy_.shed_enabled && waited_ns_ >= policy_.shed_deadline_ns) {
      return {OverloadAction::kShed, 0};
    }
    std::uint64_t sleep = std::max<std::uint64_t>(backoff_ns_, 1);
    if (policy_.shed_enabled) {
      // Never request more sleep than the deadline has left, so the last
      // sleep lands exactly on the shed decision instead of past it.
      sleep = std::min(sleep, policy_.shed_deadline_ns - waited_ns_);
      sleep = std::max<std::uint64_t>(sleep, 1);
    }
    waited_ns_ += sleep;
    backoff_ns_ = std::min(backoff_ns_ * 2, policy_.backoff_max_ns);
    return {OverloadAction::kSleep, sleep};
  }

  /// Total sleep requested so far (the deadline clock).
  std::uint64_t waited_ns() const { return waited_ns_; }

 private:
  OverloadPolicy policy_;
  std::uint32_t attempts_ = 0;
  std::uint64_t waited_ns_ = 0;
  std::uint64_t backoff_ns_ = 0;
};

}  // namespace dart::runtime
