// CheckpointCoordinator: the durable side of the supervised shard runtime.
//
// Workers cut checkpoint images at epoch barriers (markers the router
// injects into each shard's ring every N delivered packets and/or T virtual
// seconds) and *commit* them here, together with the samples they emitted
// since the previous barrier. The coordinator is what survives a worker
// crash: the supervisor rehydrates a replacement monitor from the latest
// committed image and merges only committed samples, so everything a dead
// worker did after its last commit is rolled back as one bounded loss
// window.
//
// Commits are fenced by incarnation id. The supervisor bumps the shard's
// owner id *before* it gives up on a worker (dead or hung), so a detached
// worker that wakes up later and tries to commit is rejected under the same
// mutex that serializes commits — a zombie can never overwrite its
// successor's state or smuggle rolled-back samples into the merge.
//
// Consistency invariant: after every accepted commit,
//     committed_samples(shard).size() == meta.sample_cursor
//                                     == stats.samples in the image,
// because a worker commits exactly the samples it emitted before the cut
// and a successor restores its sample counter from the same image.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/checkpoint.hpp"
#include "core/rtt_sample.hpp"

namespace dart::runtime {

/// When the router injects epoch barriers into a shard's stream. Both
/// triggers may be armed at once; either one being due cuts the barrier
/// (and resets both). All zeros disables checkpointing entirely.
struct CheckpointPolicy {
  /// Cut after this many packets delivered to the shard (0 = off).
  std::uint64_t interval_packets = 0;

  /// Cut when the shard's packet timestamps have advanced this far since
  /// the last barrier (0 = off). Virtual time, not wall time: replaying the
  /// same trace cuts barriers at the same packets.
  std::uint64_t interval_vtime_ns = 0;

  bool enabled() const { return interval_packets != 0 || interval_vtime_ns != 0; }
};

class CheckpointCoordinator {
 public:
  explicit CheckpointCoordinator(std::uint32_t shards);

  CheckpointCoordinator(const CheckpointCoordinator&) = delete;
  CheckpointCoordinator& operator=(const CheckpointCoordinator&) = delete;

  /// Supervisor side: transfer ownership of `shard` to a new incarnation
  /// and return its id. Every commit carrying an older id is rejected from
  /// this point on — call it *before* reading recovery state, so a zombie
  /// cannot slip a commit in between.
  std::uint64_t begin_incarnation(std::uint32_t shard);

  /// Worker side: commit a cut image plus the samples emitted since the
  /// previous commit. Returns false (and changes nothing) unless
  /// `incarnation` currently owns the shard. An empty image (a monitor
  /// without checkpoint support) commits the samples only.
  bool commit(std::uint32_t shard, std::uint64_t incarnation,
              core::CheckpointImage&& image, const core::SnapshotMeta& meta,
              std::vector<core::RttSample>&& samples);

  /// Worker side: commit trailing samples with no image (the clean
  /// end-of-input path). Fenced like commit().
  bool commit_samples(std::uint32_t shard, std::uint64_t incarnation,
                      std::vector<core::RttSample>&& samples);

  /// Supervisor side: copy out the latest committed image and its meta.
  /// False when the shard has never committed one.
  bool latest(std::uint32_t shard, core::CheckpointImage* image,
              core::SnapshotMeta* meta) const;

  /// Samples committed so far (barrier commits + end-of-input commits), in
  /// per-shard emission order.
  std::vector<core::RttSample> committed_samples(std::uint32_t shard) const;

  std::uint64_t committed_sample_count(std::uint32_t shard) const;

  /// Accepted image commits for `shard` / across all shards.
  std::uint64_t checkpoints_cut(std::uint32_t shard) const;
  std::uint64_t total_checkpoints_cut() const;

  std::uint32_t shards() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

 private:
  // Every field is written by whichever thread holds the commit mutex —
  // workers at barrier commits, the supervisor at ownership transfers and
  // recovery reads — so all of them are GUARDED_BY it, and a clang
  // -Wthread-safety build (DART_THREAD_SAFETY=ON) proves every access
  // locks first. The zombie-fencing argument in the file comment *depends*
  // on owner being read under the same mutex that serializes commits.
  struct Slot {
    mutable common::Mutex mutex;
    /// Current incarnation id; 0 = none yet.
    std::uint64_t owner DART_GUARDED_BY(mutex) = 0;
    std::uint64_t next_id DART_GUARDED_BY(mutex) = 1;
    bool has_image DART_GUARDED_BY(mutex) = false;
    core::CheckpointImage image DART_GUARDED_BY(mutex);
    core::SnapshotMeta meta DART_GUARDED_BY(mutex);
    std::vector<core::RttSample> committed DART_GUARDED_BY(mutex);
    std::uint64_t cuts DART_GUARDED_BY(mutex) = 0;
  };

  // unique_ptr because Slot holds a mutex (immovable) and the vector is
  // sized once at construction.
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace dart::runtime
