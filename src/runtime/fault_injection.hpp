// Deterministic fault injection for the sharded replay runtime.
//
// The chaos suite (tests/runtime/chaos_test.cpp) needs to reproduce, on
// demand and bit-for-bit, the failure modes the paper designs against in
// spirit (Sections 3.1 and 7: the monitor must stay live under whatever the
// network — or here, the host — throws at it):
//
//   stall   — a worker sleeps before each batch in a window, so its ring
//             backs up and the router's OverloadPolicy engages;
//   kill    — a worker exits cleanly after processing exactly N batches,
//             so everything routed past that point must be shed and
//             accounted (the deterministic-shedding scenario);
//   hang    — a worker blocks inside the hook until release_hangs(); the
//             runtime's join timeout must force-detach it, never deadlock;
//   jitter  — seeded random per-batch consumption delays, forcing
//             ring-full backpressure without any shedding.
//
// Hooks are invoked by ShardedMonitor's worker loop at *batch* granularity
// only, and only when the translation units are compiled with
// -DDART_FAULT_INJECTION=1 (cmake option DART_FAULT_INJECTION). In a
// release build the hook sites compile out entirely: the per-packet path is
// identical with and without the harness.
//
// Thread-safety: plans must be fully built before workers start. Each
// shard's mutable hook state is touched only by that shard's worker; the
// hang release flag is the only cross-thread channel (mutex + condvar).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/packet.hpp"
#include "common/random.hpp"
#include "common/thread_annotations.hpp"

namespace dart::runtime {

class FaultPlan {
 public:
  enum class Action : std::uint8_t { kContinue, kExit };

  /// `seed` drives the jitter fault's per-shard random delay streams (and
  /// nothing else); two plans with the same seed and the same fault calls
  /// behave identically.
  explicit FaultPlan(std::uint64_t seed = 0) : seed_(seed) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Sleep `delay_ns` before each of batches [first_batch, first_batch +
  /// batches) processed by `shard`.
  FaultPlan& stall(std::uint32_t shard, std::uint64_t first_batch,
                   std::uint64_t batches, std::uint64_t delay_ns);

  /// Worker `shard` exits its loop after processing exactly `after_batches`
  /// batches; the runtime sheds whatever it never consumed. `times` bounds
  /// how many workers the fault claims: under a supervised runtime a
  /// restarted worker counts batches from zero, so times == 1 (the default)
  /// crashes the shard exactly once while a large value re-kills every
  /// successor until the supervisor's restart budget runs out. Plain
  /// ShardedMonitor never restarts a worker, so `times` is moot there.
  FaultPlan& kill(std::uint32_t shard, std::uint64_t after_batches,
                  std::uint64_t times = 1);

  /// Worker `shard` blocks once it has processed `at_batch` batches, until
  /// release_hangs() is called (or forever, if it never is).
  FaultPlan& hang(std::uint32_t shard, std::uint64_t at_batch);

  /// Seeded uniform delay in [0, max_delay_ns) before every batch of
  /// `shard`.
  FaultPlan& jitter(std::uint32_t shard, std::uint64_t max_delay_ns);

  // -- Exporter-side faults (the process-level fleet chaos surface) --
  //
  // One vantage exporter per plan (a vantage is a whole process, so there
  // is no shard key). All exporter faults act *downstream of sealing*: the
  // exporter builds a correct CRC-sealed frame and the fault mangles its
  // delivery, exactly as a crash or a sick transport would.

  /// The exporter process "crashes" before publishing its
  /// `after_frames`-th frame (0-based): that frame and everything after it
  /// is never delivered.
  FaultPlan& exporter_kill(std::uint64_t after_frames);

  /// Sleep `delay_ns` before each of frames [first_frame, first_frame +
  /// frames) — a lagging vantage for the collector's liveness deadline.
  FaultPlan& exporter_stall(std::uint64_t first_frame, std::uint64_t frames,
                            std::uint64_t delay_ns);

  /// Frame `sequence` is delivered torn: only its first `keep_bytes` bytes
  /// arrive (a crash mid-write on a non-atomic transport).
  FaultPlan& exporter_truncate(std::uint64_t sequence,
                               std::uint64_t keep_bytes);

  /// Frame `sequence` is delivered twice (two publish slots).
  FaultPlan& exporter_duplicate(std::uint64_t sequence);

  /// Frame `sequence` is held back and delivered right after its
  /// successor: the collector sees sequence order ..., s+1, s, ...
  FaultPlan& exporter_reorder(std::uint64_t sequence);

  /// The vantage's epoch clock disagrees with the fleet: every non-manifest
  /// frame's epoch header is rewritten to
  ///   epoch + offset + drift_per_epoch * epoch - lag   (clamped at 0)
  /// *before sealing* — the frame is internally consistent (valid CRC,
  /// telemetry, checkpoint), only its notion of which barrier it describes
  /// is skewed. `offset` models a constant clock offset, `drift_per_epoch`
  /// a clock running fast/slow, `lag` a vantage reporting epochs late.
  FaultPlan& exporter_epoch_skew(std::int64_t offset,
                                 std::int64_t drift_per_epoch = 0,
                                 std::uint64_t lag = 0);

  /// Exporter hook: called before each publish with the number of frames
  /// already published. kExit fires the kill fault; stall delays happen
  /// inside this call.
  Action exporter_before_publish(std::uint64_t frames_published);

  /// Exporter hook: true if frame `sequence` must be truncated, with the
  /// byte count to keep in `*keep_bytes`.
  bool exporter_truncate_bytes(std::uint64_t sequence,
                               std::uint64_t* keep_bytes) const;

  /// Exporter hook: true if frame `sequence` must be delivered twice.
  bool exporter_duplicate_frame(std::uint64_t sequence) const;

  /// Exporter hook: true if frame `sequence` must be held for reordering.
  bool exporter_hold_frame(std::uint64_t sequence) const;

  /// Exporter hook: true if the epoch-skew fault is armed; `*skewed` gets
  /// the rewritten epoch for a frame whose true epoch is `epoch`.
  bool exporter_skewed_epoch(std::uint64_t epoch, std::uint64_t* skewed) const;

  /// Worker hook: called before each pop attempt with the number of batches
  /// this worker has fully processed. kExit means "die now" (kill fault);
  /// the hang fault blocks inside this call.
  Action before_pop(std::uint32_t shard, std::uint64_t batches_done);

  /// Worker hook: called after a successful pop, before the batch is
  /// processed; applies stall / jitter delays.
  void after_pop(std::uint32_t shard, std::uint64_t batch_index);

  /// Wake every worker blocked in a hang fault (idempotent).
  void release_hangs();

  bool hangs_released() const;

 private:
  struct ShardFaults {
    // Stall window.
    std::uint64_t stall_first = 0;
    std::uint64_t stall_count = 0;
    std::uint64_t stall_delay_ns = 0;
    // Kill point (kuint64max = never), how many kills the fault may fire,
    // and how many it has fired. Incarnations of one shard run serially
    // (a successor starts only after its predecessor exited), so the
    // counter needs no synchronization.
    std::uint64_t kill_after = ~std::uint64_t{0};
    std::uint64_t kill_times = ~std::uint64_t{0};
    std::uint64_t kills_fired = 0;
    // Hang point (kuint64max = never) and whether it already fired.
    std::uint64_t hang_at = ~std::uint64_t{0};
    bool hang_fired = false;
    // Jitter.
    std::uint64_t jitter_max_ns = 0;
    Rng jitter_rng{0};
  };

  /// Exporter-side fault state: one exporter per plan, mutated only while
  /// the plan is built and read only by the (single-threaded) exporter.
  struct ExporterFaults {
    std::uint64_t kill_after = ~std::uint64_t{0};
    std::uint64_t stall_first = 0;
    std::uint64_t stall_count = 0;
    std::uint64_t stall_delay_ns = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> truncate;
    std::vector<std::uint64_t> duplicate;
    std::vector<std::uint64_t> reorder;
    bool has_skew = false;
    std::int64_t skew_offset = 0;
    std::int64_t skew_drift = 0;
    std::uint64_t skew_lag = 0;
  };

  ShardFaults& shard_faults(std::uint32_t shard);

  // con-ok(CON005): written only while the plan is built, before any worker
  // starts; workers treat it as immutable (published by thread creation)
  std::uint64_t seed_;
  // con-ok(CON005): sized at build time; each element is touched only by
  // the one worker owning that shard (hang_fired under hang_mutex_ aside)
  std::vector<ShardFaults> shards_;
  // con-ok(CON005): built before the exporter runs; single-threaded reader
  ExporterFaults exporter_;

  // The hang release flag is the only cross-thread channel in the plan:
  // a blocked zombie and the test thread calling release_hangs() meet here.
  // condition_variable_any waits on the annotated UniqueLock directly.
  mutable common::Mutex hang_mutex_;
  std::condition_variable_any hang_cv_;
  bool hangs_released_ DART_GUARDED_BY(hang_mutex_) = false;
};

/// Input-side fault (the "non-monotonic / skewed timestamps" scenario):
/// deterministically perturb each packet's timestamp by a uniform offset in
/// [-max_skew_ns, +max_skew_ns] (clamped at zero), seeded — the result is
/// generally *not* time-ordered, which is exactly the point: a monitor fed
/// by a damaged capture or a misbehaving clock must degrade, not misbehave.
void inject_timestamp_skew(std::vector<PacketRecord>& packets,
                           std::uint64_t seed, std::uint64_t max_skew_ns);

}  // namespace dart::runtime
