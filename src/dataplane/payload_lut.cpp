#include "dataplane/payload_lut.hpp"

namespace dart::dataplane {

PayloadLut::PayloadLut() {
  table_.resize(static_cast<std::size_t>(kMaxTotalLen - kMinTotalLen + 1) *
                (kMaxTcpWords - kMinTcpWords + 1));
  for (std::uint16_t len = kMinTotalLen; len <= kMaxTotalLen; ++len) {
    for (std::uint16_t tcp = kMinTcpWords; tcp <= kMaxTcpWords; ++tcp) {
      table_[index(len, tcp)] = compute(len, kIpHeaderWords, tcp);
    }
  }
}

std::uint16_t PayloadLut::compute(std::uint16_t ip_total_len,
                                  std::uint16_t ip_header_words,
                                  std::uint16_t tcp_header_words) {
  const std::uint32_t headers =
      4U * ip_header_words + 4U * tcp_header_words;
  if (headers >= ip_total_len) return 0;
  return static_cast<std::uint16_t>(ip_total_len - headers);
}

std::optional<std::uint16_t> PayloadLut::lookup(
    std::uint16_t ip_total_len, std::uint16_t ip_header_words,
    std::uint16_t tcp_header_words) const {
  if (ip_header_words != kIpHeaderWords || ip_total_len < kMinTotalLen ||
      ip_total_len > kMaxTotalLen || tcp_header_words < kMinTcpWords ||
      tcp_header_words > kMaxTcpWords) {
    return std::nullopt;
  }
  return table_[index(ip_total_len, tcp_header_words)];
}

}  // namespace dart::dataplane
