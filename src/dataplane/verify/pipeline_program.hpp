// Declarative IR describing the Dart pipeline the way the hardware
// compiler sees it — the input to the ahead-of-time feasibility checker.
//
// A PipelineProgram lists the logical tables (register arrays and
// match-action tables), the ordered table accesses each pipeline pass
// performs, and the recirculation edges between passes. `emit_program`
// derives the program for a concrete deployment from the memory layout
// (DartLayout) plus the monitor shape (PT stages, recirculation budget,
// leg mode, shadow RT); hand-built programs are used by the checker tests
// to exercise each rule's failing side.
//
// The IR deliberately mirrors the constraints of Section 4 of the paper:
// register values must be acted on sequentially within a pass (hence
// component tables and dependency-ordered accesses), revisiting memory
// requires a recirculation (hence explicit recirculation edges with
// budgets), and all stateful arithmetic happens in SALU-width registers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/resource_model.hpp"

namespace dart::dataplane::verify {

/// How an access touches a table. Stateful tables (registers) support one
/// read-modify-write per packet per pass; match tables are read-only.
enum class AccessKind : std::uint8_t { kRead, kWrite, kReadModifyWrite };

/// Where a table's entries live.
enum class TableKind : std::uint8_t { kRegister, kExactMatch, kTernary };

/// One logical table of the program.
struct TableDecl {
  std::string name;
  TableKind kind = TableKind::kRegister;
  /// Stateful register width per component (SALU operand width).
  std::uint32_t width_bits = 32;
  std::uint64_t entries = 0;
  /// Sequential split of one logical value across physical tables
  /// (Section 4: RT and PT values are acted on sequentially, so left /
  /// right / signature live in consecutive stages). Each component table
  /// occupies its own pipeline stage.
  std::uint32_t component_tables = 1;
  /// True when the registers hold TCP sequence/ack values and therefore
  /// participate in serial (wraparound) arithmetic.
  bool holds_seq_arith = false;
};

/// One access in a pass's dependency-ordered access sequence.
struct TableAccess {
  std::string table;
  AccessKind kind = AccessKind::kRead;
  /// Hash units consumed when this access is placed (index + key folds).
  std::uint32_t hash_units = 1;
  /// Key bytes routed through the stage's input crossbar.
  std::uint32_t crossbar_bytes = 0;
  /// True when this access consumes the previous access's result and must
  /// therefore be placed in a strictly later stage. False lets the
  /// placement engine co-locate it with the previous access.
  bool depends_on_previous = true;
};

/// One traversal of the pipeline (initial pass, recirculated pass, ...).
struct Pass {
  std::string name;
  std::vector<TableAccess> accesses;
};

/// A recirculation edge: packets leaving `from_pass` re-enter the pipeline
/// as `to_pass`. `bounded` + `budget` express the per-insertion hop limit;
/// an unbounded edge inside a cycle is non-terminating and rejected.
struct RecircEdge {
  std::uint32_t from_pass = 0;
  std::uint32_t to_pass = 0;
  std::string reason;
  bool bounded = true;
  std::uint32_t budget = 1;
};

struct PipelineProgram {
  std::string name;
  std::vector<TableDecl> tables;
  std::vector<Pass> passes;
  std::vector<RecircEdge> recirc;
  /// Register width serial seq/ack arithmetic needs to survive wraparound
  /// (RFC 1982 comparisons need the full 32-bit circular space).
  std::uint32_t required_seq_bits = 32;
  /// Tofino1-prototype style deployment across ingress + egress, doubling
  /// the stage budget at the cost of the second pipeline half.
  bool split_ingress_egress = false;
};

/// The monitor-configuration facts that shape the emitted program, kept
/// free of core:: types so core can depend on dataplane and not vice
/// versa. core::DartConfig maps onto this in dart_monitor.cpp.
struct MonitorShape {
  std::uint32_t pt_stages = 1;
  std::uint32_t max_recirculations = 1;
  bool both_legs = false;
  bool shadow_rt = false;
  bool use_flow_filter = true;
  bool use_payload_lut = true;
  /// Key bytes of the flow identifier (IPv4 4-tuple = 12, IPv6 = 36).
  std::uint32_t flow_key_bytes = 12;
  /// Register width used for seq/ack state (the hardware uses 32).
  std::uint32_t register_bits = 32;
  bool split_ingress_egress = false;
};

/// Derive the hardware-shaped program for a deployment.
PipelineProgram emit_program(const DartLayout& layout,
                             const MonitorShape& shape);

const TableDecl* find_table(const PipelineProgram& program,
                            const std::string& name);

}  // namespace dart::dataplane::verify
