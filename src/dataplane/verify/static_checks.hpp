// Compile-time slice of the pipeline checker: the layout constants that
// are known at build time are verified by static_assert, so an infeasible
// default configuration cannot even compile. The constexpr mirrors of
// estimate_usage() here are pinned against the runtime implementation by
// tests/dataplane/resource_golden_test.cpp, so they cannot drift silently.
#pragma once

#include <cstdint>

#include "common/seqnum.hpp"
#include "dataplane/payload_lut.hpp"
#include "dataplane/resource_model.hpp"

namespace dart::dataplane::verify {

/// SRAM bytes a layout's register arrays and LUT consume (mirror of
/// estimate_usage().sram_bytes).
constexpr std::uint64_t static_sram_bytes(const DartLayout& layout) {
  return static_cast<std::uint64_t>(layout.rt_slots) * layout.rt_entry_bytes +
         static_cast<std::uint64_t>(layout.pt_slots) * layout.pt_entry_bytes +
         static_cast<std::uint64_t>(layout.payload_lut_entries) * 2;
}

/// Pipeline stages a layout needs (mirror of estimate_usage().stages_used).
constexpr std::uint32_t static_stages_used(const DartLayout& layout) {
  return 2 + layout.component_tables_per_logical +
         layout.component_tables_per_logical * layout.pt_stages;
}

/// Hash units a layout needs (mirror of estimate_usage().hash_units).
constexpr std::uint32_t static_hash_units(const DartLayout& layout) {
  return 2 + layout.pt_stages + 1 + (layout.both_legs ? 1 : 0);
}

// Chip constants the asserts below check against; these mirror
// tofino1_profile() and are pinned to it by the golden test.
inline constexpr std::uint32_t kTofino1Stages = 12;
inline constexpr std::uint64_t kTofino1SramBytes = 15ULL << 20;
inline constexpr std::uint32_t kTofino1HashUnitsPerStage = 6;
inline constexpr std::uint32_t kSaluWidthBits = 32;

// --- Sequence-number arithmetic ------------------------------------------
// Serial (RFC 1982) comparisons need the full 32-bit circular space; the
// register width the data plane stores seq/ack values in must match.
static_assert(sizeof(SeqNum) * 8 == kSaluWidthBits,
              "SeqNum must be exactly SALU-width for single-stage RMW");
static_assert(seq_lt(0xFFFFFF00u, 0x00000010u),
              "serial comparison must survive wraparound");
static_assert(seq_add(0xFFFFFFFFu, 2) == 1u,
              "serial addition must wrap modulo 2^32");
static_assert(seq_in_left_open(0x5u, 0xFFFFFFF0u, 0x10u),
              "measurement ranges must span the wrap point");

// --- Payload LUT ----------------------------------------------------------
// The Section 4 lookup table's size is a compile-time function of the
// precomputed parameter ranges; the DartLayout default must agree with the
// PayloadLut implementation or the SRAM accounting is wrong.
inline constexpr std::uint32_t kPayloadLutEntries =
    static_cast<std::uint32_t>(PayloadLut::kMaxTotalLen -
                               PayloadLut::kMinTotalLen + 1) *
    (PayloadLut::kMaxTcpWords - PayloadLut::kMinTcpWords + 1);
static_assert(kPayloadLutEntries == DartLayout{}.payload_lut_entries,
              "DartLayout's LUT entry count must match PayloadLut's ranges");
static_assert(PayloadLut::kMinTotalLen >= 40,
              "total length below bare IP+TCP headers is malformed");
static_assert(PayloadLut::kMinTcpWords == 5,
              "TCP data offset below 5 words is malformed");

// --- Default layout feasibility -------------------------------------------
// The defaults are the paper's deployed configuration; they must fit a
// single Tofino1 pipeline without the ingress+egress split.
static_assert(static_sram_bytes(DartLayout{}) < kTofino1SramBytes,
              "default layout must fit Tofino1 SRAM");
static_assert(static_stages_used(DartLayout{}) <= kTofino1Stages,
              "default layout must fit Tofino1's stage count");
static_assert(static_hash_units(DartLayout{}) <=
                  kTofino1Stages * kTofino1HashUnitsPerStage,
              "default layout must fit Tofino1's hash units");

// Record entries must hold a 4-byte signature plus the per-table payload
// the paper describes (two 4-byte edges for RT, eACK + timestamp for PT).
static_assert(DartLayout{}.rt_entry_bytes >= 12,
              "RT entry narrower than signature + left + right");
static_assert(DartLayout{}.pt_entry_bytes >= 12,
              "PT entry narrower than signature + eACK + timestamp");

}  // namespace dart::dataplane::verify
