#include "dataplane/verify/pipeline_program.hpp"

// Compile the static_assert slice of the checker into the library so an
// infeasible default layout is a build error, not just a lint finding.
#include "dataplane/verify/static_checks.hpp"

namespace dart::dataplane::verify {

namespace {

TableAccess access(std::string table, AccessKind kind,
                   std::uint32_t hash_units, std::uint32_t crossbar_bytes,
                   bool depends_on_previous) {
  TableAccess a;
  a.table = std::move(table);
  a.kind = kind;
  a.hash_units = hash_units;
  a.crossbar_bytes = crossbar_bytes;
  a.depends_on_previous = depends_on_previous;
  return a;
}

}  // namespace

PipelineProgram emit_program(const DartLayout& layout,
                             const MonitorShape& shape) {
  PipelineProgram program;
  program.name = "dart";
  program.required_seq_bits = 32;
  program.split_ingress_egress = shape.split_ingress_egress;

  // --- Logical tables -----------------------------------------------------
  if (shape.use_flow_filter) {
    TableDecl filter;
    filter.name = "flow_filter";
    filter.kind = TableKind::kTernary;
    filter.width_bits = 0;  // match-only, no stateful registers
    filter.entries = layout.flow_filter_rules;
    program.tables.push_back(filter);
  }
  if (shape.use_payload_lut) {
    TableDecl lut;
    lut.name = "payload_lut";
    lut.kind = TableKind::kExactMatch;
    lut.width_bits = 16;  // precomputed payload size result
    lut.entries = layout.payload_lut_entries;
    program.tables.push_back(lut);
  }
  {
    TableDecl rt;
    rt.name = "range_tracker";
    rt.kind = TableKind::kRegister;
    rt.width_bits = shape.register_bits;
    rt.entries = layout.rt_slots;
    rt.component_tables = layout.component_tables_per_logical;
    rt.holds_seq_arith = true;
    program.tables.push_back(rt);
  }
  const std::uint32_t pt_stages = shape.pt_stages;
  for (std::uint32_t s = 0; s < pt_stages; ++s) {
    TableDecl pt;
    pt.name = "packet_tracker_s" + std::to_string(s);
    pt.kind = TableKind::kRegister;
    pt.width_bits = shape.register_bits;
    pt.entries = pt_stages == 0 ? 0 : layout.pt_slots / pt_stages;
    pt.component_tables = layout.component_tables_per_logical;
    pt.holds_seq_arith = true;
    program.tables.push_back(pt);
  }
  if (shape.shadow_rt) {
    TableDecl shadow;
    shadow.name = "shadow_range_tracker";
    shadow.kind = TableKind::kRegister;
    shadow.width_bits = shape.register_bits;
    shadow.entries = layout.rt_slots;
    shadow.component_tables = layout.component_tables_per_logical;
    shadow.holds_seq_arith = true;
    program.tables.push_back(shadow);
  }

  // --- Initial pass -------------------------------------------------------
  // Dependency order mirrors Figure 3: classify/filter, derive the payload
  // size, validate + update the measurement range, then walk the PT stages
  // in order (stage k+1 is consulted only if stage k's slot was taken),
  // finally the optional shadow-RT staleness check on the evicted record.
  Pass initial;
  initial.name = "initial";
  if (shape.use_flow_filter) {
    // TCAM match; no hash unit, key is the full flow identifier.
    initial.accesses.push_back(access("flow_filter", AccessKind::kRead, 0,
                                      shape.flow_key_bytes, true));
  }
  if (shape.use_payload_lut) {
    // Exact-match on (total_len, tcp_words) — independent of the filter
    // result, so it may share the stage.
    initial.accesses.push_back(
        access("payload_lut", AccessKind::kRead, 1, 4, false));
  }
  // RT: index hash + signature fold; key = flow id, operands = seq/eack.
  initial.accesses.push_back(access("range_tracker",
                                    AccessKind::kReadModifyWrite, 2,
                                    shape.flow_key_bytes + 8, true));
  for (std::uint32_t s = 0; s < pt_stages; ++s) {
    // Stage 0 also folds the (signature, eACK) record key; later stages
    // reuse the fold and spend one unit on their per-stage index hash.
    initial.accesses.push_back(access("packet_tracker_s" + std::to_string(s),
                                      AccessKind::kReadModifyWrite,
                                      s == 0 ? 2 : 1, 8, true));
  }
  if (shape.shadow_rt) {
    initial.accesses.push_back(
        access("shadow_range_tracker", AccessKind::kRead, 1, 8, true));
  }
  program.passes.push_back(std::move(initial));

  // --- Recirculated pass + edges ------------------------------------------
  if (shape.max_recirculations > 0) {
    Pass recirc;
    recirc.name = "recirculated";
    // A displaced record re-validates against the RT (read-only — the
    // hardware updates a matching entry on re-entry, still one access)
    // and then re-attempts insertion across the PT stages.
    recirc.accesses.push_back(access("range_tracker", AccessKind::kRead, 2,
                                     shape.flow_key_bytes + 8, true));
    for (std::uint32_t s = 0; s < pt_stages; ++s) {
      recirc.accesses.push_back(
          access("packet_tracker_s" + std::to_string(s),
                 AccessKind::kReadModifyWrite, s == 0 ? 2 : 1, 8, true));
    }
    program.passes.push_back(std::move(recirc));

    RecircEdge displacement;
    displacement.from_pass = 0;
    displacement.to_pass = 1;
    displacement.reason = "PT displacement chain (Section 3.2)";
    displacement.bounded = true;
    displacement.budget = shape.max_recirculations;
    program.recirc.push_back(displacement);
  }
  if (shape.both_legs) {
    // Dual-role packets re-enter the initial pass once to play their
    // second role (Section 5).
    RecircEdge dual;
    dual.from_pass = 0;
    dual.to_pass = 0;
    dual.reason = "dual-role packet, both legs (Section 5)";
    dual.bounded = true;
    dual.budget = 1;
    program.recirc.push_back(dual);
  }

  return program;
}

const TableDecl* find_table(const PipelineProgram& program,
                            const std::string& name) {
  for (const TableDecl& table : program.tables) {
    if (table.name == name) return &table;
  }
  return nullptr;
}

}  // namespace dart::dataplane::verify
