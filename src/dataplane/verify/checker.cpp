#include "dataplane/verify/checker.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace dart::dataplane::verify {

namespace {

void diag(std::vector<Diagnostic>& out, Rule rule, std::string message) {
  Diagnostic d;
  d.rule = rule;
  d.message = std::move(message);
  out.push_back(std::move(d));
}

/// True when `edge` lies on a cycle made only of unbounded edges.
bool on_unbounded_cycle(const PipelineProgram& program,
                        const RecircEdge& edge) {
  // DFS over unbounded edges from edge.to_pass looking for edge.from_pass.
  std::set<std::uint32_t> visited;
  std::vector<std::uint32_t> stack{edge.to_pass};
  while (!stack.empty()) {
    const std::uint32_t pass = stack.back();
    stack.pop_back();
    if (pass == edge.from_pass) return true;
    if (!visited.insert(pass).second) continue;
    for (const RecircEdge& next : program.recirc) {
      if (!next.bounded && next.from_pass == pass) {
        stack.push_back(next.to_pass);
      }
    }
  }
  return false;
}

struct Placer {
  const TargetProfile& target;
  std::uint32_t capacity;  // stages after the ingress+egress split
  std::vector<StageUsage> usage;
  std::map<std::string, TablePlacement> placed;

  StageUsage& stage(std::uint32_t index) {
    if (index >= usage.size()) usage.resize(index + 1);
    return usage[index];
  }

  bool fits(std::uint32_t index, const TableAccess& access,
            bool first_component) const {
    if (index >= usage.size()) return true;
    const StageUsage& s = usage[index];
    const std::uint32_t hash_demand = first_component ? access.hash_units : 0;
    return s.hash_units + hash_demand <= target.hash_units_per_stage &&
           s.crossbar_bytes + access.crossbar_bytes <=
               target.crossbar_bytes_per_stage &&
           s.tables + 1 <= target.tables_per_stage;
  }

  /// Place `access` (spanning `components` stages) at the first feasible
  /// start >= `earliest`. Budgets are soft here — overflow past `capacity`
  /// is recorded and reported as a DPL003 diagnostic by the caller.
  TablePlacement place(const TableAccess& access, std::uint32_t components,
                       std::uint32_t earliest) {
    std::uint32_t start = earliest;
    // Bounded scan: past `capacity + components` the placement has already
    // failed; stop sliding and take the slot for reporting purposes.
    while (start < capacity + components) {
      bool ok = true;
      for (std::uint32_t c = 0; c < components; ++c) {
        if (!fits(start + c, access, c == 0)) {
          ok = false;
          break;
        }
      }
      if (ok) break;
      ++start;
    }
    for (std::uint32_t c = 0; c < components; ++c) {
      StageUsage& s = stage(start + c);
      if (c == 0) s.hash_units += access.hash_units;
      s.crossbar_bytes += access.crossbar_bytes;
      s.tables += 1;
      s.table_names.push_back(access.table);
    }
    TablePlacement p;
    p.table = access.table;
    p.first_stage = start;
    p.last_stage = start + components - 1;
    placed[access.table] = p;
    return p;
  }
};

}  // namespace

std::string rule_code(Rule rule) {
  std::ostringstream out;
  out << "DPL00" << static_cast<int>(rule);
  return out.str();
}

std::string rule_name(Rule rule) {
  switch (rule) {
    case Rule::kConfig: return "config";
    case Rule::kSingleAccessPerPass: return "single access per pass";
    case Rule::kRmwSingleStage: return "SALU confinement";
    case Rule::kStagePlacement: return "stage placement";
    case Rule::kStageBudget: return "per-stage budget";
    case Rule::kRecirculation: return "recirculation";
    case Rule::kRegisterWidth: return "register width";
    case Rule::kMemoryBudget: return "memory budget";
    case Rule::kDeadTable: return "dead table";
  }
  return "?";
}

std::string Diagnostic::to_string() const {
  return "error[" + rule_code(rule) + "]: " + message;
}

bool CheckReport::has_rule(Rule rule) const {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [rule](const Diagnostic& d) { return d.rule == rule; });
}

CheckReport check(const PipelineProgram& program,
                  const TargetProfile& target) {
  CheckReport report;
  report.program_name = program.name;
  report.target_name = target.name;
  const std::uint32_t capacity =
      target.stages * (program.split_ingress_egress ? 2U : 1U);
  report.stages_available = capacity;
  report.recirculation_budget = target.max_recirculations_per_packet;
  auto& diags = report.diagnostics;

  // --- DPL000: structural sanity -----------------------------------------
  if (program.passes.empty()) {
    diag(diags, Rule::kConfig, "program has no passes");
  }
  for (const TableDecl& table : program.tables) {
    if (table.component_tables == 0) {
      diag(diags, Rule::kConfig,
           "table '" + table.name + "' declares zero component tables");
    }
  }
  for (const Pass& pass : program.passes) {
    for (const TableAccess& access : pass.accesses) {
      if (find_table(program, access.table) == nullptr) {
        diag(diags, Rule::kConfig,
             "pass '" + pass.name + "' accesses undeclared table '" +
                 access.table + "'");
      }
    }
  }
  for (const RecircEdge& edge : program.recirc) {
    if (edge.from_pass >= program.passes.size() ||
        edge.to_pass >= program.passes.size()) {
      diag(diags, Rule::kRecirculation,
           "recirculation edge references a pass that does not exist (" +
               std::to_string(edge.from_pass) + " -> " +
               std::to_string(edge.to_pass) + ")");
    }
  }

  // --- DPL008: declared-but-never-accessed tables -------------------------
  {
    std::set<std::string> accessed;
    for (const Pass& pass : program.passes) {
      for (const TableAccess& access : pass.accesses) {
        accessed.insert(access.table);
      }
    }
    for (const TableDecl& table : program.tables) {
      if (accessed.count(table.name) == 0) {
        diag(diags, Rule::kDeadTable,
             "table '" + table.name +
                 "' is declared but no pass ever accesses it; dead tables "
                 "still consume memory and a stage slot — remove the "
                 "declaration or wire the table into a pass");
      }
    }
  }

  // --- DPL001 / DPL002: access discipline per pass ------------------------
  for (const Pass& pass : program.passes) {
    std::map<std::string, std::vector<AccessKind>> per_table;
    for (const TableAccess& access : pass.accesses) {
      per_table[access.table].push_back(access.kind);
    }
    for (const auto& [table, kinds] : per_table) {
      if (kinds.size() > 1) {
        diag(diags, Rule::kSingleAccessPerPass,
             "pass '" + pass.name + "' accesses table '" + table + "' " +
                 std::to_string(kinds.size()) +
                 " times; register memory admits one access per pass — "
                 "revisiting requires a recirculation (Section 4)");
      }
      const bool has_read =
          std::count(kinds.begin(), kinds.end(), AccessKind::kRead) > 0;
      const bool has_write =
          std::count(kinds.begin(), kinds.end(), AccessKind::kWrite) > 0;
      if (has_read && has_write) {
        diag(diags, Rule::kRmwSingleStage,
             "pass '" + pass.name + "' splits a read and a write of table '" +
                 table +
                 "' into separate accesses; a read-modify-write must happen "
                 "inside one stage's stateful ALU");
      }
    }
  }

  // --- DPL002: SALU operand width, DPL006: serial-arithmetic width --------
  for (const TableDecl& table : program.tables) {
    if (table.kind != TableKind::kRegister) continue;
    if (table.width_bits > target.salu_width_bits) {
      diag(diags, Rule::kRmwSingleStage,
           "table '" + table.name + "' uses " +
               std::to_string(table.width_bits) +
               "-bit registers but the stateful ALU is " +
               std::to_string(target.salu_width_bits) +
               " bits wide; a wider read-modify-write cannot be confined to "
               "one stage");
    }
    if (table.holds_seq_arith &&
        table.width_bits < program.required_seq_bits) {
      diag(diags, Rule::kRegisterWidth,
           "table '" + table.name + "' holds seq/ack state in " +
               std::to_string(table.width_bits) +
               "-bit registers; serial (wraparound) arithmetic needs " +
               std::to_string(program.required_seq_bits) +
               " bits (RFC 1982 comparisons span the full circular space)");
    }
  }

  // --- DPL003 / DPL004: placement against stage capacity ------------------
  Placer placer{target, capacity, {}, {}};
  if (!program.passes.empty()) {
    bool have_prev = false;
    TablePlacement prev{};
    for (const TableAccess& access : program.passes.front().accesses) {
      const TableDecl* table = find_table(program, access.table);
      if (table == nullptr) continue;  // DPL000 already reported
      if (placer.placed.count(access.table) != 0) continue;  // DPL001 case
      if (access.hash_units > target.hash_units_per_stage ||
          access.crossbar_bytes > target.crossbar_bytes_per_stage) {
        diag(diags, Rule::kStageBudget,
             "access to table '" + access.table + "' needs " +
                 std::to_string(access.hash_units) + " hash units and " +
                 std::to_string(access.crossbar_bytes) +
                 " crossbar bytes in one stage; the target provides " +
                 std::to_string(target.hash_units_per_stage) + " and " +
                 std::to_string(target.crossbar_bytes_per_stage) +
                 " per stage");
        continue;
      }
      const std::uint32_t components = std::max(1U, table->component_tables);
      const std::uint32_t earliest =
          !have_prev ? 0U
                     : (access.depends_on_previous ? prev.last_stage + 1
                                                   : prev.first_stage);
      prev = placer.place(access, components, earliest);
      have_prev = true;
    }
  }
  report.placements.reserve(placer.placed.size());
  std::uint32_t max_stage = 0;
  bool any_placed = false;
  // Preserve program (pass 0) order in the report for readable output.
  if (!program.passes.empty()) {
    for (const TableAccess& access : program.passes.front().accesses) {
      const auto it = placer.placed.find(access.table);
      if (it == placer.placed.end()) continue;
      if (std::any_of(report.placements.begin(), report.placements.end(),
                      [&](const TablePlacement& p) {
                        return p.table == access.table;
                      })) {
        continue;
      }
      report.placements.push_back(it->second);
      max_stage = std::max(max_stage, it->second.last_stage);
      any_placed = true;
    }
  }
  report.stages_used = any_placed ? max_stage + 1 : 0;
  report.stage_usage = placer.usage;
  if (report.stages_used > capacity) {
    std::string overflow;
    for (const TablePlacement& p : report.placements) {
      if (p.last_stage >= capacity) {
        if (!overflow.empty()) overflow += ", ";
        overflow += p.table;
      }
    }
    diag(diags, Rule::kStagePlacement,
         "dependency-ordered placement needs " +
             std::to_string(report.stages_used) + " stages but the target "
             "provides " + std::to_string(capacity) +
             (program.split_ingress_egress ? " (ingress+egress)" : "") +
             "; overflowing tables: " + overflow +
             (program.split_ingress_egress
                  ? ""
                  : " (an ingress+egress split would double the budget, as "
                    "in the paper's Tofino1 prototype)"));
  }

  // Later passes revisit the same physical tables, so they must consume
  // them in non-decreasing stage order — memory behind the packet cannot
  // be reached without another recirculation.
  for (std::size_t i = 1; i < program.passes.size(); ++i) {
    const Pass& pass = program.passes[i];
    bool have_prev = false;
    TablePlacement prev{};
    std::string prev_table;
    for (const TableAccess& access : pass.accesses) {
      const auto it = placer.placed.find(access.table);
      if (it == placer.placed.end()) continue;  // not in the initial pass
      const TablePlacement& here = it->second;
      if (have_prev) {
        const bool backwards =
            access.depends_on_previous
                ? here.first_stage <= prev.last_stage
                : here.first_stage < prev.first_stage;
        if (backwards) {
          diag(diags, Rule::kStagePlacement,
               "pass '" + pass.name + "' visits table '" + access.table +
                   "' (stage " + std::to_string(here.first_stage) +
                   ") after table '" + prev_table + "' (stage " +
                   std::to_string(prev.last_stage) +
                   "); a pass flows forward only, so this ordering is "
                   "unplaceable");
        }
      }
      prev = here;
      prev_table = access.table;
      have_prev = true;
    }
  }

  // --- DPL005: recirculation budget and termination -----------------------
  std::uint64_t worst = 0;
  for (const RecircEdge& edge : program.recirc) {
    if (!edge.bounded) {
      if (on_unbounded_cycle(program, edge)) {
        diag(diags, Rule::kRecirculation,
             "unbounded recirculation cycle through pass " +
                 std::to_string(edge.to_pass) + " (" + edge.reason +
                 "); the pipeline cannot guarantee termination");
      } else {
        diag(diags, Rule::kRecirculation,
             "recirculation edge '" + edge.reason +
                 "' has no budget; worst-case recirculation bandwidth is "
                 "unbounded");
      }
      continue;
    }
    worst += edge.budget;
  }
  report.worst_case_recirculations =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(worst, 0xFFFFFFFFu));
  if (worst > target.max_recirculations_per_packet) {
    diag(diags, Rule::kRecirculation,
         "worst-case recirculations per packet is " + std::to_string(worst) +
             " but the target's recirculation budget is " +
             std::to_string(target.max_recirculations_per_packet) +
             " (Section 5: recirculation shares port bandwidth)");
  }

  return report;
}

CheckReport check_deployment(const DartLayout& layout,
                             const MonitorShape& shape,
                             const TargetProfile& target,
                             const std::vector<std::string>& extra_tables) {
  // Keep the analytic memory model and the emitted program in agreement on
  // the knobs both understand.
  DartLayout synced = layout;
  synced.pt_stages = shape.pt_stages;
  synced.both_legs = shape.both_legs;

  PipelineProgram program = emit_program(synced, shape);
  for (const std::string& name : extra_tables) {
    TableDecl dead;
    dead.name = name;
    program.tables.push_back(std::move(dead));
  }
  CheckReport report = check(program, target);
  for (Diagnostic& d : check_shape(shape)) {
    report.diagnostics.push_back(std::move(d));
  }
  // The split prototype spreads memory across both pipeline halves.
  TargetProfile memory_target = target;
  if (shape.split_ingress_egress) {
    memory_target.sram_bytes *= 2;
    memory_target.tcam_bytes *= 2;
    memory_target.logical_tables *= 2;
    memory_target.hash_units *= 2;
    memory_target.input_crossbars *= 2;
    memory_target.stages *= 2;
  }
  for (const std::string& problem : validate_layout(synced, memory_target)) {
    Diagnostic d;
    d.rule = Rule::kMemoryBudget;
    d.message = problem;
    report.diagnostics.push_back(std::move(d));
  }
  return report;
}

std::vector<Diagnostic> check_shape(const MonitorShape& shape) {
  std::vector<Diagnostic> diags;
  if (shape.pt_stages == 0) {
    diag(diags, Rule::kConfig,
         "Packet Tracker must have at least one stage (pt_stages == 0 "
         "leaves SEQ packets nowhere to wait for their ACK)");
  }
  if (shape.register_bits == 0) {
    diag(diags, Rule::kConfig,
         "register width must be nonzero to hold seq/ack state");
  }
  if (shape.flow_key_bytes == 0) {
    diag(diags, Rule::kConfig,
         "flow key must be nonzero to identify connections");
  }
  return diags;
}

TargetProfile software_profile() {
  TargetProfile p;
  p.name = "software (unconstrained)";
  p.stages = 1024;
  p.sram_bytes = ~0ULL;
  p.tcam_bytes = ~0ULL;
  p.hash_units_per_stage = 1024;
  p.tables_per_stage = 1024;
  p.crossbar_bytes_per_stage = 1 << 20;
  p.salu_width_bits = 64;
  p.max_recirculations_per_packet = 0xFFFFFFFFu;
  p.hash_units = p.stages * p.hash_units_per_stage;
  p.logical_tables = p.stages * p.tables_per_stage;
  p.input_crossbars = p.stages * 16;
  return p;
}

std::string format_diagnostics(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    if (!out.empty()) out += "\n";
    out += d.to_string();
  }
  return out;
}

std::string CheckReport::to_string() const {
  std::ostringstream out;
  out << "dart-pipeline-lint: program '" << program_name << "' on target '"
      << target_name << "'\n";
  out << std::string(72, '-') << "\n";
  out << "stage | tables                                        | hash | "
         "xbar(B)\n";
  for (std::size_t s = 0; s < stage_usage.size(); ++s) {
    const StageUsage& u = stage_usage[s];
    std::string names;
    for (const std::string& n : u.table_names) {
      if (!names.empty()) names += ", ";
      names += n;
    }
    if (names.size() > 45) names = names.substr(0, 42) + "...";
    out << (s < 10 ? "    " : (s < 100 ? "   " : "  ")) << s << " | ";
    out << names << std::string(names.size() < 45 ? 45 - names.size() : 1, ' ')
        << " |  " << u.hash_units << "   | " << u.crossbar_bytes << "\n";
  }
  out << std::string(72, '-') << "\n";
  out << "stages used: " << stages_used << " / " << stages_available
      << "   worst-case recirculations: " << worst_case_recirculations
      << " / " << recirculation_budget << "\n";
  for (const Diagnostic& d : diagnostics) {
    out << d.to_string() << "\n";
  }
  out << "result: "
      << (feasible() ? "FEASIBLE" : ("INFEASIBLE (" +
                                     std::to_string(diagnostics.size()) +
                                     (diagnostics.size() == 1 ? " error)"
                                                              : " errors)")))
      << "\n";
  return out.str();
}

}  // namespace dart::dataplane::verify
