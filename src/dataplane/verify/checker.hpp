// Static feasibility checker over a PipelineProgram — the ahead-of-time
// stand-in for the hardware compiler's constraint pass.
//
// Each rule models one Tofino compile-time constraint the paper designs
// around (DESIGN.md maps rules to paper sections):
//   DPL001 single access   — register memory is visited at most once per
//                            logical table per pass (Section 4).
//   DPL002 SALU confinement— a read-modify-write happens inside one
//                            stage's stateful ALU at SALU operand width.
//   DPL003 stage placement — dependency-ordered accesses must fit the
//                            target's stage count (x2 when the deployment
//                            spans ingress+egress like the Tofino1
//                            prototype), and later passes may only visit
//                            tables in non-decreasing stage order.
//   DPL004 stage budgets   — per-stage hash-unit and input-crossbar
//                            capacity bounds any single access.
//   DPL005 recirculation   — every recirculation edge is budgeted, cycles
//                            of unbounded edges are non-terminating, and
//                            the worst-case per-packet hop count fits the
//                            target's recirculation budget (Section 5).
//   DPL006 register width  — tables holding seq/ack values need registers
//                            wide enough for serial (wraparound)
//                            arithmetic (Section 4).
//   DPL000 config          — malformed programs (dangling table refs,
//                            zero-stage PT, empty passes).
//   DPL007 memory budget   — SRAM/TCAM/total-resource overruns, folded in
//                            from validate_layout by check_deployment.
//   DPL008 dead table      — a declared table no pass ever accesses;
//                            dead tables still consume SRAM/TCAM and a
//                            stage slot on real targets, so an emitted
//                            program carrying one is a generator bug.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/resource_model.hpp"
#include "dataplane/verify/pipeline_program.hpp"

namespace dart::dataplane::verify {

enum class Rule : std::uint8_t {
  kConfig = 0,
  kSingleAccessPerPass = 1,
  kRmwSingleStage = 2,
  kStagePlacement = 3,
  kStageBudget = 4,
  kRecirculation = 5,
  kRegisterWidth = 6,
  kMemoryBudget = 7,
  kDeadTable = 8,
};

/// Stable diagnostic code ("DPL003") for a rule.
std::string rule_code(Rule rule);

/// Short human name ("stage placement") for a rule.
std::string rule_name(Rule rule);

struct Diagnostic {
  Rule rule = Rule::kConfig;
  std::string message;

  /// "error[DPL003]: <message>"
  std::string to_string() const;
};

/// Where the placement engine put a table.
struct TablePlacement {
  std::string table;
  std::uint32_t first_stage = 0;
  std::uint32_t last_stage = 0;  ///< inclusive; component tables span stages
};

/// Aggregate demand placed into one physical stage.
struct StageUsage {
  std::uint32_t hash_units = 0;
  std::uint32_t crossbar_bytes = 0;
  std::uint32_t tables = 0;
  std::vector<std::string> table_names;
};

struct CheckReport {
  std::string program_name;
  std::string target_name;
  std::vector<Diagnostic> diagnostics;
  std::vector<TablePlacement> placements;
  std::vector<StageUsage> stage_usage;   ///< indexed by physical stage
  std::uint32_t stages_used = 0;
  std::uint32_t stages_available = 0;    ///< after the ingress+egress split
  std::uint32_t worst_case_recirculations = 0;
  std::uint32_t recirculation_budget = 0;

  bool feasible() const { return diagnostics.empty(); }
  bool has_rule(Rule rule) const;

  /// Tofino-compiler-style placement report plus the diagnostics.
  std::string to_string() const;
};

/// Check a program against a target chip profile.
CheckReport check(const PipelineProgram& program, const TargetProfile& target);

/// Emit the program for (layout, shape), check it, and fold in the memory
/// budget problems from validate_layout as DPL007 diagnostics. This is the
/// one-call API behind both dart-pipeline-lint and fail-fast construction.
/// `extra_tables` declares additional registers in the emitted program
/// without wiring them into any pass — emit_program itself never produces
/// a dead table, so this is the hook dart-pipeline-lint's --extra-table
/// flag (and the DPL008 tests) use to model a generator regression.
CheckReport check_deployment(const DartLayout& layout,
                             const MonitorShape& shape,
                             const TargetProfile& target,
                             const std::vector<std::string>& extra_tables = {});

/// Structural sanity of a monitor shape alone — constraints that make the
/// pipeline ill-formed on any target (zero PT stages, zero-width
/// registers). Used by DartMonitor/ShardedMonitor fail-fast validation,
/// where no concrete chip target is implied.
std::vector<Diagnostic> check_shape(const MonitorShape& shape);

/// A deliberately permissive profile ("software target") used to validate
/// monitor configurations structurally without imposing a real chip's
/// stage or budget limits.
TargetProfile software_profile();

/// Render diagnostics one per line (used for exception messages).
std::string format_diagnostics(const std::vector<Diagnostic>& diagnostics);

}  // namespace dart::dataplane::verify
