#include "dataplane/resource_model.hpp"

namespace dart::dataplane {

TargetProfile tofino1_profile() {
  TargetProfile p;
  p.name = "Tofino 1";
  p.stages = 12;
  p.sram_bytes = 15ULL << 20;  // ~tens of MB per pipeline [19]
  p.tcam_bytes = 2ULL << 20;
  p.hash_units = 12 * 6;
  p.logical_tables = 12 * 8;
  p.input_crossbars = 12 * 16;
  p.max_recirculations_per_packet = 4;
  return p;
}

TargetProfile tofino2_profile() {
  TargetProfile p;
  p.name = "Tofino 2";
  p.stages = 20;
  p.sram_bytes = 25ULL << 20;
  p.tcam_bytes = 3ULL << 20;
  p.hash_units = 20 * 6;
  p.logical_tables = 20 * 8;
  p.input_crossbars = 20 * 16;
  p.max_recirculations_per_packet = 8;
  return p;
}

ResourceUsage estimate_usage(const DartLayout& layout) {
  ResourceUsage usage;

  // SRAM: register arrays for RT and PT plus the payload-size lookup table
  // (2-byte result per entry).
  usage.sram_bytes =
      static_cast<std::uint64_t>(layout.rt_slots) * layout.rt_entry_bytes +
      static_cast<std::uint64_t>(layout.pt_slots) * layout.pt_entry_bytes +
      static_cast<std::uint64_t>(layout.payload_lut_entries) * 2;

  // TCAM: operator flow-selection rules (12-byte 4-tuple key + mask).
  usage.tcam_bytes =
      static_cast<std::uint64_t>(layout.flow_filter_rules) * 24;

  // Hash units: one for the RT index, one for the 4-byte flow signature,
  // one per PT stage index, one for the PT record key fold. Dual-leg
  // monitoring re-hashes the role classification on the dual-role
  // recirculation pass, so its extra unit is accounted *before* the
  // crossbar estimate that derives from the hash count.
  usage.hash_units = 2 + layout.pt_stages + 1;
  if (layout.both_legs) usage.hash_units += 1;

  // Logical tables: RT and PT each split into component tables so values
  // can be acted on sequentially (Section 4), plus the payload LUT, the
  // flow filter, and role-classification tables. Dual-leg monitoring
  // deliberately adds no tables: the recirculated pass revisits the same
  // memory (Section 5), which is the whole point of recirculating.
  const std::uint32_t rt_tables = layout.component_tables_per_logical;
  const std::uint32_t pt_tables =
      layout.component_tables_per_logical * layout.pt_stages;
  const std::uint32_t fixed_tables = 6;  // parser glue, filter, LUT, report
  usage.logical_tables = rt_tables + pt_tables + fixed_tables;

  // Input crossbars: roughly one per logical table plus hash inputs.
  usage.input_crossbars = usage.logical_tables + usage.hash_units;

  // Pipeline stages. Each PT stage is its own logical register spread over
  // `component_tables_per_logical` sequentially-dependent component
  // tables, and consecutive PT stages are themselves sequential (stage
  // k+1 is consulted only after stage k), so PT consumes components *
  // pt_stages physical stages — there is no sharing of a component group
  // across PT stages. (The previous accounting divided the PT stage count
  // by the component split, under-counting multi-stage PTs.) Dual-leg
  // processing reuses the same stages via recirculation and adds none.
  usage.stages_used = 2  // classification/filter + reporting
                      + layout.component_tables_per_logical
                      + layout.component_tables_per_logical *
                            layout.pt_stages;

  return usage;
}

std::vector<UtilizationRow> utilization(const ResourceUsage& usage,
                                        const TargetProfile& target) {
  auto pct = [](double used, double budget) {
    return budget <= 0.0 ? 0.0 : 100.0 * used / budget;
  };
  return {
      {"TCAM", pct(static_cast<double>(usage.tcam_bytes),
                   static_cast<double>(target.tcam_bytes))},
      {"SRAM", pct(static_cast<double>(usage.sram_bytes),
                   static_cast<double>(target.sram_bytes))},
      {"Hash Units", pct(usage.hash_units, target.hash_units)},
      {"Logical Tables", pct(usage.logical_tables, target.logical_tables)},
      {"Input Crossbars",
       pct(usage.input_crossbars, target.input_crossbars)},
  };
}

std::vector<std::string> validate_layout(const DartLayout& layout,
                                         const TargetProfile& target) {
  const ResourceUsage usage = estimate_usage(layout);
  std::vector<std::string> problems;
  auto check = [&problems](std::uint64_t used, std::uint64_t budget,
                           const char* what) {
    if (used > budget) {
      problems.push_back(std::string(what) + ": " + std::to_string(used) +
                         " exceeds budget " + std::to_string(budget));
    }
  };
  check(usage.sram_bytes, target.sram_bytes, "SRAM bytes");
  check(usage.tcam_bytes, target.tcam_bytes, "TCAM bytes");
  check(usage.hash_units, target.hash_units, "hash units");
  check(usage.logical_tables, target.logical_tables, "logical tables");
  check(usage.input_crossbars, target.input_crossbars, "input crossbars");
  check(usage.stages_used, target.stages, "pipeline stages");
  return problems;
}

}  // namespace dart::dataplane
