// A one-way-associative register stage table.
//
// Models the fundamental memory primitive of a high-speed match-action
// pipeline: per packet, exactly one slot (selected by a hash of the key) can
// be read-modified-written; there is no probing within a stage. Multi-way
// associativity is achieved only by stacking stages (see PacketTracker) and
// revisiting memory requires recirculating the packet.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hashing.hpp"

namespace dart::dataplane {

template <typename Entry>
class StageTable {
 public:
  StageTable(std::size_t size, std::uint64_t hash_seed,
             std::uint32_t stage_id)
      : hash_(hash_seed), stage_id_(stage_id),
        slots_(size == 0 ? 1 : size) {}

  std::size_t index_of(std::uint64_t key) const {
    return static_cast<std::size_t>(hash_(key, stage_id_) % slots_.size());
  }

  /// The single slot a key can occupy in this stage.
  Entry& slot_for(std::uint64_t key) { return slots_[index_of(key)]; }
  const Entry& slot_for(std::uint64_t key) const {
    return slots_[index_of(key)];
  }

  std::size_t size() const { return slots_.size(); }

  /// Number of slots for which `pred(entry)` holds (occupancy accounting).
  template <typename Pred>
  std::size_t count_if(Pred pred) const {
    std::size_t n = 0;
    for (const Entry& entry : slots_) {
      if (pred(entry)) ++n;
    }
    return n;
  }

 private:
  HashFamily hash_;
  std::uint32_t stage_id_;
  std::vector<Entry> slots_;
};

}  // namespace dart::dataplane
