// Analytic accounting of the data-plane resources a Dart deployment
// consumes, standing in for the hardware compiler report behind Table 1.
//
// The paper reports utilization percentages for TCAM, SRAM, hash units,
// logical tables, and input crossbars on Tofino 1 and Tofino 2. Without the
// proprietary toolchain we reproduce the same *inventory*: what each Dart
// component (Range Tracker spread over 3 component tables, k-stage Packet
// Tracker, payload-size lookup table (Section 4), flow-selection rules)
// costs, against published, order-of-magnitude chip budgets. Percentages are
// therefore simulated, not measured; DESIGN.md documents the substitution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dart::dataplane {

/// Per-chip budgets. Values are public order-of-magnitude figures: a few
/// tens of MB of SRAM per pipeline (the paper cites [19]), a few MB of
/// TCAM, and fixed per-stage hash/crossbar resources.
///
/// The totals (hash_units, input_crossbars, ...) feed the Table 1
/// utilization report; the per-stage figures below feed the static
/// pipeline checker (dataplane/verify), which reasons about stage-local
/// capacity rather than chip-wide sums. The two views are kept
/// consistent: total = stages * per-stage, and one crossbar unit carries
/// two key bytes (16 units/stage = 32 B/stage).
struct TargetProfile {
  std::string name;
  std::uint32_t stages = 12;
  std::uint64_t sram_bytes = 0;
  std::uint64_t tcam_bytes = 0;
  std::uint32_t hash_units = 0;
  std::uint32_t logical_tables = 0;
  std::uint32_t input_crossbars = 0;

  /// Stage-local budgets for the static checker.
  std::uint32_t hash_units_per_stage = 6;
  std::uint32_t tables_per_stage = 8;
  std::uint32_t crossbar_bytes_per_stage = 32;
  /// Stateful-ALU operand width: the widest register a single-stage
  /// read-modify-write can act on.
  std::uint32_t salu_width_bits = 32;
  /// Worst-case recirculation hops one packet may take before the
  /// recirculation port's bandwidth share is exceeded (Section 5).
  std::uint32_t max_recirculations_per_packet = 4;
};

TargetProfile tofino1_profile();
TargetProfile tofino2_profile();

/// Physical layout of one Dart instance.
struct DartLayout {
  std::size_t rt_slots = 1 << 16;
  std::size_t pt_slots = 1 << 17;
  std::uint32_t pt_stages = 1;
  /// The paper spreads each of RT and PT over 3 component tables because
  /// values must be acted on sequentially within a pass (Section 4).
  std::uint32_t component_tables_per_logical = 3;
  /// RT record: 4 B signature + 4 B left + 4 B right (+ flags).
  std::uint32_t rt_entry_bytes = 13;
  /// PT record: 4 B signature + 4 B eACK + 4 B timestamp + bookkeeping.
  std::uint32_t pt_entry_bytes = 16;
  /// Precomputed TCP payload-size lookup table (Section 4): one entry per
  /// (IP total length, TCP header length) combination in common ranges.
  std::uint32_t payload_lut_entries = (1480 - 40 + 1) * (15 - 5 + 1);
  /// Control-plane installed flow-selection rules (Section 4, "Specifying
  /// target flows") live in TCAM.
  std::uint32_t flow_filter_rules = 1024;
  bool both_legs = false;  ///< dual-leg monitoring duplicates role logic
};

struct ResourceUsage {
  std::uint64_t sram_bytes = 0;
  std::uint64_t tcam_bytes = 0;
  std::uint32_t hash_units = 0;
  std::uint32_t logical_tables = 0;
  std::uint32_t input_crossbars = 0;
  std::uint32_t stages_used = 0;
};

ResourceUsage estimate_usage(const DartLayout& layout);

/// Utilization percentage of `usage` against `target` for each Table 1 row.
struct UtilizationRow {
  std::string resource;
  double percent = 0.0;
};

std::vector<UtilizationRow> utilization(const ResourceUsage& usage,
                                        const TargetProfile& target);

/// Validate that a layout fits a chip: returns a human-readable problem per
/// exceeded budget (empty = fits). The paper's Tofino1 prototype must span
/// ingress+egress precisely because a too-large layout fails this check for
/// a single pipeline.
std::vector<std::string> validate_layout(const DartLayout& layout,
                                         const TargetProfile& target);

}  // namespace dart::dataplane
