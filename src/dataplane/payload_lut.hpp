// Precomputed TCP payload-size lookup (Section 4, "Computing the payload
// size").
//
// Computing payload = ip_total_len - 4*ip_hdr_len - 4*tcp_data_offset in
// the data plane costs multiple stages of 32-bit arithmetic. The prototype
// instead precomputes the result for the common parameter ranges — IP
// header length 5 words, total length 40..1480 bytes, TCP header 5..15
// words — and looks it up in one table, saving two Tofino stages. Inputs
// outside the precomputed range fall back to arithmetic (the paper notes
// the optimization is easily reversed).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace dart::dataplane {

class PayloadLut {
 public:
  static constexpr std::uint16_t kIpHeaderWords = 5;  // no IP options
  static constexpr std::uint16_t kMinTotalLen = 40;
  static constexpr std::uint16_t kMaxTotalLen = 1480;
  static constexpr std::uint16_t kMinTcpWords = 5;
  static constexpr std::uint16_t kMaxTcpWords = 15;

  PayloadLut();

  /// Table lookup; nullopt when the parameters fall outside the precomputed
  /// range (IP options, jumbo frames) and the slow arithmetic path must run.
  std::optional<std::uint16_t> lookup(std::uint16_t ip_total_len,
                                      std::uint16_t ip_header_words,
                                      std::uint16_t tcp_header_words) const;

  /// The reference arithmetic the table precomputes. Returns 0 when the
  /// headers exceed the total length (malformed packet).
  static std::uint16_t compute(std::uint16_t ip_total_len,
                               std::uint16_t ip_header_words,
                               std::uint16_t tcp_header_words);

  std::size_t entries() const { return table_.size(); }

 private:
  static std::size_t index(std::uint16_t total_len,
                           std::uint16_t tcp_words) {
    return static_cast<std::size_t>(total_len - kMinTotalLen) *
               (kMaxTcpWords - kMinTcpWords + 1) +
           (tcp_words - kMinTcpWords);
  }

  std::vector<std::uint16_t> table_;
};

}  // namespace dart::dataplane
