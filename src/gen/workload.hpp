// Multi-flow workload scenarios.
//
// These stand in for the paper's captures:
//   * CampusConfig     — the anonymized campus gateway trace (Sections 5, 6):
//                        a mix of wired and wireless client subnets, heavy-
//                        tailed flow sizes, ~72.5% incomplete handshakes,
//                        loss/reordering, and an ACK-stall long tail.
//   * SynFloodConfig   — the SYN flooding attack Dart must shrug off
//                        (Section 3.1 "Robust against congestion and SYN
//                        attacks").
//   * InterceptionConfig — the PEERING BGP interception experiment
//                        (Figures 7/8): a monitored long-lived flow whose
//                        path RTT step-jumps at attack onset.
//   * BufferbloatConfig  — remote-end bufferbloat RTT oscillation
//                        (Section 7 "Identifying bufferbloat").
//
// All builders are deterministic functions of their seed.
#pragma once

#include <cstdint>

#include "common/ipv4.hpp"
#include "gen/flow_sim.hpp"
#include "trace/trace.hpp"

namespace dart::gen {

struct CampusConfig {
  std::uint64_t seed = 42;
  std::uint32_t connections = 20000;  ///< includes incomplete handshakes
  Timestamp duration = sec(60);       ///< flow start times spread over this
  Timestamp start_offset = 0;         ///< shift all flow starts (for
                                      ///< composing phased scenarios)

  /// Fraction of connections that never complete the handshake; the paper
  /// measures 72.5% on the campus trace (Figure 10).
  double incomplete_fraction = 0.725;

  /// Fraction of complete connections from the wireless subnet (the paper
  /// collects 11.12M wireless vs 1.66M wired internal samples, Figure 6).
  double wireless_fraction = 0.85;

  Ipv4Prefix wired_subnet{Ipv4Addr{10, 8, 0, 0}, 16};
  Ipv4Prefix wireless_subnet{Ipv4Addr{10, 9, 0, 0}, 16};

  // Internal-leg RTT: lognormal per-flow base (ns median) with per-packet
  // jitter. Defaults reproduce Figure 6's contrast: >80% of wired internal
  // RTTs under 1 ms; wireless much larger with >20% above 20 ms.
  double wired_internal_median_ms = 0.35;
  double wired_internal_sigma = 0.7;
  double wireless_internal_median_ms = 5.0;
  double wireless_internal_sigma = 1.55;

  // External-leg RTT: lognormal per-flow base; defaults give a median
  // external RTT near the paper's ~13 ms with a 95th percentile in the tens
  // of ms (Figure 9b).
  double external_median_ms = 12.0;
  double external_sigma = 0.6;
  double per_packet_jitter_sigma = 0.08;

  // Flow sizes in segments (Pareto; heavy tail capped for bounded runtime).
  // Defaults target the paper's trace shape: ~98 packets per connection on
  // average across the 27.5% of connections that complete.
  double flow_segments_xm = 6.0;
  double flow_segments_alpha = 1.15;
  std::uint32_t flow_segments_cap = 2000;
  double upload_fraction_mean = 0.45;  ///< share of a flow's bytes going up.

  double loss_rate = 0.006;     ///< per packet per side of the monitor
  double reorder_prob = 0.006;  ///< upstream-of-monitor extra delay
  double ack_spike_prob = 0.0015;  ///< stalled-ACK long tail (Figure 9c)

  double abort_fraction = 0.06;  ///< complete flows that end without FIN
  double wraparound_fraction = 0.003;  ///< flows with ISN close to 2^32
};

trace::Trace build_campus(const CampusConfig& config);

struct SynFloodConfig {
  std::uint64_t seed = 7;
  std::uint32_t syn_count = 50000;
  Timestamp duration = sec(10);
  Ipv4Addr victim{198, 51, 100, 10};
  std::uint16_t victim_port = 443;
};

trace::Trace build_syn_flood(const SynFloodConfig& config);

struct InterceptionConfig {
  std::uint64_t seed = 11;
  Timestamp duration = sec(90);
  Timestamp attack_time = sec(36);  ///< the paper's attack lands at t~36 s
  double pre_attack_rtt_ms = 25.0;  ///< Figure 8: ~25 ms before
  double post_attack_rtt_ms = 120.0;  ///< ~120 ms after interception
  double jitter_sigma = 0.10;
  std::uint32_t background_flows = 0;  ///< optional campus-like noise
};

trace::Trace build_interception(const InterceptionConfig& config);

/// The Section 7 vulnerability: an attacker completes handshakes and then
/// streams data that is never acknowledged. Because Dart favours old
/// entries, the per-flow ranges stay "valid" forever and the PT fills with
/// records that will never match — unless the RT idle timeout is enabled.
/// Packets are synthesized directly (a real TCP sender would retransmit
/// and collapse its own range; the attacker deliberately does not).
struct StrandedAttackConfig {
  std::uint64_t seed = 19;
  std::uint32_t flows = 2000;
  std::uint32_t packets_per_flow = 40;
  Timestamp duration = sec(30);
  std::uint16_t mss = 1460;
  Ipv4Prefix source_subnet{Ipv4Addr{10, 9, 0, 0}, 16};
};

trace::Trace build_stranded_attack(const StrandedAttackConfig& config);

struct BufferbloatConfig {
  std::uint64_t seed = 13;
  Timestamp duration = sec(120);
  double base_rtt_ms = 40.0;
  double bloat_amplitude_ms = 160.0;
  Timestamp bloat_period = sec(25);
};

trace::Trace build_bufferbloat(const BufferbloatConfig& config);

/// The interception attack's monitored connection 4-tuple (client->server),
/// so detectors can filter for it when background flows are present.
FourTuple interception_tuple();

}  // namespace dart::gen
