#include "gen/flow_sim.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <vector>

namespace dart::gen {
namespace {

// Data direction within the connection. Acknowledgments for direction d
// travel in the opposite direction.
enum Dir : int { kUp = 0, kDown = 1 };  // kUp = client -> server.

constexpr Dir opposite(Dir d) { return d == kUp ? kDown : kUp; }

// Internal packet representation: the wire-level PacketRecord plus
// simulator-only knowledge (64-bit unwrapped sequence numbers, whether this
// is a retransmission, whether the ACK was sent optimistically).
struct SimPacket {
  PacketRecord pkt{};
  std::uint64_t seq64 = 0;
  std::uint64_t ack64 = 0;
  std::uint64_t span = 0;
  Dir dir = kUp;  ///< travel direction.
  bool rtx = false;
  bool optimistic = false;
  bool has_ack = false;
  /// The monitor misses this packet (models the paper's observation that
  /// the vantage point sometimes misses original ACKs, with a distant
  /// keep-alive re-ACK arriving much later — the long tail of Figure 9c).
  bool invisible_to_monitor = false;
};

enum class EventKind : std::uint8_t {
  kCross,       // packet passes the monitor
  kArrive,      // packet reaches the receiving endpoint
  kRto,         // retransmission timer for sender of .dir
  kDelayedAck,  // delayed-ACK timer for receiver of .dir
  kSendAck,     // deferred (spiked) ACK emission for receiver of .dir
};

struct Event {
  Timestamp t = 0;
  std::uint64_t order = 0;  // FIFO tiebreak for equal timestamps
  EventKind kind = EventKind::kCross;
  SimPacket packet{};
  Dir dir = kUp;
  std::uint64_t generation = 0;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.order > b.order;
  }
};

struct Segment {
  std::uint64_t start = 0;
  std::uint64_t end = 0;  // start + span
  std::uint16_t payload = 0;
  std::uint8_t flags = 0;
  int retx = 0;
  Timestamp first_sent = 0;
};

struct Sender {
  std::uint64_t total = 0;   // payload bytes to send
  std::uint64_t offset = 0;  // payload bytes already segmented
  std::uint64_t isn = 0;     // 64-bit unwrapped initial sequence number
  std::uint64_t snd_una = 0;
  std::uint64_t snd_nxt = 0;
  std::uint64_t data_start = 0;  // first payload sequence number
  bool syn_acked = false;
  bool fin_sent = false;
  bool aborted = false;
  std::map<std::uint64_t, Segment> inflight;  // keyed by end sequence
  int dup_acks = 0;
  double srtt_ns = 0.0;
  int backoff = 0;
  std::uint64_t rto_gen = 0;
};

struct Receiver {
  bool established = false;
  std::uint64_t rcv_nxt = 0;
  std::map<std::uint64_t, std::uint64_t> ooo;  // start -> end
  std::uint32_t unacked_segments = 0;
  bool delack_pending = false;
  std::uint64_t delack_gen = 0;
};

// Ground-truth bookkeeping per data direction, keyed by 64-bit eACK.
struct TruthEntry {
  Timestamp first_cross = 0;
  std::uint64_t start = 0;
  int crossings = 0;
  bool ambiguous = false;  // retransmitted (Karn exclusion)
};

class FlowSim {
 public:
  explicit FlowSim(const FlowProfile& profile)
      : p_(profile), rng_(mix64(profile.seed ^ hash_tuple(profile.tuple))) {}

  trace::Trace run();

 private:
  // --- event plumbing -----------------------------------------------------
  void push(Timestamp t, Event event) {
    event.t = t;
    event.order = next_order_++;
    queue_.push(std::move(event));
  }

  // --- transmission path --------------------------------------------------
  void transmit(SimPacket packet, Timestamp t);
  void on_cross(const SimPacket& packet, Timestamp t);
  void on_arrive(const SimPacket& packet, Timestamp t);

  // --- endpoint logic -----------------------------------------------------
  void send_segment(Dir dir, Segment& segment, Timestamp t, bool rtx);
  void send_pure_ack(Dir data_dir, Timestamp t, bool allow_spike);
  void emit_ack_packet(Dir data_dir, Timestamp t, bool invisible = false);
  void try_send(Dir dir, Timestamp t);
  void sender_on_ack(Dir dir, std::uint64_t ack64, bool pure_ack,
                     Timestamp t);
  void receiver_on_data(Dir dir, const SimPacket& packet, Timestamp t);
  void schedule_rto(Dir dir, Timestamp t);
  void on_rto(Dir dir, std::uint64_t generation, Timestamp t);
  void retransmit(Dir dir, Segment& segment, Timestamp t);
  void abort_flow();

  Timestamp current_rto(const Sender& sender) const;
  FourTuple tuple_of(Dir dir) const {
    return dir == kUp ? p_.tuple : p_.tuple.reversed();
  }

  const FlowProfile& p_;
  Rng rng_;
  trace::Trace trace_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::uint64_t next_order_ = 0;

  Sender sender_[2];
  Receiver receiver_[2];  // receiver_[d] receives data of direction d
  // FIFO enforcement per travel direction: paths deliver in order unless a
  // packet is explicitly selected for reordering, which bypasses the clamp
  // (so later packets overtake it).
  Timestamp last_cross_[2] = {0, 0};
  Timestamp last_arrive_[2] = {0, 0};
  std::map<std::uint64_t, TruthEntry> truth_[2];
  std::uint64_t highest_ack_crossed_[2] = {0, 0};
  bool highest_ack_seen_[2] = {false, false};
  bool flow_aborted_ = false;
};

Timestamp FlowSim::current_rto(const Sender& sender) const {
  const double base = sender.srtt_ns > 0.0
                          ? 2.0 * sender.srtt_ns
                          : 3.0 * static_cast<double>(p_.internal->floor(0) +
                                                      p_.external->floor(0));
  Timestamp rto = std::max<Timestamp>(
      p_.min_rto, static_cast<Timestamp>(base));
  // Exponential backoff, capped to keep event horizons bounded.
  for (int i = 0; i < std::min(sender.backoff, 6); ++i) rto *= 2;
  return std::min<Timestamp>(rto, sec(60));
}

trace::Trace FlowSim::run() {
  // Unwrapped ISNs: the wire sequence number is the low 32 bits, so choosing
  // an ISN near 2^32 exercises wraparound on the wire while the simulator's
  // arithmetic stays linear.
  sender_[kUp].isn = p_.isn_client;
  sender_[kUp].total = p_.bytes_up;
  sender_[kDown].isn = p_.isn_server;
  sender_[kDown].total = p_.bytes_down;
  for (Dir dir : {kUp, kDown}) {
    Sender& s = sender_[dir];
    s.snd_una = s.isn;
    s.snd_nxt = s.isn;
    s.data_start = s.isn + 1;  // SYN consumes one sequence number
  }

  // Client opens the connection.
  Segment syn{sender_[kUp].isn, sender_[kUp].isn + 1, 0, tcp_flag::kSyn, 0,
              0};
  sender_[kUp].snd_nxt = syn.end;
  send_segment(kUp, syn, p_.start, /*rtx=*/false);
  sender_[kUp].inflight.emplace(syn.end, syn);
  schedule_rto(kUp, p_.start);

  // Upper bound on events: generous multiple of the segment count so a
  // logic bug cannot spin forever.
  const std::uint64_t segments =
      (p_.bytes_up + p_.bytes_down) / std::max<std::uint16_t>(p_.mss, 1) + 16;
  const std::uint64_t max_events = 400 * segments + 100000;
  std::uint64_t processed = 0;

  while (!queue_.empty() && processed++ < max_events) {
    Event event = queue_.top();
    queue_.pop();
    switch (event.kind) {
      case EventKind::kCross:
        on_cross(event.packet, event.t);
        break;
      case EventKind::kArrive:
        if (!flow_aborted_) on_arrive(event.packet, event.t);
        break;
      case EventKind::kRto:
        if (!flow_aborted_) on_rto(event.dir, event.generation, event.t);
        break;
      case EventKind::kDelayedAck:
        if (!flow_aborted_ && receiver_[event.dir].delack_pending &&
            receiver_[event.dir].delack_gen == event.generation) {
          receiver_[event.dir].delack_pending = false;
          send_pure_ack(event.dir, event.t, /*allow_spike=*/true);
        }
        break;
      case EventKind::kSendAck:
        if (!flow_aborted_) emit_ack_packet(event.dir, event.t);
        break;
    }
  }

  trace_.sort_by_time();
  return std::move(trace_);
}

void FlowSim::transmit(SimPacket packet, Timestamp t) {
  const bool from_client = packet.dir == kUp;
  const RttModel& sender_leg = from_client ? *p_.internal : *p_.external;
  const RttModel& receiver_leg = from_client ? *p_.external : *p_.internal;

  const Timestamp to_monitor = sender_leg.sample(t, rng_) / 2;
  const Timestamp to_receiver = receiver_leg.sample(t, rng_) / 2;

  Timestamp cross_t = t + to_monitor;
  Timestamp arrive_t = cross_t + to_receiver;

  const bool reordered =
      p_.reorder_prob > 0.0 && rng_.bernoulli(p_.reorder_prob);
  if (reordered) {
    // Delay upstream of the monitor so both the monitor and the receiver
    // observe the packet out of order. Reordered packets bypass the FIFO
    // clamp below, letting subsequent packets overtake them.
    const Timestamp extra =
        p_.reorder_extra + static_cast<Timestamp>(
                               rng_.uniform() *
                               static_cast<double>(p_.reorder_extra));
    cross_t += extra;
    arrive_t += extra;
  }

  const int dir = packet.dir;
  if (!reordered) {
    // Per-direction FIFO: jitter must not spuriously reorder a burst.
    cross_t = std::max(cross_t, last_cross_[dir] + 1);
    arrive_t = std::max(arrive_t, last_arrive_[dir] + 1);
    last_arrive_[dir] = arrive_t;
  }

  if (p_.loss_sender_side > 0.0 && rng_.bernoulli(p_.loss_sender_side)) {
    return;  // lost before the monitor: invisible to the trace
  }

  if (!packet.invisible_to_monitor) {
    if (!reordered) last_cross_[dir] = cross_t;
    Event cross;
    cross.kind = EventKind::kCross;
    cross.packet = packet;
    push(cross_t, std::move(cross));
  }

  if (p_.loss_receiver_side > 0.0 && rng_.bernoulli(p_.loss_receiver_side)) {
    return;  // seen by the monitor, lost before the receiver
  }

  Event arrive;
  arrive.kind = EventKind::kArrive;
  arrive.packet = packet;
  push(arrive_t, std::move(arrive));
}

void FlowSim::on_cross(const SimPacket& packet, Timestamp t) {
  PacketRecord record = packet.pkt;
  record.ts = t;
  trace_.add(record);

  const Dir dir = packet.dir;
  if (packet.span > 0) {
    TruthEntry& entry = truth_[dir][packet.seq64 + packet.span];
    if (entry.crossings == 0) {
      entry.first_cross = t;
      entry.start = packet.seq64;
    }
    ++entry.crossings;
    // Ground truth is defined from the vantage point: a range is ambiguous
    // iff MORE THAN ONE copy crossed the monitor. A retransmission whose
    // original was lost upstream looks (and measures) exactly like a single
    // clean transmission here, so it stays sampleable.
    if (entry.crossings >= 2) entry.ambiguous = true;
  }

  if (packet.has_ack && !packet.optimistic) {
    const Dir acked = opposite(dir);
    if (!highest_ack_seen_[acked] ||
        packet.ack64 > highest_ack_crossed_[acked]) {
      highest_ack_seen_[acked] = true;
      highest_ack_crossed_[acked] = packet.ack64;
      auto it = truth_[acked].find(packet.ack64);
      if (it != truth_[acked].end() && it->second.crossings == 1 &&
          !it->second.ambiguous) {
        trace::TruthSample sample;
        sample.tuple = tuple_of(acked);
        sample.eack = static_cast<SeqNum>(packet.ack64);
        sample.seq_ts = it->second.first_cross;
        sample.ack_ts = t;
        trace_.add_truth(sample);
      }
    }
  }
}

void FlowSim::on_arrive(const SimPacket& packet, Timestamp t) {
  const Dir dir = packet.dir;
  const bool is_syn = (packet.pkt.flags & tcp_flag::kSyn) != 0;

  if (is_syn && !packet.has_ack) {
    // SYN arriving at the server.
    if (!p_.complete_handshake) return;  // unresponsive peer
    Receiver& rx = receiver_[kUp];
    if (!rx.established) {
      rx.established = true;
      rx.rcv_nxt = packet.seq64 + packet.span;
      Sender& down = sender_[kDown];
      Segment syn_ack{down.isn, down.isn + 1, 0,
                      static_cast<std::uint8_t>(tcp_flag::kSyn |
                                                tcp_flag::kAck),
                      0, 0};
      down.snd_nxt = syn_ack.end;
      send_segment(kDown, syn_ack, t, /*rtx=*/false);
      down.inflight.emplace(syn_ack.end, syn_ack);
      schedule_rto(kDown, t);
    }
    return;
  }

  if (is_syn && packet.has_ack) {
    // SYN-ACK arriving at the client: establish the down-direction receiver
    // before processing data/ack so the handshake ACK reflects it.
    Receiver& rx = receiver_[kDown];
    if (!rx.established) {
      rx.established = true;
      rx.rcv_nxt = packet.seq64 + packet.span;
      sender_on_ack(kUp, packet.ack64, /*pure_ack=*/false, t);
      send_pure_ack(kDown, t, /*allow_spike=*/false);  // handshake third
      try_send(kUp, t);
    } else {
      // Duplicate SYN-ACK (our handshake ACK was lost): re-ACK it.
      sender_on_ack(kUp, packet.ack64, /*pure_ack=*/false, t);
      send_pure_ack(kDown, t, /*allow_spike=*/false);
    }
    return;
  }

  // Regular segment: data first (so responses piggyback the new rcv_nxt),
  // then the acknowledgment it carries. Only pure ACKs (no payload) count
  // toward duplicate-ACK fast retransmit, per TCP's dup-ACK definition.
  if (packet.span > 0) receiver_on_data(dir, packet, t);
  if (packet.has_ack) {
    sender_on_ack(opposite(dir), packet.ack64, packet.span == 0, t);
  }
}

void FlowSim::send_segment(Dir dir, Segment& segment, Timestamp t, bool rtx) {
  if (segment.first_sent == 0) segment.first_sent = t;

  SimPacket packet;
  packet.dir = dir;
  packet.seq64 = segment.start;
  packet.span = segment.end - segment.start;
  packet.rtx = rtx;

  PacketRecord& record = packet.pkt;
  record.tuple = tuple_of(dir);
  record.seq = static_cast<SeqNum>(segment.start);
  record.payload = segment.payload;
  record.flags = segment.flags;
  record.outbound = dir == kUp;

  // Piggyback the current cumulative ACK when this endpoint has established
  // its receiving half (always true after the handshake). Carrying the ACK
  // discharges any pending delayed-ACK obligation — otherwise the timer
  // would later emit a redundant duplicate ACK no real stack sends.
  Receiver& rx = receiver_[opposite(dir)];
  if (rx.established) {
    packet.has_ack = true;
    packet.ack64 = rx.rcv_nxt;
    record.flags |= tcp_flag::kAck;
    record.ack = static_cast<SeqNum>(rx.rcv_nxt);
    rx.unacked_segments = 0;
    rx.delack_pending = false;
    ++rx.delack_gen;
  }

  transmit(packet, t);
}

void FlowSim::send_pure_ack(Dir data_dir, Timestamp t, bool allow_spike) {
  Receiver& rx = receiver_[data_dir];
  rx.unacked_segments = 0;
  rx.delack_pending = false;
  ++rx.delack_gen;

  if (allow_spike && p_.ack_spike_prob > 0.0 &&
      rng_.bernoulli(p_.ack_spike_prob)) {
    // ACK-visibility outage: the real ACK reaches the sender on time (no
    // retransmission), but the monitor misses it; a keep-alive re-ACK much
    // later is the first acknowledgment the vantage point observes.
    emit_ack_packet(data_dir, t, /*invisible=*/true);
    Event event;
    event.kind = EventKind::kSendAck;
    event.dir = data_dir;
    push(t + p_.ack_spike_delay, std::move(event));
    return;
  }
  emit_ack_packet(data_dir, t);
}

void FlowSim::emit_ack_packet(Dir data_dir, Timestamp t, bool invisible) {
  const Receiver& rx = receiver_[data_dir];
  if (!rx.established) return;
  const Dir travel = opposite(data_dir);
  const Sender& own_sender = sender_[travel];

  SimPacket packet;
  packet.dir = travel;
  packet.seq64 = own_sender.snd_nxt;
  packet.span = 0;
  packet.has_ack = true;
  packet.ack64 = rx.rcv_nxt;
  packet.invisible_to_monitor = invisible;

  if (p_.optimistic_ack_prob > 0.0 &&
      rng_.bernoulli(p_.optimistic_ack_prob)) {
    packet.ack64 = rx.rcv_nxt + p_.mss;  // acknowledge data not yet received
    packet.optimistic = true;
  }

  PacketRecord& record = packet.pkt;
  record.tuple = tuple_of(travel);
  record.seq = static_cast<SeqNum>(packet.seq64);
  record.ack = static_cast<SeqNum>(packet.ack64);
  record.flags = tcp_flag::kAck;
  record.payload = 0;
  record.outbound = travel == kUp;

  transmit(packet, t);
}

void FlowSim::try_send(Dir dir, Timestamp t) {
  Sender& s = sender_[dir];
  if (s.aborted || !s.syn_acked) return;
  const std::uint64_t window =
      std::uint64_t{p_.window_segments} * std::max<std::uint16_t>(p_.mss, 1);

  bool sent = false;
  while (s.offset < s.total && s.snd_nxt - s.snd_una < window) {
    const std::uint16_t len = static_cast<std::uint16_t>(
        std::min<std::uint64_t>(p_.mss, s.total - s.offset));
    Segment segment{s.snd_nxt, s.snd_nxt + len, len, tcp_flag::kPsh, 0, 0};
    s.snd_nxt += len;
    s.offset += len;
    send_segment(dir, segment, t, /*rtx=*/false);
    s.inflight.emplace(segment.end, segment);
    sent = true;
  }

  if (p_.fin_teardown && s.offset == s.total && !s.fin_sent &&
      s.snd_nxt - s.snd_una < window) {
    Segment fin{s.snd_nxt, s.snd_nxt + 1, 0, tcp_flag::kFin, 0, 0};
    s.snd_nxt += 1;
    s.fin_sent = true;
    send_segment(dir, fin, t, /*rtx=*/false);
    s.inflight.emplace(fin.end, fin);
    sent = true;
  }

  if (sent) schedule_rto(dir, t);
}

void FlowSim::sender_on_ack(Dir dir, std::uint64_t ack64, bool pure_ack,
                            Timestamp t) {
  Sender& s = sender_[dir];
  if (s.aborted) return;
  const std::uint64_t ack = std::min(ack64, s.snd_nxt);  // clamp optimistic

  if (ack > s.snd_una) {
    // New data acknowledged: retire covered segments, update SRTT from an
    // unambiguous exact match (Karn's rule).
    auto exact = s.inflight.find(ack);
    if (exact != s.inflight.end() && exact->second.retx == 0) {
      const double sample = static_cast<double>(t - exact->second.first_sent);
      s.srtt_ns = s.srtt_ns <= 0.0 ? sample : 0.875 * s.srtt_ns + 0.125 * sample;
    }
    while (!s.inflight.empty() && s.inflight.begin()->first <= ack) {
      s.inflight.erase(s.inflight.begin());
    }
    s.snd_una = ack;
    s.dup_acks = 0;
    s.backoff = 0;
    if (!s.syn_acked && ack > s.isn) s.syn_acked = true;
    if (!s.inflight.empty()) {
      schedule_rto(dir, t);
    } else {
      ++s.rto_gen;  // cancel outstanding timer
    }
    try_send(dir, t);
    return;
  }

  if (pure_ack && ack == s.snd_una && !s.inflight.empty()) {
    if (++s.dup_acks == 3) {
      // Fast retransmit the oldest outstanding segment.
      Segment& oldest = s.inflight.begin()->second;
      if (oldest.retx < p_.max_segment_retx) {
        retransmit(dir, oldest, t);
      }
      s.dup_acks = 0;
    }
  }
  // ack < snd_una: stale (reordered) ACK, ignored.
}

void FlowSim::receiver_on_data(Dir dir, const SimPacket& packet,
                               Timestamp t) {
  Receiver& rx = receiver_[dir];
  if (!rx.established) return;

  const std::uint64_t start = packet.seq64;
  const std::uint64_t end = packet.seq64 + packet.span;

  if (end <= rx.rcv_nxt) {
    // Fully duplicate (spurious retransmission): re-ACK immediately.
    send_pure_ack(dir, t, /*allow_spike=*/false);
    return;
  }

  if (start > rx.rcv_nxt) {
    // Hole: buffer and emit an immediate duplicate ACK.
    auto [it, inserted] = rx.ooo.emplace(start, end);
    if (!inserted && end > it->second) it->second = end;
    send_pure_ack(dir, t, /*allow_spike=*/false);
    return;
  }

  // In-order (possibly overlapping) data: advance over it and any buffered
  // contiguous out-of-order ranges.
  const bool filled_hole = !rx.ooo.empty();
  rx.rcv_nxt = end;
  auto it = rx.ooo.begin();
  while (it != rx.ooo.end() && it->first <= rx.rcv_nxt) {
    rx.rcv_nxt = std::max(rx.rcv_nxt, it->second);
    it = rx.ooo.erase(it);
  }

  const bool control = (packet.pkt.flags &
                        (tcp_flag::kFin | tcp_flag::kSyn)) != 0;
  if (filled_hole || control) {
    // Filling a hole triggers the cumulative ACK that inflates RTT samples
    // for reordered packets (Section 2.2); FINs are ACKed immediately.
    send_pure_ack(dir, t, /*allow_spike=*/true);
    return;
  }

  if (++rx.unacked_segments >= p_.ack_every) {
    send_pure_ack(dir, t, /*allow_spike=*/true);
  } else if (!rx.delack_pending) {
    rx.delack_pending = true;
    ++rx.delack_gen;
    Event event;
    event.kind = EventKind::kDelayedAck;
    event.dir = dir;
    event.generation = rx.delack_gen;
    push(t + p_.delayed_ack_timeout, std::move(event));
  }
}

void FlowSim::schedule_rto(Dir dir, Timestamp t) {
  Sender& s = sender_[dir];
  ++s.rto_gen;
  Event event;
  event.kind = EventKind::kRto;
  event.dir = dir;
  event.generation = s.rto_gen;
  push(t + current_rto(s), std::move(event));
}

void FlowSim::on_rto(Dir dir, std::uint64_t generation, Timestamp t) {
  Sender& s = sender_[dir];
  if (generation != s.rto_gen || s.inflight.empty() || s.aborted) return;

  Segment& oldest = s.inflight.begin()->second;
  const bool is_syn = (oldest.flags & tcp_flag::kSyn) != 0;
  const int limit = is_syn && !p_.complete_handshake ? p_.syn_retries
                                                     : p_.max_segment_retx;
  if (oldest.retx >= limit) {
    abort_flow();
    return;
  }
  ++s.backoff;
  retransmit(dir, oldest, t);
  schedule_rto(dir, t);
}

void FlowSim::retransmit(Dir dir, Segment& segment, Timestamp t) {
  ++segment.retx;
  // Karn's exclusion is applied when the retransmitted copy CROSSES the
  // monitor (see on_cross), not here at send time: ground truth is defined
  // from the vantage point's perspective, and an acknowledgment that
  // crosses before any retransmitted copy is unambiguous to the monitor. A
  // retransmission lost upstream of the monitor is invisible to any
  // passive tool there (the Section 7 limitation) and is deliberately not
  // penalized.
  send_segment(dir, segment, t, /*rtx=*/true);
}

void FlowSim::abort_flow() {
  flow_aborted_ = true;
  for (Dir dir : {kUp, kDown}) {
    sender_[dir].aborted = true;
    sender_[dir].inflight.clear();
    ++sender_[dir].rto_gen;
  }
}

}  // namespace

trace::Trace simulate_flow(const FlowProfile& profile) {
  assert(profile.internal && profile.external &&
         "FlowProfile requires RTT models for both legs");
  return FlowSim(profile).run();
}

}  // namespace dart::gen
