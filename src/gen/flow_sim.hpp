// Event-driven simulation of a single TCP connection as seen by a passive
// monitor between the client (internal network) and server (Internet).
//
// Topology:   client ---[internal leg]--- MONITOR ---[external leg]--- server
//
// The simulator implements simplified but protocol-faithful TCP endpoints:
//   * three-way handshake (optionally never completed: the paper finds 72.5%
//     of campus connections are incomplete handshakes, Figure 10)
//   * sliding-window data transfer in MSS-sized segments, both directions
//   * cumulative ACKs (ack-every-n), delayed ACKs, immediate duplicate ACKs
//     on out-of-order arrival — the behaviours that strand Packet Tracker
//     entries and drive Dart's lazy eviction (Sections 2.3, 3.2)
//   * loss on either side of the monitor, RTO and fast retransmit — the
//     retransmission ambiguity of Section 2.2
//   * reordering injected upstream of the monitor — the duplicate-ACK
//     ambiguity of Section 2.2
//   * optional optimistic ACKs (Section 7), ACK-delay spikes (the keep-alive
//     long-RTT tail of Figure 9c), FIN teardown or silent abort
//
// Alongside the packet stream, the simulator records ground truth: the RTT
// samples a perfect passive monitor would collect (exact eACK match, Karn
// exclusion of retransmitted ranges). Monitors are validated against it.
#pragma once

#include <cstdint>

#include "common/four_tuple.hpp"
#include "gen/rtt_model.hpp"
#include "trace/trace.hpp"

namespace dart::gen {

struct FlowProfile {
  FourTuple tuple{};   ///< client -> server; packets on it are "outbound".
  Timestamp start = 0;

  std::uint64_t bytes_up = 0;    ///< client -> server payload bytes.
  std::uint64_t bytes_down = 0;  ///< server -> client payload bytes.
  std::uint16_t mss = 1460;
  std::uint32_t window_segments = 8;  ///< max in-flight segments per side.

  std::uint32_t ack_every = 2;  ///< cumulative ACK one per n segments.
  Timestamp delayed_ack_timeout = msec(40);

  double loss_sender_side = 0.0;    ///< drop between sender and monitor.
  double loss_receiver_side = 0.0;  ///< drop between monitor and receiver.
  double reorder_prob = 0.0;        ///< extra delay upstream of the monitor.
  Timestamp reorder_extra = msec(2);

  double ack_spike_prob = 0.0;  ///< receiver stalls an ACK (keep-alive tail).
  Timestamp ack_spike_delay = sec(3);
  double optimistic_ack_prob = 0.0;  ///< misbehaving receiver (Section 7).

  bool complete_handshake = true;  ///< false: SYN(s) only, no server reply.
  int syn_retries = 1;             ///< SYN retransmits for incomplete flows.
  bool fin_teardown = true;        ///< false: connection just goes silent.

  SeqNum isn_client = 1000;
  SeqNum isn_server = 2000;

  Timestamp min_rto = msec(200);
  int max_segment_retx = 4;  ///< give up (abort flow) beyond this.

  RttModelPtr internal;  ///< client <-> monitor.
  RttModelPtr external;  ///< monitor <-> server.

  std::uint64_t seed = 1;
};

/// Simulate one connection; returns its monitor-observed, time-ordered
/// packet stream plus ground-truth samples (both legs' truth uses the
/// external leg convention: SEQ = outbound data matched by inbound ACKs, and
/// internal truth: SEQ = inbound data matched by outbound ACKs).
trace::Trace simulate_flow(const FlowProfile& profile);

}  // namespace dart::gen
