#include "gen/rtt_model.hpp"

#include <algorithm>

namespace dart::gen {

JitterRtt::JitterRtt(Timestamp base, double sigma, double min_factor)
    : base_(base), sigma_(sigma), min_factor_(min_factor) {}

Timestamp JitterRtt::sample(Timestamp, Rng& rng) const {
  const double factor =
      std::max(min_factor_, std::exp(rng.normal(0.0, sigma_)));
  return static_cast<Timestamp>(static_cast<double>(base_) * factor);
}

Timestamp JitterRtt::floor(Timestamp) const {
  return static_cast<Timestamp>(static_cast<double>(base_) * min_factor_);
}

StepRtt::StepRtt(RttModelPtr before, RttModelPtr after, Timestamp switch_time)
    : before_(std::move(before)),
      after_(std::move(after)),
      switch_time_(switch_time) {}

Timestamp StepRtt::sample(Timestamp t, Rng& rng) const {
  return t < switch_time_ ? before_->sample(t, rng) : after_->sample(t, rng);
}

Timestamp StepRtt::floor(Timestamp t) const {
  return t < switch_time_ ? before_->floor(t) : after_->floor(t);
}

RampRtt::RampRtt(Timestamp base, Timestamp amplitude, Timestamp period,
                 double jitter_sigma)
    : base_(base),
      amplitude_(amplitude),
      period_(period == 0 ? 1 : period),
      jitter_sigma_(jitter_sigma) {}

Timestamp RampRtt::sample(Timestamp t, Rng& rng) const {
  const Timestamp queue = floor(t) - base_;
  const double jitter =
      std::max(0.0, std::exp(rng.normal(0.0, jitter_sigma_)) - 1.0);
  return base_ + queue +
         static_cast<Timestamp>(static_cast<double>(base_) * jitter);
}

Timestamp RampRtt::floor(Timestamp t) const {
  const double phase =
      static_cast<double>(t % period_) / static_cast<double>(period_);
  return base_ +
         static_cast<Timestamp>(static_cast<double>(amplitude_) * phase);
}

SumRtt::SumRtt(RttModelPtr first, RttModelPtr second)
    : first_(std::move(first)), second_(std::move(second)) {}

Timestamp SumRtt::sample(Timestamp t, Rng& rng) const {
  return first_->sample(t, rng) + second_->sample(t, rng);
}

Timestamp SumRtt::floor(Timestamp t) const {
  return first_->floor(t) + second_->floor(t);
}

RttModelPtr sum_rtt(RttModelPtr first, RttModelPtr second) {
  return std::make_shared<SumRtt>(std::move(first), std::move(second));
}

RttModelPtr constant_rtt(Timestamp rtt) {
  return std::make_shared<ConstantRtt>(rtt);
}

RttModelPtr jitter_rtt(Timestamp base, double sigma, double min_factor) {
  return std::make_shared<JitterRtt>(base, sigma, min_factor);
}

RttModelPtr step_rtt(RttModelPtr before, RttModelPtr after,
                     Timestamp switch_time) {
  return std::make_shared<StepRtt>(std::move(before), std::move(after),
                                   switch_time);
}

RttModelPtr ramp_rtt(Timestamp base, Timestamp amplitude, Timestamp period,
                     double jitter_sigma) {
  return std::make_shared<RampRtt>(base, amplitude, period, jitter_sigma);
}

}  // namespace dart::gen
