#include "gen/workload.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dart::gen {
namespace {

// Well-known server ports weighted toward web traffic.
constexpr std::uint16_t kServerPorts[] = {443, 443, 443, 443, 443, 443,
                                          80,  80,  8080, 22};

Ipv4Addr random_host_in(const Ipv4Prefix& prefix, Rng& rng) {
  const std::uint32_t host_bits = 32U - prefix.length();
  const std::uint32_t span = host_bits >= 32
                                 ? ~std::uint32_t{0}
                                 : (std::uint32_t{1} << host_bits) - 1;
  // Avoid .0 network and broadcast-looking hosts for readability.
  const std::uint32_t host =
      1 + static_cast<std::uint32_t>(rng.uniform_int(0, span - 2));
  return Ipv4Addr{prefix.base().value() | host};
}

Ipv4Addr random_server(Rng& rng) {
  // Public-looking server pools: a handful of /16s stand in for CDNs and
  // cloud providers, so per-/24 aggregation in the analytics has structure.
  static constexpr std::uint32_t kPools[] = {
      (23U << 24) | (52U << 16),   // 23.52/16
      (52U << 24) | (84U << 16),   // 52.84/16
      (142U << 24) | (250U << 16), // 142.250/16
      (151U << 24) | (101U << 16), // 151.101/16
      (104U << 24) | (16U << 16),  // 104.16/16
  };
  const std::uint32_t pool =
      kPools[rng.uniform_int(0, std::size(kPools) - 1)];
  return Ipv4Addr{pool | static_cast<std::uint32_t>(rng.uniform_int(1, 0xFFFE))};
}

FourTuple random_tuple(Ipv4Addr client, Rng& rng) {
  FourTuple tuple;
  tuple.src_ip = client;
  tuple.dst_ip = random_server(rng);
  tuple.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
  tuple.dst_port = kServerPorts[rng.uniform_int(0, std::size(kServerPorts) - 1)];
  return tuple;
}

Timestamp lognormal_ns(Rng& rng, double median_ms, double sigma) {
  return from_ms(median_ms * std::exp(rng.normal(0.0, sigma)));
}

}  // namespace

trace::Trace build_campus(const CampusConfig& config) {
  Rng rng(config.seed);
  std::vector<trace::Trace> per_flow;
  per_flow.reserve(config.connections);

  for (std::uint32_t i = 0; i < config.connections; ++i) {
    Rng flow_rng = rng.fork(i + 1);

    const bool incomplete = flow_rng.bernoulli(config.incomplete_fraction);
    const bool wireless = flow_rng.bernoulli(config.wireless_fraction);
    const Ipv4Prefix& subnet =
        wireless ? config.wireless_subnet : config.wired_subnet;

    FlowProfile profile;
    profile.tuple = random_tuple(random_host_in(subnet, flow_rng), flow_rng);
    profile.start =
        config.start_offset +
        static_cast<Timestamp>(flow_rng.uniform() *
                               static_cast<double>(config.duration));
    profile.seed = flow_rng.next_u64();

    const Timestamp internal_base =
        wireless ? lognormal_ns(flow_rng, config.wireless_internal_median_ms,
                                config.wireless_internal_sigma)
                 : lognormal_ns(flow_rng, config.wired_internal_median_ms,
                                config.wired_internal_sigma);
    const Timestamp external_base = lognormal_ns(
        flow_rng, config.external_median_ms, config.external_sigma);
    profile.internal = jitter_rtt(std::max<Timestamp>(internal_base, usec(50)),
                                  config.per_packet_jitter_sigma);
    profile.external = jitter_rtt(std::max<Timestamp>(external_base, usec(200)),
                                  config.per_packet_jitter_sigma);

    if (incomplete) {
      profile.complete_handshake = false;
      profile.syn_retries = static_cast<int>(flow_rng.uniform_int(0, 2));
      profile.bytes_up = 0;
      profile.bytes_down = 0;
    } else {
      const double segments = std::min<double>(
          config.flow_segments_cap,
          flow_rng.pareto(config.flow_segments_xm,
                          config.flow_segments_alpha));
      const std::uint64_t total_bytes =
          static_cast<std::uint64_t>(segments) * profile.mss;
      const double up_share = std::clamp(
          flow_rng.normal(config.upload_fraction_mean, 0.2), 0.05, 0.95);
      profile.bytes_up = static_cast<std::uint64_t>(
          static_cast<double>(total_bytes) * up_share);
      profile.bytes_down = total_bytes - profile.bytes_up;
      profile.window_segments =
          static_cast<std::uint32_t>(flow_rng.uniform_int(4, 24));
      profile.ack_every =
          static_cast<std::uint32_t>(flow_rng.uniform_int(1, 3));
      profile.loss_sender_side = config.loss_rate;
      profile.loss_receiver_side = config.loss_rate;
      profile.reorder_prob = config.reorder_prob;
      profile.reorder_extra = msec(2) + usec(flow_rng.uniform_int(0, 3000));
      profile.ack_spike_prob = config.ack_spike_prob;
      profile.ack_spike_delay = sec(1) + msec(flow_rng.uniform_int(0, 9000));
      profile.fin_teardown = !flow_rng.bernoulli(config.abort_fraction);
      if (flow_rng.bernoulli(config.wraparound_fraction)) {
        // Start close enough to 2^32 that the flow wraps on the wire.
        profile.isn_client = ~SeqNum{0} - static_cast<SeqNum>(
            flow_rng.uniform_int(0, profile.bytes_up / 2 + 1));
        profile.isn_server = ~SeqNum{0} - static_cast<SeqNum>(
            flow_rng.uniform_int(0, profile.bytes_down / 2 + 1));
      } else {
        profile.isn_client = static_cast<SeqNum>(flow_rng.next_u64());
        profile.isn_server = static_cast<SeqNum>(flow_rng.next_u64());
      }
    }

    per_flow.push_back(simulate_flow(profile));
  }

  return trace::merge(std::move(per_flow));
}

trace::Trace build_syn_flood(const SynFloodConfig& config) {
  Rng rng(config.seed);
  std::vector<trace::Trace> per_flow;
  per_flow.reserve(config.syn_count);

  for (std::uint32_t i = 0; i < config.syn_count; ++i) {
    Rng flow_rng = rng.fork(i + 1);
    FlowProfile profile;
    // Spoofed sources: anywhere in 10/8 toward one victim service.
    profile.tuple.src_ip =
        Ipv4Addr{(10U << 24) |
                 static_cast<std::uint32_t>(flow_rng.uniform_int(1, 0xFFFFFE))};
    profile.tuple.src_port =
        static_cast<std::uint16_t>(flow_rng.uniform_int(1024, 65535));
    profile.tuple.dst_ip = config.victim;
    profile.tuple.dst_port = config.victim_port;
    profile.start = static_cast<Timestamp>(
        flow_rng.uniform() * static_cast<double>(config.duration));
    profile.complete_handshake = false;
    profile.syn_retries = 0;
    profile.internal = jitter_rtt(msec(1), 0.1);
    profile.external = jitter_rtt(msec(20), 0.1);
    profile.seed = flow_rng.next_u64();
    profile.isn_client = static_cast<SeqNum>(flow_rng.next_u64());
    per_flow.push_back(simulate_flow(profile));
  }

  return trace::merge(std::move(per_flow));
}

FourTuple interception_tuple() {
  FourTuple tuple;
  tuple.src_ip = Ipv4Addr{10, 8, 4, 21};     // Princeton-side client
  tuple.dst_ip = Ipv4Addr{198, 51, 100, 77}; // PEERING prefix host
  tuple.src_port = 41830;
  tuple.dst_port = 443;
  return tuple;
}

trace::Trace build_interception(const InterceptionConfig& config) {
  Rng rng(config.seed);

  FlowProfile profile;
  profile.tuple = interception_tuple();
  profile.start = 0;
  profile.seed = rng.next_u64();
  profile.internal = jitter_rtt(usec(400), 0.05);
  // The external path is rerouted through the adversary at attack_time:
  // ~25 ms -> ~120 ms (Figure 8).
  profile.external =
      step_rtt(jitter_rtt(from_ms(config.pre_attack_rtt_ms),
                          config.jitter_sigma),
               jitter_rtt(from_ms(config.post_attack_rtt_ms),
                          config.jitter_sigma),
               config.attack_time);

  // A steady interactive exchange: window 1 and per-segment ACKs yield a
  // continuous ~1 sample per RTT stream, like the paper's monitored session.
  profile.window_segments = 1;
  profile.ack_every = 1;
  profile.mss = 512;
  // Size the upload so the flow spans the full duration at one segment per
  // round trip: the per-round RTT differs before and after the attack.
  const Timestamp pre_span = std::min(config.attack_time, config.duration);
  const double pre_rounds =
      static_cast<double>(pre_span) /
      static_cast<double>(from_ms(config.pre_attack_rtt_ms));
  const double post_rounds =
      static_cast<double>(config.duration - pre_span) /
      static_cast<double>(from_ms(config.post_attack_rtt_ms));
  profile.bytes_up = static_cast<std::uint64_t>(
      (pre_rounds + post_rounds) * profile.mss * 1.02);
  profile.bytes_down = 0;

  std::vector<trace::Trace> traces;
  traces.push_back(simulate_flow(profile));

  if (config.background_flows > 0) {
    CampusConfig background;
    background.seed = config.seed ^ 0xBACC;
    background.connections = config.background_flows;
    background.duration = config.duration;
    traces.push_back(build_campus(background));
  }
  return trace::merge(std::move(traces));
}

trace::Trace build_stranded_attack(const StrandedAttackConfig& config) {
  Rng rng(config.seed);
  trace::Trace trace;
  trace.packets().reserve(static_cast<std::size_t>(config.flows) *
                          (config.packets_per_flow + 3));

  for (std::uint32_t f = 0; f < config.flows; ++f) {
    Rng flow_rng = rng.fork(f + 1);
    const FourTuple tuple =
        random_tuple(random_host_in(config.source_subnet, flow_rng),
                     flow_rng);
    const SeqNum isn_c = static_cast<SeqNum>(flow_rng.next_u64());
    const SeqNum isn_s = static_cast<SeqNum>(flow_rng.next_u64());
    const Timestamp start = static_cast<Timestamp>(
        flow_rng.uniform() * static_cast<double>(config.duration) / 4);

    auto emit = [&trace](Timestamp ts, const FourTuple& t, SeqNum seq,
                         SeqNum ack, std::uint16_t payload,
                         std::uint8_t flags, bool outbound) {
      PacketRecord p;
      p.ts = ts;
      p.tuple = t;
      p.seq = seq;
      p.ack = ack;
      p.payload = payload;
      p.flags = flags;
      p.outbound = outbound;
      trace.add(p);
    };

    // Complete handshake so the -SYN defense does not help.
    emit(start, tuple, isn_c, 0, 0, tcp_flag::kSyn, true);
    emit(start + msec(20), tuple.reversed(), isn_s, isn_c + 1, 0,
         tcp_flag::kSyn | tcp_flag::kAck, false);
    emit(start + msec(40), tuple, isn_c + 1, isn_s + 1, 0, tcp_flag::kAck,
         true);

    // A slow drip of in-order data spread across the trace, never ACKed:
    // the range keeps growing and every record looks forever-valid.
    SeqNum seq = isn_c + 1;
    const Timestamp spacing =
        (config.duration - start) / (config.packets_per_flow + 1);
    for (std::uint32_t i = 0; i < config.packets_per_flow; ++i) {
      emit(start + msec(50) + spacing * (i + 1), tuple, seq, isn_s + 1,
           config.mss, tcp_flag::kAck | tcp_flag::kPsh, true);
      seq += config.mss;
    }
  }

  trace.sort_by_time();
  return trace;
}

trace::Trace build_bufferbloat(const BufferbloatConfig& config) {
  Rng rng(config.seed);

  FlowProfile profile;
  profile.tuple = FourTuple{Ipv4Addr{10, 8, 9, 9}, Ipv4Addr{203, 0, 113, 50},
                            50222, 443};
  profile.start = 0;
  profile.seed = rng.next_u64();
  profile.internal = jitter_rtt(usec(300), 0.05);
  profile.external = ramp_rtt(from_ms(config.base_rtt_ms),
                              from_ms(config.bloat_amplitude_ms),
                              config.bloat_period, 0.05);
  profile.window_segments = 2;
  profile.ack_every = 1;
  profile.mss = 1200;
  const double mean_rtt_s =
      (config.base_rtt_ms + config.bloat_amplitude_ms / 2.0) / 1e3;
  const double rounds = static_cast<double>(config.duration) /
                        static_cast<double>(kNsPerSec) / mean_rtt_s;
  profile.bytes_up = static_cast<std::uint64_t>(
      rounds * profile.window_segments * profile.mss * 1.2);

  std::vector<trace::Trace> traces;
  traces.push_back(simulate_flow(profile));
  return trace::merge(std::move(traces));
}

}  // namespace dart::gen
