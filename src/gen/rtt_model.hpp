// Path round-trip-time models for the workload generator.
//
// Each leg of a simulated connection (client<->monitor "internal" leg and
// monitor<->server "external" leg, Section 2.1 of the paper) owns an
// RttModel. A packet traversing a leg at time t experiences half of one draw
// from the model, so a SEQ/ACK exchange samples the model twice — matching
// how real path jitter accrues per direction.
//
// Models provided:
//   ConstantRtt  — fixed propagation delay (unit tests, oracles)
//   JitterRtt    — base + lognormal multiplicative jitter (typical paths)
//   StepRtt      — switches model at a set time (BGP interception attack,
//                  Figures 7/8: ~25 ms -> ~120 ms at attack onset)
//   RampRtt      — base plus a sawtooth queueing component (bufferbloat,
//                  Section 7 "Identifying bufferbloat")
#pragma once

#include <memory>

#include "common/random.hpp"
#include "common/time.hpp"

namespace dart::gen {

class RttModel {
 public:
  virtual ~RttModel() = default;

  /// Draw a full round-trip time for a traversal starting at `t`.
  virtual Timestamp sample(Timestamp t, Rng& rng) const = 0;

  /// The deterministic floor of the model at time `t` (used by tests and by
  /// detection oracles that need the true propagation delay).
  virtual Timestamp floor(Timestamp t) const = 0;
};

using RttModelPtr = std::shared_ptr<const RttModel>;

class ConstantRtt final : public RttModel {
 public:
  explicit ConstantRtt(Timestamp rtt) : rtt_(rtt) {}
  Timestamp sample(Timestamp, Rng&) const override { return rtt_; }
  Timestamp floor(Timestamp) const override { return rtt_; }

 private:
  Timestamp rtt_;
};

/// base * exp(N(0, sigma)) — multiplicative lognormal jitter around a fixed
/// propagation floor; the floor itself is never undershot by more than the
/// model's clamp (samples below `base` are possible only down to min_factor).
class JitterRtt final : public RttModel {
 public:
  JitterRtt(Timestamp base, double sigma, double min_factor = 0.9);
  Timestamp sample(Timestamp t, Rng& rng) const override;
  Timestamp floor(Timestamp) const override;

 private:
  Timestamp base_;
  double sigma_;
  double min_factor_;
};

/// Delegates to `before` until `switch_time`, then to `after`.
class StepRtt final : public RttModel {
 public:
  StepRtt(RttModelPtr before, RttModelPtr after, Timestamp switch_time);
  Timestamp sample(Timestamp t, Rng& rng) const override;
  Timestamp floor(Timestamp t) const override;

 private:
  RttModelPtr before_;
  RttModelPtr after_;
  Timestamp switch_time_;
};

/// base + amplitude * sawtooth(t / period) + jitter — a standing queue that
/// builds and drains, the RTT signature of bufferbloat.
class RampRtt final : public RttModel {
 public:
  RampRtt(Timestamp base, Timestamp amplitude, Timestamp period,
          double jitter_sigma);
  Timestamp sample(Timestamp t, Rng& rng) const override;
  Timestamp floor(Timestamp t) const override;

 private:
  Timestamp base_;
  Timestamp amplitude_;
  Timestamp period_;
  double jitter_sigma_;
};

/// The concatenation of two path segments: each traversal samples both and
/// adds them. Used to compose multi-vantage-point views (Section 7,
/// "Deployment at multiple on-path vantage points"): a monitor at VP1 sees
/// external leg = segment(VP1,VP2) + segment(VP2,server).
class SumRtt final : public RttModel {
 public:
  SumRtt(RttModelPtr first, RttModelPtr second);
  Timestamp sample(Timestamp t, Rng& rng) const override;
  Timestamp floor(Timestamp t) const override;

 private:
  RttModelPtr first_;
  RttModelPtr second_;
};

RttModelPtr constant_rtt(Timestamp rtt);
RttModelPtr jitter_rtt(Timestamp base, double sigma, double min_factor = 0.9);
RttModelPtr step_rtt(RttModelPtr before, RttModelPtr after,
                     Timestamp switch_time);
RttModelPtr ramp_rtt(Timestamp base, Timestamp amplitude, Timestamp period,
                     double jitter_sigma);
RttModelPtr sum_rtt(RttModelPtr first, RttModelPtr second);

}  // namespace dart::gen
