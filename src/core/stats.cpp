#include "core/stats.hpp"

#include <iterator>

#include "common/strings.hpp"
#include "core/checkpoint.hpp"

namespace dart::core {

RuntimeHealth& RuntimeHealth::operator+=(const RuntimeHealth& other) {
  shed_batches += other.shed_batches;
  shed_packets += other.shed_packets;
  backpressure_events += other.backpressure_events;
  backoff_sleeps += other.backoff_sleeps;
  workers_killed += other.workers_killed;
  forced_detaches += other.forced_detaches;
  abandoned_packets += other.abandoned_packets;
  recovered += other.recovered;
  replayed_after_restore += other.replayed_after_restore;
  lost_to_crash += other.lost_to_crash;
  return *this;
}

std::string RuntimeHealth::summary() const {  // hotpath-ok: reporting only
  std::string out;  // hotpath-ok: end-of-run formatting
  out += "shed=" + format_count(shed_packets) + "pkt/" +
         format_count(shed_batches) + "batch";
  out += " backpressure=" + format_count(backpressure_events);
  out += " killed=" + format_count(workers_killed);
  out += " detached=" + format_count(forced_detaches);
  out += " abandoned=" + format_count(abandoned_packets);
  if (recovered != 0 || lost_to_crash != 0) {
    out += " recovered=" + format_count(recovered);
    out += " replayed=" + format_count(replayed_after_restore);
    out += " lost=" + format_count(lost_to_crash);
  }
  return out;
}

DartStats& DartStats::operator+=(const DartStats& other) {
  packets_processed += other.packets_processed;
  filtered_packets += other.filtered_packets;
  seq_candidates += other.seq_candidates;
  ack_candidates += other.ack_candidates;
  syn_ignored += other.syn_ignored;
  rt_new_flows += other.rt_new_flows;
  rt_flow_overwrites += other.rt_flow_overwrites;
  rt_idle_timeouts += other.rt_idle_timeouts;
  seq_tracked += other.seq_tracked;
  seq_in_order += other.seq_in_order;
  seq_hole_reanchors += other.seq_hole_reanchors;
  seq_retransmissions += other.seq_retransmissions;
  wraparound_resets += other.wraparound_resets;
  ack_advances += other.ack_advances;
  ack_duplicates += other.ack_duplicates;
  ack_below_left += other.ack_below_left;
  ack_optimistic += other.ack_optimistic;
  ack_no_entry += other.ack_no_entry;
  pt_inserted += other.pt_inserted;
  pt_evictions += other.pt_evictions;
  pt_lookup_hits += other.pt_lookup_hits;
  pt_lookup_misses += other.pt_lookup_misses;
  recirculations += other.recirculations;
  dual_role_recirculations += other.dual_role_recirculations;
  drops_budget += other.drops_budget;
  drops_stale += other.drops_stale;
  drops_cycle += other.drops_cycle;
  drops_useless += other.drops_useless;
  drops_shadow += other.drops_shadow;
  drops_policy += other.drops_policy;
  samples += other.samples;
  runtime += other.runtime;
  return *this;
}

namespace {

// One fixed field order shared by the writer and the reader. Pointer-to-
// member keeps the two in lockstep by construction: a counter added here is
// serialized, restored, and counted exactly once.
constexpr std::uint64_t DartStats::* kStatFields[] = {
    &DartStats::packets_processed,
    &DartStats::filtered_packets,
    &DartStats::seq_candidates,
    &DartStats::ack_candidates,
    &DartStats::syn_ignored,
    &DartStats::rt_new_flows,
    &DartStats::rt_flow_overwrites,
    &DartStats::rt_idle_timeouts,
    &DartStats::seq_tracked,
    &DartStats::seq_in_order,
    &DartStats::seq_hole_reanchors,
    &DartStats::seq_retransmissions,
    &DartStats::wraparound_resets,
    &DartStats::ack_advances,
    &DartStats::ack_duplicates,
    &DartStats::ack_below_left,
    &DartStats::ack_optimistic,
    &DartStats::ack_no_entry,
    &DartStats::pt_inserted,
    &DartStats::pt_evictions,
    &DartStats::pt_lookup_hits,
    &DartStats::pt_lookup_misses,
    &DartStats::recirculations,
    &DartStats::dual_role_recirculations,
    &DartStats::drops_budget,
    &DartStats::drops_stale,
    &DartStats::drops_cycle,
    &DartStats::drops_useless,
    &DartStats::drops_shadow,
    &DartStats::drops_policy,
    &DartStats::samples,
};

constexpr std::uint64_t RuntimeHealth::* kHealthFields[] = {
    &RuntimeHealth::shed_batches,
    &RuntimeHealth::shed_packets,
    &RuntimeHealth::backpressure_events,
    &RuntimeHealth::backoff_sleeps,
    &RuntimeHealth::workers_killed,
    &RuntimeHealth::forced_detaches,
    &RuntimeHealth::abandoned_packets,
    &RuntimeHealth::recovered,
    &RuntimeHealth::replayed_after_restore,
    &RuntimeHealth::lost_to_crash,
};

constexpr std::uint32_t kStatFieldCount = static_cast<std::uint32_t>(
    std::size(kStatFields) + std::size(kHealthFields));

}  // namespace

void DartStats::snapshot(CheckpointWriter& writer) const {
  writer.u32(kStatFieldCount);
  for (const auto field : kStatFields) writer.u64(this->*field);
  for (const auto field : kHealthFields) writer.u64(runtime.*field);
}

CheckpointError DartStats::restore(CheckpointReader& reader) {
  const std::uint32_t count = reader.u32();
  if (!reader.error() && count != kStatFieldCount) {
    reader.fail_field();
  }
  DartStats staged;
  for (const auto field : kStatFields) staged.*field = reader.u64();
  for (const auto field : kHealthFields) staged.runtime.*field = reader.u64();
  if (reader.error()) return reader.error();
  *this = staged;
  return CheckpointError::ok();
}

std::string DartStats::summary() const {  // hotpath-ok: reporting only
  std::string out;  // hotpath-ok: end-of-run formatting
  out += "packets=" + format_count(packets_processed);
  out += " seq=" + format_count(seq_candidates);
  out += " tracked=" + format_count(seq_tracked);
  out += " acks=" + format_count(ack_candidates);
  out += " samples=" + format_count(samples);
  out += " recirc/pkt=" + format_double(recirculations_per_packet(), 4);
  out += " evictions=" + format_count(pt_evictions);
  out += " drops(budget/stale/cycle/useless)=" + format_count(drops_budget) +
         "/" + format_count(drops_stale) + "/" + format_count(drops_cycle) +
         "/" + format_count(drops_useless);
  if (runtime.degraded()) out += " [degraded: " + runtime.summary() + "]";
  return out;
}

}  // namespace dart::core
