#include "core/stats.hpp"

#include "common/strings.hpp"

namespace dart::core {

RuntimeHealth& RuntimeHealth::operator+=(const RuntimeHealth& other) {
  shed_batches += other.shed_batches;
  shed_packets += other.shed_packets;
  backpressure_events += other.backpressure_events;
  backoff_sleeps += other.backoff_sleeps;
  workers_killed += other.workers_killed;
  forced_detaches += other.forced_detaches;
  abandoned_packets += other.abandoned_packets;
  return *this;
}

std::string RuntimeHealth::summary() const {  // hotpath-ok: reporting only
  std::string out;  // hotpath-ok: end-of-run formatting
  out += "shed=" + format_count(shed_packets) + "pkt/" +
         format_count(shed_batches) + "batch";
  out += " backpressure=" + format_count(backpressure_events);
  out += " killed=" + format_count(workers_killed);
  out += " detached=" + format_count(forced_detaches);
  out += " abandoned=" + format_count(abandoned_packets);
  return out;
}

DartStats& DartStats::operator+=(const DartStats& other) {
  packets_processed += other.packets_processed;
  filtered_packets += other.filtered_packets;
  seq_candidates += other.seq_candidates;
  ack_candidates += other.ack_candidates;
  syn_ignored += other.syn_ignored;
  rt_new_flows += other.rt_new_flows;
  rt_flow_overwrites += other.rt_flow_overwrites;
  rt_idle_timeouts += other.rt_idle_timeouts;
  seq_tracked += other.seq_tracked;
  seq_in_order += other.seq_in_order;
  seq_hole_reanchors += other.seq_hole_reanchors;
  seq_retransmissions += other.seq_retransmissions;
  wraparound_resets += other.wraparound_resets;
  ack_advances += other.ack_advances;
  ack_duplicates += other.ack_duplicates;
  ack_below_left += other.ack_below_left;
  ack_optimistic += other.ack_optimistic;
  ack_no_entry += other.ack_no_entry;
  pt_inserted += other.pt_inserted;
  pt_evictions += other.pt_evictions;
  pt_lookup_hits += other.pt_lookup_hits;
  pt_lookup_misses += other.pt_lookup_misses;
  recirculations += other.recirculations;
  dual_role_recirculations += other.dual_role_recirculations;
  drops_budget += other.drops_budget;
  drops_stale += other.drops_stale;
  drops_cycle += other.drops_cycle;
  drops_useless += other.drops_useless;
  drops_shadow += other.drops_shadow;
  drops_policy += other.drops_policy;
  samples += other.samples;
  runtime += other.runtime;
  return *this;
}

std::string DartStats::summary() const {  // hotpath-ok: reporting only
  std::string out;  // hotpath-ok: end-of-run formatting
  out += "packets=" + format_count(packets_processed);
  out += " seq=" + format_count(seq_candidates);
  out += " tracked=" + format_count(seq_tracked);
  out += " acks=" + format_count(ack_candidates);
  out += " samples=" + format_count(samples);
  out += " recirc/pkt=" + format_double(recirculations_per_packet(), 4);
  out += " evictions=" + format_count(pt_evictions);
  out += " drops(budget/stale/cycle/useless)=" + format_count(drops_budget) +
         "/" + format_count(drops_stale) + "/" + format_count(drops_cycle) +
         "/" + format_count(drops_useless);
  if (runtime.degraded()) out += " [degraded: " + runtime.summary() + "]";
  return out;
}

}  // namespace dart::core
