#include "core/stats.hpp"

#include "common/strings.hpp"

namespace dart::core {

std::string DartStats::summary() const {
  std::string out;
  out += "packets=" + format_count(packets_processed);
  out += " seq=" + format_count(seq_candidates);
  out += " tracked=" + format_count(seq_tracked);
  out += " acks=" + format_count(ack_candidates);
  out += " samples=" + format_count(samples);
  out += " recirc/pkt=" + format_double(recirculations_per_packet(), 4);
  out += " evictions=" + format_count(pt_evictions);
  out += " drops(budget/stale/cycle/useless)=" + format_count(drops_budget) +
         "/" + format_count(drops_stale) + "/" + format_count(drops_cycle) +
         "/" + format_count(drops_useless);
  return out;
}

}  // namespace dart::core
