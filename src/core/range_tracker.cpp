#include "core/range_tracker.hpp"

#include <algorithm>
#include <utility>

#include "common/hugepage.hpp"
#include "core/checkpoint.hpp"

namespace dart::core {

RangeTracker::RangeTracker(std::size_t size, std::uint64_t hash_seed,
                           bool wraparound_reset, Timestamp idle_timeout)
    : bounded_(size > 0),
      wraparound_reset_(wraparound_reset),
      idle_timeout_(idle_timeout),
      hash_(hash_seed) {
  if (bounded_) {
    // Reserve-advise-resize so a table sized past the TLB's reach is
    // faulted in on huge pages from the start (see hugepage.hpp).
    slots_.reserve(size);
    advise_hugepages(slots_.data(), size * sizeof(Entry));
    slots_.resize(size);
  }
}

std::uint64_t RangeTracker::ref_of(const FourTuple& tuple) const {
  return ref_of_hashed(hash_tuple(tuple));
}

const RangeTracker::Entry* RangeTracker::find_ref(std::uint64_t ref,
                                                  std::uint32_t sig) const {
  if (bounded_) {
    const Entry& slot = slots_[ref % slots_.size()];
    if (slot.valid && slot.sig == sig) return &slot;
    return nullptr;
  }
  auto it = map_.find(ref);
  if (it == map_.end() || !it->second.valid || it->second.sig != sig) {
    return nullptr;
  }
  return &it->second;
}

SeqOutcome RangeTracker::on_seq(const FourTuple& tuple, SeqNum seq,
                                SeqNum eack, Timestamp now) {
  return on_seq_hashed(hash_tuple(tuple), seq, eack, now);
}

SeqOutcome RangeTracker::on_seq_hashed(std::uint64_t tuple_hash, SeqNum seq,
                                       SeqNum eack, Timestamp now,
                                       std::uint64_t ref) {
  SeqOutcome outcome;
  const std::uint32_t sig = fold_signature(tuple_hash);

  Entry* entry = nullptr;
  bool occupied_by_other = false;
  if (bounded_) {
    Entry& slot =
        slots_[ref != kNoRef ? ref : ref_of_hashed(tuple_hash)];
    if (slot.valid && slot.sig == sig) {
      entry = &slot;
    } else {
      occupied_by_other = slot.valid;
      entry = &slot;
      entry->valid = false;  // claim below
    }
  } else {
    auto [it, inserted] = map_.try_emplace(tuple_hash);
    entry = &it->second;
    if (inserted) entry->valid = false;
  }

  // Idle timeout: a range whose ACK edge stopped progressing is abandoned
  // and the slot re-used as if the flow were new (Section 7).
  if (entry->valid && expired(*entry, now)) {
    entry->valid = false;
    outcome.timed_out = true;
  }

  if (!entry->valid) {
    outcome.new_flow = true;
    outcome.overwrote = occupied_by_other;
    *entry = Entry{true, sig, seq, eack, now};
    outcome.decision = SeqDecision::kTrackNew;
    outcome.track = true;
    return outcome;
  }

  // Sequence-number wraparound: the segment's end crossed zero. The paper's
  // prototype resets the range, forgoing pre-wrap samples (Section 4).
  if (wraparound_reset_ && eack < seq) {
    entry->left = 0;
    entry->right = eack;
    entry->last_progress = now;
    outcome.decision = SeqDecision::kWraparoundReset;
    outcome.track = true;
    return outcome;
  }

  if (seq_le(eack, entry->right)) {
    // Retransmission: the whole range becomes ambiguous (Figure 4c).
    entry->left = entry->right;
    outcome.decision = SeqDecision::kRetransmission;
    return outcome;
  }

  if (seq == entry->right) {
    // Normal in-order growth (Figure 4a).
    entry->right = eack;
    outcome.decision = SeqDecision::kTrackInOrder;
    outcome.track = true;
    return outcome;
  }

  if (seq_gt(seq, entry->right)) {
    // Hole in the sequence space: keep only the newest contiguous range
    // (Figure 4d); samples below `seq` are forgone.
    entry->left = seq;
    entry->right = eack;
    entry->last_progress = now;
    outcome.decision = SeqDecision::kTrackAfterHole;
    outcome.track = true;
    return outcome;
  }

  // seq < right < eack: a retransmission that also carries new bytes.
  // Conservatively collapse; the next in-order segment re-anchors the range
  // through the hole path.
  entry->left = entry->right;
  outcome.decision = SeqDecision::kRetransmission;
  return outcome;
}

AckDecision RangeTracker::on_ack(const FourTuple& tuple, SeqNum ack,
                                 bool pure_ack, Timestamp now) {
  return on_ack_hashed(hash_tuple(tuple), ack, pure_ack, now);
}

AckDecision RangeTracker::on_ack_hashed(std::uint64_t tuple_hash, SeqNum ack,
                                        bool pure_ack, Timestamp now,
                                        std::uint64_t ref) {
  Entry* entry = nullptr;
  if (bounded_) {
    Entry& slot =
        slots_[ref != kNoRef ? ref : ref_of_hashed(tuple_hash)];
    if (slot.valid && slot.sig == fold_signature(tuple_hash)) entry = &slot;
  } else {
    auto it = map_.find(tuple_hash);
    if (it != map_.end() && it->second.valid) entry = &it->second;
  }
  if (entry == nullptr) return AckDecision::kNoEntry;
  if (expired(*entry, now)) {
    // Abandoned range: even the awaited ACK is ignored (the paper accepts
    // forgoing these with a large-enough timeout).
    entry->valid = false;
    return AckDecision::kNoEntry;
  }

  if (ack == entry->left) {
    if (!pure_ack) {
      // A data segment repeating the current cumulative ACK acknowledges
      // nothing new and signals nothing; ignore it.
      return AckDecision::kBelowLeft;
    }
    // Duplicate ACK: explicit marker of loss or reordering; the range is
    // now ambiguous (Figure 4c).
    entry->left = entry->right;
    return AckDecision::kDuplicate;
  }
  if (seq_lt(ack, entry->left)) return AckDecision::kBelowLeft;
  if (seq_gt(ack, entry->right)) return AckDecision::kOptimistic;

  entry->left = ack;
  entry->last_progress = now;
  return AckDecision::kAdvance;
}

bool RangeTracker::still_valid(std::uint64_t ref, std::uint32_t flow_sig,
                               SeqNum eack, Timestamp now) const {
  const Entry* entry = find_ref(ref, flow_sig);
  if (entry == nullptr) return false;
  if (expired(*entry, now)) return false;
  return seq_in_left_open(eack, entry->left, entry->right);
}

std::size_t RangeTracker::occupied() const {
  if (!bounded_) return map_.size();
  return static_cast<std::size_t>(
      std::count_if(slots_.begin(), slots_.end(),
                    [](const Entry& e) { return e.valid; }));
}

// ---------------------------------------------------------------------------
// Checkpointing (quiesce-time only, never on the per-packet path).
//
// Layout: u8 mode (1 bounded / 0 unbounded), u64 geometry (slot count when
// bounded, 0 otherwise), u64 live-entry count, then per entry
// {u64 ref, u32 sig, u32 left, u32 right, u64 last_progress} where `ref` is
// the slot index (bounded) or the 64-bit tuple-hash key (unbounded). Entries
// are emitted in strictly increasing ref order — slot scan order is already
// sorted, map keys are sorted explicitly — so equal table states always
// serialize to identical bytes.

void RangeTracker::snapshot(CheckpointWriter& writer) const {
  writer.u8(bounded_ ? 1 : 0);
  writer.u64(bounded_ ? slots_.size() : 0);
  writer.u64(occupied());
  auto put = [&writer](std::uint64_t ref, const Entry& entry) {
    writer.u64(ref);
    writer.u32(entry.sig);
    writer.u32(entry.left);
    writer.u32(entry.right);
    writer.u64(entry.last_progress);
  };
  if (bounded_) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].valid) put(i, slots_[i]);
    }
    return;
  }
  std::vector<std::uint64_t> keys;
  keys.reserve(map_.size());
  for (const auto& [key, entry] : map_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) put(key, map_.at(key));
}

CheckpointError RangeTracker::restore(CheckpointReader& reader) {
  const bool bounded = reader.u8() != 0;
  const std::uint64_t geometry = reader.u64();
  const std::uint64_t count = reader.u64();
  if (reader.error()) return reader.error();
  if (bounded != bounded_ ||
      geometry != (bounded_ ? slots_.size() : std::uint64_t{0})) {
    return reader.error_here(CheckpointErrorCode::kGeometryMismatch);
  }

  // Stage everything locally; the live tables are untouched until the whole
  // section has decoded cleanly.
  std::vector<Entry> staged_slots;
  std::unordered_map<std::uint64_t, Entry> staged_map;
  if (bounded_) staged_slots.resize(slots_.size());

  bool have_prev = false;
  std::uint64_t prev_ref = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t ref = reader.u64();
    Entry entry;
    entry.valid = true;
    entry.sig = reader.u32();
    entry.left = reader.u32();
    entry.right = reader.u32();
    entry.last_progress = reader.u64();
    if (reader.error()) return reader.error();
    if (have_prev && ref <= prev_ref) {
      // Non-canonical order (or a duplicate ref): reject rather than let a
      // tampered image double-assign a slot.
      reader.fail_field();
      return reader.error();
    }
    if (bounded_) {
      if (ref >= slots_.size()) {
        reader.fail_field();
        return reader.error();
      }
      staged_slots[static_cast<std::size_t>(ref)] = entry;
    } else {
      staged_map.emplace(ref, entry);
    }
    have_prev = true;
    prev_ref = ref;
  }

  slots_ = std::move(staged_slots);
  map_ = std::move(staged_map);
  return CheckpointError::ok();
}

}  // namespace dart::core
