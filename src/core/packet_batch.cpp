#include "core/packet_batch.hpp"

namespace dart::core {

void PacketBatch::build(std::span<const PacketRecord> tile, LegMode leg,
                        bool include_syn) {
  const bool external =
      leg == LegMode::kExternal || leg == LegMode::kBoth;
  const bool internal =
      leg == LegMode::kInternal || leg == LegMode::kBoth;
  begin(tile);
  for (std::size_t i = 0; i < size; ++i) {
    decode_lane(i, external, internal, include_syn);
  }
}

}  // namespace dart::core
