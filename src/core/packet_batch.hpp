// PacketBatch: struct-of-arrays decode of one tile of the packet stream.
//
// The scalar pipeline interleaves per-packet decode (leg/role
// classification, tuple hashing, expected-ACK computation) with the RT/PT
// probes that depend on it, so every table miss stalls with no useful work
// to hide behind. The batched path splits the two: build() decodes a whole
// tile into parallel arrays first — role bits, forward/reverse tuple
// hashes, expected ACKs, timestamps — and the process loop then walks the
// arrays branch-light, issuing software prefetches for the RT slot and PT
// stage rows a fixed distance ahead of their probes.
//
// The view is a *decode cache*, not a semantic layer: every value stored
// here is exactly what the scalar path would compute for the same packet,
// and DartMonitor dispatches both paths through the same role handlers.
// The batch differential suite holds the two to byte-identical snapshots.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/four_tuple.hpp"
#include "common/packet.hpp"
#include "common/seqnum.hpp"
#include "common/time.hpp"
#include "core/config.hpp"

namespace dart::core {

namespace batch_role {
// One bit per (direction, leg) role a packet can play. A packet holds two
// bits only when both legs are monitored and it is data one way and an ACK
// the other (the paper's dual-role recirculation case).
inline constexpr std::uint8_t kSeqExternal = 0x1;
inline constexpr std::uint8_t kAckExternal = 0x2;
inline constexpr std::uint8_t kSeqInternal = 0x4;
inline constexpr std::uint8_t kAckInternal = 0x8;
inline constexpr std::uint8_t kSeqAny = kSeqExternal | kSeqInternal;
inline constexpr std::uint8_t kAckAny = kAckExternal | kAckInternal;
}  // namespace batch_role

/// Classify one packet into role bits. Must remain the exact mirror of the
/// scalar if/else chain this replaced in DartMonitor::process: within each
/// leg the SEQ direction wins (`else if`), which matters for a data packet
/// that also carries an ACK flag in the same direction.
inline std::uint8_t classify_roles(const PacketRecord& packet, bool external,
                                   bool internal) {
  std::uint8_t roles = 0;
  if (external) {
    // External leg: outbound data awaits inbound ACKs (Section 2.1).
    if (packet.outbound && packet.carries_data()) {
      roles |= batch_role::kSeqExternal;
    } else if (!packet.outbound && packet.is_ack()) {
      roles |= batch_role::kAckExternal;
    }
  }
  if (internal) {
    // Internal leg: inbound data awaits outbound ACKs.
    if (!packet.outbound && packet.carries_data()) {
      roles |= batch_role::kSeqInternal;
    } else if (packet.outbound && packet.is_ack()) {
      roles |= batch_role::kAckInternal;
    }
  }
  return roles;
}

struct PacketBatch {
  /// Tile width. 256 packets keeps the whole view (~30 KB of lanes) inside
  /// L1/L2 alongside the packets it decodes, and matches the runtime's
  /// default ring batch so one dequeued batch is one tile.
  static constexpr std::size_t kCapacity = 256;

  /// Widest PT stage layout the precomputed-row lanes cover; the pipeline
  /// lint caps real configurations well below this. A monitor configured
  /// beyond it simply skips row precomputation (correctness is unaffected —
  /// probes fall back to hashing in place).
  static constexpr std::uint32_t kMaxPtStages = 8;

  std::size_t size = 0;
  const PacketRecord* packets = nullptr;  ///< the tile this view decodes

  std::array<std::uint8_t, kCapacity> roles;
  /// hash_tuple(tuple) when a SEQ role is set; the RT row index, the PT key
  /// and the 4-byte signature all derive from it without rehashing.
  std::array<std::uint64_t, kCapacity> seq_hash;
  /// hash_tuple(tuple.reversed()) when an ACK role is set — the data
  /// direction an ACK acknowledges.
  std::array<std::uint64_t, kCapacity> ack_hash;
  /// expected_ack() when a SEQ role is set (payload-range decode).
  std::array<SeqNum, kCapacity> eack;
  std::array<Timestamp, kCapacity> ts;

  // Precomputed table rows (filled by DartMonitor::precompute_lane, not
  // build(): they need the trackers' hash families). Each lane holds the
  // exact slot references the scalar path would derive for the same packet;
  // the probes consume them so every row hash is computed once per packet,
  // and the precompute pass doubles as the pipelined prefetch sweep running
  // a fixed distance ahead of the probes.
  std::array<std::uint64_t, kCapacity> rt_seq_ref;
  std::array<std::uint64_t, kCapacity> rt_ack_ref;
  std::array<std::uint32_t, kCapacity * kMaxPtStages> pt_seq_idx;
  std::array<std::uint32_t, kCapacity * kMaxPtStages> pt_ack_idx;

  std::uint32_t* pt_seq_rows(std::size_t lane) {
    return &pt_seq_idx[lane * kMaxPtStages];
  }
  std::uint32_t* pt_ack_rows(std::size_t lane) {
    return &pt_ack_idx[lane * kMaxPtStages];
  }
  const std::uint32_t* pt_seq_rows(std::size_t lane) const {
    return &pt_seq_idx[lane * kMaxPtStages];
  }
  const std::uint32_t* pt_ack_rows(std::size_t lane) const {
    return &pt_ack_idx[lane * kMaxPtStages];
  }

  /// Point the view at up to kCapacity packets of `tile` without decoding
  /// any lane. Callers then fill lanes one by one with decode_lane() —
  /// the monitor interleaves its precompute/prefetch wavefront with the
  /// decode loop so table-row fetches overlap decode work instead of being
  /// issued in a burst (most of which the core's bounded outstanding-miss
  /// queues would silently drop).
  void begin(std::span<const PacketRecord> tile) {
    size = tile.size() < kCapacity ? tile.size() : kCapacity;
    packets = tile.data();
  }

  /// Decode lane `i` (roles, hashes, expected ACK, timestamp) from the
  /// packet begin() pointed it at. Lanes of inactive roles are zeroed, not
  /// left stale, so downstream reads are deterministic and a rerun over the
  /// same tile rebuilds identical lanes. The precomputed-row lanes are NOT
  /// touched here; they are valid only after DartMonitor::precompute_lane
  /// ran over the decoded lane.
  void decode_lane(std::size_t i, bool external, bool internal,
                   bool include_syn) {
    const PacketRecord& packet = packets[i];
    ts[i] = packet.ts;
    // A handshake packet the -SYN rule will drop gets no roles and no
    // hashes: the admission gate rejects it before the lanes are read.
    const std::uint8_t packet_roles =
        (!include_syn && packet.is_syn())
            ? 0
            : classify_roles(packet, external, internal);
    roles[i] = packet_roles;
    const bool seq = (packet_roles & batch_role::kSeqAny) != 0;
    const bool ack = (packet_roles & batch_role::kAckAny) != 0;
    seq_hash[i] = seq ? hash_tuple(packet.tuple) : 0;
    eack[i] = seq ? packet.expected_ack() : 0;
    ack_hash[i] = ack ? hash_tuple(packet.tuple.reversed()) : 0;
  }

  /// begin() + decode_lane() over the whole tile, for callers with no
  /// per-lane work to interleave.
  void build(std::span<const PacketRecord> tile, LegMode leg,
             bool include_syn);
};

}  // namespace dart::core
