// RTT samples and sample sinks.
#pragma once

#include <functional>
#include <vector>

#include "common/four_tuple.hpp"
#include "common/seqnum.hpp"
#include "common/time.hpp"
#include "core/config.hpp"

namespace dart::core {

/// One matched SEQ/ACK pair. The tuple is the data (SEQ) direction; `leg`
/// says which side of the monitor the round trip covered.
struct RttSample {
  FourTuple tuple{};
  SeqNum eack = 0;
  Timestamp seq_ts = 0;
  Timestamp ack_ts = 0;
  LegMode leg = LegMode::kExternal;

  constexpr Timestamp rtt() const { return ack_ts - seq_ts; }

  friend constexpr bool operator==(const RttSample&, const RttSample&) =
      default;
};

/// Strict weak ordering on all fields — a total order, so sorting any
/// permutation of a sample multiset yields one canonical sequence. The
/// sharded runtime's deterministic merge and the multiset-equality tests
/// both rest on this.
constexpr bool sample_less(const RttSample& lhs, const RttSample& rhs) {
  if (lhs.seq_ts != rhs.seq_ts) return lhs.seq_ts < rhs.seq_ts;
  if (lhs.ack_ts != rhs.ack_ts) return lhs.ack_ts < rhs.ack_ts;
  if (!(lhs.tuple == rhs.tuple)) return lhs.tuple < rhs.tuple;
  if (lhs.eack != rhs.eack) return lhs.eack < rhs.eack;
  return static_cast<int>(lhs.leg) < static_cast<int>(rhs.leg);
}

using SampleCallback = std::function<void(const RttSample&)>;

/// A measurement-range collapse: the Range Tracker inferred a
/// retransmission or reordering ambiguity and reset the flow's range.
/// Section 3.1: the frequency of collapses is itself a congestion signal —
/// collapses happen exactly when loss/reordering do.
struct CollapseEvent {
  FourTuple tuple{};  ///< data (SEQ) direction
  Timestamp ts = 0;
  LegMode leg = LegMode::kExternal;
  bool from_retransmission = false;  ///< else: duplicate-ACK inference

  friend bool operator==(const CollapseEvent&, const CollapseEvent&) =
      default;
};

using CollapseCallback = std::function<void(const CollapseEvent&)>;

/// An ACK beyond the flow's right edge: either a misbehaving receiver
/// acknowledging data it has not received (Section 7, "Dealing with
/// optimistic ACKs" — Dart "can be easily extended to detect and report
/// optimistic ACKs") or severe ACK-path corruption. Dart ignores the ACK;
/// this event lets the operator see who is doing it.
struct OptimisticAckEvent {
  FourTuple tuple{};  ///< data (SEQ) direction; the acker is tuple.dst
  SeqNum ack = 0;
  Timestamp ts = 0;
  LegMode leg = LegMode::kExternal;

  friend bool operator==(const OptimisticAckEvent&,
                         const OptimisticAckEvent&) = default;
};

using OptimisticAckCallback = std::function<void(const OptimisticAckEvent&)>;

/// Convenience sink collecting samples into a vector.
class VectorSink {
 public:
  SampleCallback callback() {
    return [this](const RttSample& sample) { samples_.push_back(sample); };
  }
  const std::vector<RttSample>& samples() const { return samples_; }
  std::vector<RttSample>& samples() { return samples_; }

 private:
  std::vector<RttSample> samples_;
};

/// Interface for the analytics module's preemptive-discard hook
/// (Section 3.3): before recirculating an evicted record, ask whether it can
/// still produce a sample the analytics cares about.
class UsefulnessFilter {
 public:
  // hotpath-ok: interface invoked only on PT eviction, not per packet
  virtual ~UsefulnessFilter() = default;

  /// True when a record whose SEQ crossed at `seq_ts`, re-evaluated at
  /// `now`, could still yield a useful sample.
  // hotpath-ok: invoked only on PT eviction, not per packet
  virtual bool useful(Timestamp seq_ts, Timestamp now) const = 0;
};

}  // namespace dart::core
