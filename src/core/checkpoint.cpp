#include "core/checkpoint.hpp"

#include <cstring>
#include <fstream>

#include "common/hashing.hpp"
#include "common/strings.hpp"
#include "core/stats.hpp"

namespace dart::core {
namespace {

constexpr std::uint8_t kMagic[4] = {'D', 'C', 'K', 'P'};

std::uint32_t image_crc(const CheckpointImage& image) {
  return crc32(std::span<const std::uint8_t>(image.bytes)
                   .subspan(kCheckpointCrcStart));
}

std::uint32_t le32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

std::uint64_t le64(const std::uint8_t* p) {
  return std::uint64_t{le32(p)} | (std::uint64_t{le32(p + 4)} << 32);
}

}  // namespace

const char* to_string(CheckpointErrorCode code) {
  switch (code) {
    case CheckpointErrorCode::kNone:
      return "ok";
    case CheckpointErrorCode::kTruncated:
      return "truncated image";
    case CheckpointErrorCode::kBadMagic:
      return "bad magic";
    case CheckpointErrorCode::kBadVersion:
      return "unsupported version";
    case CheckpointErrorCode::kCrcMismatch:
      return "crc mismatch";
    case CheckpointErrorCode::kBadSectionHeader:
      return "bad section header";
    case CheckpointErrorCode::kDuplicateSection:
      return "duplicate section";
    case CheckpointErrorCode::kMissingSection:
      return "missing section";
    case CheckpointErrorCode::kBadFieldValue:
      return "bad field value";
    case CheckpointErrorCode::kGeometryMismatch:
      return "geometry mismatch";
    case CheckpointErrorCode::kTrailingBytes:
      return "trailing bytes";
    case CheckpointErrorCode::kUnsupported:
      return "restore unsupported";
    case CheckpointErrorCode::kIoError:
      return "i/o error";
  }
  return "unknown";
}

std::string CheckpointError::to_string() const {
  std::string out = core::to_string(code);
  if (code != CheckpointErrorCode::kNone &&
      code != CheckpointErrorCode::kIoError) {
    out += " at byte offset " + format_count(offset);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Writer.

CheckpointWriter::CheckpointWriter(const SnapshotMeta& meta) {
  image_.bytes.reserve(256);
  for (const std::uint8_t byte : kMagic) image_.bytes.push_back(byte);
  u32(kCheckpointVersion);
  u32(0);  // CRC, stamped by seal()
  u64(meta.epoch);
  u64(meta.cursor);
  u64(meta.sample_cursor);
  u32(0);  // section count, stamped by seal()
}

void CheckpointWriter::u8(std::uint8_t value) {
  image_.bytes.push_back(value);
}

void CheckpointWriter::u16(std::uint16_t value) {
  u8(static_cast<std::uint8_t>(value & 0xFF));
  u8(static_cast<std::uint8_t>(value >> 8));
}

void CheckpointWriter::u32(std::uint32_t value) {
  u16(static_cast<std::uint16_t>(value & 0xFFFF));
  u16(static_cast<std::uint16_t>(value >> 16));
}

void CheckpointWriter::u64(std::uint64_t value) {
  u32(static_cast<std::uint32_t>(value & 0xFFFF'FFFF));
  u32(static_cast<std::uint32_t>(value >> 32));
}

void CheckpointWriter::patch_u32(std::size_t offset, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    image_.bytes[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((value >> (8 * i)) & 0xFF);
  }
}

void CheckpointWriter::patch_u64(std::size_t offset, std::uint64_t value) {
  patch_u32(offset, static_cast<std::uint32_t>(value & 0xFFFF'FFFF));
  patch_u32(offset + 4, static_cast<std::uint32_t>(value >> 32));
}

void CheckpointWriter::begin_section(CheckpointSection id) {
  u32(static_cast<std::uint32_t>(id));
  open_section_length_at_ = image_.bytes.size();
  u64(0);  // payload length, patched by end_section()
  open_section_payload_at_ = image_.bytes.size();
  section_open_ = true;
  ++section_count_;
}

void CheckpointWriter::end_section() {
  patch_u64(open_section_length_at_,
            image_.bytes.size() - open_section_payload_at_);
  section_open_ = false;
}

CheckpointImage CheckpointWriter::seal() {
  if (section_open_) end_section();
  patch_u32(kCheckpointHeaderBytes - 4, section_count_);
  patch_u32(kCheckpointCrcOffset, image_crc(image_));
  return std::move(image_);
}

void reseal_checkpoint(CheckpointImage& image) {
  if (image.bytes.size() < kCheckpointHeaderBytes) return;
  const std::uint32_t crc = image_crc(image);
  for (int i = 0; i < 4; ++i) {
    image.bytes[kCheckpointCrcOffset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFF);
  }
}

// ---------------------------------------------------------------------------
// Reader.

CheckpointReader::CheckpointReader(std::span<const std::uint8_t> payload,
                                   std::uint64_t base_offset)
    : payload_(payload), base_offset_(base_offset) {}

bool CheckpointReader::take(std::size_t n) {
  if (error_) return false;
  if (payload_.size() - pos_ < n) {
    error_ = CheckpointError::at(CheckpointErrorCode::kTruncated,
                                 base_offset_ + payload_.size());
    return false;
  }
  last_read_at_ = pos_;
  pos_ += n;
  return true;
}

std::uint8_t CheckpointReader::u8() {
  if (!take(1)) return 0;
  return payload_[pos_ - 1];
}

std::uint16_t CheckpointReader::u16() {
  if (!take(2)) return 0;
  return static_cast<std::uint16_t>(std::uint16_t{payload_[pos_ - 2]} |
                                    (std::uint16_t{payload_[pos_ - 1]} << 8));
}

std::uint32_t CheckpointReader::u32() {
  if (!take(4)) return 0;
  return le32(payload_.data() + pos_ - 4);
}

std::uint64_t CheckpointReader::u64() {
  if (!take(8)) return 0;
  return le64(payload_.data() + pos_ - 8);
}

void CheckpointReader::fail_field() {
  if (error_) return;
  error_ = CheckpointError::at(CheckpointErrorCode::kBadFieldValue,
                               base_offset_ + last_read_at_);
}

CheckpointError CheckpointReader::error_here(CheckpointErrorCode code) const {
  return CheckpointError::at(code, base_offset_ + last_read_at_);
}

CheckpointError CheckpointReader::finish() const {
  if (error_) return error_;
  if (pos_ != payload_.size()) {
    return CheckpointError::at(CheckpointErrorCode::kTrailingBytes,
                               base_offset_ + pos_);
  }
  return CheckpointError::ok();
}

// ---------------------------------------------------------------------------
// Envelope validation.

CheckpointError read_info(const CheckpointImage& image, CheckpointInfo* info) {
  const auto& bytes = image.bytes;
  if (bytes.size() < kCheckpointHeaderBytes) {
    return CheckpointError::at(CheckpointErrorCode::kTruncated, bytes.size());
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return CheckpointError::at(CheckpointErrorCode::kBadMagic, 0);
  }
  const std::uint32_t version = le32(bytes.data() + 4);
  if (info != nullptr) info->version = version;
  if (version != kCheckpointVersion) {
    return CheckpointError::at(CheckpointErrorCode::kBadVersion, 4);
  }
  const std::uint32_t stored_crc = le32(bytes.data() + kCheckpointCrcOffset);
  const std::uint32_t computed_crc = image_crc(image);
  if (info != nullptr) {
    info->stored_crc = stored_crc;
    info->computed_crc = computed_crc;
    info->meta.epoch = le64(bytes.data() + 12);
    info->meta.cursor = le64(bytes.data() + 20);
    info->meta.sample_cursor = le64(bytes.data() + 28);
    info->sections.clear();
  }
  if (stored_crc != computed_crc) {
    return CheckpointError::at(CheckpointErrorCode::kCrcMismatch,
                               kCheckpointCrcOffset);
  }
  const std::uint32_t section_count =
      le32(bytes.data() + kCheckpointHeaderBytes - 4);

  std::size_t pos = kCheckpointHeaderBytes;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    if (bytes.size() - pos < 12) {
      return CheckpointError::at(CheckpointErrorCode::kBadSectionHeader, pos);
    }
    const std::uint32_t id = le32(bytes.data() + pos);
    const std::uint64_t length = le64(bytes.data() + pos + 4);
    pos += 12;
    if (length > bytes.size() - pos) {
      return CheckpointError::at(CheckpointErrorCode::kBadSectionHeader,
                                 pos - 8);
    }
    if (info != nullptr) {
      info->sections.push_back(CheckpointSectionInfo{id, pos, length});
    }
    pos += static_cast<std::size_t>(length);
  }
  if (pos != bytes.size()) {
    return CheckpointError::at(CheckpointErrorCode::kTrailingBytes, pos);
  }
  return CheckpointError::ok();
}

CheckpointError read_stats(const CheckpointImage& image, DartStats* stats) {
  CheckpointInfo info;
  if (const CheckpointError err = read_info(image, &info)) return err;
  for (const CheckpointSectionInfo& section : info.sections) {
    if (section.id != static_cast<std::uint32_t>(CheckpointSection::kStats)) {
      continue;
    }
    CheckpointReader reader(
        std::span<const std::uint8_t>(image.bytes)
            .subspan(static_cast<std::size_t>(section.offset),
                     static_cast<std::size_t>(section.length)),
        section.offset);
    DartStats staged;
    if (const CheckpointError err = staged.restore(reader)) return err;
    if (const CheckpointError err = reader.finish()) return err;
    *stats = staged;
    return CheckpointError::ok();
  }
  return CheckpointError::at(CheckpointErrorCode::kMissingSection,
                             image.bytes.size());
}

// ---------------------------------------------------------------------------
// File I/O.

CheckpointError save_checkpoint(const CheckpointImage& image,
                                const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return CheckpointError::at(CheckpointErrorCode::kIoError, 0);
  out.write(reinterpret_cast<const char*>(image.bytes.data()),
            static_cast<std::streamsize>(image.bytes.size()));
  if (!out) return CheckpointError::at(CheckpointErrorCode::kIoError, 0);
  return CheckpointError::ok();
}

CheckpointError load_checkpoint(const std::string& path,
                                CheckpointImage* image) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return CheckpointError::at(CheckpointErrorCode::kIoError, 0);
  image->bytes.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
  if (in.bad()) return CheckpointError::at(CheckpointErrorCode::kIoError, 0);
  return CheckpointError::ok();
}

}  // namespace dart::core
