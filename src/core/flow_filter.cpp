#include "core/flow_filter.hpp"

#include <utility>

#include "core/checkpoint.hpp"

namespace dart::core {

// Layout: u64 rule count, then per rule {u32 src_base, u8 src_len,
// u32 dst_base, u8 dst_len, u16 sp_lo, u16 sp_hi, u16 dp_lo, u16 dp_hi,
// u8 track}. Rule order is the match order, so it is preserved verbatim.

void FlowFilter::snapshot(CheckpointWriter& writer) const {
  writer.u64(rules_.size());
  for (const FlowRule& rule : rules_) {
    writer.u32(rule.src.base().value());
    writer.u8(static_cast<std::uint8_t>(rule.src.length()));
    writer.u32(rule.dst.base().value());
    writer.u8(static_cast<std::uint8_t>(rule.dst.length()));
    writer.u16(rule.src_port.lo);
    writer.u16(rule.src_port.hi);
    writer.u16(rule.dst_port.lo);
    writer.u16(rule.dst_port.hi);
    writer.u8(rule.track ? 1 : 0);
  }
}

CheckpointError FlowFilter::restore(CheckpointReader& reader) {
  const std::uint64_t count = reader.u64();
  std::vector<FlowRule> staged;
  auto read_prefix = [&reader](Ipv4Prefix* out) {
    const std::uint32_t base = reader.u32();
    const std::uint8_t length = reader.u8();
    if (reader.error()) return;
    const Ipv4Prefix prefix{Ipv4Addr{base}, length};
    if (length > 32 || prefix.base().value() != base) {
      // A length beyond /32 or base bits outside the mask would be silently
      // rewritten by construction, breaking byte-stable round-trips.
      reader.fail_field();
      return;
    }
    *out = prefix;
  };
  for (std::uint64_t i = 0; i < count; ++i) {
    FlowRule rule;
    read_prefix(&rule.src);
    read_prefix(&rule.dst);
    rule.src_port.lo = reader.u16();
    rule.src_port.hi = reader.u16();
    rule.dst_port.lo = reader.u16();
    rule.dst_port.hi = reader.u16();
    const std::uint8_t track = reader.u8();
    if (!reader.error() && track > 1) reader.fail_field();
    if (reader.error()) return reader.error();
    rule.track = track != 0;
    staged.push_back(rule);
  }
  rules_ = std::move(staged);
  return CheckpointError::ok();
}

}  // namespace dart::core
