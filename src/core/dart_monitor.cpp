#include "core/dart_monitor.hpp"

#include <utility>

#include "common/hashing.hpp"
#include "core/config_check.hpp"

namespace dart::core {

// ensure_feasible runs before any table is built: an infeasible config
// (zero PT stages, fewer PT slots than stages, ...) throws
// std::invalid_argument carrying the pipeline checker's diagnostics —
// the same ones dart-pipeline-lint prints.
DartMonitor::DartMonitor(const DartConfig& config, SampleCallback on_sample)
    : config_(ensure_feasible(config)),
      on_sample_(std::move(on_sample)),
      rt_(config.rt_size, config.hash_seed, config.wraparound_reset,
          config.rt_idle_timeout),
      pt_(config.pt_size, config.pt_stages, config.policy,
          mix64(config.hash_seed ^ 0x9e3779b97f4a7c15ULL)) {
  if (config_.shadow_rt) {
    // Identical geometry and seed so rt_ref slot references are valid in
    // both copies.
    shadow_rt_ = std::make_unique<RangeTracker>(  // hotpath-ok: ctor only
        config_.rt_size, config_.hash_seed, config_.wraparound_reset,
        config_.rt_idle_timeout);
    shadow_backlog_.reserve(config_.shadow_sync_interval);
  }
}

void DartMonitor::buffer_for_shadow(const PacketRecord& packet) {
  shadow_backlog_.push_back(packet);
  if (shadow_backlog_.size() >= config_.shadow_sync_interval) sync_shadow();
}

void DartMonitor::sync_shadow() {
  // Replay the backlog into the shadow copy with the same role
  // classification the main pipeline used, without touching stats or PT.
  const bool external = config_.leg == LegMode::kExternal ||
                        config_.leg == LegMode::kBoth;
  const bool internal = config_.leg == LegMode::kInternal ||
                        config_.leg == LegMode::kBoth;
  for (const PacketRecord& packet : shadow_backlog_) {
    if (external) {
      if (packet.outbound && packet.carries_data()) {
        shadow_rt_->on_seq(packet.tuple, packet.seq, packet.expected_ack(),
                           packet.ts);
      } else if (!packet.outbound && packet.is_ack()) {
        shadow_rt_->on_ack(packet.tuple.reversed(), packet.ack,
                           !packet.carries_data(), packet.ts);
      }
    }
    if (internal) {
      if (!packet.outbound && packet.carries_data()) {
        shadow_rt_->on_seq(packet.tuple, packet.seq, packet.expected_ack(),
                           packet.ts);
      } else if (packet.outbound && packet.is_ack()) {
        shadow_rt_->on_ack(packet.tuple.reversed(), packet.ack,
                           !packet.carries_data(), packet.ts);
      }
    }
  }
  shadow_backlog_.clear();
}

// Shared admission gate of the scalar and batched paths: the checks that
// run before role dispatch, in scalar order.
bool DartMonitor::admit(const PacketRecord& packet) {
  ++stats_.packets_processed;

  // Operator flow selection (Section 4): untracked connections are skipped
  // before any state is touched.
  if (flow_filter_ != nullptr && !flow_filter_->tracks(packet.tuple)) {
    ++stats_.filtered_packets;
    return false;
  }

  // The -SYN rule drops handshake packets outright (Section 3.1: no RT/PT
  // state before the handshake completes, which also defangs SYN floods).
  if (!config_.include_syn && packet.is_syn()) {
    ++stats_.syn_ignored;
    return false;
  }

  if (shadow_rt_) buffer_for_shadow(packet);
  return true;
}

void DartMonitor::process(const PacketRecord& packet) {
  if (!admit(packet)) return;

  const bool external = config_.leg == LegMode::kExternal ||
                        config_.leg == LegMode::kBoth;
  const bool internal = config_.leg == LegMode::kInternal ||
                        config_.leg == LegMode::kBoth;
  const std::uint8_t roles = classify_roles(packet, external, internal);
  const std::uint64_t seq_hash =
      (roles & batch_role::kSeqAny) != 0 ? hash_tuple(packet.tuple) : 0;
  const std::uint64_t ack_hash = (roles & batch_role::kAckAny) != 0
                                     ? hash_tuple(packet.tuple.reversed())
                                     : 0;
  const SeqNum eack =
      (roles & batch_role::kSeqAny) != 0 ? packet.expected_ack() : 0;
  process_roles(packet, roles, packet.ts, seq_hash, ack_hash, eack);
}

// Dispatch one packet's role bits. The order is fixed — external SEQ,
// external ACK, internal SEQ, internal ACK — and matches the scalar
// if/else chain this replaced, so both paths touch the tables in the same
// sequence.
void DartMonitor::process_roles(const PacketRecord& packet,
                                std::uint8_t roles, Timestamp now,
                                std::uint64_t seq_hash,
                                std::uint64_t ack_hash, SeqNum eack,
                                std::uint64_t rt_seq_ref,
                                std::uint64_t rt_ack_ref,
                                const std::uint32_t* pt_seq_idx,
                                const std::uint32_t* pt_ack_idx) {
  int count = 0;
  if ((roles & batch_role::kSeqExternal) != 0) {
    handle_seq(packet.tuple, packet.seq, eack, now, LegMode::kExternal,
               seq_hash, rt_seq_ref, pt_seq_idx);
    ++count;
  }
  if ((roles & batch_role::kAckExternal) != 0) {
    handle_ack(packet.tuple.reversed(), packet.ack, now,
               !packet.carries_data(), LegMode::kExternal, ack_hash,
               rt_ack_ref, pt_ack_idx);
    ++count;
  }
  if ((roles & batch_role::kSeqInternal) != 0) {
    handle_seq(packet.tuple, packet.seq, eack, now, LegMode::kInternal,
               seq_hash, rt_seq_ref, pt_seq_idx);
    ++count;
  }
  if ((roles & batch_role::kAckInternal) != 0) {
    handle_ack(packet.tuple.reversed(), packet.ack, now,
               !packet.carries_data(), LegMode::kInternal, ack_hash,
               rt_ack_ref, pt_ack_idx);
    ++count;
  }

  if (count == 2) {
    // Monitoring both legs makes this packet both a SEQ and an ACK; the
    // hardware achieves that with one recirculation per such packet
    // (Section 5, "Monitoring the external and internal legs
    // simultaneously").
    ++stats_.dual_role_recirculations;
    ++stats_.recirculations;
  }
}

void DartMonitor::process_all(std::span<const PacketRecord> packets) {
  for (const PacketRecord& packet : packets) process(packet);
}

// Per-lane hash precomputation: derive the RT slot reference and PT stage
// rows lane `i`'s probes will touch, store them in the batch lanes, and
// start pulling each row toward L2 as it is computed. Only meaningful for
// stage counts the lanes cover (kMaxPtStages) — the caller checks once per
// batch.
void DartMonitor::precompute_lane(PacketBatch& batch, std::size_t i) const {
  const std::uint8_t roles = batch.roles[i];
  if ((roles & batch_role::kSeqAny) != 0) {
    batch.rt_seq_ref[i] = rt_.ref_of_hashed(batch.seq_hash[i]);
    rt_.prefetch_ref_far(batch.rt_seq_ref[i]);
    pt_.precompute(fold_signature(batch.seq_hash[i]), batch.eack[i],
                   batch.pt_seq_rows(i), /*all_stages=*/false);
  }
  if ((roles & batch_role::kAckAny) != 0) {
    batch.rt_ack_ref[i] = rt_.ref_of_hashed(batch.ack_hash[i]);
    rt_.prefetch_ref_far(batch.rt_ack_ref[i]);
    pt_.precompute(fold_signature(batch.ack_hash[i]), batch.packets[i].ack,
                   batch.pt_ack_rows(i), /*all_stages=*/true);
  }
}

// Near-distance companion of precompute_lane(): promote lane `i`'s rows
// from L2 to L1 using the stored references — no hash work left to do.
void DartMonitor::promote_lane(const PacketBatch& batch,
                               std::size_t i) const {
  const std::uint8_t roles = batch.roles[i];
  if ((roles & batch_role::kSeqAny) != 0) {
    rt_.prefetch_ref_near(batch.rt_seq_ref[i]);
    pt_.prefetch_rows(batch.pt_seq_rows(i), /*all_stages=*/false);
  }
  if ((roles & batch_role::kAckAny) != 0) {
    rt_.prefetch_ref_near(batch.rt_ack_ref[i]);
    pt_.prefetch_rows(batch.pt_ack_rows(i), /*all_stages=*/true);
  }
}

void DartMonitor::process_batch(std::span<const PacketRecord> packets) {
  PacketBatch batch;  // ~30 KB of SoA lanes, stack-allocated per call
  // Row reuse requires the lanes to cover every PT stage; wider-than-lane
  // configurations (beyond anything the pipeline lint admits) simply skip
  // precomputation and the probes hash in place.
  const bool rows_precomputed =
      pt_.stage_count() <= PacketBatch::kMaxPtStages;
  // How far the two prefetch sweeps run ahead of the probe loop. Software-
  // pipelined on purpose: each processed packet advances two staggered
  // wavefronts — the far one computes lane `i + kFar`'s rows and starts
  // their DRAM fetches toward L2 (whose miss queue is several times deeper
  // than the L1 fill buffers, so this is where the memory-level parallelism
  // comes from), and the near one promotes lane `i + kNear`'s already-
  // staged rows to L1 right before their probes. Keeping the far wavefront
  // inside the probe loop measurably beats issuing the whole tile's far
  // prefetches during decode: the probe loop's own demand misses then
  // always share the miss queues with in-flight future fetches, so the
  // memory pipeline never drains between decode and probes.
  constexpr std::size_t kFar = 192;
  constexpr std::size_t kNear = 24;
  while (!packets.empty()) {
    const std::size_t tile =
        packets.size() < PacketBatch::kCapacity ? packets.size()
                                                : PacketBatch::kCapacity;
    batch.build(packets.first(tile), config_.leg, config_.include_syn);
    if (rows_precomputed) {
      const std::size_t head = std::min(kFar, batch.size);
      for (std::size_t i = 0; i < head; ++i) precompute_lane(batch, i);
      const std::size_t near_head = std::min(kNear, batch.size);
      for (std::size_t i = 0; i < near_head; ++i) promote_lane(batch, i);
    }
    for (std::size_t i = 0; i < batch.size; ++i) {
      if (rows_precomputed) {
        if (i + kFar < batch.size) precompute_lane(batch, i + kFar);
        if (i + kNear < batch.size) promote_lane(batch, i + kNear);
      }
      const PacketRecord& packet = batch.packets[i];
      if (!admit(packet)) continue;
      if (rows_precomputed) {
        process_roles(packet, batch.roles[i], batch.ts[i], batch.seq_hash[i],
                      batch.ack_hash[i], batch.eack[i], batch.rt_seq_ref[i],
                      batch.rt_ack_ref[i], batch.pt_seq_rows(i),
                      batch.pt_ack_rows(i));
      } else {
        process_roles(packet, batch.roles[i], batch.ts[i], batch.seq_hash[i],
                      batch.ack_hash[i], batch.eack[i]);
      }
    }
    packets = packets.subspan(tile);
  }
}

void DartMonitor::handle_seq(const FourTuple& tuple, SeqNum seq, SeqNum eack,
                             Timestamp now, LegMode leg,
                             std::uint64_t tuple_hash, std::uint64_t rt_ref,
                             const std::uint32_t* pt_idx) {
  ++stats_.seq_candidates;

  const SeqOutcome outcome =
      rt_.on_seq_hashed(tuple_hash, seq, eack, now, rt_ref);
  if (outcome.new_flow) ++stats_.rt_new_flows;
  if (outcome.overwrote) ++stats_.rt_flow_overwrites;
  if (outcome.timed_out) ++stats_.rt_idle_timeouts;
  switch (outcome.decision) {
    case SeqDecision::kTrackNew:
      break;
    case SeqDecision::kTrackInOrder:
      ++stats_.seq_in_order;
      break;
    case SeqDecision::kTrackAfterHole:
      ++stats_.seq_hole_reanchors;
      break;
    case SeqDecision::kRetransmission:
      ++stats_.seq_retransmissions;
      if (on_collapse_) {
        on_collapse_(CollapseEvent{tuple, now, leg, true});
      }
      break;
    case SeqDecision::kWraparoundReset:
      ++stats_.wraparound_resets;
      break;
  }
  if (!outcome.track) return;

  ++stats_.seq_tracked;
  PacketTracker::Record record;
  record.flow_sig = fold_signature(tuple_hash);
  record.eack = eack;
  record.ts = now;
  record.rt_ref = rt_ref != RangeTracker::kNoRef
                      ? rt_ref
                      : rt_.ref_of_hashed(tuple_hash);
  place(record, now, pt_idx);
}

void DartMonitor::place(PacketTracker::Record record, Timestamp now,
                        const std::uint32_t* pt_idx) {
  // One insertion chain: each displacement hop consumes one recirculation
  // from this SEQ packet's budget. Old records start every contest with a
  // full budget behind them (the budget is per insertion, not per record
  // lifetime), so a still-valid long-RTT record is never aged out.
  std::uint32_t chain_recircs = 0;
  std::uint64_t displaced_by = 0;  // key of the record that evicted `record`
  for (;;) {
    // Precomputed rows are keyed to the original record; once the chain
    // re-inserts a displaced record the key changed, so later hops hash in
    // place (they are the rare path by construction).
    const PacketTracker::InsertResult result =
        pt_.insert(record, displaced_by, chain_recircs == 0 ? pt_idx : nullptr);
    if (result.status == PacketTracker::InsertStatus::kStored) {
      ++stats_.pt_inserted;
      return;
    }
    if (result.status == PacketTracker::InsertStatus::kDroppedPolicy) {
      ++stats_.drops_policy;
      return;
    }

    ++stats_.pt_inserted;
    ++stats_.pt_evictions;
    const PacketTracker::Record old = result.evicted;

    // Cycle detection before any recirculation: if the displaced record had
    // itself displaced the record that just took its slot, stop the
    // ping-pong (Section 3.2).
    if (old.victim_key != 0 && old.victim_key == record.key()) {
      ++stats_.drops_cycle;
      return;
    }
    if (chain_recircs >= config_.max_recirculations) {
      ++stats_.drops_budget;
      return;
    }
    // The analytics module can veto a pointless recirculation (Section 3.3).
    if (filter_ != nullptr && !filter_->useful(old.ts, now)) {
      ++stats_.drops_useless;
      return;
    }
    // Shadow RT (Section 7): an inline, possibly slightly stale validity
    // check at the end of the pipeline. Records it deems stale die here
    // without consuming recirculation bandwidth.
    if (shadow_rt_ &&
        !shadow_rt_->still_valid(old.rt_ref, old.flow_sig, old.eack, now)) {
      ++stats_.drops_shadow;
      return;
    }

    // Recirculate: the record re-enters the pipeline and re-consults the
    // Range Tracker; a stale record self-destructs.
    ++chain_recircs;
    ++stats_.recirculations;
    if (!rt_.still_valid(old.rt_ref, old.flow_sig, old.eack, now)) {
      ++stats_.drops_stale;
      return;
    }
    displaced_by = record.key();
    record = old;
  }
}

void DartMonitor::handle_ack(const FourTuple& data_tuple, SeqNum ack,
                             Timestamp now, bool pure_ack, LegMode leg,
                             std::uint64_t tuple_hash, std::uint64_t rt_ref,
                             const std::uint32_t* pt_idx) {
  ++stats_.ack_candidates;

  switch (rt_.on_ack_hashed(tuple_hash, ack, pure_ack, now, rt_ref)) {
    case AckDecision::kNoEntry:
      ++stats_.ack_no_entry;
      return;
    case AckDecision::kDuplicate:
      ++stats_.ack_duplicates;
      if (on_collapse_) {
        on_collapse_(CollapseEvent{data_tuple, now, leg, false});
      }
      return;
    case AckDecision::kBelowLeft:
      ++stats_.ack_below_left;
      return;
    case AckDecision::kOptimistic:
      ++stats_.ack_optimistic;
      if (on_optimistic_) {
        on_optimistic_(OptimisticAckEvent{data_tuple, ack, now, leg});
      }
      return;
    case AckDecision::kAdvance:
      break;
  }
  ++stats_.ack_advances;

  auto record = pt_.lookup_erase(fold_signature(tuple_hash), ack, pt_idx);
  if (!record) {
    ++stats_.pt_lookup_misses;
    return;
  }
  ++stats_.pt_lookup_hits;
  ++stats_.samples;
  if (on_sample_) {
    RttSample sample;
    sample.tuple = data_tuple;
    sample.eack = ack;
    sample.seq_ts = record->ts;
    sample.ack_ts = now;
    sample.leg = leg;
    on_sample_(sample);
  }
}

// ---------------------------------------------------------------------------
// Checkpointing (quiesce-time only, never on the per-packet path).

namespace {

// The config section is a *fingerprint*, not a config transport: restore
// verifies field by field that the image was cut from an identically
// configured monitor and refuses anything else (the table serializations
// only make sense against the exact same geometry and hash seeds).
void write_config(CheckpointWriter& writer, const DartConfig& config) {
  writer.u64(config.rt_size);
  writer.u64(config.pt_size);
  writer.u32(config.pt_stages);
  writer.u32(config.max_recirculations);
  writer.u8(config.include_syn ? 1 : 0);
  writer.u8(static_cast<std::uint8_t>(config.leg));
  writer.u8(static_cast<std::uint8_t>(config.policy));
  writer.u8(config.wraparound_reset ? 1 : 0);
  writer.u64(config.rt_idle_timeout);
  writer.u8(config.shadow_rt ? 1 : 0);
  writer.u32(config.shadow_sync_interval);
  writer.u64(config.hash_seed);
}

CheckpointError verify_config(CheckpointReader& reader,
                              const DartConfig& config) {
  bool match = true;
  match &= reader.u64() == config.rt_size;
  match &= reader.u64() == config.pt_size;
  match &= reader.u32() == config.pt_stages;
  match &= reader.u32() == config.max_recirculations;
  match &= reader.u8() == (config.include_syn ? 1 : 0);
  match &= reader.u8() == static_cast<std::uint8_t>(config.leg);
  match &= reader.u8() == static_cast<std::uint8_t>(config.policy);
  match &= reader.u8() == (config.wraparound_reset ? 1 : 0);
  match &= reader.u64() == config.rt_idle_timeout;
  match &= reader.u8() == (config.shadow_rt ? 1 : 0);
  match &= reader.u32() == config.shadow_sync_interval;
  match &= reader.u64() == config.hash_seed;
  if (reader.error()) return reader.error();
  if (!match) return reader.error_here(CheckpointErrorCode::kGeometryMismatch);
  return reader.finish();
}

void write_packet(CheckpointWriter& writer, const PacketRecord& packet) {
  writer.u64(packet.ts);
  writer.u32(packet.tuple.src_ip.value());
  writer.u32(packet.tuple.dst_ip.value());
  writer.u16(packet.tuple.src_port);
  writer.u16(packet.tuple.dst_port);
  writer.u32(packet.seq);
  writer.u32(packet.ack);
  writer.u16(packet.payload);
  writer.u8(packet.flags);
  writer.u8(packet.outbound ? 1 : 0);
}

PacketRecord read_packet(CheckpointReader& reader) {
  PacketRecord packet;
  packet.ts = reader.u64();
  packet.tuple.src_ip = Ipv4Addr{reader.u32()};
  packet.tuple.dst_ip = Ipv4Addr{reader.u32()};
  packet.tuple.src_port = reader.u16();
  packet.tuple.dst_port = reader.u16();
  packet.seq = reader.u32();
  packet.ack = reader.u32();
  packet.payload = reader.u16();
  packet.flags = reader.u8();
  const std::uint8_t outbound = reader.u8();
  if (!reader.error() && outbound > 1) reader.fail_field();
  packet.outbound = outbound != 0;
  return packet;
}

}  // namespace

CheckpointImage DartMonitor::snapshot(const SnapshotMeta& meta) const {
  CheckpointWriter writer(meta);

  writer.begin_section(CheckpointSection::kConfig);
  write_config(writer, config_);
  writer.end_section();

  writer.begin_section(CheckpointSection::kStats);
  stats_.snapshot(writer);
  writer.end_section();

  writer.begin_section(CheckpointSection::kRangeTracker);
  rt_.snapshot(writer);
  writer.end_section();

  writer.begin_section(CheckpointSection::kPacketTracker);
  pt_.snapshot(writer);
  writer.end_section();

  if (shadow_rt_) {
    writer.begin_section(CheckpointSection::kShadowRt);
    shadow_rt_->snapshot(writer);
    writer.end_section();

    writer.begin_section(CheckpointSection::kShadowBacklog);
    writer.u64(shadow_backlog_.size());
    for (const PacketRecord& packet : shadow_backlog_) {
      write_packet(writer, packet);
    }
    writer.end_section();
  }

  if (flow_filter_ != nullptr) {
    writer.begin_section(CheckpointSection::kFlowFilter);
    flow_filter_->snapshot(writer);
    writer.end_section();
  }

  return writer.seal();
}

CheckpointError DartMonitor::restore(const CheckpointImage& image) {
  CheckpointInfo info;
  if (const CheckpointError err = read_info(image, &info)) return err;

  // Index the sections; version-1 framing is strict, so an unknown id or a
  // repeat is damage, not something to skip over.
  constexpr std::uint32_t kMaxSectionId =
      static_cast<std::uint32_t>(CheckpointSection::kFlowFilter);
  const CheckpointSectionInfo* sections[kMaxSectionId + 1] = {};
  for (const CheckpointSectionInfo& section : info.sections) {
    const std::uint64_t header_at = section.offset - 12;
    if (section.id == 0 || section.id > kMaxSectionId) {
      return CheckpointError::at(CheckpointErrorCode::kBadSectionHeader,
                                 header_at);
    }
    if (sections[section.id] != nullptr) {
      return CheckpointError::at(CheckpointErrorCode::kDuplicateSection,
                                 header_at);
    }
    sections[section.id] = &section;
  }
  auto section_of = [&sections](CheckpointSection id) {
    return sections[static_cast<std::uint32_t>(id)];
  };
  auto reader_of = [&image](const CheckpointSectionInfo& section) {
    return CheckpointReader(
        std::span<const std::uint8_t>(image.bytes)
            .subspan(static_cast<std::size_t>(section.offset),
                     static_cast<std::size_t>(section.length)),
        section.offset);
  };
  auto require = [&section_of, &image](CheckpointSection id,
                                       const CheckpointSectionInfo** out) {
    *out = section_of(id);
    if (*out == nullptr) {
      return CheckpointError::at(CheckpointErrorCode::kMissingSection,
                                 image.bytes.size());
    }
    return CheckpointError::ok();
  };

  const CheckpointSectionInfo* config_section = nullptr;
  const CheckpointSectionInfo* stats_section = nullptr;
  const CheckpointSectionInfo* rt_section = nullptr;
  const CheckpointSectionInfo* pt_section = nullptr;
  if (const auto err = require(CheckpointSection::kConfig, &config_section))
    return err;
  if (const auto err = require(CheckpointSection::kStats, &stats_section))
    return err;
  if (const auto err = require(CheckpointSection::kRangeTracker, &rt_section))
    return err;
  if (const auto err = require(CheckpointSection::kPacketTracker, &pt_section))
    return err;

  // The config fingerprint gates everything else: the table payloads are
  // only decodable against the exact geometry they were cut from.
  {
    CheckpointReader reader = reader_of(*config_section);
    if (const CheckpointError err = verify_config(reader, config_)) return err;
  }

  // Presence of the optional sections must agree with this monitor's shape.
  const CheckpointSectionInfo* shadow_rt_section =
      section_of(CheckpointSection::kShadowRt);
  const CheckpointSectionInfo* backlog_section =
      section_of(CheckpointSection::kShadowBacklog);
  const CheckpointSectionInfo* filter_section =
      section_of(CheckpointSection::kFlowFilter);
  if (config_.shadow_rt) {
    if (const auto err =
            require(CheckpointSection::kShadowRt, &shadow_rt_section))
      return err;
    if (const auto err =
            require(CheckpointSection::kShadowBacklog, &backlog_section))
      return err;
  } else if (shadow_rt_section != nullptr || backlog_section != nullptr) {
    const auto* extra =
        shadow_rt_section != nullptr ? shadow_rt_section : backlog_section;
    return CheckpointError::at(CheckpointErrorCode::kGeometryMismatch,
                               extra->offset);
  }
  if (flow_filter_ != nullptr) {
    if (filter_section == nullptr) {
      return CheckpointError::at(CheckpointErrorCode::kMissingSection,
                                 image.bytes.size());
    }
  } else if (filter_section != nullptr) {
    return CheckpointError::at(CheckpointErrorCode::kGeometryMismatch,
                               filter_section->offset);
  }

  // Decode every section into staged state; the live monitor is untouched
  // until all of them have parsed cleanly.
  DartStats staged_stats;
  {
    CheckpointReader reader = reader_of(*stats_section);
    if (const CheckpointError err = staged_stats.restore(reader)) return err;
    if (const CheckpointError err = reader.finish()) return err;
  }

  RangeTracker staged_rt(config_.rt_size, config_.hash_seed,
                         config_.wraparound_reset, config_.rt_idle_timeout);
  {
    CheckpointReader reader = reader_of(*rt_section);
    if (const CheckpointError err = staged_rt.restore(reader)) return err;
    if (const CheckpointError err = reader.finish()) return err;
  }

  PacketTracker staged_pt(config_.pt_size, config_.pt_stages, config_.policy,
                          mix64(config_.hash_seed ^ 0x9e3779b97f4a7c15ULL));
  {
    CheckpointReader reader = reader_of(*pt_section);
    if (const CheckpointError err = staged_pt.restore(reader)) return err;
    if (const CheckpointError err = reader.finish()) return err;
  }

  std::unique_ptr<RangeTracker> staged_shadow;
  std::vector<PacketRecord> staged_backlog;
  if (config_.shadow_rt) {
    staged_shadow = std::make_unique<RangeTracker>(  // hotpath-ok: restore only
        config_.rt_size, config_.hash_seed, config_.wraparound_reset,
        config_.rt_idle_timeout);
    {
      CheckpointReader reader = reader_of(*shadow_rt_section);
      if (const CheckpointError err = staged_shadow->restore(reader))
        return err;
      if (const CheckpointError err = reader.finish()) return err;
    }
    {
      CheckpointReader reader = reader_of(*backlog_section);
      const std::uint64_t count = reader.u64();
      if (!reader.error() && count > config_.shadow_sync_interval) {
        // The backlog is flushed whenever it reaches the sync interval; a
        // larger count cannot have been written by a real monitor.
        reader.fail_field();
      }
      if (reader.error()) return reader.error();
      staged_backlog.reserve(config_.shadow_sync_interval);
      for (std::uint64_t i = 0; i < count; ++i) {
        staged_backlog.push_back(read_packet(reader));
        if (reader.error()) return reader.error();
      }
      if (const CheckpointError err = reader.finish()) return err;
    }
  }

  if (flow_filter_ != nullptr) {
    FlowFilter staged_filter;
    CheckpointReader reader = reader_of(*filter_section);
    if (const CheckpointError err = staged_filter.restore(reader)) return err;
    if (const CheckpointError err = reader.finish()) return err;
    if (!(staged_filter == *flow_filter_)) {
      // The filter pointer is operator-owned: restore cannot rewrite it, so
      // an image cut under different rules belongs to a different monitor.
      return CheckpointError::at(CheckpointErrorCode::kGeometryMismatch,
                                 filter_section->offset);
    }
  }

  // Commit.
  stats_ = staged_stats;
  rt_ = std::move(staged_rt);
  pt_ = std::move(staged_pt);
  shadow_rt_ = std::move(staged_shadow);
  shadow_backlog_ = std::move(staged_backlog);
  return CheckpointError::ok();
}

CheckpointError read_config(const CheckpointImage& image,
                            DartConfig* config) {
  CheckpointInfo info;
  if (const CheckpointError err = read_info(image, &info)) return err;
  for (const CheckpointSectionInfo& section : info.sections) {
    if (section.id != static_cast<std::uint32_t>(CheckpointSection::kConfig)) {
      continue;
    }
    CheckpointReader reader(
        std::span(image.bytes).subspan(section.offset, section.length),
        section.offset);
    DartConfig staged;
    staged.rt_size = reader.u64();
    staged.pt_size = reader.u64();
    staged.pt_stages = reader.u32();
    staged.max_recirculations = reader.u32();
    staged.include_syn = reader.u8() != 0;
    const std::uint8_t leg = reader.u8();
    const std::uint8_t policy = reader.u8();
    staged.wraparound_reset = reader.u8() != 0;
    staged.rt_idle_timeout = reader.u64();
    staged.shadow_rt = reader.u8() != 0;
    staged.shadow_sync_interval = reader.u32();
    staged.hash_seed = reader.u64();
    if (!reader.error() &&
        leg > static_cast<std::uint8_t>(LegMode::kBoth)) {
      reader.fail_field();
    }
    if (!reader.error() &&
        policy > static_cast<std::uint8_t>(EvictionPolicy::kNeverEvict)) {
      reader.fail_field();
    }
    if (reader.error()) return reader.error();
    staged.leg = static_cast<LegMode>(leg);
    staged.policy = static_cast<EvictionPolicy>(policy);
    if (const CheckpointError err = reader.finish()) return err;
    *config = staged;
    return CheckpointError::ok();
  }
  return CheckpointError::at(CheckpointErrorCode::kMissingSection,
                             image.bytes.size());
}

}  // namespace dart::core
