#include "core/dart_monitor.hpp"

#include "core/config_check.hpp"

namespace dart::core {

// ensure_feasible runs before any table is built: an infeasible config
// (zero PT stages, fewer PT slots than stages, ...) throws
// std::invalid_argument carrying the pipeline checker's diagnostics —
// the same ones dart-pipeline-lint prints.
DartMonitor::DartMonitor(const DartConfig& config, SampleCallback on_sample)
    : config_(ensure_feasible(config)),
      on_sample_(std::move(on_sample)),
      rt_(config.rt_size, config.hash_seed, config.wraparound_reset,
          config.rt_idle_timeout),
      pt_(config.pt_size, config.pt_stages, config.policy,
          mix64(config.hash_seed ^ 0x9e3779b97f4a7c15ULL)) {
  if (config_.shadow_rt) {
    // Identical geometry and seed so rt_ref slot references are valid in
    // both copies.
    shadow_rt_ = std::make_unique<RangeTracker>(  // hotpath-ok: ctor only
        config_.rt_size, config_.hash_seed, config_.wraparound_reset,
        config_.rt_idle_timeout);
    shadow_backlog_.reserve(config_.shadow_sync_interval);
  }
}

void DartMonitor::buffer_for_shadow(const PacketRecord& packet) {
  shadow_backlog_.push_back(packet);
  if (shadow_backlog_.size() >= config_.shadow_sync_interval) sync_shadow();
}

void DartMonitor::sync_shadow() {
  // Replay the backlog into the shadow copy with the same role
  // classification the main pipeline used, without touching stats or PT.
  const bool external = config_.leg == LegMode::kExternal ||
                        config_.leg == LegMode::kBoth;
  const bool internal = config_.leg == LegMode::kInternal ||
                        config_.leg == LegMode::kBoth;
  for (const PacketRecord& packet : shadow_backlog_) {
    if (external) {
      if (packet.outbound && packet.carries_data()) {
        shadow_rt_->on_seq(packet.tuple, packet.seq, packet.expected_ack(),
                           packet.ts);
      } else if (!packet.outbound && packet.is_ack()) {
        shadow_rt_->on_ack(packet.tuple.reversed(), packet.ack,
                           !packet.carries_data(), packet.ts);
      }
    }
    if (internal) {
      if (!packet.outbound && packet.carries_data()) {
        shadow_rt_->on_seq(packet.tuple, packet.seq, packet.expected_ack(),
                           packet.ts);
      } else if (packet.outbound && packet.is_ack()) {
        shadow_rt_->on_ack(packet.tuple.reversed(), packet.ack,
                           !packet.carries_data(), packet.ts);
      }
    }
  }
  shadow_backlog_.clear();
}

void DartMonitor::process(const PacketRecord& packet) {
  ++stats_.packets_processed;

  // Operator flow selection (Section 4): untracked connections are skipped
  // before any state is touched.
  if (flow_filter_ != nullptr && !flow_filter_->tracks(packet.tuple)) {
    ++stats_.filtered_packets;
    return;
  }

  // The -SYN rule drops handshake packets outright (Section 3.1: no RT/PT
  // state before the handshake completes, which also defangs SYN floods).
  if (!config_.include_syn && packet.is_syn()) {
    ++stats_.syn_ignored;
    return;
  }

  if (shadow_rt_) buffer_for_shadow(packet);

  const bool external = config_.leg == LegMode::kExternal ||
                        config_.leg == LegMode::kBoth;
  const bool internal = config_.leg == LegMode::kInternal ||
                        config_.leg == LegMode::kBoth;

  int roles = 0;
  if (external) {
    // External leg: outbound data awaits inbound ACKs (Section 2.1).
    if (packet.outbound && packet.carries_data()) {
      handle_seq(packet.tuple, packet, LegMode::kExternal);
      ++roles;
    } else if (!packet.outbound && packet.is_ack()) {
      handle_ack(packet.tuple.reversed(), packet.ack, packet.ts,
                 !packet.carries_data(), LegMode::kExternal);
      ++roles;
    }
  }
  if (internal) {
    // Internal leg: inbound data awaits outbound ACKs.
    if (!packet.outbound && packet.carries_data()) {
      handle_seq(packet.tuple, packet, LegMode::kInternal);
      ++roles;
    } else if (packet.outbound && packet.is_ack()) {
      handle_ack(packet.tuple.reversed(), packet.ack, packet.ts,
                 !packet.carries_data(), LegMode::kInternal);
      ++roles;
    }
  }

  if (roles == 2) {
    // Monitoring both legs makes this packet both a SEQ and an ACK; the
    // hardware achieves that with one recirculation per such packet
    // (Section 5, "Monitoring the external and internal legs
    // simultaneously").
    ++stats_.dual_role_recirculations;
    ++stats_.recirculations;
  }
}

void DartMonitor::process_all(std::span<const PacketRecord> packets) {
  for (const PacketRecord& packet : packets) process(packet);
}

void DartMonitor::handle_seq(const FourTuple& tuple,
                             const PacketRecord& packet, LegMode leg) {
  ++stats_.seq_candidates;

  const SeqNum eack = packet.expected_ack();
  const SeqOutcome outcome = rt_.on_seq(tuple, packet.seq, eack, packet.ts);
  if (outcome.new_flow) ++stats_.rt_new_flows;
  if (outcome.overwrote) ++stats_.rt_flow_overwrites;
  if (outcome.timed_out) ++stats_.rt_idle_timeouts;
  switch (outcome.decision) {
    case SeqDecision::kTrackNew:
      break;
    case SeqDecision::kTrackInOrder:
      ++stats_.seq_in_order;
      break;
    case SeqDecision::kTrackAfterHole:
      ++stats_.seq_hole_reanchors;
      break;
    case SeqDecision::kRetransmission:
      ++stats_.seq_retransmissions;
      if (on_collapse_) {
        on_collapse_(CollapseEvent{tuple, packet.ts, leg, true});
      }
      break;
    case SeqDecision::kWraparoundReset:
      ++stats_.wraparound_resets;
      break;
  }
  if (!outcome.track) return;

  ++stats_.seq_tracked;
  PacketTracker::Record record;
  record.flow_sig = flow_signature(tuple);
  record.eack = eack;
  record.ts = packet.ts;
  record.rt_ref = rt_.ref_of(tuple);
  place(record, packet.ts);
}

void DartMonitor::place(PacketTracker::Record record, Timestamp now) {
  // One insertion chain: each displacement hop consumes one recirculation
  // from this SEQ packet's budget. Old records start every contest with a
  // full budget behind them (the budget is per insertion, not per record
  // lifetime), so a still-valid long-RTT record is never aged out.
  std::uint32_t chain_recircs = 0;
  std::uint64_t displaced_by = 0;  // key of the record that evicted `record`
  for (;;) {
    const PacketTracker::InsertResult result =
        pt_.insert(record, displaced_by);
    if (result.status == PacketTracker::InsertStatus::kStored) {
      ++stats_.pt_inserted;
      return;
    }
    if (result.status == PacketTracker::InsertStatus::kDroppedPolicy) {
      ++stats_.drops_policy;
      return;
    }

    ++stats_.pt_inserted;
    ++stats_.pt_evictions;
    const PacketTracker::Record old = result.evicted;

    // Cycle detection before any recirculation: if the displaced record had
    // itself displaced the record that just took its slot, stop the
    // ping-pong (Section 3.2).
    if (old.victim_key != 0 && old.victim_key == record.key()) {
      ++stats_.drops_cycle;
      return;
    }
    if (chain_recircs >= config_.max_recirculations) {
      ++stats_.drops_budget;
      return;
    }
    // The analytics module can veto a pointless recirculation (Section 3.3).
    if (filter_ != nullptr && !filter_->useful(old.ts, now)) {
      ++stats_.drops_useless;
      return;
    }
    // Shadow RT (Section 7): an inline, possibly slightly stale validity
    // check at the end of the pipeline. Records it deems stale die here
    // without consuming recirculation bandwidth.
    if (shadow_rt_ &&
        !shadow_rt_->still_valid(old.rt_ref, old.flow_sig, old.eack, now)) {
      ++stats_.drops_shadow;
      return;
    }

    // Recirculate: the record re-enters the pipeline and re-consults the
    // Range Tracker; a stale record self-destructs.
    ++chain_recircs;
    ++stats_.recirculations;
    if (!rt_.still_valid(old.rt_ref, old.flow_sig, old.eack, now)) {
      ++stats_.drops_stale;
      return;
    }
    displaced_by = record.key();
    record = old;
  }
}

void DartMonitor::handle_ack(const FourTuple& data_tuple, SeqNum ack,
                             Timestamp now, bool pure_ack, LegMode leg) {
  ++stats_.ack_candidates;

  switch (rt_.on_ack(data_tuple, ack, pure_ack, now)) {
    case AckDecision::kNoEntry:
      ++stats_.ack_no_entry;
      return;
    case AckDecision::kDuplicate:
      ++stats_.ack_duplicates;
      if (on_collapse_) {
        on_collapse_(CollapseEvent{data_tuple, now, leg, false});
      }
      return;
    case AckDecision::kBelowLeft:
      ++stats_.ack_below_left;
      return;
    case AckDecision::kOptimistic:
      ++stats_.ack_optimistic;
      if (on_optimistic_) {
        on_optimistic_(OptimisticAckEvent{data_tuple, ack, now, leg});
      }
      return;
    case AckDecision::kAdvance:
      break;
  }
  ++stats_.ack_advances;

  auto record = pt_.lookup_erase(flow_signature(data_tuple), ack);
  if (!record) {
    ++stats_.pt_lookup_misses;
    return;
  }
  ++stats_.pt_lookup_hits;
  ++stats_.samples;
  if (on_sample_) {
    RttSample sample;
    sample.tuple = data_tuple;
    sample.eack = ack;
    sample.seq_ts = record->ts;
    sample.ack_ts = now;
    sample.leg = leg;
    on_sample_(sample);
  }
}

}  // namespace dart::core
