// Configuration of a Dart monitor instance.
//
// The knobs mirror the axes of the paper's evaluation (Section 6.2):
// Packet Tracker size (Figure 11), number of PT stages (Figure 12), and the
// per-record recirculation budget (Figure 13), plus the ±SYN mode of
// Figures 9/10 and the leg selection of Section 2.1.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/time.hpp"

namespace dart::core {

/// Which portion of the path this monitor measures (Section 2.1).
/// External: outbound data packets matched with inbound ACKs (monitor <->
/// Internet). Internal: inbound data matched with outbound ACKs (client <->
/// monitor). Both: each packet is processed in both roles, which on hardware
/// costs one recirculation per dual-role packet (Section 5).
enum class LegMode : std::uint8_t { kExternal, kInternal, kBoth };

/// What happens when a record must be placed and every candidate Packet
/// Tracker slot is occupied.
enum class EvictionPolicy : std::uint8_t {
  /// Paper behaviour: evict the youngest occupant (for a 1-stage PT this is
  /// "the new entry gets stored while the old entry is recirculated",
  /// Section 3.2; for multi-stage PTs it yields the "older records are
  /// preferred" retention the paper observes in Figure 12).
  kEvictYoungest,
  /// Anti-policy for ablation: evict the oldest occupant. Reintroduces the
  /// bias against long RTTs that Dart is designed to avoid.
  kEvictOldest,
  /// Strawman: never evict; the incoming record is dropped on collision.
  kNeverEvict,
};

struct DartConfig {
  /// Range Tracker slots; 0 = unbounded fully-associative memory (the
  /// "Dart without memory constraints" setting of Section 6.1).
  std::size_t rt_size = 0;

  /// Packet Tracker total slots across all stages; 0 = unbounded.
  std::size_t pt_size = 0;

  /// Number of one-way-associative PT stages the total size is divided
  /// into (Figure 12). Must be >= 1; ignored when pt_size == 0.
  std::uint32_t pt_stages = 1;

  /// Recirculation budget per SEQ-packet insertion (Figure 13): the number
  /// of displacement hops one insertion chain may trigger. Each hop sends
  /// the displaced record back through the Range Tracker and lets it try
  /// its alternative stage slots — cuckoo-style relocation; the budget
  /// bounds the chain. A record displaced when the chain is exhausted is
  /// dropped. Because the budget is per insertion (not per record
  /// lifetime), a still-valid old record survives arbitrarily many
  /// contests — Dart's "no bias against long RTTs" property.
  std::uint32_t max_recirculations = 1;

  /// +SYN mode: also track handshake packets (SYN consumes one sequence
  /// number, so the SYN-ACK produces a handshake RTT sample). Default off:
  /// the paper shows ignoring SYNs saves RT memory on the 72.5% of
  /// connections that never complete (Figure 10) and hardens Dart against
  /// SYN floods (Section 3.1).
  bool include_syn = false;

  LegMode leg = LegMode::kExternal;
  EvictionPolicy policy = EvictionPolicy::kEvictYoungest;

  /// Paper-faithful simplification (Section 4): on a sequence-number
  /// wraparound, collapse the measurement range and forgo the samples at
  /// the highest sequence numbers. When false, full serial arithmetic is
  /// used across the wrap (an extension; see DESIGN.md).
  bool wraparound_reset = true;

  /// Range Tracker idle timeout (0 = off): abandon a flow's measurement
  /// range when its ACK edge makes no progress for this long. The paper
  /// suggests a very large value (seconds) as a defense against attacks
  /// that leave large amounts of data forever unacknowledged (Section 7).
  Timestamp rt_idle_timeout = 0;

  /// Section 7 "Minimizing recirculations with approximation": keep an
  /// approximate copy of the RT *after* the Packet Tracker so an evicted
  /// record's staleness check happens inline instead of via recirculation.
  /// Stale records then die without consuming recirculation bandwidth; only
  /// still-valid records recirculate for re-insertion. The copy trades
  /// memory (a second RT) and a little accuracy (it lags the original by up
  /// to `shadow_sync_interval` packets, so a borderline record may be
  /// misjudged) for recirculation bandwidth.
  bool shadow_rt = false;
  std::uint32_t shadow_sync_interval = 256;  ///< packets between syncs

  std::uint64_t hash_seed = 0xDA27'0001;
};

}  // namespace dart::core
