// The Range Tracker (RT) table — Section 3.1 of the paper.
//
// One entry per tracked flow holds the *measurement range* [left, right] of
// sequence numbers that can still produce unambiguous RTT samples:
//   left  — highest byte acknowledged (or highest byte touched by a
//           retransmission/reordering ambiguity after a collapse);
//   right — highest byte transmitted.
//
// Per Figure 4:
//   * in-order SEQ (seq == right, eACK > right)  -> right := eACK, track;
//   * SEQ beyond a hole (seq > right)            -> re-anchor to [seq, eACK]
//     (Dart keeps only the highest contiguous byte-range, Section 3.1
//     "Maintaining a single measurement range");
//   * retransmission (eACK <= right)             -> collapse left := right,
//     do not track;
//   * ACK in (left, right]                       -> left := ACK, sample OK;
//   * duplicate ACK (== left)                    -> reordering inferred,
//     collapse left := right;
//   * ACK < left (stale) or > right (optimistic) -> ignored.
//
// The table is one-way associative when bounded (one hash location per
// flow, 4-byte signatures, as on the Tofino) or a plain map when size == 0
// (the paper's "unlimited, fully associative" baseline mode).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/four_tuple.hpp"
#include "common/hashing.hpp"
#include "common/prefetch.hpp"
#include "common/seqnum.hpp"
#include "common/time.hpp"

namespace dart::core {

class CheckpointWriter;
class CheckpointReader;
struct CheckpointError;

enum class SeqDecision : std::uint8_t {
  kTrackNew,         ///< first packet of a (newly tracked) flow
  kTrackInOrder,     ///< right edge advanced
  kTrackAfterHole,   ///< range re-anchored past a sequence hole
  kRetransmission,   ///< range collapsed; packet not tracked
  kWraparoundReset,  ///< paper's simplified wrap handling; packet tracked
};

struct SeqOutcome {
  SeqDecision decision = SeqDecision::kTrackNew;
  bool track = false;      ///< insert this packet into the Packet Tracker
  bool new_flow = false;   ///< entry was created
  bool overwrote = false;  ///< creation displaced another flow's entry
  bool timed_out = false;  ///< previous entry abandoned by the idle timeout
};

enum class AckDecision : std::uint8_t {
  kAdvance,    ///< left := ack; a matching PT entry yields a valid sample
  kDuplicate,  ///< duplicate ACK: reordering inferred, range collapsed
  kBelowLeft,  ///< ACK for bytes already deemed ambiguous; ignored
  kOptimistic, ///< ACK beyond the right edge (Section 7); ignored
  kNoEntry,    ///< flow not tracked
};

class RangeTracker {
 public:
  /// `size` == 0 selects the unbounded fully-associative mode; otherwise the
  /// table has `size` one-way-associative slots. `idle_timeout` (0 = off)
  /// abandons an entry whose ACK edge has made no progress for that long —
  /// the Section 7 defense against attacks that leave large amounts of data
  /// forever unacknowledged; the paper suggests a very large (seconds)
  /// value so legitimate long RTTs are unaffected.
  RangeTracker(std::size_t size, std::uint64_t hash_seed,
               bool wraparound_reset, Timestamp idle_timeout = 0);

  /// Process a data (SEQ) packet with the given sequence number and expected
  /// ACK. `eack` must differ from `seq` (the packet consumes sequence space).
  /// `now` is the packet timestamp (used only by the idle timeout).
  SeqOutcome on_seq(const FourTuple& tuple, SeqNum seq, SeqNum eack,
                    Timestamp now = 0);

  /// Process an acknowledgment for the flow whose data direction is `tuple`.
  /// `pure_ack` is true when the packet carries no data of its own: only
  /// pure ACKs repeating the left edge signal loss/reordering (TCP's
  /// duplicate-ACK definition); a data segment piggybacking an unchanged
  /// cumulative ACK is normal traffic and must not collapse the range.
  AckDecision on_ack(const FourTuple& tuple, SeqNum ack, bool pure_ack = true,
                     Timestamp now = 0);

  /// "Compute the slot reference from the hash" sentinel for the hashed
  /// entry points' `ref` parameter. A bounded ref is always < slots_.size()
  /// so the sentinel is unambiguous there; in unbounded mode the parameter
  /// is ignored entirely (the map is keyed by the hash), so a 2^-64 hash
  /// collision with the sentinel merely recomputes the same value.
  static constexpr std::uint64_t kNoRef = ~std::uint64_t{0};

  /// Hash-carrying twins of on_seq/on_ack for callers that already computed
  /// `hash_tuple(tuple)` (the batched hot path computes each packet's hash
  /// exactly once, up front). `tuple_hash` MUST equal hash_tuple of the
  /// corresponding direction's tuple, and `ref`, when given, MUST equal
  /// ref_of_hashed(tuple_hash) — the batched path precomputes it for the
  /// whole batch so the probe skips the slot-index hash. The tuple-taking
  /// overloads delegate here, so behaviour is identical by construction.
  SeqOutcome on_seq_hashed(std::uint64_t tuple_hash, SeqNum seq, SeqNum eack,
                           Timestamp now, std::uint64_t ref = kNoRef);
  AckDecision on_ack_hashed(std::uint64_t tuple_hash, SeqNum ack,
                            bool pure_ack, Timestamp now,
                            std::uint64_t ref = kNoRef);

  /// Stable reference to the slot a tuple maps to (slot index when bounded,
  /// full 64-bit tuple hash when unbounded); recirculated Packet Tracker
  /// records carry this so they can re-consult the RT without the tuple.
  std::uint64_t ref_of(const FourTuple& tuple) const;

  /// ref_of from a precomputed hash_tuple() value.
  std::uint64_t ref_of_hashed(std::uint64_t tuple_hash) const {
    return bounded_ ? hash_(tuple_hash, 0) % slots_.size() : tuple_hash;
  }

  /// Pull the slot `tuple_hash` maps to into cache ahead of its probe.
  /// No-op in unbounded mode: the map node's address is unknowable before
  /// the find (and the unbounded baseline is not the performance target).
  void prefetch(std::uint64_t tuple_hash) const {
    if (bounded_) prefetch_for_write(&slots_[ref_of_hashed(tuple_hash)]);
  }

  /// Two-level prefetch from an already-computed ref_of_hashed() value —
  /// the batched path's forms, which cost no hash work: _far starts the
  /// DRAM fetch toward L2 many packets ahead, _near promotes the slot to
  /// L1 just before its probe (see prefetch.hpp).
  void prefetch_ref_far(std::uint64_t ref) const {
    if (bounded_) prefetch_far(&slots_[ref]);
  }
  void prefetch_ref_near(std::uint64_t ref) const {
    if (bounded_) prefetch_near(&slots_[ref]);
  }

  /// Re-validate a recirculated record: does the flow with this signature
  /// still have `eack` inside its half-open measurement range (left, right]?
  bool still_valid(std::uint64_t ref, std::uint32_t flow_sig, SeqNum eack,
                   Timestamp now = 0) const;

  std::size_t occupied() const;
  std::size_t capacity() const { return bounded_ ? slots_.size() : 0; }

  /// Serialize every live entry into an open checkpoint section, in
  /// canonical order (slot index when bounded, key order when unbounded) so
  /// equal table states produce identical bytes. Quiesce-time only.
  void snapshot(CheckpointWriter& writer) const;

  /// Inverse of snapshot() into a tracker of the *same geometry* (size and
  /// mode must match — the monitor-level restore guarantees this via the
  /// config section). All-or-nothing: on any error the tracker's previous
  /// state is kept untouched.
  CheckpointError restore(CheckpointReader& reader);

 private:
  struct Entry {
    bool valid = false;
    std::uint32_t sig = 0;
    SeqNum left = 0;
    SeqNum right = 0;
    Timestamp last_progress = 0;  ///< creation / re-anchor / ACK advance
  };

  const Entry* find_ref(std::uint64_t ref, std::uint32_t sig) const;
  bool expired(const Entry& entry, Timestamp now) const {
    return idle_timeout_ != 0 && now > entry.last_progress &&
           now - entry.last_progress > idle_timeout_;
  }

  bool bounded_;
  bool wraparound_reset_;
  Timestamp idle_timeout_;
  HashFamily hash_;
  std::vector<Entry> slots_;                       // bounded mode
  std::unordered_map<std::uint64_t, Entry> map_;   // unbounded mode
};

}  // namespace dart::core
