#include "core/packet_tracker.hpp"

#include <algorithm>
#include <utility>

#include "common/hugepage.hpp"
#include "core/checkpoint.hpp"

namespace dart::core {

PacketTracker::PacketTracker(std::size_t total_slots, std::uint32_t stages,
                             EvictionPolicy policy, std::uint64_t hash_seed)
    : bounded_(total_slots > 0), policy_(policy), hash_(hash_seed) {
  if (bounded_) {
    const std::uint32_t stage_count = std::max<std::uint32_t>(stages, 1);
    stage_size_ = std::max<std::size_t>(total_slots / stage_count, 1);
    stages_.resize(stage_count);
    for (std::vector<Slot>& stage : stages_) {
      // Reserve-advise-resize so a table sized past the TLB's reach is
      // faulted in on huge pages from the start (see hugepage.hpp).
      stage.reserve(stage_size_);
      advise_hugepages(stage.data(), stage_size_ * sizeof(Slot));
      stage.resize(stage_size_);
    }
  }
}

PacketTracker::InsertResult PacketTracker::insert(const Record& record,
                                                  std::uint64_t exclude_key,
                                                  const std::uint32_t* idx) {
  if (!bounded_) {
    auto [it, inserted] = map_.insert_or_assign(record.key(), record);
    (void)it;
    if (inserted) ++occupied_;
    return InsertResult{InsertStatus::kStored, {}};
  }

  const std::uint64_t key = record.key();

  // First pass: take an empty slot or refresh a same-key slot; otherwise
  // remember the policy-preferred victim, avoiding `exclude_key` unless it
  // occupies every candidate slot.
  //
  // Like the hardware pipeline this models, the walk commits to the first
  // viable slot per pass: if a key once landed in a later stage (its earlier
  // slots were full) and is re-inserted when an earlier slot has freed, a
  // stale duplicate can briefly exist in the later stage. It is unreachable
  // for sampling (the RT admits each eACK once per validity interval) and
  // is reclaimed by lazy eviction like any stale record.
  Slot* victim = nullptr;
  Slot* excluded_fallback = nullptr;
  auto prefer = [this](const Slot& challenger, const Slot& incumbent) {
    const bool younger = challenger.record.ts > incumbent.record.ts;
    return (policy_ == EvictionPolicy::kEvictYoungest && younger) ||
           (policy_ == EvictionPolicy::kEvictOldest && !younger);
  };
  for (std::uint32_t s = 0; s < stages_.size(); ++s) {
    Slot& slot = stages_[s][idx != nullptr ? idx[s] : index(key, s)];
    if (!slot.valid) {
      slot.valid = true;
      slot.record = record;
      ++occupied_;
      return InsertResult{InsertStatus::kStored, {}};
    }
    if (slot.record.key() == key) {
      slot.record = record;
      return InsertResult{InsertStatus::kStored, {}};
    }
    if (exclude_key != 0 && slot.record.key() == exclude_key) {
      if (excluded_fallback == nullptr) excluded_fallback = &slot;
      continue;
    }
    if (victim == nullptr || prefer(slot, *victim)) victim = &slot;
  }

  if (policy_ == EvictionPolicy::kNeverEvict) {
    return InsertResult{InsertStatus::kDroppedPolicy, {}};
  }
  if (victim == nullptr) victim = excluded_fallback;

  InsertResult result;
  result.status = InsertStatus::kEvicted;
  result.evicted = victim->record;
  victim->record = record;
  victim->record.victim_key = result.evicted.key();
  return result;
}

std::optional<PacketTracker::Record> PacketTracker::lookup_erase(
    std::uint32_t flow_sig, SeqNum eack, const std::uint32_t* idx) {
  const std::uint64_t key = (std::uint64_t{flow_sig} << 32) | eack;

  if (!bounded_) {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    Record record = it->second;
    map_.erase(it);
    --occupied_;
    return record;
  }

  for (std::uint32_t s = 0; s < stages_.size(); ++s) {
    Slot& slot = stages_[s][idx != nullptr ? idx[s] : index(key, s)];
    if (slot.valid && slot.record.key() == key) {
      slot.valid = false;
      --occupied_;
      return slot.record;
    }
  }
  return std::nullopt;
}

std::size_t PacketTracker::occupied() const { return occupied_; }

// ---------------------------------------------------------------------------
// Checkpointing (quiesce-time only, never on the per-packet path).
//
// Layout: u8 mode (1 bounded / 0 unbounded), u64 stage count, u64 stage
// size, u64 live-record count, then per record {u64 ref, u32 flow_sig,
// u32 eack, u64 ts, u64 rt_ref, u64 victim_key} where `ref` is
// stage * stage_size + slot (bounded) or the record key (unbounded).
// Strictly increasing ref order makes serialization canonical.

void PacketTracker::snapshot(CheckpointWriter& writer) const {
  writer.u8(bounded_ ? 1 : 0);
  writer.u64(stages_.size());
  writer.u64(stage_size_);
  writer.u64(occupied_);
  auto put = [&writer](std::uint64_t ref, const Record& record) {
    writer.u64(ref);
    writer.u32(record.flow_sig);
    writer.u32(record.eack);
    writer.u64(record.ts);
    writer.u64(record.rt_ref);
    writer.u64(record.victim_key);
  };
  if (bounded_) {
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      for (std::size_t i = 0; i < stage_size_; ++i) {
        if (stages_[s][i].valid) put(s * stage_size_ + i, stages_[s][i].record);
      }
    }
    return;
  }
  std::vector<std::uint64_t> keys;
  keys.reserve(map_.size());
  for (const auto& [key, record] : map_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) put(key, map_.at(key));
}

CheckpointError PacketTracker::restore(CheckpointReader& reader) {
  const bool bounded = reader.u8() != 0;
  const std::uint64_t stage_count = reader.u64();
  const std::uint64_t stage_size = reader.u64();
  const std::uint64_t count = reader.u64();
  if (reader.error()) return reader.error();
  if (bounded != bounded_ || stage_count != stages_.size() ||
      stage_size != stage_size_) {
    return reader.error_here(CheckpointErrorCode::kGeometryMismatch);
  }

  std::vector<std::vector<Slot>> staged_stages;
  std::unordered_map<std::uint64_t, Record> staged_map;
  if (bounded_) staged_stages.assign(stages_.size(), std::vector<Slot>(stage_size_));

  const std::uint64_t slot_total = stage_count * stage_size;
  bool have_prev = false;
  std::uint64_t prev_ref = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t ref = reader.u64();
    Record record;
    record.flow_sig = reader.u32();
    record.eack = reader.u32();
    record.ts = reader.u64();
    record.rt_ref = reader.u64();
    record.victim_key = reader.u64();
    if (reader.error()) return reader.error();
    if (have_prev && ref <= prev_ref) {
      reader.fail_field();
      return reader.error();
    }
    if (bounded_) {
      if (ref >= slot_total) {
        reader.fail_field();
        return reader.error();
      }
      Slot& slot = staged_stages[static_cast<std::size_t>(ref / stage_size_)]
                                [static_cast<std::size_t>(ref % stage_size_)];
      slot.valid = true;
      slot.record = record;
    } else {
      if (ref != record.key()) {
        // An unbounded entry is keyed by (flow_sig, eack); a ref that
        // disagrees with its own payload is tampering, not geometry.
        reader.fail_field();
        return reader.error();
      }
      staged_map.emplace(ref, record);
    }
    have_prev = true;
    prev_ref = ref;
  }

  stages_ = std::move(staged_stages);
  map_ = std::move(staged_map);
  occupied_ = static_cast<std::size_t>(count);
  return CheckpointError::ok();
}

}  // namespace dart::core
