#include "core/packet_tracker.hpp"

#include <algorithm>

namespace dart::core {

PacketTracker::PacketTracker(std::size_t total_slots, std::uint32_t stages,
                             EvictionPolicy policy, std::uint64_t hash_seed)
    : bounded_(total_slots > 0), policy_(policy), hash_(hash_seed) {
  if (bounded_) {
    const std::uint32_t stage_count = std::max<std::uint32_t>(stages, 1);
    stage_size_ = std::max<std::size_t>(total_slots / stage_count, 1);
    stages_.assign(stage_count, std::vector<Slot>(stage_size_));
  }
}

PacketTracker::InsertResult PacketTracker::insert(const Record& record,
                                                  std::uint64_t exclude_key) {
  if (!bounded_) {
    auto [it, inserted] = map_.insert_or_assign(record.key(), record);
    (void)it;
    if (inserted) ++occupied_;
    return InsertResult{InsertStatus::kStored, {}};
  }

  const std::uint64_t key = record.key();

  // First pass: take an empty slot or refresh a same-key slot; otherwise
  // remember the policy-preferred victim, avoiding `exclude_key` unless it
  // occupies every candidate slot.
  //
  // Like the hardware pipeline this models, the walk commits to the first
  // viable slot per pass: if a key once landed in a later stage (its earlier
  // slots were full) and is re-inserted when an earlier slot has freed, a
  // stale duplicate can briefly exist in the later stage. It is unreachable
  // for sampling (the RT admits each eACK once per validity interval) and
  // is reclaimed by lazy eviction like any stale record.
  Slot* victim = nullptr;
  Slot* excluded_fallback = nullptr;
  auto prefer = [this](const Slot& challenger, const Slot& incumbent) {
    const bool younger = challenger.record.ts > incumbent.record.ts;
    return (policy_ == EvictionPolicy::kEvictYoungest && younger) ||
           (policy_ == EvictionPolicy::kEvictOldest && !younger);
  };
  for (std::uint32_t s = 0; s < stages_.size(); ++s) {
    Slot& slot = stages_[s][index(key, s)];
    if (!slot.valid) {
      slot.valid = true;
      slot.record = record;
      ++occupied_;
      return InsertResult{InsertStatus::kStored, {}};
    }
    if (slot.record.key() == key) {
      slot.record = record;
      return InsertResult{InsertStatus::kStored, {}};
    }
    if (exclude_key != 0 && slot.record.key() == exclude_key) {
      if (excluded_fallback == nullptr) excluded_fallback = &slot;
      continue;
    }
    if (victim == nullptr || prefer(slot, *victim)) victim = &slot;
  }

  if (policy_ == EvictionPolicy::kNeverEvict) {
    return InsertResult{InsertStatus::kDroppedPolicy, {}};
  }
  if (victim == nullptr) victim = excluded_fallback;

  InsertResult result;
  result.status = InsertStatus::kEvicted;
  result.evicted = victim->record;
  victim->record = record;
  victim->record.victim_key = result.evicted.key();
  return result;
}

std::optional<PacketTracker::Record> PacketTracker::lookup_erase(
    std::uint32_t flow_sig, SeqNum eack) {
  const std::uint64_t key = (std::uint64_t{flow_sig} << 32) | eack;

  if (!bounded_) {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    Record record = it->second;
    map_.erase(it);
    --occupied_;
    return record;
  }

  for (std::uint32_t s = 0; s < stages_.size(); ++s) {
    Slot& slot = stages_[s][index(key, s)];
    if (slot.valid && slot.record.key() == key) {
      slot.valid = false;
      --occupied_;
      return slot.record;
    }
  }
  return std::nullopt;
}

std::size_t PacketTracker::occupied() const { return occupied_; }

}  // namespace dart::core
