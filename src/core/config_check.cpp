#include "core/config_check.hpp"

#include <stdexcept>
#include <string>

#include "dataplane/verify/pipeline_program.hpp"

namespace dart::core {

namespace verify = dataplane::verify;

verify::MonitorShape monitor_shape(const DartConfig& config) {
  verify::MonitorShape shape;
  // pt_stages is documented as ignored in unbounded mode; normalize so the
  // emitted model stays well-formed there and the real count is checked
  // only when it matters.
  shape.pt_stages =
      config.pt_size == 0 && config.pt_stages == 0 ? 1 : config.pt_stages;
  shape.max_recirculations = config.max_recirculations;
  shape.both_legs = config.leg == LegMode::kBoth;
  shape.shadow_rt = config.shadow_rt;
  shape.use_flow_filter = true;
  shape.use_payload_lut = true;
  return shape;
}

std::vector<verify::Diagnostic> check_config(const DartConfig& config) {
  const verify::MonitorShape shape = monitor_shape(config);
  std::vector<verify::Diagnostic> diags = verify::check_shape(shape);

  // Core-specific geometry: a bounded PT divides its slots evenly across
  // stages, so it needs at least one slot per stage.
  if (config.pt_size > 0 && config.pt_stages > 0 &&
      config.pt_size < config.pt_stages) {
    verify::Diagnostic d;
    d.rule = verify::Rule::kConfig;
    d.message = "Packet Tracker has fewer slots (" +
                std::to_string(config.pt_size) + ") than stages (" +
                std::to_string(config.pt_stages) +
                "); each stage needs at least one slot";
    diags.push_back(std::move(d));
  }

  if (diags.empty()) {
    // Structural rule check of the emitted pipeline (single access per
    // pass, SALU confinement, recirculation termination, register width)
    // against the unconstrained software profile.
    dataplane::DartLayout layout;
    layout.rt_slots = config.rt_size == 0 ? 1 : config.rt_size;
    layout.pt_slots = config.pt_size == 0 ? 1 : config.pt_size;
    layout.pt_stages = shape.pt_stages;
    layout.both_legs = shape.both_legs;
    const verify::CheckReport report = verify::check(
        verify::emit_program(layout, shape), verify::software_profile());
    diags.insert(diags.end(), report.diagnostics.begin(),
                 report.diagnostics.end());
  }
  return diags;
}

const DartConfig& ensure_feasible(const DartConfig& config) {
  const std::vector<verify::Diagnostic> diags = check_config(config);
  if (!diags.empty()) {
    throw std::invalid_argument("infeasible DartConfig:\n" +
                                verify::format_diagnostics(diags));
  }
  return config;
}

}  // namespace dart::core
