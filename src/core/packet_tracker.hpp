// The Packet Tracker (PT) table — Section 3.2 of the paper.
//
// One record per outstanding data packet, keyed by (flow signature, expected
// ACK), holding the SEQ timestamp. The table is divided into `stages`
// one-way-associative component tables (Figure 12's k-way layout); a record
// probes one slot per stage with independent hashes.
//
// Collision handling implements the paper's lazy eviction: the incoming
// record takes the first empty candidate slot; if all candidates are full,
// a victim is chosen by the eviction policy (default: the *youngest*
// occupant — for one stage this is exactly "the new entry gets inserted and
// the old entry is evicted"; across stages it yields the older-records-are-
// preferred retention the paper describes) and handed back to the caller,
// which decides whether to recirculate it for a second chance.
//
// Each stored record remembers the key of the record it displaced
// (`victim_key`) so the monitor can detect eviction ping-pong cycles before
// recirculating (Section 3.2, "Preventing infinite eviction loops").
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hashing.hpp"
#include "common/prefetch.hpp"
#include "common/seqnum.hpp"
#include "common/time.hpp"
#include "core/config.hpp"

namespace dart::core {

class CheckpointWriter;
class CheckpointReader;
struct CheckpointError;

class PacketTracker {
 public:
  struct Record {
    std::uint32_t flow_sig = 0;
    SeqNum eack = 0;
    Timestamp ts = 0;          ///< SEQ packet's monitor timestamp
    std::uint64_t rt_ref = 0;  ///< Range Tracker slot reference
    std::uint64_t victim_key = 0;  ///< key this record displaced at insert

    constexpr std::uint64_t key() const {
      return (std::uint64_t{flow_sig} << 32) | eack;
    }
  };

  enum class InsertStatus : std::uint8_t {
    kStored,         ///< placed in an empty (or same-key) slot
    kEvicted,        ///< placed; `evicted` holds the displaced record
    kDroppedPolicy,  ///< kNeverEvict and all candidate slots full
  };

  struct InsertResult {
    InsertStatus status = InsertStatus::kStored;
    Record evicted{};
  };

  /// `total_slots` == 0 selects unbounded mode (`stages` then ignored).
  PacketTracker(std::size_t total_slots, std::uint32_t stages,
                EvictionPolicy policy, std::uint64_t hash_seed);

  /// Insert `record`. `exclude_key` (when nonzero) is the key of the record
  /// that displaced this one: victim selection avoids evicting it back so a
  /// relocation chain explores alternative slots instead of ping-ponging
  /// (it is still chosen as a last resort, which the caller's cycle
  /// detection then resolves in the older record's favour).
  ///
  /// `idx`, when non-null, is the per-stage candidate-slot array a prior
  /// precompute() produced for record.key(); the probe then reuses it
  /// instead of re-hashing. It is only valid for the record's own key —
  /// eviction-chain re-insertions must pass nullptr.
  InsertResult insert(const Record& record, std::uint64_t exclude_key = 0,
                      const std::uint32_t* idx = nullptr);

  /// Find and remove the record for (flow_sig, eack); nullopt on miss.
  /// `idx` as for insert(): precomputed candidate slots for this same key.
  std::optional<Record> lookup_erase(std::uint32_t flow_sig, SeqNum eack,
                                     const std::uint32_t* idx = nullptr);

  /// Pull every stage's candidate slot for (flow_sig, eack) into cache
  /// ahead of the insert/lookup probes — the batched hot path issues this a
  /// fixed distance before the packet is processed. No-op in unbounded
  /// mode (map nodes have no precomputable address).
  void prefetch(std::uint32_t flow_sig, SeqNum eack) const {
    if (!bounded_) return;
    const std::uint64_t key = (std::uint64_t{flow_sig} << 32) | eack;
    for (std::size_t stage = 0; stage < stages_.size(); ++stage) {
      prefetch_for_write(
          &stages_[stage][index(key, static_cast<std::uint32_t>(stage))]);
    }
  }

  /// Batched hash precomputation: fill `idx[0..stage_count())` with the
  /// candidate slot per stage for (flow_sig, eack) and start pulling the
  /// rows a probe with that access pattern will touch toward L2. The
  /// batched hot path runs this far ahead of the probe loop, promotes the
  /// same rows to L1 with prefetch_rows() a few packets before use, then
  /// feeds the array back to insert()/lookup_erase() so every stage hash
  /// is computed exactly once per packet.
  ///
  /// `all_stages` tunes prefetch volume to the caller's probe: inserts
  /// commit at the first free slot — at sane occupancies almost always
  /// stage 0, so prefetching later rows wastes the outstanding-miss
  /// buffers demanded lines need (false) — while a missing lookup (the
  /// common ACK case: cumulative ACKs rarely match a tracked eACK exactly)
  /// walks every stage before giving up (true).
  /// No-op in unbounded mode (probes there never consult `idx`).
  void precompute(std::uint32_t flow_sig, SeqNum eack, std::uint32_t* idx,
                  bool all_stages) const {
    if (!bounded_) return;
    const std::uint64_t key = (std::uint64_t{flow_sig} << 32) | eack;
    for (std::size_t stage = 0; stage < stages_.size(); ++stage) {
      idx[stage] = static_cast<std::uint32_t>(
          index(key, static_cast<std::uint32_t>(stage)));
      if (all_stages) prefetch_far(&stages_[stage][idx[stage]]);
    }
    if (!all_stages) prefetch_far(&stages_[0][idx[0]]);
  }

  /// Near-distance companion of precompute(): promote the rows a prior
  /// precompute() staged in L2 the rest of the way to L1, from the stored
  /// indices (no hash work). Same `all_stages` meaning.
  void prefetch_rows(const std::uint32_t* idx, bool all_stages) const {
    if (!bounded_) return;
    if (all_stages) {
      for (std::size_t stage = 0; stage < stages_.size(); ++stage) {
        prefetch_near(&stages_[stage][idx[stage]]);
      }
    } else {
      prefetch_near(&stages_[0][idx[0]]);
    }
  }

  std::size_t occupied() const;
  std::size_t capacity() const { return stage_size_ * stages_.size(); }
  std::uint32_t stage_count() const {
    return static_cast<std::uint32_t>(stages_.size());
  }

  /// Serialize every live record into an open checkpoint section in
  /// canonical order ((stage, slot) when bounded, key order when unbounded)
  /// so equal table states produce identical bytes. Quiesce-time only.
  void snapshot(CheckpointWriter& writer) const;

  /// Inverse of snapshot() into a tracker of the same geometry (mode, stage
  /// count, and stage size must match). All-or-nothing: on any error the
  /// tracker's previous state is kept untouched.
  CheckpointError restore(CheckpointReader& reader);

 private:
  struct Slot {
    bool valid = false;
    Record record{};
  };

  std::size_t index(std::uint64_t key, std::uint32_t stage) const {
    return static_cast<std::size_t>(hash_(key, stage + 1) % stage_size_);
  }

  bool bounded_;
  EvictionPolicy policy_;
  HashFamily hash_;
  std::size_t stage_size_ = 0;
  std::vector<std::vector<Slot>> stages_;
  std::unordered_map<std::uint64_t, Record> map_;  // unbounded mode
  std::size_t occupied_ = 0;
};

}  // namespace dart::core
