// Operator flow selection (Section 4, "Specifying target flows").
//
// Dart lets the operator install rules from the control plane choosing
// which subset of flows to track — by source/destination prefix and port
// range — without recompiling the data plane. On hardware these rules live
// in TCAM; here they are a first-match rule list evaluated per connection
// (a packet matches if the rule matches it in either direction, so one rule
// covers both halves of a connection).
#pragma once

#include <cstdint>
#include <vector>

#include "common/four_tuple.hpp"
#include "common/ipv4.hpp"

namespace dart::core {

class CheckpointWriter;
class CheckpointReader;
struct CheckpointError;

struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 65535;

  constexpr bool contains(std::uint16_t port) const {
    return port >= lo && port <= hi;
  }
  static constexpr PortRange any() { return PortRange{}; }
  static constexpr PortRange exactly(std::uint16_t port) {
    return PortRange{port, port};
  }

  friend constexpr bool operator==(PortRange lhs, PortRange rhs) {
    return lhs.lo == rhs.lo && lhs.hi == rhs.hi;
  }
};

struct FlowRule {
  Ipv4Prefix src{};  ///< zero-length prefix matches everything
  Ipv4Prefix dst{};
  PortRange src_port{};
  PortRange dst_port{};
  bool track = true;  ///< rule action: track or explicitly exclude

  /// Directional match of this rule against a tuple.
  bool matches(const FourTuple& tuple) const {
    return src.contains(tuple.src_ip) && dst.contains(tuple.dst_ip) &&
           src_port.contains(tuple.src_port) &&
           dst_port.contains(tuple.dst_port);
  }

  friend constexpr bool operator==(const FlowRule& lhs, const FlowRule& rhs) {
    return lhs.src == rhs.src && lhs.dst == rhs.dst &&
           lhs.src_port == rhs.src_port && lhs.dst_port == rhs.dst_port &&
           lhs.track == rhs.track;
  }
};

/// First-match rule list; connections matching no rule are not tracked
/// (a final allow-all rule makes the filter permissive).
class FlowFilter {
 public:
  /// The default filter used when none is installed: track everything.
  static FlowFilter allow_all() {
    FlowFilter filter;
    filter.add_rule(FlowRule{});
    return filter;
  }

  void add_rule(const FlowRule& rule) { rules_.push_back(rule); }
  std::size_t rule_count() const { return rules_.size(); }

  friend bool operator==(const FlowFilter& lhs, const FlowFilter& rhs) {
    return lhs.rules_ == rhs.rules_;
  }

  /// Serialize the rule list into an open checkpoint section; restore() is
  /// the all-or-nothing inverse. Quiesce-time only.
  void snapshot(CheckpointWriter& writer) const;
  CheckpointError restore(CheckpointReader& reader);

  /// True when the connection this tuple belongs to should be tracked.
  /// Rules are direction-insensitive: the first rule matching the tuple or
  /// its reverse decides.
  bool tracks(const FourTuple& tuple) const {
    const FourTuple reversed = tuple.reversed();
    for (const FlowRule& rule : rules_) {
      if (rule.matches(tuple) || rule.matches(reversed)) return rule.track;
    }
    return false;
  }

 private:
  std::vector<FlowRule> rules_;
};

}  // namespace dart::core
