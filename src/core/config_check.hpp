// Fail-fast construction-time validation of monitor configurations.
//
// DartMonitor (and therefore ShardedMonitor) refuse to construct with a
// structurally infeasible configuration, using the same diagnostics the
// dart-pipeline-lint tool prints: the DartConfig is mapped onto the
// dataplane verifier's MonitorShape, the pipeline program is emitted and
// checked against the permissive software profile (structural rules only
// — no chip stage/budget limits), and any diagnostic becomes a
// std::invalid_argument. Checking a deployment against a *real* chip
// profile is the lint tool's job; a software monitor may legitimately be
// larger than any Tofino.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "dataplane/verify/checker.hpp"

namespace dart::core {

/// Map a monitor config onto the dataplane verifier's shape.
dataplane::verify::MonitorShape monitor_shape(const DartConfig& config);

/// Structural diagnostics for a config (empty = constructible). Uses the
/// verifier's rule set plus core-specific table-geometry checks.
std::vector<dataplane::verify::Diagnostic> check_config(
    const DartConfig& config);

/// Throws std::invalid_argument carrying the formatted diagnostics when
/// check_config(config) is nonempty; returns config unchanged otherwise,
/// so it can be used inside a constructor's member-init list before any
/// table is built.
const DartConfig& ensure_feasible(const DartConfig& config);

}  // namespace dart::core
