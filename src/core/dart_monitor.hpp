// DartMonitor: the complete Dart pipeline (Figure 3 of the paper).
//
//   packet -> [leg/role classification] -> Range Tracker -> Packet Tracker
//                                             ^                 |
//                                             +-- recirculation +--> samples
//
// SEQ packets are validated against (and update) the flow's measurement
// range in the Range Tracker; valid ones are recorded in the Packet Tracker
// awaiting their ACK. An ACK that advances the range and exactly matches a
// tracked record's expected ACK produces an RTT sample. A record displaced
// from the PT by a hash collision is recirculated for a second chance: it
// re-consults the RT (stale records self-destruct) and attempts reinsertion,
// bounded by a per-record recirculation budget and ping-pong cycle
// detection. An optional analytics usefulness filter (Section 3.3) vetoes
// recirculations that could not produce a useful sample.
//
// Recirculation in this model is synchronous: the displaced record re-enters
// the pipeline before the next packet is processed. The hardware prototype
// handles the in-flight race this avoids by updating a matching RT entry on
// re-entry (Section 4, "Reordering among recirculated records").
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/packet.hpp"
#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "core/flow_filter.hpp"
#include "core/packet_batch.hpp"
#include "core/packet_tracker.hpp"
#include "core/range_tracker.hpp"
#include "core/rtt_sample.hpp"
#include "core/stats.hpp"

namespace dart::core {

class DartMonitor {
 public:
  explicit DartMonitor(const DartConfig& config,
                       SampleCallback on_sample = {});

  /// Install the analytics module's preemptive-discard hook (Section 3.3).
  /// The filter must outlive the monitor. Pass nullptr to remove.
  void set_usefulness_filter(const UsefulnessFilter* filter) {
    filter_ = filter;
  }

  /// Install operator flow-selection rules (Section 4): packets of
  /// connections the filter does not track are skipped entirely. The filter
  /// must outlive the monitor; nullptr (default) tracks everything.
  void set_flow_filter(const FlowFilter* filter) { flow_filter_ = filter; }

  /// Subscribe to measurement-range collapses (Section 3.1): their
  /// frequency is a congestion indicator the analytics can aggregate per
  /// flow or prefix even while collapses suppress RTT samples.
  void set_collapse_callback(CollapseCallback callback) {
    on_collapse_ = std::move(callback);
  }

  /// Subscribe to detected optimistic ACKs (Section 7): ACKs beyond the
  /// right edge are ignored for measurement and reported here.
  void set_optimistic_ack_callback(OptimisticAckCallback callback) {
    on_optimistic_ = std::move(callback);
  }

  /// Process one packet in monitor-arrival order.
  void process(const PacketRecord& packet);

  /// Convenience: process a whole time-ordered stream one packet at a time
  /// — the scalar reference path the batch differential suite compares
  /// process_batch() against.
  void process_all(std::span<const PacketRecord> packets);

  /// Process a contiguous run of packets through the batched SoA fast
  /// path: PacketBatch decodes each tile (roles, tuple hashes, expected
  /// ACKs, timestamps) up front; precompute_lane() then derives each
  /// lane's RT slot and PT stage rows a fixed distance ahead of the probe
  /// loop — prefetching each row as it is computed — and the probes
  /// consume the stored rows so no table hash is ever computed twice.
  /// Observably identical to calling process() on
  /// each packet in order — both paths dispatch through the same admission
  /// gate and role handlers, and the differential suite holds them to
  /// byte-identical snapshots.
  void process_batch(std::span<const PacketRecord> packets);

  const DartStats& stats() const { return stats_; }
  const DartConfig& config() const { return config_; }
  const RangeTracker& range_tracker() const { return rt_; }
  const PacketTracker& packet_tracker() const { return pt_; }

  /// Mutable stats access for the runtime that drives this monitor (it
  /// folds recovery/degradation accounting into the shard's counters).
  DartStats& mutable_stats() { return stats_; }

  /// Cut a complete, self-validating image of the monitor: config
  /// fingerprint, stats, both tracker tables, shadow state, and the
  /// installed flow filter. Quiesce-time only — the caller must guarantee
  /// no process() call is concurrent with the cut.
  CheckpointImage snapshot(const SnapshotMeta& meta) const;

  /// Rehydrate from an image cut by an *identically configured* monitor
  /// (same table geometry, seeds, leg/policy modes, and installed flow
  /// filter — anything else is a kGeometryMismatch). All-or-nothing: on any
  /// error the monitor's previous state is kept bit for bit.
  CheckpointError restore(const CheckpointImage& image);

 private:
  bool admit(const PacketRecord& packet);
  // The batched path passes each lane's precomputed table rows through the
  // trailing parameters; the scalar path leaves them defaulted and the
  // trackers hash in place. Either way the probes land on identical slots.
  void process_roles(const PacketRecord& packet, std::uint8_t roles,
                     Timestamp now, std::uint64_t seq_hash,
                     std::uint64_t ack_hash, SeqNum eack,
                     std::uint64_t rt_seq_ref = RangeTracker::kNoRef,
                     std::uint64_t rt_ack_ref = RangeTracker::kNoRef,
                     const std::uint32_t* pt_seq_idx = nullptr,
                     const std::uint32_t* pt_ack_idx = nullptr);
  void precompute_lane(PacketBatch& batch, std::size_t lane) const;
  void promote_lane(const PacketBatch& batch, std::size_t lane) const;
  void handle_seq(const FourTuple& tuple, SeqNum seq, SeqNum eack,
                  Timestamp now, LegMode leg, std::uint64_t tuple_hash,
                  std::uint64_t rt_ref = RangeTracker::kNoRef,
                  const std::uint32_t* pt_idx = nullptr);
  void handle_ack(const FourTuple& data_tuple, SeqNum ack, Timestamp now,
                  bool pure_ack, LegMode leg, std::uint64_t tuple_hash,
                  std::uint64_t rt_ref = RangeTracker::kNoRef,
                  const std::uint32_t* pt_idx = nullptr);
  void place(PacketTracker::Record record, Timestamp now,
             const std::uint32_t* pt_idx = nullptr);
  void buffer_for_shadow(const PacketRecord& packet);
  void sync_shadow();

  DartConfig config_;
  SampleCallback on_sample_;
  CollapseCallback on_collapse_;
  OptimisticAckCallback on_optimistic_;
  const UsefulnessFilter* filter_ = nullptr;
  const FlowFilter* flow_filter_ = nullptr;
  RangeTracker rt_;
  PacketTracker pt_;
  DartStats stats_;

  // Shadow RT (Section 7): replica updated by replaying buffered packets
  // every shadow_sync_interval packets, so it lags the original.
  std::unique_ptr<RangeTracker> shadow_rt_;
  std::vector<PacketRecord> shadow_backlog_;
};

}  // namespace dart::core
