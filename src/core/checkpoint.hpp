// Versioned binary checkpoints of monitor state (the crash-recovery
// subsystem's wire format).
//
// A CheckpointImage is a self-validating byte string:
//
//   offset  0  magic "DCKP"
//   offset  4  u32 format version (kCheckpointVersion)
//   offset  8  u32 CRC-32 (IEEE) over every byte from offset 12 to the end
//   offset 12  u64 epoch           — barrier number that cut this image
//   offset 20  u64 cursor          — shard-stream packets delivered at the cut
//   offset 28  u64 sample_cursor   — samples committed after this cut
//   offset 36  u32 section count
//   then per section: u32 section id, u64 payload length, payload bytes.
//
// All integers are little-endian. The CRC makes any truncation or byte flip
// detectable up front; deeper field validation mirrors the trace_io typed
// error style (an error code plus the byte offset of the damage). Restore
// paths parse into staging state and commit only on full success, so a
// damaged image is *never* half-applied — the monitor keeps its pre-restore
// state bit for bit.
//
// This header is quiesce-time-only code (checkpoints are cut at epoch
// barriers, not per packet) and is exempt from the hot-path lint; the
// component snapshot()/restore() members it serves live in the hot-path
// translation units and stay allocation-discipline clean.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dart::core {

inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr std::size_t kCheckpointHeaderBytes = 40;
inline constexpr std::size_t kCheckpointCrcOffset = 8;
/// First byte covered by the CRC (everything before it identifies the
/// format; everything after it is integrity-checked content).
inline constexpr std::size_t kCheckpointCrcStart = 12;

/// Section ids inside a DartMonitor image. Unknown ids are rejected by
/// version-1 readers (strict framing: a damaged id must not be skipped).
enum class CheckpointSection : std::uint32_t {
  kConfig = 1,         ///< DartConfig fingerprint (geometry + seeds)
  kStats = 2,          ///< DartStats counters at the cut
  kRangeTracker = 3,   ///< RT entries
  kPacketTracker = 4,  ///< PT records
  kShadowRt = 5,       ///< shadow RT entries (iff config.shadow_rt)
  kShadowBacklog = 6,  ///< buffered packets awaiting a shadow sync
  kFlowFilter = 7,     ///< operator flow-selection rules
};

enum class CheckpointErrorCode : std::uint8_t {
  kNone = 0,
  kTruncated,         ///< fewer bytes than the header/frame promises
  kBadMagic,          ///< not a checkpoint image
  kBadVersion,        ///< format version this reader does not speak
  kCrcMismatch,       ///< integrity check failed (corruption)
  kBadSectionHeader,  ///< section frame inconsistent with the byte count
  kDuplicateSection,  ///< the same section id appears twice
  kMissingSection,    ///< a section the target requires is absent
  kBadFieldValue,     ///< a field decodes to an impossible value
  kGeometryMismatch,  ///< image was cut from a differently-configured monitor
  kTrailingBytes,     ///< bytes after the last declared section
  kUnsupported,       ///< target cannot restore (e.g. non-Dart monitor)
  kIoError,           ///< file read/write failed
};

const char* to_string(CheckpointErrorCode code);

/// A typed checkpoint diagnostic: what went wrong and where (byte offset
/// into the image; 0 when the offset is meaningless, e.g. kIoError).
struct CheckpointError {
  CheckpointErrorCode code = CheckpointErrorCode::kNone;
  std::uint64_t offset = 0;

  explicit operator bool() const { return code != CheckpointErrorCode::kNone; }
  std::string to_string() const;

  static CheckpointError ok() { return {}; }
  static CheckpointError at(CheckpointErrorCode code, std::uint64_t offset) {
    return CheckpointError{code, offset};
  }
};

/// What a checkpoint was cut against: the barrier's epoch number, the
/// shard-stream cursor (packets delivered to the monitor when the image was
/// taken), and the sample cursor (samples committed once this image lands).
struct SnapshotMeta {
  std::uint64_t epoch = 0;
  std::uint64_t cursor = 0;
  std::uint64_t sample_cursor = 0;

  friend bool operator==(const SnapshotMeta&, const SnapshotMeta&) = default;
};

/// The serialized image. A plain byte vector with value semantics: byte
/// equality is the round-trip test.
struct CheckpointImage {
  std::vector<std::uint8_t> bytes;

  std::size_t size() const { return bytes.size(); }
  bool empty() const { return bytes.empty(); }

  friend bool operator==(const CheckpointImage&, const CheckpointImage&) =
      default;
};

/// Parsed frame description — what `dart-ckpt inspect` prints.
struct CheckpointSectionInfo {
  std::uint32_t id = 0;
  std::uint64_t offset = 0;  ///< of the payload, into the image
  std::uint64_t length = 0;  ///< payload bytes
};

struct CheckpointInfo {
  std::uint32_t version = 0;
  SnapshotMeta meta;
  std::uint32_t stored_crc = 0;
  std::uint32_t computed_crc = 0;
  std::vector<CheckpointSectionInfo> sections;
};

/// Validate the envelope (magic, version, CRC, section framing) and fill
/// `info` as far as parsing got. Returns the first damage found; an image
/// that passes read_info has a structurally sound frame.
CheckpointError read_info(const CheckpointImage& image, CheckpointInfo* info);

struct DartStats;

/// Extract just the counters (kStats section) from a validated image —
/// how the supervisor salvages a tombstoned shard's last-known accounting
/// without rehydrating a whole monitor.
CheckpointError read_stats(const CheckpointImage& image, DartStats* stats);

struct DartConfig;
/// Extract the monitor configuration (kConfig section) from a validated
/// image — lets a tool rebuild a compatible monitor for deep verification
/// without knowing the deployment that cut the checkpoint. Implemented
/// next to the config codec in dart_monitor.cpp.
CheckpointError read_config(const CheckpointImage& image, DartConfig* config);

/// Recompute and store the CRC for `image` (requires a complete header).
/// Used by tools and tests that deliberately edit image bytes and by the
/// writer's seal step.
void reseal_checkpoint(CheckpointImage& image);

CheckpointError save_checkpoint(const CheckpointImage& image,
                                const std::string& path);
CheckpointError load_checkpoint(const std::string& path,
                                CheckpointImage* image);

/// Little-endian append-only byte sink for component serializers. Sections
/// are framed by begin_section/end_section; seal() stamps the section count
/// and the CRC. The writer is infallible (memory is the only resource).
class CheckpointWriter {
 public:
  explicit CheckpointWriter(const SnapshotMeta& meta);

  void u8(std::uint8_t value);
  void u16(std::uint16_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);

  void begin_section(CheckpointSection id);
  void end_section();

  /// Finish the image: stamp section count + CRC. The writer is spent.
  CheckpointImage seal();

 private:
  void patch_u32(std::size_t offset, std::uint32_t value);
  void patch_u64(std::size_t offset, std::uint64_t value);

  CheckpointImage image_;
  std::size_t open_section_length_at_ = 0;  ///< offset of the length field
  std::size_t open_section_payload_at_ = 0;
  bool section_open_ = false;
  std::uint32_t section_count_ = 0;
};

/// Bounds-checked little-endian cursor over one section's payload. Reads
/// past the end set a sticky kTruncated error and return zero; callers
/// check error() once after a batch of reads (the trace_io salvage idiom,
/// minus salvage — checkpoints restore fully or not at all).
class CheckpointReader {
 public:
  /// `base_offset` is the payload's offset into the whole image, so error
  /// offsets point at the actual damaged byte.
  CheckpointReader(std::span<const std::uint8_t> payload,
                   std::uint64_t base_offset);

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();

  /// Flag an impossible decoded value at the position just read.
  void fail_field();

  /// A typed error anchored at the position just read — for failures the
  /// caller diagnoses itself (e.g. geometry mismatches).
  CheckpointError error_here(CheckpointErrorCode code) const;

  std::size_t remaining() const { return payload_.size() - pos_; }
  bool exhausted() const { return pos_ == payload_.size() && !error_; }
  const CheckpointError& error() const { return error_; }

  /// kTrailingBytes unless the payload was consumed exactly.
  CheckpointError finish() const;

 private:
  bool take(std::size_t n);

  std::span<const std::uint8_t> payload_;
  std::uint64_t base_offset_;
  std::size_t pos_ = 0;
  std::size_t last_read_at_ = 0;
  CheckpointError error_;
};

}  // namespace dart::core
