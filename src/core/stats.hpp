// Counters exposed by a Dart monitor.
//
// `recirculations` divided by `packets_processed` is the paper's
// "recirculations incurred per packet" metric (Figures 11c/12c/13c).
#pragma once

#include <cstdint>
#include <string>

namespace dart::core {

class CheckpointWriter;
class CheckpointReader;
struct CheckpointError;

/// Health counters of the replay *runtime* around a monitor: what the
/// sharded router shed or abandoned when a worker fell behind, died, or
/// wedged. All zeros in a healthy run (and always in a single-threaded
/// one); nonzero fields quantify exactly how much coverage was traded for
/// liveness. Folded into DartStats so the merge path carries degradation
/// accounting alongside the monitor counters.
struct RuntimeHealth {
  std::uint64_t shed_batches = 0;   ///< batches dropped by the OverloadPolicy
  std::uint64_t shed_packets = 0;   ///< packets inside those batches
  std::uint64_t backpressure_events = 0;  ///< flushes that found a full ring
  std::uint64_t backoff_sleeps = 0;       ///< sleeps taken while backpressured
  std::uint64_t workers_killed = 0;   ///< workers that exited mid-replay
  std::uint64_t forced_detaches = 0;  ///< workers abandoned at join timeout
  /// Packets handed to a worker that was later force-detached: neither
  /// processed-and-merged nor shed, so they are unaccounted coverage loss.
  std::uint64_t abandoned_packets = 0;

  // Crash-recovery accounting (the ShardSupervisor's checkpoint/restart
  // path). The extended identity is
  //
  //     processed + shed + abandoned + lost_to_crash == routed
  //
  // where `lost_to_crash` is exactly the post-checkpoint window a crashed
  // worker had processed but whose state was rolled back at restore.
  std::uint64_t recovered = 0;  ///< workers restarted from a checkpoint
  /// Packets re-queued from a dead worker's ring/limbo to its successor:
  /// delivered twice to the shard, processed exactly once.
  std::uint64_t replayed_after_restore = 0;
  /// Packets processed after the last checkpoint by a worker that then
  /// crashed: their state effects were discarded by the rollback. Bounded
  /// by the checkpoint interval when barriers are flowing.
  std::uint64_t lost_to_crash = 0;

  /// True when any coverage was lost (shedding, death, abandonment, or a
  /// rolled-back crash window). Backpressure alone is not degradation — it
  /// is the design working — and neither is a recovery that lost nothing.
  bool degraded() const {
    return shed_packets != 0 || workers_killed != 0 || forced_detaches != 0 ||
           abandoned_packets != 0 || lost_to_crash != 0;
  }

  RuntimeHealth& operator+=(const RuntimeHealth& other);

  friend bool operator==(const RuntimeHealth&, const RuntimeHealth&) =
      default;

  friend RuntimeHealth operator+(RuntimeHealth lhs, const RuntimeHealth& rhs) {
    lhs += rhs;
    return lhs;
  }

  std::string summary() const;  // hotpath-ok: end-of-run reporting
};

struct DartStats {
  // Input.
  std::uint64_t packets_processed = 0;
  std::uint64_t filtered_packets = 0;  ///< skipped by the flow filter (§4)
  std::uint64_t seq_candidates = 0;  ///< data packets on the monitored leg
  std::uint64_t ack_candidates = 0;  ///< ACK packets on the monitored leg
  std::uint64_t syn_ignored = 0;     ///< dropped by the -SYN rule

  // Range Tracker outcomes.
  std::uint64_t rt_new_flows = 0;
  std::uint64_t rt_flow_overwrites = 0;  ///< hash-slot takeovers (bounded RT)
  std::uint64_t rt_idle_timeouts = 0;    ///< ranges abandoned by the timeout
  std::uint64_t seq_tracked = 0;
  std::uint64_t seq_in_order = 0;
  std::uint64_t seq_hole_reanchors = 0;
  std::uint64_t seq_retransmissions = 0;  ///< range collapses from SEQs
  std::uint64_t wraparound_resets = 0;
  std::uint64_t ack_advances = 0;
  std::uint64_t ack_duplicates = 0;  ///< range collapses from dup ACKs
  std::uint64_t ack_below_left = 0;
  std::uint64_t ack_optimistic = 0;
  std::uint64_t ack_no_entry = 0;

  // Packet Tracker outcomes.
  std::uint64_t pt_inserted = 0;
  std::uint64_t pt_evictions = 0;
  std::uint64_t pt_lookup_hits = 0;   ///< == samples emitted
  std::uint64_t pt_lookup_misses = 0;
  std::uint64_t recirculations = 0;
  std::uint64_t dual_role_recirculations = 0;  ///< LegMode::kBoth overhead
  std::uint64_t drops_budget = 0;   ///< recirculation budget exhausted
  std::uint64_t drops_stale = 0;    ///< failed RT re-validation (self-destruct)
  std::uint64_t drops_cycle = 0;    ///< ping-pong cycle detected
  std::uint64_t drops_useless = 0;  ///< analytics usefulness filter
  std::uint64_t drops_shadow = 0;   ///< shadow-RT inline staleness check
  std::uint64_t drops_policy = 0;   ///< kNeverEvict collisions

  std::uint64_t samples = 0;

  /// Degradation accounting of the runtime that drove this monitor. A bare
  /// DartMonitor never touches it; the sharded runtime fills it per shard
  /// and the merge path sums it like every other counter.
  RuntimeHealth runtime;

  /// Fold another monitor's counters into this one. Every field is a sum,
  /// so merging per-shard stats from a flow-partitioned run reproduces the
  /// single-monitor totals exactly (each packet is processed by exactly one
  /// shard).
  DartStats& operator+=(const DartStats& other);
  DartStats& merge(const DartStats& other) { return *this += other; }

  /// Field-wise equality (RuntimeHealth included) — what the batch
  /// differential suite asserts between scalar and batched runs.
  friend bool operator==(const DartStats&, const DartStats&) = default;

  friend DartStats operator+(DartStats lhs, const DartStats& rhs) {
    lhs += rhs;
    return lhs;
  }

  double recirculations_per_packet() const {
    return packets_processed == 0
               ? 0.0
               : static_cast<double>(recirculations) /
                     static_cast<double>(packets_processed);
  }

  /// Serialize every counter (RuntimeHealth included) into an open
  /// checkpoint section; restore() is the exact inverse. Quiesce-time only.
  void snapshot(CheckpointWriter& writer) const;
  CheckpointError restore(CheckpointReader& reader);

  std::string summary() const;  // hotpath-ok: end-of-run reporting
};

}  // namespace dart::core
