// Huge-page backing for the large register tables.
//
// The RT/PT register arrays are probed at uniformly random rows; sized for
// the paper's capture scale (millions of concurrent connections and
// outstanding packets) they span hundreds of megabytes, and on 4 KB pages
// every probe is also a DTLB miss. That is doubly hostile to the batched
// hot path: page walks serialize the probe loads, and x86 silently drops a
// software prefetch whose translation misses the TLB — the whole prefetch
// sweep evaporates. Backing the tables with 2 MB pages keeps the working
// set inside a handful of TLB entries so both the demand loads and the
// prefetch hints actually reach the memory system.
//
// advise_hugepages() must run between allocation and first touch (reserve,
// advise, then resize): kernels in `madvise` THP mode promote a region to
// huge pages eagerly only when the advice precedes the faults; collapsing
// already-faulted 4 KB pages is left to khugepaged, which can lag the whole
// benchmark. Purely advisory — on failure (or off Linux) the table just
// stays on base pages.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace dart {

/// Ask the kernel to back [data, data + bytes) with transparent huge pages.
/// Only the 2 MB-aligned interior of the range is advised (madvise wants
/// page-aligned bounds); regions smaller than one huge page are left alone.
inline void advise_hugepages(void* data, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr std::uintptr_t kHuge = 2u << 20;
  const std::uintptr_t begin = reinterpret_cast<std::uintptr_t>(data);
  const std::uintptr_t aligned = (begin + kHuge - 1) & ~(kHuge - 1);
  const std::uintptr_t end = (begin + bytes) & ~(kHuge - 1);
  if (end > aligned) {
    (void)madvise(reinterpret_cast<void*>(aligned),
                  static_cast<std::size_t>(end - aligned), MADV_HUGEPAGE);
  }
#else
  (void)data;
  (void)bytes;
#endif
}

}  // namespace dart
