// Deterministic random number generation.
//
// Workload generation must be reproducible byte-for-byte across platforms so
// every benchmark regenerates the same trace from a seed. The standard
// library's distributions are implementation-defined, so we implement the
// generator (xoshiro256**) and the distributions ourselves.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/hashing.hpp"

namespace dart {

/// xoshiro256** seeded via SplitMix64, per the reference implementation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = mix64(x);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent stream; forking with distinct ids from one parent
  /// yields decorrelated generators (used to give each flow its own stream).
  Rng fork(std::uint64_t stream_id) {
    return Rng{mix64(next_u64() ^ mix64(stream_id))};
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return lo + bounded(hi - lo + 1);
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (one value per call; simple and exact
  /// enough for workload modelling).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    // Guard against log(0).
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Lognormal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with the given mean.
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Pareto with scale xm and shape alpha (heavy-tailed flow sizes).
  double pareto(double xm, double alpha) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return xm / std::pow(u, 1.0 / alpha);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// Unbiased bounded integer in [0, bound) via rejection sampling.
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  std::uint64_t state_[4];
};

}  // namespace dart
