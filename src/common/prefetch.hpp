// Software prefetch shim.
//
// The batched hot path knows which RT slot and PT stage rows a packet will
// probe several packets before the probe happens (the hashes are computed
// for the whole batch up front), so it can hide the table's cache misses
// behind the decode of the intervening packets. Two distances are used:
//
//   prefetch_far  — issued ~32 packets ahead, targets L2. The L2 miss
//     queue holds several times more outstanding requests than the ~dozen
//     L1 fill buffers, so far prefetches are how the loop gets memory-level
//     parallelism past the single-core demand-miss ceiling.
//   prefetch_near — issued a few packets ahead, promotes the row the rest
//     of the way to L1 with write intent (RT edges advance, PT slots are
//     claimed or erased on nearly every probe).
//
// Compilers without the builtin degrade to a no-op — prefetching is purely
// a performance hint and never affects results.
#pragma once

namespace dart {

/// Pull `addr` toward L2, far ahead of use (read hint: at this distance the
/// goal is overlapping DRAM fetches, not line ownership).
inline void prefetch_far(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, 0, 2);
#else
  (void)addr;
#endif
}

/// Promote `addr` to L1 just before use, with write intent.
inline void prefetch_near(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, 1, 3);
#else
  (void)addr;
#endif
}

/// Hint that `addr` will be written soon — the single-distance variant for
/// callers outside the two-level batched sweep.
inline void prefetch_for_write(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, 1, 2);
#else
  (void)addr;
#endif
}

}  // namespace dart
