// Small text-output helpers shared by the benchmark harnesses and examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dart {

/// Fixed-precision decimal formatting (std::to_string prints 6 digits and
/// std::format is not consistently available on the targeted toolchains).
std::string format_double(double value, int precision);

/// "12.3%" style percentage of a ratio in [0, 1] (not pre-multiplied).
std::string format_percent(double ratio, int precision = 1);

/// Group thousands for readability: 1234567 -> "1,234,567".
std::string format_count(std::uint64_t value);

/// A minimal fixed-width text table: add a header and rows, then render.
/// Used by every bench binary so the regenerated figures print uniformly.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dart
