// The packet record Dart processes.
//
// A trace is a time-ordered stream of these records as observed at the
// monitoring vantage point (e.g. near a campus gateway). Only the fields a
// P4 parser would extract are carried: the 4-tuple, TCP sequence/ack numbers,
// flags, and the TCP payload length (which the hardware prototype obtains
// via a precomputed lookup table, Section 4). The `outbound` bit records
// which side of the monitor the sender sits on: true means the packet
// travels from the monitored (internal) network toward the Internet.
#pragma once

#include <cstdint>
#include <string>

#include "common/four_tuple.hpp"
#include "common/seqnum.hpp"
#include "common/time.hpp"

namespace dart {

namespace tcp_flag {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcp_flag

struct PacketRecord {
  Timestamp ts = 0;       ///< Arrival time at the monitor.
  FourTuple tuple{};      ///< src = the sender of this packet.
  SeqNum seq = 0;         ///< TCP sequence number.
  SeqNum ack = 0;         ///< TCP acknowledgment number (valid iff kAck set).
  std::uint16_t payload = 0;  ///< TCP payload bytes.
  std::uint8_t flags = 0;     ///< TCP flag bits (tcp_flag::*).
  bool outbound = false;      ///< Internal network -> Internet direction.

  constexpr bool has_flag(std::uint8_t flag) const {
    return (flags & flag) != 0;
  }
  constexpr bool is_syn() const { return has_flag(tcp_flag::kSyn); }
  constexpr bool is_fin() const { return has_flag(tcp_flag::kFin); }
  constexpr bool is_rst() const { return has_flag(tcp_flag::kRst); }
  constexpr bool is_ack() const { return has_flag(tcp_flag::kAck); }

  /// Bytes of sequence space this segment consumes. SYN and FIN each occupy
  /// one sequence number in addition to the payload.
  constexpr std::uint32_t seq_span() const {
    return std::uint32_t{payload} + (is_syn() ? 1U : 0U) +
           (is_fin() ? 1U : 0U);
  }

  /// True when this packet advances the sender's sequence space, i.e. a
  /// future cumulative ACK can acknowledge it; these are the packets the
  /// Packet Tracker may record.
  constexpr bool carries_data() const { return seq_span() > 0; }

  /// The acknowledgment number that acknowledges this entire segment — the
  /// paper's "expected ACK" (eACK), the Packet Tracker key.
  constexpr SeqNum expected_ack() const { return seq + seq_span(); }

  std::string to_string() const;  // hotpath-ok: debug formatting

  friend constexpr bool operator==(const PacketRecord&, const PacketRecord&) =
      default;
};

}  // namespace dart
