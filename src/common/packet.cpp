#include "common/packet.hpp"

namespace dart {

std::string PacketRecord::to_string() const {  // hotpath-ok: debug only
  std::string out;  // hotpath-ok: debug formatting
  out += "t=" + std::to_string(ts);
  out += " " + tuple.to_string();
  out += " seq=" + std::to_string(seq);
  if (is_ack()) out += " ack=" + std::to_string(ack);
  out += " len=" + std::to_string(payload);
  std::string flag_text;  // hotpath-ok: debug formatting
  if (is_syn()) flag_text += 'S';
  if (is_fin()) flag_text += 'F';
  if (is_rst()) flag_text += 'R';
  if (is_ack()) flag_text += 'A';
  if (has_flag(tcp_flag::kPsh)) flag_text += 'P';
  if (!flag_text.empty()) out += " [" + flag_text + "]";
  out += outbound ? " out" : " in";
  return out;
}

}  // namespace dart
