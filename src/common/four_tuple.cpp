#include "common/four_tuple.hpp"

#include "common/hashing.hpp"

namespace dart {

FourTuple FourTuple::canonical() const {
  FourTuple rev = reversed();
  return *this < rev ? *this : rev;
}

std::string FourTuple::to_string() const {
  return src_ip.to_string() + ":" + std::to_string(src_port) + " -> " +
         dst_ip.to_string() + ":" + std::to_string(dst_port);
}

std::uint64_t hash_tuple(const FourTuple& tuple) noexcept {
  std::uint64_t ips = (std::uint64_t{tuple.src_ip.value()} << 32) |
                      tuple.dst_ip.value();
  std::uint64_t ports = (std::uint64_t{tuple.src_port} << 16) |
                        tuple.dst_port;
  return mix64(ips ^ mix64(ports ^ 0x9e3779b97f4a7c15ULL));
}

std::uint32_t flow_signature(const FourTuple& tuple) noexcept {
  return fold_signature(hash_tuple(tuple));
}

}  // namespace dart
