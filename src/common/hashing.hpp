// Hash primitives for the data-plane tables.
//
// The Tofino provides CRC-based hash units; each pipeline stage computing a
// table index uses an independently seeded hash. We model that with a
// `HashFamily`: member i is a distinct 64-bit mixer, so a k-stage Packet
// Tracker probes k independent locations for the same record key.
#pragma once

#include <cstdint>
#include <span>

namespace dart {

/// SplitMix64 finalizer: a fast, high-quality 64-bit bijective mixer.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// CRC-32 (IEEE 802.3 polynomial, reflected). The Tofino hash units are CRC
/// based; we provide CRC-32 both for fidelity and as an independent check on
/// signature collision behaviour in tests.
std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

/// Incremental CRC-32 over a 32-bit word (little-endian byte order).
std::uint32_t crc32_u32(std::uint32_t word, std::uint32_t seed = 0) noexcept;

/// A family of independent hash functions indexed by stage number.
class HashFamily {
 public:
  explicit constexpr HashFamily(std::uint64_t seed) : seed_(seed) {}

  /// Hash `key` with the `stage`-th member of the family.
  constexpr std::uint64_t operator()(std::uint64_t key,
                                     std::uint32_t stage) const noexcept {
    return mix64(key ^ mix64(seed_ + 0x632be59bd9b4e019ULL * (stage + 1)));
  }

 private:
  std::uint64_t seed_;
};

}  // namespace dart
