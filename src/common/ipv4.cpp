#include "common/ipv4.hpp"

#include <charconv>

namespace dart {
namespace {

// Parse a decimal integer bounded by `max` from the front of `text`,
// consuming the digits. Returns nullopt on failure.
std::optional<std::uint32_t> parse_bounded(std::string_view& text,
                                           std::uint32_t max) {
  std::uint32_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > max) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return value;
}

}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t addr = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    auto value = parse_bounded(text, 255);
    if (!value) return std::nullopt;
    addr = (addr << 8) | *value;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Addr{addr};
}

std::string Ipv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((addr_ >> shift) & 0xFFU);
  }
  return out;
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  auto length = parse_bounded(len_text, 32);
  if (!length || !len_text.empty()) return std::nullopt;
  return Ipv4Prefix{*addr, *length};
}

std::string Ipv4Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace dart
