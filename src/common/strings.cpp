#include "common/strings.hpp"

#include <algorithm>
#include <cstdio>

namespace dart {

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string format_percent(double ratio, int precision) {
  return format_double(ratio * 100.0, precision) + "%";
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i == lead || (i > lead && (i - lead) % 3 == 0)) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += c == 0 ? "| " : " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };

  std::string out = render_row(header_);
  std::string rule = "|";
  for (std::size_t width : widths) rule += std::string(width + 2, '-') + "|";
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace dart
