// Wraparound-aware TCP sequence number arithmetic.
//
// TCP sequence numbers live in a 32-bit circular space (RFC 793 / RFC 1982
// serial-number arithmetic). All comparisons in the Range Tracker and Packet
// Tracker must treat the space as circular: a "later" byte may have a
// numerically smaller sequence number after wraparound. The paper's prototype
// simplifies wraparound by resetting the Range Tracker left edge to zero
// (Section 4); we implement full serial comparisons here and let the Range
// Tracker choose the simplified reset behaviour explicitly.
#pragma once

#include <cstdint>

namespace dart {

using SeqNum = std::uint32_t;

/// Serial-number "less than": true when `a` precedes `b` in the circular
/// space, i.e. the forward distance from a to b is in (0, 2^31).
constexpr bool seq_lt(SeqNum a, SeqNum b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

constexpr bool seq_gt(SeqNum a, SeqNum b) { return seq_lt(b, a); }
constexpr bool seq_le(SeqNum a, SeqNum b) { return !seq_lt(b, a); }
constexpr bool seq_ge(SeqNum a, SeqNum b) { return !seq_lt(a, b); }

/// Forward distance from `from` to `to` in the circular space. Only
/// meaningful when `to` is not more than 2^31-1 bytes ahead of `from`.
constexpr std::uint32_t seq_distance(SeqNum from, SeqNum to) {
  return to - from;
}

/// Advance a sequence number by `bytes`, wrapping modulo 2^32.
constexpr SeqNum seq_add(SeqNum s, std::uint32_t bytes) { return s + bytes; }

/// True when the closed interval [lo, hi] (circular, hi reached from lo by a
/// forward walk of < 2^31 bytes) contains `s`.
constexpr bool seq_in_closed(SeqNum s, SeqNum lo, SeqNum hi) {
  return seq_le(lo, s) && seq_le(s, hi);
}

/// True when the half-open interval (lo, hi] contains `s`.
constexpr bool seq_in_left_open(SeqNum s, SeqNum lo, SeqNum hi) {
  return seq_lt(lo, s) && seq_le(s, hi);
}

/// True when advancing from `old_right` to `new_right` crosses zero, i.e. a
/// sequence-number wraparound happened between the two edges.
constexpr bool seq_wrapped(SeqNum old_right, SeqNum new_right) {
  return seq_lt(old_right, new_right) && new_right < old_right;
}

}  // namespace dart
