// IPv6 flow identification (Section 7, "Extending Dart to QUIC and IPv6").
//
// The paper: "Dart can also be extended to work with IPv6... since the
// 4-tuple size is much larger in IPv6, and the RT flow signature size is
// fixed, Dart may encounter more hash collisions." The data plane cannot
// widen its register keys, so an IPv6 deployment hashes the 36-byte tuple
// down to the same fixed-width signatures an IPv4 deployment uses.
//
// We model exactly that: `compress()` maps an IPv6 four-tuple into the
// 12-byte FourTuple key space via hashing, after which every monitor in
// this repository works unchanged. Collisions are quantified in
// tests/common/ipv6_test.cpp — with a well-mixed hash they are governed by
// the compressed width, not the input width.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/four_tuple.hpp"

namespace dart {

class Ipv6Addr {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  constexpr Ipv6Addr() : bytes_{} {}
  constexpr explicit Ipv6Addr(const Bytes& bytes) : bytes_(bytes) {}

  const Bytes& bytes() const { return bytes_; }

  /// Parse RFC 4291 text form, including "::" compression ("2001:db8::1").
  /// IPv4-mapped tails and zone indices are not supported.
  static std::optional<Ipv6Addr> parse(std::string_view text);

  /// Full uncompressed lowercase form ("2001:0db8:...:0001").
  std::string to_string() const;

  friend bool operator==(const Ipv6Addr&, const Ipv6Addr&) = default;

 private:
  Bytes bytes_;
};

struct Ipv6FourTuple {
  Ipv6Addr src_ip{};
  Ipv6Addr dst_ip{};
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  Ipv6FourTuple reversed() const {
    return Ipv6FourTuple{dst_ip, src_ip, dst_port, src_port};
  }

  friend bool operator==(const Ipv6FourTuple&, const Ipv6FourTuple&) =
      default;
};

/// 64-bit mix of the full IPv6 tuple.
std::uint64_t hash_tuple(const Ipv6FourTuple& tuple) noexcept;

/// Compress an IPv6 tuple into the FourTuple key space the monitors use.
/// Deterministic; direction-consistent: compress(t.reversed()) ==
/// compress(t).reversed(), so SEQ and ACK lookups pair up exactly as for
/// native IPv4 flows.
FourTuple compress(const Ipv6FourTuple& tuple) noexcept;

}  // namespace dart
