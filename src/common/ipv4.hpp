// IPv4 addresses and prefixes.
//
// The Dart analytics module aggregates RTT samples by destination prefix
// (e.g. /24) before running change detection (Section 3.1, 3.3). Addresses
// are stored host-order so prefix masks are plain shifts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dart {

/// An IPv4 address held in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) : addr_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : addr_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const { return addr_; }

  /// Parse dotted-quad notation; returns nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  std::string to_string() const;

  friend constexpr bool operator==(Ipv4Addr lhs, Ipv4Addr rhs) {
    return lhs.addr_ == rhs.addr_;
  }
  friend constexpr bool operator!=(Ipv4Addr lhs, Ipv4Addr rhs) {
    return lhs.addr_ != rhs.addr_;
  }
  friend constexpr bool operator<(Ipv4Addr lhs, Ipv4Addr rhs) {
    return lhs.addr_ < rhs.addr_;
  }

 private:
  std::uint32_t addr_ = 0;
};

/// A CIDR prefix such as 10.8.0.0/16.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  /// `length` must be in [0, 32]; the base address is masked on construction
  /// so that Ipv4Prefix(1.2.3.4, 24) == Ipv4Prefix(1.2.3.0, 24).
  constexpr Ipv4Prefix(Ipv4Addr base, unsigned length)
      : length_(length > 32 ? 32 : length),
        base_(Ipv4Addr{base.value() & mask(length_)}) {}

  constexpr Ipv4Addr base() const { return base_; }
  constexpr unsigned length() const { return length_; }

  constexpr bool contains(Ipv4Addr addr) const {
    return (addr.value() & mask(length_)) == base_.value();
  }

  /// The /`length` prefix that contains `addr`.
  static constexpr Ipv4Prefix of(Ipv4Addr addr, unsigned length) {
    return Ipv4Prefix{addr, length};
  }

  /// Parse "a.b.c.d/len"; returns nullopt on malformed input.
  static std::optional<Ipv4Prefix> parse(std::string_view text);

  std::string to_string() const;

  friend constexpr bool operator==(const Ipv4Prefix& lhs,
                                   const Ipv4Prefix& rhs) {
    return lhs.base_ == rhs.base_ && lhs.length_ == rhs.length_;
  }
  friend constexpr bool operator<(const Ipv4Prefix& lhs,
                                  const Ipv4Prefix& rhs) {
    if (lhs.base_.value() != rhs.base_.value())
      return lhs.base_ < rhs.base_;
    return lhs.length_ < rhs.length_;
  }

 private:
  static constexpr std::uint32_t mask(unsigned length) {
    return length == 0 ? 0U : ~std::uint32_t{0} << (32U - length);
  }

  unsigned length_ = 0;
  Ipv4Addr base_{};
};

}  // namespace dart
