// TCP connection four-tuples.
//
// A Dart flow is identified by the TCP 4-tuple (src IP, dst IP, src port,
// dst port) of the *data* (SEQ) direction; the matching ACK direction is the
// reversed tuple (Section 2.1). The Range Tracker keys on a 4-byte hash of
// the 12-byte tuple because the Tofino register key word size cannot hold the
// full tuple (Section 4, "Constrained signature wordsize").
#pragma once

#include <cstdint>
#include <string>

#include "common/ipv4.hpp"

namespace dart {

struct FourTuple {
  Ipv4Addr src_ip{};
  Ipv4Addr dst_ip{};
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  /// The tuple of traffic flowing in the opposite direction.
  constexpr FourTuple reversed() const {
    return FourTuple{dst_ip, src_ip, dst_port, src_port};
  }

  /// Direction-insensitive form: the lexicographically smaller of the tuple
  /// and its reverse. Both directions of a connection canonicalize equally.
  FourTuple canonical() const;

  std::string to_string() const;

  friend constexpr bool operator==(const FourTuple&, const FourTuple&) =
      default;
};

/// Strict weak ordering for use in ordered containers.
constexpr bool operator<(const FourTuple& lhs, const FourTuple& rhs) {
  if (lhs.src_ip != rhs.src_ip) return lhs.src_ip < rhs.src_ip;
  if (lhs.dst_ip != rhs.dst_ip) return lhs.dst_ip < rhs.dst_ip;
  if (lhs.src_port != rhs.src_port) return lhs.src_port < rhs.src_port;
  return lhs.dst_port < rhs.dst_port;
}

/// 64-bit mix of the full tuple, suitable as an unordered_map hash and as the
/// base for the data plane's per-stage index hashes.
std::uint64_t hash_tuple(const FourTuple& tuple) noexcept;

/// Fold a hash_tuple() value down to the 4-byte signature the hardware
/// stores: flow_signature(t) == fold_signature(hash_tuple(t)) by definition.
/// Callers that already hold the 64-bit hash (the batched hot path, which
/// computes it once per packet role) derive the signature without rehashing.
constexpr std::uint32_t fold_signature(std::uint64_t tuple_hash) noexcept {
  return static_cast<std::uint32_t>(tuple_hash ^ (tuple_hash >> 32));
}

/// The 4-byte flow signature stored in RT/PT records in place of the 12-byte
/// tuple (paper Section 4). Collisions are possible by design.
std::uint32_t flow_signature(const FourTuple& tuple) noexcept;

struct FourTupleHash {
  std::size_t operator()(const FourTuple& tuple) const noexcept {
    return static_cast<std::size_t>(hash_tuple(tuple));
  }
};

}  // namespace dart
