// Compiler-enforced thread-safety annotations for the host runtime.
//
// Clang's -Wthread-safety analysis proves, at compile time, that every
// access to a mutex-guarded field happens with the right lock held — the
// static counterpart of the TSan jobs, and the host-runtime analogue of
// what dart-pipeline-lint does for the data plane: the invariant is checked
// before anything runs, not observed after it raced. The DART_* macros
// expand to the Clang attributes under Clang and to nothing elsewhere, so a
// GCC build is byte-identical and the annotations cost nothing.
//
// libstdc++'s std::mutex carries no capability attribute, so annotating a
// field GUARDED_BY(a std::mutex) is itself a -Wthread-safety-attributes
// error. The runtime therefore locks through the annotated wrappers below
// (Mutex / MutexLock / UniqueLock), which delegate to std::mutex and add
// only the attributes. Build with -DDART_THREAD_SAFETY=ON under clang (CI's
// static-analysis job does) to turn every violation into a compile error;
// dart-analyze CON005 independently insists the annotations exist at all.
#pragma once

#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define DART_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DART_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Field is protected by the given capability (mutex); reads require the
/// capability shared, writes require it exclusively.
#define DART_GUARDED_BY(x) DART_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data (not the pointer itself) is protected by the capability.
#define DART_PT_GUARDED_BY(x) DART_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held on entry (and does not release it).
#define DART_REQUIRES(...) \
  DART_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define DART_ACQUIRE(...) \
  DART_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define DART_RELEASE(...) \
  DART_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function may acquire the capability; the boolean says which return value
/// means "acquired".
#define DART_TRY_ACQUIRE(...) \
  DART_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define DART_EXCLUDES(...) DART_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Type is a lockable capability.
#define DART_CAPABILITY(x) DART_THREAD_ANNOTATION(capability(x))

/// RAII type whose lifetime equals a critical section.
#define DART_SCOPED_CAPABILITY DART_THREAD_ANNOTATION(scoped_lockable)

/// Escape hatch for code the analysis cannot model; every use needs a
/// same-line reason, the way hotpath-ok waivers do.
#define DART_NO_THREAD_SAFETY_ANALYSIS \
  DART_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Documentation-only marker for fields published by something the analysis
/// cannot express: a release-store of the named atomic (SPSC ring slots,
/// worker exit flags) or a thread join. Expands to nothing everywhere; it
/// exists so cross-thread visibility rules are written at the field, where
/// dart-analyze and reviewers can see them, instead of in tribal knowledge.
#define DART_PUBLISHED_BY(x)

namespace dart::common {

/// std::mutex with the capability attribute the analysis needs. Locking
/// through the RAII types below keeps CON006 (no bare lock/unlock) happy;
/// the raw methods exist for the wrappers and for condition-variable plumbing.
class DART_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DART_ACQUIRE() { mutex_.lock(); }    // con-ok(CON006): wrapper
  void unlock() DART_RELEASE() { mutex_.unlock(); }  // con-ok(CON006): wrapper
  bool try_lock() DART_TRY_ACQUIRE(true) {
    return mutex_.try_lock();  // con-ok(CON006): wrapper
  }

 private:
  std::mutex mutex_;
};

/// Scoped lock (the lock_guard shape): acquires in the constructor, releases
/// in the destructor, no manual control in between.
class DART_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DART_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();  // con-ok(CON006): the RAII acquisition itself
  }
  ~MutexLock() DART_RELEASE() {
    mutex_.unlock();  // con-ok(CON006): the RAII release itself
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Scoped lock that a std::condition_variable_any can drop and retake
/// (BasicLockable). wait() unlocks and relocks internally — opaque to the
/// analysis, which correctly keeps treating the capability as held across
/// the call, so the classic `while (!predicate) cv.wait(lock);` pattern
/// checks cleanly against DART_GUARDED_BY predicates.
class DART_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) DART_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();  // con-ok(CON006): the RAII acquisition itself
    owned_ = true;
  }
  ~UniqueLock() DART_RELEASE() {
    if (owned_) mutex_.unlock();  // con-ok(CON006): the RAII release itself
  }

  void lock() DART_ACQUIRE() {
    mutex_.lock();  // con-ok(CON006): BasicLockable relock for condvar wait
    owned_ = true;
  }
  void unlock() DART_RELEASE() {
    owned_ = false;
    mutex_.unlock();  // con-ok(CON006): BasicLockable unlock for condvar wait
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  Mutex& mutex_;
  // con-ok(CON005): scope-local RAII bookkeeping, never visible off-thread
  bool owned_ = false;
};

}  // namespace dart::common
