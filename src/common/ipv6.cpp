#include "common/ipv6.hpp"

#include <cstdio>
#include <vector>

#include "common/hashing.hpp"

namespace dart {
namespace {

std::optional<std::uint16_t> parse_group(std::string_view text) {
  if (text.empty() || text.size() > 4) return std::nullopt;
  std::uint32_t value = 0;
  for (char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return static_cast<std::uint16_t>(value);
}

std::optional<std::vector<std::uint16_t>> parse_groups(
    std::string_view text) {
  std::vector<std::uint16_t> groups;
  if (text.empty()) return groups;
  while (true) {
    const auto colon = text.find(':');
    const auto group = parse_group(text.substr(0, colon));
    if (!group) return std::nullopt;
    groups.push_back(*group);
    if (colon == std::string_view::npos) break;
    text.remove_prefix(colon + 1);
  }
  return groups;
}

std::uint64_t endpoint_hash(const Ipv6Addr& addr, std::uint16_t port) {
  const auto& b = addr.bytes();
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  for (int i = 0; i < 8; ++i) {
    lo = (lo << 8) | b[static_cast<std::size_t>(i)];
    hi = (hi << 8) | b[static_cast<std::size_t>(i + 8)];
  }
  return mix64(lo ^ mix64(hi ^ mix64(port ^ 0x6D0C'6B1FULL)));
}

}  // namespace

std::optional<Ipv6Addr> Ipv6Addr::parse(std::string_view text) {
  const auto gap = text.find("::");
  std::vector<std::uint16_t> left;
  std::vector<std::uint16_t> right;

  if (gap == std::string_view::npos) {
    const auto groups = parse_groups(text);
    if (!groups || groups->size() != 8) return std::nullopt;
    left = *groups;
  } else {
    if (text.find("::", gap + 1) != std::string_view::npos) {
      return std::nullopt;  // at most one "::"
    }
    const auto l = parse_groups(text.substr(0, gap));
    const auto r = parse_groups(text.substr(gap + 2));
    if (!l || !r || l->size() + r->size() >= 8) return std::nullopt;
    left = *l;
    right = *r;
    left.resize(8 - right.size(), 0);
    left.insert(left.end(), right.begin(), right.end());
  }

  Bytes bytes{};
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[2 * i] = static_cast<std::uint8_t>(left[i] >> 8);
    bytes[2 * i + 1] = static_cast<std::uint8_t>(left[i]);
  }
  return Ipv6Addr{bytes};
}

std::string Ipv6Addr::to_string() const {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer,
                "%02x%02x:%02x%02x:%02x%02x:%02x%02x:"
                "%02x%02x:%02x%02x:%02x%02x:%02x%02x",
                bytes_[0], bytes_[1], bytes_[2], bytes_[3], bytes_[4],
                bytes_[5], bytes_[6], bytes_[7], bytes_[8], bytes_[9],
                bytes_[10], bytes_[11], bytes_[12], bytes_[13], bytes_[14],
                bytes_[15]);
  return buffer;
}

std::uint64_t hash_tuple(const Ipv6FourTuple& tuple) noexcept {
  return mix64(endpoint_hash(tuple.src_ip, tuple.src_port) ^
               mix64(endpoint_hash(tuple.dst_ip, tuple.dst_port) ^
                     0x1BADB002ULL));
}

FourTuple compress(const Ipv6FourTuple& tuple) noexcept {
  // Each endpoint is compressed independently so reversal commutes with
  // compression.
  const std::uint64_t src = endpoint_hash(tuple.src_ip, tuple.src_port);
  const std::uint64_t dst = endpoint_hash(tuple.dst_ip, tuple.dst_port);
  FourTuple out;
  out.src_ip = Ipv4Addr{static_cast<std::uint32_t>(src >> 32)};
  out.dst_ip = Ipv4Addr{static_cast<std::uint32_t>(dst >> 32)};
  out.src_port = static_cast<std::uint16_t>(src >> 16);
  out.dst_port = static_cast<std::uint16_t>(dst >> 16);
  return out;
}

}  // namespace dart
