#include "common/hashing.hpp"

#include <array>

namespace dart {
namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1U) ? 0xEDB88320U : 0U);
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

constexpr std::uint32_t crc_step(std::uint32_t crc,
                                 std::uint8_t byte) noexcept {
  return (crc >> 8) ^ kCrcTable[(crc ^ byte) & 0xFFU];
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFU;
  for (std::uint8_t byte : data) crc = crc_step(crc, byte);
  return crc ^ 0xFFFFFFFFU;
}

std::uint32_t crc32_u32(std::uint32_t word, std::uint32_t seed) noexcept {
  std::uint32_t crc = seed ^ 0xFFFFFFFFU;
  for (int shift = 0; shift < 32; shift += 8) {
    crc = crc_step(crc, static_cast<std::uint8_t>(word >> shift));
  }
  return crc ^ 0xFFFFFFFFU;
}

}  // namespace dart
