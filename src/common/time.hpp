// Timestamp conventions used throughout the Dart reproduction.
//
// The Tofino data plane timestamps packets with a nanosecond-granularity
// hardware clock; the paper reports that Dart can emit RTTs "down to a
// nanosecond granularity" (Section 8). We therefore carry all timestamps as
// unsigned 64-bit nanosecond counts since an arbitrary epoch (trace start).
#pragma once

#include <cstdint>

namespace dart {

/// Nanoseconds since trace start. 2^64 ns is ~584 years, so wraparound is
/// not a concern for timestamps (unlike TCP sequence numbers).
using Timestamp = std::uint64_t;

/// Signed duration in nanoseconds; RTT samples are always non-negative but
/// intermediate arithmetic (e.g. change detection deltas) may be negative.
using DurationNs = std::int64_t;

inline constexpr Timestamp kNsPerUs = 1'000ULL;
inline constexpr Timestamp kNsPerMs = 1'000'000ULL;
inline constexpr Timestamp kNsPerSec = 1'000'000'000ULL;

constexpr Timestamp usec(std::uint64_t n) { return n * kNsPerUs; }
constexpr Timestamp msec(std::uint64_t n) { return n * kNsPerMs; }
constexpr Timestamp sec(std::uint64_t n) { return n * kNsPerSec; }

/// Convert nanoseconds to fractional milliseconds (for reporting only).
constexpr double to_ms(Timestamp ns) {
  return static_cast<double>(ns) / static_cast<double>(kNsPerMs);
}

/// Convert fractional milliseconds to nanoseconds (for configuration only).
constexpr Timestamp from_ms(double ms) {
  return static_cast<Timestamp>(ms * static_cast<double>(kNsPerMs));
}

}  // namespace dart
