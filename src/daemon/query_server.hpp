// QueryServer: dartd's loopback query surface.
//
// A single service thread accepts one connection at a time on
// 127.0.0.1:<port> and answers one request per connection. Two framings
// share the socket: a minimal HTTP/1.0 GET (curl-friendly, Content-Length
// framed) and a bare line protocol (`printf '/status\n' | nc`) that
// returns the raw body. Routing is delegated to a Handler so the server
// knows nothing about the runner — the query side of the ingest/modules/
// query decoupling. All socket waits go through the bounded daemon::net
// helpers, so stop() (or destruction) ends the thread within one poll
// slice even with no client connected.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace dart::daemon {

class QueryServer {
 public:
  /// Maps a request path ("/status") to a response body; an empty body
  /// answers 404 (HTTP) or "error: not found" (line protocol).
  using Handler = std::function<std::string(const std::string& path)>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the service thread.
  /// On bind failure running() is false and port() is 0.
  QueryServer(std::uint16_t port, Handler handler);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  bool running() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Idempotent; joins the service thread.
  void stop();

 private:
  void serve_loop();
  void serve_one(int client_fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace dart::daemon
