// PacketSource: the daemon's ingest seam.
//
// dartd decouples *where packets come from* (a rate-paced .dtrc replay, a
// TCP byte stream, eventually a capture interface) from *what consumes
// them* (the sharded runtime, driven by EpochRunner) — the CoMo-style
// ingest/modules/query split. A source is pull-based and non-blocking: the
// ingest loop polls it between shutdown-flag checks, so no source may ever
// park the loop inside a blocking syscall (dart-analyze CON009 enforces
// the same rule lexically for daemon code).
#pragma once

#include <cstddef>
#include <vector>

#include "common/packet.hpp"

namespace dart::daemon {

class PacketSource {
 public:
  virtual ~PacketSource() = default;

  /// Append up to `max` packets that are ready *now* to `out`; returns how
  /// many were appended. Zero means "nothing ready yet" — the caller
  /// decides whether to sleep, not the source. Must not block.
  virtual std::size_t poll(std::vector<PacketRecord>& out, std::size_t max) = 0;

  /// True once no packet will ever arrive again (trace fully released,
  /// peer closed the stream). A drained-and-exhausted source ends the
  /// ingest cycle; a merely-idle one does not.
  virtual bool exhausted() const = 0;
};

}  // namespace dart::daemon
