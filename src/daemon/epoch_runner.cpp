#include "daemon/epoch_runner.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "analytics/histogram.hpp"
#include "runtime/epoch_math.hpp"
#include "runtime/sharded_monitor.hpp"

namespace dart::daemon {
namespace {

// %.17g round-trips every double exactly (same convention as the
// telemetry exporter), so equal histograms render equal bytes.
std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return std::string(buf);
}

void line(std::string& out, const char* name, std::uint64_t value) {
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void shard_line(std::string& out, const char* name, std::uint32_t shard,
                std::uint64_t value) {
  out += name;
  out += "{shard=\"";
  out += std::to_string(shard);
  out += "\"} ";
  out += std::to_string(value);
  out += '\n';
}

/// The deterministic tier: everything here derives from settled post-drain
/// counters and the canonical merged sample order — no wall clock, no
/// scrape-time state — so a rate-paced live run and an offline replay of
/// the same trace render byte-identical text.
std::string render_final_report(const runtime::ShardedMonitor& monitor,
                                std::uint64_t cycle) {
  std::string out;
  out += "# dartd deterministic report\n";
  line(out, "dartd_cycle", cycle);
  line(out, "dartd_epochs_completed",
       runtime::epochs_completed(monitor.routed_total(),
                                 monitor.config().epoch_interval_packets));
  for (std::uint32_t i = 0; i < monitor.shards(); ++i) {
    const core::DartStats stats = monitor.shard_stats(i);
    shard_line(out, "dart_routed_total", i, monitor.shard_routed_cursor(i));
    shard_line(out, "dart_processed_total", i, stats.packets_processed);
    shard_line(out, "dart_shed_total", i, stats.runtime.shed_packets);
    shard_line(out, "dart_abandoned_total", i,
               stats.runtime.abandoned_packets);
    shard_line(out, "dart_lost_to_crash_total", i,
               stats.runtime.lost_to_crash);
    shard_line(out, "dart_samples_total", i, stats.samples);
  }
  const core::DartStats merged = monitor.merged_stats();
  line(out, "dart_routed_total", monitor.routed_total());
  line(out, "dart_processed_total", merged.packets_processed);
  line(out, "dart_shed_total", merged.runtime.shed_packets);
  line(out, "dart_abandoned_total", merged.runtime.abandoned_packets);
  line(out, "dart_lost_to_crash_total", merged.runtime.lost_to_crash);
  line(out, "dart_samples_total", merged.samples);

  analytics::LogHistogram hist;
  for (const core::RttSample& sample : monitor.merged_samples()) {
    hist.add(sample.rtt());
  }
  line(out, "dart_rtt_ns_count", hist.count());
  line(out, "dart_rtt_ns_min", hist.min());
  line(out, "dart_rtt_ns_max", hist.max());
  for (const double q : {0.5, 0.9, 0.99}) {
    out += "dart_rtt_ns{quantile=\"";
    out += format_double(q);
    out += "\"} ";
    out += format_double(hist.count() == 0 ? 0.0 : hist.quantile(q));
    out += '\n';
  }
  return out;
}

std::string render_epoch_report(const EpochSnapshot& snapshot) {
  std::string out;
  out += "# dartd epoch barrier\n";
  line(out, "dartd_cycle", snapshot.cycle);
  line(out, "dartd_epoch", snapshot.epoch);
  line(out, "dartd_routed_total", snapshot.routed);
  for (std::uint32_t i = 0; i < snapshot.shard_cursors.size(); ++i) {
    shard_line(out, "dartd_shard_cursor", i, snapshot.shard_cursors[i]);
  }
  return out;
}

}  // namespace

const char* to_string(DaemonStatus::State state) {
  switch (state) {
    case DaemonStatus::State::kIdle: return "idle";
    case DaemonStatus::State::kRunning: return "running";
    case DaemonStatus::State::kDrained: return "drained";
  }
  return "unknown";
}

EpochRunner::EpochRunner(const DaemonConfig& config) : config_(config) {}

std::string EpochRunner::run_cycle(PacketSource& source, const StopFn& stop) {
  std::uint64_t cycle = 0;
  {
    common::MutexLock lock(mutex_);
    cycle = ++status_.cycle;
    status_.state = DaemonStatus::State::kRunning;
    status_.epochs = 0;
    status_.routed = 0;
    status_.source_exhausted = false;
    last_epoch_ = EpochSnapshot{};
    final_report_.clear();
  }

  runtime::ShardedConfig sharded;
  sharded.shards = config_.shards;
  sharded.epoch_interval_packets = config_.epoch_interval;
#if defined(DART_TELEMETRY)
  sharded.telemetry = config_.telemetry;
#endif
  // The hook runs on the router thread — this thread, inside
  // process_all — so reading the cursors through `live` never races
  // routing state. `live` is assigned before the first packet is routed.
  runtime::ShardedMonitor* live = nullptr;
  sharded.on_epoch = [this, &live, cycle](std::uint64_t epoch,
                                          std::uint64_t routed) {
    EpochSnapshot snapshot;
    snapshot.cycle = cycle;
    snapshot.epoch = epoch;
    snapshot.routed = routed;
    snapshot.shard_cursors.reserve(live->shards());
    for (std::uint32_t i = 0; i < live->shards(); ++i) {
      snapshot.shard_cursors.push_back(live->shard_routed_cursor(i));
    }
    common::MutexLock lock(mutex_);
    status_.epochs = epoch;
    status_.routed = routed;
    last_epoch_ = std::move(snapshot);
  };

  runtime::ShardedMonitor monitor(sharded, config_.dart);
  live = &monitor;

  std::vector<PacketRecord> batch;
  batch.reserve(config_.poll_budget);
  while (!(stop && stop())) {
    batch.clear();
    const std::size_t pulled = source.poll(batch, config_.poll_budget);
    if (pulled > 0) {
      monitor.process_all(batch);
      common::MutexLock lock(mutex_);
      status_.routed = monitor.routed_total();
      continue;
    }
    if (source.exhausted()) break;
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(config_.idle_sleep_ns));
  }

  // Drain to the barrier: flush partial batches, join every worker, settle
  // results. After this the accounting identity holds exactly.
  monitor.finish();
  std::string report = render_final_report(monitor, cycle);
  {
    common::MutexLock lock(mutex_);
    status_.state = DaemonStatus::State::kDrained;
    status_.routed = monitor.routed_total();
    status_.epochs = runtime::epochs_completed(
        monitor.routed_total(), config_.epoch_interval);
    status_.source_exhausted = source.exhausted();
    final_report_ = report;
  }
  return report;
}

DaemonStatus EpochRunner::status() const {
  common::MutexLock lock(mutex_);
  return status_;
}

EpochSnapshot EpochRunner::last_epoch() const {
  common::MutexLock lock(mutex_);
  return last_epoch_;
}

std::string EpochRunner::epoch_report() const {
  common::MutexLock lock(mutex_);
  return render_epoch_report(last_epoch_);
}

std::string EpochRunner::final_report() const {
  common::MutexLock lock(mutex_);
  return final_report_;
}

}  // namespace dart::daemon
