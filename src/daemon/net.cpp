#include "daemon/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dart::daemon {
namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// One bounded readiness wait: at most kPollSliceMs, never -1.
bool wait_ready(int fd, short events) {
  struct pollfd pfd;
  std::memset(&pfd, 0, sizeof(pfd));
  pfd.fd = fd;
  pfd.events = events;
  return ::poll(&pfd, 1, kPollSliceMs) > 0;
}

}  // namespace

int listen_tcp_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int connect_tcp_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int try_accept(int listen_fd) {
  // con-ok(CON009): listener fd is O_NONBLOCK, returns EAGAIN immediately
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return -1;
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int bounded_accept(int listen_fd, const StopFn& stop) {
  for (;;) {
    if (stop && stop()) return -1;
    const int fd = try_accept(listen_fd);
    if (fd >= 0) return fd;
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) return -1;
    wait_ready(listen_fd, POLLIN);  // bounded slice, then re-check stop
  }
}

std::ptrdiff_t read_available(int fd, std::uint8_t* buf, std::size_t len) {
  for (;;) {
    // con-ok(CON009): fd is O_NONBLOCK, returns EAGAIN instead of parking
    const ssize_t n = ::read(fd, buf, len);
    if (n > 0) return static_cast<std::ptrdiff_t>(n);
    if (n == 0) return -1;  // peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

std::ptrdiff_t bounded_read(int fd, std::uint8_t* buf, std::size_t len,
                            const StopFn& stop) {
  for (;;) {
    if (stop && stop()) return -1;
    // con-ok(CON009): fd is O_NONBLOCK, returns EAGAIN instead of parking
    const ssize_t n = ::read(fd, buf, len);
    if (n >= 0) return static_cast<std::ptrdiff_t>(n);
    if (errno == EINTR) continue;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return -1;
    wait_ready(fd, POLLIN);  // bounded slice, then re-check stop
  }
}

bool write_all(int fd, const void* data, std::size_t len, const StopFn& stop) {
  const auto* cursor = static_cast<const std::uint8_t*>(data);
  std::size_t remaining = len;
  while (remaining > 0) {
    if (stop && stop()) return false;
    const ssize_t n = ::write(fd, cursor, remaining);
    if (n > 0) {
      cursor += n;
      remaining -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_ready(fd, POLLOUT);  // bounded slice, then re-check stop
      continue;
    }
    return false;
  }
  return true;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace dart::daemon
