// Bounded socket primitives for daemon code.
//
// Every blocking network syscall in the daemon goes through these helpers:
// they poll with a short timeout and re-check a stop predicate between
// waits, so SIGTERM can never be stuck behind an accept() or read() that
// only returns when a peer shows up. dart-analyze CON009 rejects raw
// accept/recv/read calls in src/daemon/ for exactly this reason — the
// waivered call sites live here and nowhere else. Loopback TCP only: the
// daemon's ingest and query listeners are local-machine surfaces, not
// exposed services.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace dart::daemon {

/// Shutdown predicate checked between bounded waits; true means "give up
/// and return now".
using StopFn = std::function<bool()>;

/// How long one bounded wait lasts before the stop predicate is re-checked.
/// Worst-case shutdown latency added by any single helper call.
inline constexpr int kPollSliceMs = 50;

/// Listen on 127.0.0.1:`port` (0 picks an ephemeral port). Returns the
/// listening fd (non-blocking, SO_REUSEADDR) or -1 on failure.
int listen_tcp_local(std::uint16_t port);

/// Actual bound port of a listening/connected socket — resolves port 0.
/// Returns 0 on failure.
std::uint16_t local_port(int fd);

/// Connect to 127.0.0.1:`port`; returns a blocking connected fd or -1.
/// Test/client-side helper (the feeder side of SocketSource).
int connect_tcp_local(std::uint16_t port);

/// Accept one connection, waiting in kPollSliceMs slices until a peer
/// arrives or `stop()` turns true. Returns the connected fd (non-blocking)
/// or -1 (stopped, or listener error).
int bounded_accept(int listen_fd, const StopFn& stop);

/// Accept without waiting at all: a connection that is ready now, or -1.
int try_accept(int listen_fd);

/// Read up to `len` bytes, waiting in kPollSliceMs slices for readability.
/// Returns bytes read (>0), 0 on clean EOF, or -1 (stopped, or error).
std::ptrdiff_t bounded_read(int fd, std::uint8_t* buf, std::size_t len,
                            const StopFn& stop);

/// Read whatever is available right now, without waiting: bytes read (>0),
/// 0 when nothing is ready, -1 on EOF or error.
std::ptrdiff_t read_available(int fd, std::uint8_t* buf, std::size_t len);

/// Write the whole buffer, waiting in kPollSliceMs slices for writability.
/// Returns false when stopped or on error.
bool write_all(int fd, const void* data, std::size_t len, const StopFn& stop);

/// close() that tolerates fd < 0.
void close_fd(int fd);

}  // namespace dart::daemon
