#include "daemon/replay_source.hpp"

#include <chrono>
#include <utility>

namespace dart::daemon {
namespace {

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ReplaySource::ReplaySource(trace::Trace trace,
                           const ReplaySourceConfig& config)
    : trace_(std::move(trace)), config_(config) {}

std::size_t ReplaySource::poll(std::vector<PacketRecord>& out,
                               std::size_t max) {
  const auto& packets = trace_.packets();
  if (cursor_ >= packets.size() || max == 0) return 0;

  std::size_t budget = max;
  if (config_.rate > 0.0) {
    if (!anchored_) {
      // Anchor at first poll, not construction: the daemon may build the
      // source well before the runtime starts pulling.
      anchored_ = true;
      anchor_wall_ns_ = wall_now_ns();
      base_ts_ = packets[cursor_].ts;
    }
    const double elapsed_wall =
        static_cast<double>(wall_now_ns() - anchor_wall_ns_);
    const Timestamp virtual_now =
        base_ts_ + static_cast<Timestamp>(elapsed_wall * config_.rate);
    std::size_t due = 0;
    while (cursor_ + due < packets.size() && due < budget &&
           packets[cursor_ + due].ts <= virtual_now) {
      ++due;
    }
    budget = due;
  } else {
    budget = std::min(budget, packets.size() - cursor_);
  }

  out.insert(out.end(), packets.begin() + static_cast<std::ptrdiff_t>(cursor_),
             packets.begin() + static_cast<std::ptrdiff_t>(cursor_ + budget));
  cursor_ += budget;
  return budget;
}

bool ReplaySource::exhausted() const {
  return cursor_ >= trace_.packets().size();
}

}  // namespace dart::daemon
