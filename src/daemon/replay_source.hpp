// ReplaySource: a .dtrc trace played back as a live packet feed.
//
// The bridge between the offline corpus and the daemon: the same trace can
// be replayed unpaced (as fast as poll() asks — the offline-equivalence
// baseline) or rate-paced against the wall clock, releasing each packet
// once its trace timestamp falls due at `rate` times real time. Pacing
// changes only *when* packets become available, never their content or
// order, which is what makes the live-vs-replay byte-identity claim
// testable at all.
#pragma once

#include <cstdint>

#include "daemon/packet_source.hpp"
#include "trace/trace.hpp"

namespace dart::daemon {

struct ReplaySourceConfig {
  /// Playback speed as a multiple of real time against the trace's
  /// nanosecond timestamps: 1.0 replays a 10-second trace in ~10 wall
  /// seconds, 1000.0 in ~10 ms. 0 disables pacing (every packet is ready
  /// immediately).
  double rate = 0.0;
};

class ReplaySource final : public PacketSource {
 public:
  ReplaySource(trace::Trace trace, const ReplaySourceConfig& config = {});

  std::size_t poll(std::vector<PacketRecord>& out, std::size_t max) override;
  bool exhausted() const override;

  /// Packets released so far (monotone cursor into the trace).
  std::uint64_t released() const { return cursor_; }

 private:
  trace::Trace trace_;
  ReplaySourceConfig config_;
  std::size_t cursor_ = 0;
  bool anchored_ = false;
  /// Wall-clock nanoseconds (steady clock) when pacing was anchored, i.e.
  /// at the first poll; trace time base_ts_ maps onto this instant.
  std::uint64_t anchor_wall_ns_ = 0;
  std::uint64_t base_ts_ = 0;
};

}  // namespace dart::daemon
