// EpochRunner: the daemon's module layer — continuous epoch rotation over
// the sharded runtime.
//
// The batch runtime answers queries only "after finish()". The runner
// keeps that invariant *per epoch* instead of per process: it drives a
// ShardedMonitor from a PacketSource, and at every epoch barrier (the
// router-thread on_epoch hook) seals a snapshot of the routed cursors into
// a mutex-guarded board that query threads read concurrently. Shutdown
// (stop predicate true, or source exhausted) is drain-to-barrier: flush
// partial batches, join workers, settle results — so the final report
// carries the exact accounting identity
//
//     processed + shed + abandoned + lost_to_crash == routed
//
// per shard and in aggregate, and its deterministic rendering is
// byte-identical between a rate-paced live run and an unpaced offline
// replay of the same trace (pacing changes arrival times, not content).
//
// Each ingest cycle builds a FRESH ShardedMonitor — the lifecycle fix made
// reuse a typed error (LifecycleError), and the runner is the pattern's
// intended consumer: rotate monitors, never resurrect one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/config.hpp"
#include "daemon/net.hpp"
#include "daemon/packet_source.hpp"

#if defined(DART_TELEMETRY)
namespace dart::telemetry {
struct RuntimeMetrics;
}  // namespace dart::telemetry
#endif

namespace dart::daemon {

struct DaemonConfig {
  core::DartConfig dart;

  /// Worker shards of the underlying runtime.
  std::uint32_t shards = 2;

  /// Routed packets per epoch; every boundary seals a query snapshot.
  std::uint64_t epoch_interval = 65536;

  /// Max packets pulled from the source per ingest turn; bounds the time
  /// between stop-flag checks.
  std::size_t poll_budget = 4096;

  /// Sleep between empty polls of an idle (not exhausted) source.
  std::uint64_t idle_sleep_ns = 200'000;

#if defined(DART_TELEMETRY)
  /// Live-tier instrumentation for the cycle's runtime; must outlive
  /// run_cycle(). nullptr runs uninstrumented.
  telemetry::RuntimeMetrics* telemetry = nullptr;
#endif
};

/// One sealed epoch barrier: the router-side cursors at the instant the
/// hook fired. A routing barrier, not a quiesce point — workers may still
/// be consuming up to these cursors.
struct EpochSnapshot {
  std::uint64_t cycle = 0;
  std::uint64_t epoch = 0;   ///< 1-based; 0 means "no epoch sealed yet"
  std::uint64_t routed = 0;  ///< == epoch * interval
  std::vector<std::uint64_t> shard_cursors;  ///< sum == routed
};

struct DaemonStatus {
  enum class State : std::uint8_t { kIdle, kRunning, kDrained };
  State state = State::kIdle;
  std::uint64_t cycle = 0;
  std::uint64_t epochs = 0;
  std::uint64_t routed = 0;
  bool source_exhausted = false;
};

const char* to_string(DaemonStatus::State state);

class EpochRunner {
 public:
  explicit EpochRunner(const DaemonConfig& config);

  /// Drive one ingest cycle to its drain barrier: pull from `source` until
  /// it is exhausted or `stop()` turns true, then flush, join, and seal
  /// the final deterministic report (also returned). Ingest-thread only;
  /// the query accessors below are safe concurrently.
  std::string run_cycle(PacketSource& source, const StopFn& stop);

  DaemonStatus status() const;
  EpochSnapshot last_epoch() const;

  /// Text renderings for the query surface. epoch_report() covers the last
  /// sealed barrier (header-only before the first); final_report() is
  /// empty until a cycle has drained.
  std::string epoch_report() const;
  std::string final_report() const;

  const DaemonConfig& config() const { return config_; }

 private:
  mutable common::Mutex mutex_;
  DaemonStatus status_ DART_GUARDED_BY(mutex_);
  EpochSnapshot last_epoch_ DART_GUARDED_BY(mutex_);
  std::string final_report_ DART_GUARDED_BY(mutex_);
  // con-ok(CON005): immutable after construction, read-only from any thread
  DaemonConfig config_;
};

}  // namespace dart::daemon
