#include "daemon/socket_source.hpp"

#include "daemon/net.hpp"
#include "trace/trace_io.hpp"

namespace dart::daemon {
namespace {

constexpr std::size_t kRecordBytes =
    static_cast<std::size_t>(trace::kPacketRecordBytes);

}  // namespace

SocketSource::SocketSource(std::uint16_t port) {
  static_assert(sizeof(pending_) == kRecordBytes,
                "reassembly buffer must hold exactly one wire record");
  listen_fd_ = listen_tcp_local(port);
  if (listen_fd_ < 0) {
    exhausted_ = true;
    return;
  }
  port_ = local_port(listen_fd_);
}

SocketSource::~SocketSource() {
  close_fd(client_fd_);
  close_fd(listen_fd_);
}

std::size_t SocketSource::poll(std::vector<PacketRecord>& out,
                               std::size_t max) {
  if (exhausted_ || max == 0) return 0;
  if (client_fd_ < 0) {
    client_fd_ = try_accept(listen_fd_);
    if (client_fd_ < 0) return 0;  // no feeder yet; stay non-blocking
  }
  std::size_t appended = 0;
  while (appended < max) {
    const std::ptrdiff_t n = read_available(
        client_fd_, pending_ + pending_len_, kRecordBytes - pending_len_);
    if (n < 0) {
      // Peer EOF (or a hard error): the stream is over for this feeder.
      close_fd(client_fd_);
      client_fd_ = -1;
      exhausted_ = true;
      break;
    }
    if (n == 0) break;  // no bytes ready now
    pending_len_ += static_cast<std::size_t>(n);
    if (pending_len_ < kRecordBytes) continue;
    pending_len_ = 0;
    PacketRecord packet;
    if (!trace::decode_packet_record(pending_, packet)) {
      ++rejected_;  // fixed-size framing: skip the record, stay in sync
      continue;
    }
    out.push_back(packet);
    ++appended;
  }
  return appended;
}

bool SocketSource::exhausted() const { return exhausted_; }

void SocketSource::rearm() {
  if (listen_fd_ < 0) return;  // bind failed: permanently exhausted
  exhausted_ = false;
  pending_len_ = 0;
}

}  // namespace dart::daemon
