#include "daemon/query_server.hpp"

#include <cstddef>
#include <utility>

#include "daemon/net.hpp"

namespace dart::daemon {
namespace {

constexpr std::size_t kMaxRequestBytes = 1024;

/// "GET /path HTTP/1.x" -> "/path"; a bare line is already the path.
/// Returns true when the request was HTTP-framed.
bool parse_request_line(const std::string& request_line, std::string& path) {
  if (request_line.rfind("GET ", 0) == 0) {
    const std::size_t start = 4;
    const std::size_t end = request_line.find(' ', start);
    path = request_line.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    return true;
  }
  path = request_line;
  return false;
}

}  // namespace

QueryServer::QueryServer(std::uint16_t port, Handler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = listen_tcp_local(port);
  if (listen_fd_ < 0) return;
  port_ = local_port(listen_fd_);
  thread_ = std::thread([this] { serve_loop(); });
}

QueryServer::~QueryServer() { stop(); }

void QueryServer::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  close_fd(listen_fd_);
  listen_fd_ = -1;
}

void QueryServer::serve_loop() {
  const StopFn stop = [this] {
    return stop_.load(std::memory_order_acquire);
  };
  while (!stop()) {
    const int client_fd = bounded_accept(listen_fd_, stop);
    if (client_fd < 0) continue;  // stopped, or a transient accept error
    serve_one(client_fd);
    close_fd(client_fd);
  }
}

void QueryServer::serve_one(int client_fd) {
  const StopFn stop = [this] {
    return stop_.load(std::memory_order_acquire);
  };
  // Read up to the first newline: both framings are one-line requests (any
  // HTTP headers that follow are irrelevant and left unread).
  std::string request;
  std::uint8_t chunk[256];
  while (request.find('\n') == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const std::ptrdiff_t n =
        bounded_read(client_fd, chunk, sizeof(chunk), stop);
    if (n <= 0) break;  // EOF, error, or stopping
    request.append(reinterpret_cast<const char*>(chunk),
                   static_cast<std::size_t>(n));
  }
  const std::size_t eol = request.find('\n');
  if (eol == std::string::npos) return;  // never got a full request line
  std::string request_line = request.substr(0, eol);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.pop_back();
  }
  if (request_line.empty()) return;

  std::string path;
  const bool http = parse_request_line(request_line, path);
  const std::string body = handler_ ? handler_(path) : std::string();

  std::string response;
  if (http) {
    response = body.empty() ? "HTTP/1.0 404 Not Found\r\n"
                            : "HTTP/1.0 200 OK\r\n";
    response += "Content-Type: text/plain; charset=utf-8\r\n";
    const std::string payload = body.empty() ? "not found\n" : body;
    response += "Content-Length: " + std::to_string(payload.size()) + "\r\n";
    response += "Connection: close\r\n\r\n";
    response += payload;
  } else {
    response = body.empty() ? std::string("error: not found\n") : body;
  }
  write_all(client_fd, response.data(), response.size(), stop);
}

}  // namespace dart::daemon
