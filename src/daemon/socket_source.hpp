// SocketSource: packet records streamed over loopback TCP.
//
// The wire format is exactly the .dtrc packet stream — back-to-back
// 32-byte little-endian records (trace::encode_packet_record), no header —
// so a feeder can `dart-trace`-split a capture and pipe it in, and a test
// can byte-compare against file replay. One feeder at a time: the source
// accepts lazily inside poll() (never blocking; CON009), reads whatever
// bytes are ready, and surfaces complete records. Peer EOF marks the
// source exhausted; rearm() readies it for the next feeder/cycle.
#pragma once

#include <cstdint>

#include "daemon/packet_source.hpp"

namespace dart::daemon {

class SocketSource final : public PacketSource {
 public:
  /// Listens on 127.0.0.1:`port` (0 = ephemeral; see port()). Failure to
  /// bind leaves the source permanently exhausted with port() == 0.
  explicit SocketSource(std::uint16_t port);
  ~SocketSource() override;

  SocketSource(const SocketSource&) = delete;
  SocketSource& operator=(const SocketSource&) = delete;

  std::size_t poll(std::vector<PacketRecord>& out, std::size_t max) override;
  bool exhausted() const override;

  /// Actual bound ingest port (resolves an ephemeral request); 0 if bind
  /// failed.
  std::uint16_t port() const { return port_; }

  /// Ready the source for the next feeder after EOF: clears the exhausted
  /// state so poll() accepts a new connection. Partial trailing bytes from
  /// the previous feeder are discarded (a truncated record cannot be
  /// completed by an unrelated peer).
  void rearm();

  /// Records dropped because they failed field validation (decode returned
  /// false); the stream stays in sync because records are fixed-size.
  std::uint64_t rejected_records() const { return rejected_; }

 private:
  int listen_fd_ = -1;
  int client_fd_ = -1;
  std::uint16_t port_ = 0;
  bool exhausted_ = false;
  std::uint64_t rejected_ = 0;
  std::uint8_t pending_[32];
  std::size_t pending_len_ = 0;
};

}  // namespace dart::daemon
