// SnapshotWatcher: change-driven re-rendering of exported snapshot files.
//
// dart-top's watch loop used to re-read and re-parse the snapshot on every
// tick regardless of whether anything changed, and a read that raced a
// non-atomic writer surfaced as parse-error spam every interval. The
// watcher fixes both: a stat() signature (existence, size, mtime) gates
// the read — unchanged file, no work — and a parse failure is re-read once
// before being reported, which absorbs the torn-read race (write_atomic's
// rename makes it rare; plain writers make it routine). Each distinct
// signature reports at most one event, so a persistently broken file says
// so once instead of every tick.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/export.hpp"

namespace dart::telemetry {

/// What stat() knows about a file: enough to detect change without reading
/// content. Equality of signatures is the "skip the read" test.
struct FileSignature {
  bool exists = false;
  std::uint64_t size = 0;
  std::int64_t mtime_ns = 0;

  friend bool operator==(const FileSignature&, const FileSignature&) =
      default;
};

FileSignature probe_file(const std::string& path);

class SnapshotWatcher {
 public:
  enum class Event : std::uint8_t {
    kUnchanged,   ///< signature identical to last poll; nothing read
    kRendered,    ///< file changed and parsed; `samples` is filled
    kParseError,  ///< changed but unparseable even after the one retry
    kUnreadable,  ///< changed but missing/unopenable after the one retry
  };

  /// `read_file` is injectable for tests (simulate torn reads); the
  /// default reads the file from disk.
  using ReadFileFn =
      std::function<bool(const std::string& path, std::string& out)>;

  explicit SnapshotWatcher(std::string path, ReadFileFn read_file = {});

  /// One watch turn. Never blocks; call it on whatever cadence the caller
  /// already has. kParseError/kUnreadable fire once per signature change.
  Event poll(std::vector<PromSample>& samples);

  const FileSignature& last_signature() const { return last_; }

 private:
  bool parsed_ok(const std::string& text,
                 const std::vector<PromSample>& samples) const;

  std::string path_;
  ReadFileFn read_file_;
  FileSignature last_;
};

}  // namespace dart::telemetry
