// Lock-free metric primitives for the telemetry registry.
//
// Each worker owns a private slot per metric family (one slot per shard),
// so the hot path is a single relaxed atomic RMW with no sharing between
// writers — the same discipline as the runtime's per-shard stats. Relaxed
// ordering is sufficient: readers (the exporter) tolerate slightly stale
// values and never use a metric to synchronize with other memory; exact
// totals come from the quiesce-time fold after workers have joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "analytics/histogram.hpp"
#include "common/time.hpp"

namespace dart::telemetry {

/// Monotonic event count. set() exists for the quiesce-time fold, which
/// overwrites live approximations with the authoritative merged result.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (ring occupancy, governor rung). Signed so
/// add()-style deltas can go negative transiently without wrapping the
/// exported value.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-binned latency distribution with atomic bins; the writable twin of
/// analytics::LogHistogram. observe() is one bin lookup plus one relaxed
/// fetch_add; fold() exports the bins into a plain LogHistogram (via
/// from_layout) for quantile math and cross-shard merging.
class Histogram {
 public:
  Histogram(Timestamp min_value, Timestamp max_value,
            std::uint32_t bins_per_decade)
      : layout_(min_value, max_value, bins_per_decade),
        bins_(layout_.bins().size()) {}

  void observe(Timestamp value) {
    bins_[layout_.bin_index(value)].fetch_add(1, std::memory_order_relaxed);
    update_floor(seen_min_, value);
    update_ceiling(seen_max_, value);
  }

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& bin : bins_) {
      total += bin.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Snapshot the atomic bins into a plain LogHistogram with identical
  /// layout — same_layout() holds across all folds of the same family, so
  /// the cross-shard merge is an exact bin-by-bin sum.
  analytics::LogHistogram fold() const {
    std::vector<std::uint64_t> bins(bins_.size());
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      bins[i] = bins_[i].load(std::memory_order_relaxed);
      total += bins[i];
    }
    const Timestamp lo = seen_min_.load(std::memory_order_relaxed);
    const Timestamp hi = seen_max_.load(std::memory_order_relaxed);
    return analytics::LogHistogram::from_layout(
        layout_.log_min(), layout_.log_step(), std::move(bins),
        total == 0 ? 0 : lo, total == 0 ? 0 : hi);
  }

 private:
  static void update_floor(std::atomic<Timestamp>& slot, Timestamp value) {
    Timestamp cur = slot.load(std::memory_order_relaxed);
    while (value < cur &&
           !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
    }
  }
  static void update_ceiling(std::atomic<Timestamp>& slot, Timestamp value) {
    Timestamp cur = slot.load(std::memory_order_relaxed);
    while (value > cur &&
           !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
    }
  }

  analytics::LogHistogram layout_;  ///< bin geometry only; never add()ed to
  std::vector<std::atomic<std::uint64_t>> bins_;
  std::atomic<Timestamp> seen_min_{std::numeric_limits<Timestamp>::max()};
  std::atomic<Timestamp> seen_max_{0};
};

}  // namespace dart::telemetry
