// The standard metric families the sharded runtime exports.
//
// Two disjoint tiers, split by where truth lives:
//
//  * **Authoritative** (deterministic): every counter derived from the
//    merged per-shard DartStats/RuntimeHealth at quiesce time. Live
//    increments of these would double-count rolled-back crash windows and
//    count work a force-detached worker did but the merge discarded, so
//    they are written exactly once, by fold_authoritative(), after the
//    runtime's own accounting has settled. These satisfy the identity
//        processed + shed + abandoned + lost_to_crash == routed
//    and are what deterministic-only snapshots export.
//
//  * **Live** (wall-clock): heartbeat counters, gauges, and latency
//    histograms written from the hot paths as work happens. They exist for
//    dart-top's moving picture and may legitimately disagree with the
//    authoritative tier mid-run (and, after crashes, even at the end).
#pragma once

#include "core/stats.hpp"
#include "telemetry/registry.hpp"

namespace dart::telemetry {

struct RuntimeMetrics {
  /// Registers every standard family in `registry` (idempotent: families
  /// are get-or-create, so several runtimes may share one registry).
  explicit RuntimeMetrics(Registry& registry);

  Registry* registry = nullptr;

  // -- Authoritative tier (set by fold_authoritative) --
  CounterFamily* routed = nullptr;
  CounterFamily* processed = nullptr;
  CounterFamily* samples = nullptr;
  CounterFamily* recirculations = nullptr;
  CounterFamily* shed = nullptr;
  CounterFamily* abandoned = nullptr;
  CounterFamily* lost_to_crash = nullptr;
  CounterFamily* workers_killed = nullptr;
  CounterFamily* workers_detached = nullptr;
  CounterFamily* workers_recovered = nullptr;
  CounterFamily* replayed_after_restore = nullptr;

  // -- Live tier --
  CounterFamily* worker_batches = nullptr;
  CounterFamily* worker_packets = nullptr;
  CounterFamily* backpressure_sleeps = nullptr;
  CounterFamily* governor_backoffs = nullptr;
  CounterFamily* governor_sheds = nullptr;
  CounterFamily* checkpoint_commits = nullptr;
  CounterFamily* checkpoint_rejected = nullptr;
  GaugeFamily* ring_occupancy = nullptr;
  HistogramFamily* batch_latency = nullptr;
  HistogramFamily* batch_fill = nullptr;  ///< packets per dequeued batch
  HistogramFamily* commit_latency = nullptr;

  /// Write one shard's authoritative counters from its merged result.
  /// `routed_to_shard` is the router-side count of packets enqueued to the
  /// shard (shed included); the remaining terms come from `result`.
  void fold_authoritative(std::size_t shard, std::uint64_t routed_to_shard,
                          const core::DartStats& result);
};

}  // namespace dart::telemetry
