#include "telemetry/registry.hpp"

#include <algorithm>
#include <cassert>

namespace dart::telemetry {

CounterFamily::CounterFamily(std::string name, FamilyOptions options,
                             std::size_t slots)
    : name_(std::move(name)), options_(std::move(options)) {
  for (std::size_t i = 0; i < std::max<std::size_t>(slots, 1); ++i) {
    slots_.emplace_back();
  }
}

std::uint64_t CounterFamily::total() const {
  std::uint64_t sum = 0;
  for (const Counter& slot : slots_) sum += slot.value();
  return sum;
}

GaugeFamily::GaugeFamily(std::string name, FamilyOptions options,
                         std::size_t slots)
    : name_(std::move(name)), options_(std::move(options)) {
  for (std::size_t i = 0; i < std::max<std::size_t>(slots, 1); ++i) {
    slots_.emplace_back();
  }
}

HistogramFamily::HistogramFamily(std::string name, HistogramOptions options,
                                 std::size_t slots)
    : name_(std::move(name)), options_(options) {
  for (std::size_t i = 0; i < std::max<std::size_t>(slots, 1); ++i) {
    slots_.emplace_back(options.min_value, options.max_value,
                        options.bins_per_decade);
  }
}

analytics::LogHistogram HistogramFamily::fold_all() const {
  analytics::LogHistogram merged = slots_[0].fold();
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    merged.merge(slots_[i].fold());
  }
  return merged;
}

Registry::Registry(std::size_t default_slots)
    : default_slots_(std::max<std::size_t>(default_slots, 1)) {}

CounterFamily& Registry::counter(const std::string& name,
                                 FamilyOptions options) {
  const common::MutexLock lock(mutex_);
  if (const auto it = counter_index_.find(name);
      it != counter_index_.end()) {
    return *it->second;
  }
  assert(gauge_index_.count(name) == 0 && histogram_index_.count(name) == 0 &&
         "metric name reused across kinds");
  const std::size_t slots = resolve_slots(options.slots);
  CounterFamily& family =
      counters_.emplace_back(CounterFamily(name, std::move(options), slots));
  counter_index_.emplace(name, &family);
  return family;
}

GaugeFamily& Registry::gauge(const std::string& name, FamilyOptions options) {
  const common::MutexLock lock(mutex_);
  if (const auto it = gauge_index_.find(name); it != gauge_index_.end()) {
    return *it->second;
  }
  assert(counter_index_.count(name) == 0 &&
         histogram_index_.count(name) == 0 &&
         "metric name reused across kinds");
  const std::size_t slots = resolve_slots(options.slots);
  GaugeFamily& family =
      gauges_.emplace_back(GaugeFamily(name, std::move(options), slots));
  gauge_index_.emplace(name, &family);
  return family;
}

HistogramFamily& Registry::histogram(const std::string& name,
                                     HistogramOptions options) {
  const common::MutexLock lock(mutex_);
  if (const auto it = histogram_index_.find(name);
      it != histogram_index_.end()) {
    return *it->second;
  }
  assert(counter_index_.count(name) == 0 && gauge_index_.count(name) == 0 &&
         "metric name reused across kinds");
  const std::size_t slots = resolve_slots(options.slots);
  HistogramFamily& family = histograms_.emplace_back(
      HistogramFamily(name, std::move(options), slots));
  histogram_index_.emplace(name, &family);
  return family;
}

std::size_t Registry::family_count() const {
  const common::MutexLock lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

TelemetrySnapshot Registry::snapshot(const SnapshotOptions& options) const {
  const common::MutexLock lock(mutex_);
  TelemetrySnapshot snap;
  for (const CounterFamily& family : counters_) {
    if (options.deterministic_only && !family.deterministic()) continue;
    CounterSnapshot out;
    out.name = family.name();
    out.help = family.help();
    out.deterministic = family.deterministic();
    out.per_slot.reserve(family.slots());
    for (std::size_t i = 0; i < family.slots(); ++i) {
      out.per_slot.push_back(family.at(i).value());
      out.total += out.per_slot.back();
    }
    snap.counters.push_back(std::move(out));
  }
  for (const GaugeFamily& family : gauges_) {
    if (options.deterministic_only && !family.deterministic()) continue;
    GaugeSnapshot out;
    out.name = family.name();
    out.help = family.help();
    out.deterministic = family.deterministic();
    out.per_slot.reserve(family.slots());
    for (std::size_t i = 0; i < family.slots(); ++i) {
      out.per_slot.push_back(family.at(i).value());
    }
    snap.gauges.push_back(std::move(out));
  }
  for (const HistogramFamily& family : histograms_) {
    if (options.deterministic_only && !family.deterministic()) continue;
    HistogramSnapshot out;
    out.name = family.name();
    out.help = family.help();
    out.deterministic = family.deterministic();
    out.per_slot_counts.reserve(family.slots());
    for (std::size_t i = 0; i < family.slots(); ++i) {
      out.per_slot_counts.push_back(family.at(i).count());
    }
    out.folded = family.fold_all();
    snap.histograms.push_back(std::move(out));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

}  // namespace dart::telemetry
