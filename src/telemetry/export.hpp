// Snapshot rendering: Prometheus text exposition and versioned JSON.
//
// Both renderers consume the already-sorted TelemetrySnapshot and emit
// byte-stable text for identical snapshots — the property the determinism
// test and the CI golden check pin. parse_prometheus() is the inverse used
// by dart-top and the tests; it reads the subset of the exposition format
// these renderers produce (no escaped label values, no exemplars).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"

namespace dart::telemetry {

/// Prometheus text exposition format. Counters render one line per shard
/// plus an aggregate; histograms render fixed quantiles (kExportQuantiles)
/// of the cross-shard fold plus _count/_min/_max.
std::string to_prometheus(const TelemetrySnapshot& snapshot);

/// Versioned JSON document with the same content as to_prometheus.
std::string to_json(const TelemetrySnapshot& snapshot);

struct PromSample {
  std::string name;
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Parse the exposition subset produced by to_prometheus. Comment lines
/// and blank lines are skipped; malformed lines are dropped silently (the
/// caller sees fewer samples, never garbage).
std::vector<PromSample> parse_prometheus(const std::string& text);

/// Convenience over parse_prometheus: value of the sample matching `name`
/// with no labels (the aggregate line), or `fallback` if absent.
double prom_value(const std::vector<PromSample>& samples,
                  const std::string& name, double fallback = 0.0);

/// Write `content` to `path` via a temp file + rename so a concurrent
/// reader (dart-top in watch mode) never observes a torn snapshot — the
/// same publish discipline as the checkpoint writer. Returns false on any
/// I/O failure.
bool write_atomic(const std::string& path, const std::string& content);

}  // namespace dart::telemetry
