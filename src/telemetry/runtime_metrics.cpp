#include "telemetry/runtime_metrics.hpp"

namespace dart::telemetry {

RuntimeMetrics::RuntimeMetrics(Registry& reg) : registry(&reg) {
  const auto det = [](const char* help) {
    FamilyOptions opts;
    opts.help = help;
    opts.deterministic = true;
    return opts;
  };
  const auto live = [](const char* help) {
    FamilyOptions opts;
    opts.help = help;
    opts.deterministic = false;
    return opts;
  };

  routed = &reg.counter("dart_routed_total",
                        det("packets enqueued to the shard by the router, "
                            "shed included"));
  processed = &reg.counter(
      "dart_processed_total",
      det("packets processed and merged (authoritative, post-quiesce)"));
  samples = &reg.counter("dart_samples_total",
                         det("RTT samples emitted by the merged monitors"));
  recirculations = &reg.counter(
      "dart_recirculations_total",
      det("packet-tracker recirculations (paper metric, per-packet when "
          "divided by dart_processed_total)"));
  shed = &reg.counter("dart_shed_total",
                      det("packets dropped by the overload policy"));
  abandoned = &reg.counter(
      "dart_abandoned_total",
      det("packets handed to a worker that was later force-detached"));
  lost_to_crash = &reg.counter(
      "dart_lost_to_crash_total",
      det("packets whose effects were rolled back by crash recovery"));
  workers_killed = &reg.counter("dart_workers_killed_total",
                                det("workers that exited mid-replay"));
  workers_detached = &reg.counter(
      "dart_workers_detached_total",
      det("workers abandoned at join timeout"));
  workers_recovered = &reg.counter(
      "dart_workers_recovered_total",
      det("workers restarted from a checkpoint"));
  replayed_after_restore = &reg.counter(
      "dart_replayed_after_restore_total",
      det("packets re-queued from a dead worker to its successor"));

  worker_batches = &reg.counter(
      "dart_worker_batches_total",
      live("batches dequeued by workers (live heartbeat)"));
  worker_packets = &reg.counter(
      "dart_worker_packets_total",
      live("packets dequeued by workers (live heartbeat; crash windows "
           "are not rolled back here)"));
  backpressure_sleeps = &reg.counter(
      "dart_backpressure_sleeps_total",
      live("router sleeps while a shard ring was full"));
  governor_backoffs = &reg.counter(
      "dart_governor_backoffs_total",
      live("overload-governor transitions into backoff"));
  governor_sheds = &reg.counter(
      "dart_governor_sheds_total",
      live("overload-governor transitions into shedding"));
  checkpoint_commits = &reg.counter(
      "dart_checkpoint_commits_total",
      live("checkpoint epochs committed by the coordinator"));
  checkpoint_rejected = &reg.counter(
      "dart_checkpoint_rejected_total",
      live("checkpoint contributions rejected (stale epoch or fencing)"));

  {
    FamilyOptions opts = live("approximate shard ring occupancy at last "
                              "router flush");
    ring_occupancy = &reg.gauge("dart_ring_occupancy", opts);
  }
  {
    HistogramOptions opts;
    opts.help = "wall-clock latency of one worker batch (ns)";
    batch_latency = &reg.histogram("dart_batch_latency_ns", opts);
  }
  {
    HistogramOptions opts;
    opts.help = "packets per dequeued ring batch (SoA hot-path fill level)";
    batch_fill = &reg.histogram("dart_batch_fill", opts);
  }
  {
    HistogramOptions opts;
    opts.help = "wall-clock latency of one checkpoint commit (ns)";
    opts.slots = 1;  // the coordinator is a single writer
    opts.max_value = sec(100);
    commit_latency = &reg.histogram("dart_commit_latency_ns", opts);
  }
}

void RuntimeMetrics::fold_authoritative(std::size_t shard,
                                        std::uint64_t routed_to_shard,
                                        const core::DartStats& result) {
  routed->at(shard).set(routed_to_shard);
  processed->at(shard).set(result.packets_processed);
  samples->at(shard).set(result.samples);
  recirculations->at(shard).set(result.recirculations);
  shed->at(shard).set(result.runtime.shed_packets);
  abandoned->at(shard).set(result.runtime.abandoned_packets);
  lost_to_crash->at(shard).set(result.runtime.lost_to_crash);
  workers_killed->at(shard).set(result.runtime.workers_killed);
  workers_detached->at(shard).set(result.runtime.forced_detaches);
  workers_recovered->at(shard).set(result.runtime.recovered);
  replayed_after_restore->at(shard).set(
      result.runtime.replayed_after_restore);
}

}  // namespace dart::telemetry
