// Metric registry: named families of per-shard metric slots.
//
// A *family* is one logical metric (say dart_routed_total) with one slot
// per shard; workers write their own slot without synchronization and the
// exporter reads across slots. Families are created once at startup (or
// lazily at first use, under a mutex); the hot path never touches the
// registry itself, only the slot reference it resolved up front.
//
// Determinism: each family declares whether its values are replay-stable —
// derived from the deterministic merged result of a healthy fixed-seed run
// — or wall-clock dependent (latency histograms, occupancy, backpressure).
// snapshot({.deterministic_only = true}) keeps only the former, which is
// what the two-runs-byte-identical test and the CI golden check export.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "telemetry/metrics.hpp"

namespace dart::telemetry {

struct FamilyOptions {
  std::string help;
  /// Slots in the family; 0 means the registry default (one per shard).
  std::size_t slots = 0;
  /// Replay-stable under a fixed seed (see file comment). Wall-clock
  /// metrics must set this false or they poison deterministic exports.
  bool deterministic = true;
};

struct HistogramOptions {
  std::string help;
  std::size_t slots = 0;
  bool deterministic = false;  ///< latency is wall-clock by nature
  Timestamp min_value = usec(1);
  Timestamp max_value = sec(10);
  std::uint32_t bins_per_decade = 10;
};

/// One named counter family. Slots live in a deque: metric slots hold
/// std::atomic members (non-movable), and deque::emplace_back never
/// relocates existing elements, so slot references stay valid forever.
class CounterFamily {
 public:
  Counter& at(std::size_t slot) { return slots_[slot % slots_.size()]; }
  const Counter& at(std::size_t slot) const {
    return slots_[slot % slots_.size()];
  }
  std::size_t slots() const { return slots_.size(); }
  std::uint64_t total() const;

  const std::string& name() const { return name_; }
  const std::string& help() const { return options_.help; }
  bool deterministic() const { return options_.deterministic; }

 private:
  friend class Registry;
  CounterFamily(std::string name, FamilyOptions options, std::size_t slots);

  std::string name_;
  FamilyOptions options_;
  std::deque<Counter> slots_;
};

class GaugeFamily {
 public:
  Gauge& at(std::size_t slot) { return slots_[slot % slots_.size()]; }
  const Gauge& at(std::size_t slot) const {
    return slots_[slot % slots_.size()];
  }
  std::size_t slots() const { return slots_.size(); }

  const std::string& name() const { return name_; }
  const std::string& help() const { return options_.help; }
  bool deterministic() const { return options_.deterministic; }

 private:
  friend class Registry;
  GaugeFamily(std::string name, FamilyOptions options, std::size_t slots);

  std::string name_;
  FamilyOptions options_;
  std::deque<Gauge> slots_;
};

class HistogramFamily {
 public:
  Histogram& at(std::size_t slot) { return slots_[slot % slots_.size()]; }
  const Histogram& at(std::size_t slot) const {
    return slots_[slot % slots_.size()];
  }
  std::size_t slots() const { return slots_.size(); }
  /// Exact cross-shard merge (all slots share one layout).
  analytics::LogHistogram fold_all() const;

  const std::string& name() const { return name_; }
  const std::string& help() const { return options_.help; }
  bool deterministic() const { return options_.deterministic; }

 private:
  friend class Registry;
  HistogramFamily(std::string name, HistogramOptions options,
                  std::size_t slots);

  std::string name_;
  HistogramOptions options_;
  std::deque<Histogram> slots_;
};

struct SnapshotOptions {
  bool deterministic_only = false;
};

/// Quantiles every histogram exports; fixed so snapshots are comparable.
inline constexpr double kExportQuantiles[] = {0.5, 0.9, 0.99};

struct CounterSnapshot {
  std::string name;
  std::string help;
  bool deterministic = true;
  std::vector<std::uint64_t> per_slot;
  std::uint64_t total = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::string help;
  bool deterministic = true;
  std::vector<std::int64_t> per_slot;
};

struct HistogramSnapshot {
  std::string name;
  std::string help;
  bool deterministic = false;
  std::vector<std::uint64_t> per_slot_counts;
  analytics::LogHistogram folded;  ///< exact merge across slots
};

/// Point-in-time view of every family, each section sorted by name so the
/// rendered exports are byte-stable regardless of registration order.
struct TelemetrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

class Registry {
 public:
  /// `default_slots` is the per-family slot count when FamilyOptions does
  /// not override it — the runtime passes its shard count.
  explicit Registry(std::size_t default_slots = 1);

  /// Get-or-create by name. A second call with the same name returns the
  /// existing family (options of the first call win). Reusing a name
  /// across metric kinds is a programming error (asserted in debug).
  CounterFamily& counter(const std::string& name, FamilyOptions options = {});
  GaugeFamily& gauge(const std::string& name, FamilyOptions options = {});
  HistogramFamily& histogram(const std::string& name,
                             HistogramOptions options = {});

  std::size_t default_slots() const { return default_slots_; }
  std::size_t family_count() const;

  TelemetrySnapshot snapshot(const SnapshotOptions& options = {}) const;

 private:
  std::size_t resolve_slots(std::size_t requested) const {
    return requested == 0 ? default_slots_ : requested;
  }

  // The mutex guards family *creation* (the deques and name indexes), not
  // slot writes: workers only touch the atomic slots inside a family, via
  // references resolved up front, and deque growth never relocates existing
  // families. default_slots_ is const — set once, read lock-free.
  mutable common::Mutex mutex_;
  const std::size_t default_slots_;
  std::deque<CounterFamily> counters_ DART_GUARDED_BY(mutex_);
  std::deque<GaugeFamily> gauges_ DART_GUARDED_BY(mutex_);
  std::deque<HistogramFamily> histograms_ DART_GUARDED_BY(mutex_);
  std::map<std::string, CounterFamily*> counter_index_
      DART_GUARDED_BY(mutex_);
  std::map<std::string, GaugeFamily*> gauge_index_ DART_GUARDED_BY(mutex_);
  std::map<std::string, HistogramFamily*> histogram_index_
      DART_GUARDED_BY(mutex_);
};

}  // namespace dart::telemetry
