#include "telemetry/export.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dart::telemetry {
namespace {

/// Shortest round-trippable rendering: %.17g is byte-stable for identical
/// doubles, which is all the determinism contract needs.
std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Quantile *labels* use the shortest rendering ("0.9", not
/// "0.90000000000000002"): they are identifiers consumers match on, not
/// measurements, and %g is just as deterministic for these constants.
std::string format_label(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

void render_help(std::ostringstream& out, const std::string& name,
                 const std::string& help, const char* type) {
  if (!help.empty()) out << "# HELP " << name << ' ' << help << '\n';
  out << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

std::string to_prometheus(const TelemetrySnapshot& snapshot) {
  std::ostringstream out;
  for (const CounterSnapshot& counter : snapshot.counters) {
    render_help(out, counter.name, counter.help, "counter");
    if (counter.per_slot.size() > 1) {
      for (std::size_t i = 0; i < counter.per_slot.size(); ++i) {
        out << counter.name << "{shard=\"" << i << "\"} "
            << counter.per_slot[i] << '\n';
      }
    }
    out << counter.name << ' ' << counter.total << '\n';
  }
  for (const GaugeSnapshot& gauge : snapshot.gauges) {
    render_help(out, gauge.name, gauge.help, "gauge");
    std::int64_t total = 0;
    if (gauge.per_slot.size() > 1) {
      for (std::size_t i = 0; i < gauge.per_slot.size(); ++i) {
        out << gauge.name << "{shard=\"" << i << "\"} " << gauge.per_slot[i]
            << '\n';
      }
    }
    for (const std::int64_t v : gauge.per_slot) total += v;
    out << gauge.name << ' ' << total << '\n';
  }
  for (const HistogramSnapshot& hist : snapshot.histograms) {
    render_help(out, hist.name, hist.help, "summary");
    for (const double q : kExportQuantiles) {
      out << hist.name << "{quantile=\"" << format_label(q) << "\"} "
          << format_double(hist.folded.quantile(q)) << '\n';
    }
    if (hist.per_slot_counts.size() > 1) {
      for (std::size_t i = 0; i < hist.per_slot_counts.size(); ++i) {
        out << hist.name << "_count{shard=\"" << i << "\"} "
            << hist.per_slot_counts[i] << '\n';
      }
    }
    out << hist.name << "_count " << hist.folded.count() << '\n';
    out << hist.name << "_min " << hist.folded.min() << '\n';
    out << hist.name << "_max " << hist.folded.max() << '\n';
  }
  return out.str();
}

std::string to_json(const TelemetrySnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"version\": 1,\n  \"counters\": [";
  for (std::size_t c = 0; c < snapshot.counters.size(); ++c) {
    const CounterSnapshot& counter = snapshot.counters[c];
    out << (c == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << json_escape(counter.name)
        << "\", \"help\": \"" << json_escape(counter.help)
        << "\", \"deterministic\": "
        << (counter.deterministic ? "true" : "false") << ", \"per_slot\": [";
    for (std::size_t i = 0; i < counter.per_slot.size(); ++i) {
      out << (i == 0 ? "" : ", ") << counter.per_slot[i];
    }
    out << "], \"total\": " << counter.total << '}';
  }
  out << "\n  ],\n  \"gauges\": [";
  for (std::size_t g = 0; g < snapshot.gauges.size(); ++g) {
    const GaugeSnapshot& gauge = snapshot.gauges[g];
    out << (g == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << json_escape(gauge.name)
        << "\", \"help\": \"" << json_escape(gauge.help)
        << "\", \"deterministic\": "
        << (gauge.deterministic ? "true" : "false") << ", \"per_slot\": [";
    for (std::size_t i = 0; i < gauge.per_slot.size(); ++i) {
      out << (i == 0 ? "" : ", ") << gauge.per_slot[i];
    }
    out << "]}";
  }
  out << "\n  ],\n  \"histograms\": [";
  for (std::size_t h = 0; h < snapshot.histograms.size(); ++h) {
    const HistogramSnapshot& hist = snapshot.histograms[h];
    out << (h == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << json_escape(hist.name)
        << "\", \"help\": \"" << json_escape(hist.help)
        << "\", \"deterministic\": "
        << (hist.deterministic ? "true" : "false")
        << ", \"count\": " << hist.folded.count()
        << ", \"min\": " << hist.folded.min()
        << ", \"max\": " << hist.folded.max() << ", \"quantiles\": [";
    for (std::size_t q = 0; q < std::size(kExportQuantiles); ++q) {
      out << (q == 0 ? "" : ", ") << "{\"q\": "
          << format_label(kExportQuantiles[q]) << ", \"value\": "
          << format_double(hist.folded.quantile(kExportQuantiles[q])) << '}';
    }
    out << "], \"per_slot_counts\": [";
    for (std::size_t i = 0; i < hist.per_slot_counts.size(); ++i) {
      out << (i == 0 ? "" : ", ") << hist.per_slot_counts[i];
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::vector<PromSample> parse_prometheus(const std::string& text) {
  std::vector<PromSample> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    PromSample sample;
    std::size_t value_start = 0;
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    if (brace != std::string::npos &&
        (space == std::string::npos || brace < space)) {
      const std::size_t close = line.find('}', brace);
      if (close == std::string::npos) continue;
      sample.name = line.substr(0, brace);
      // k="v" pairs, comma separated; our renderer never escapes quotes
      // inside values.
      std::size_t pos = brace + 1;
      while (pos < close) {
        const std::size_t eq = line.find('=', pos);
        if (eq == std::string::npos || eq >= close) break;
        const std::size_t vopen = line.find('"', eq);
        if (vopen == std::string::npos || vopen >= close) break;
        const std::size_t vclose = line.find('"', vopen + 1);
        if (vclose == std::string::npos || vclose > close) break;
        sample.labels.emplace(line.substr(pos, eq - pos),
                              line.substr(vopen + 1, vclose - vopen - 1));
        pos = vclose + 1;
        if (pos < close && line[pos] == ',') ++pos;
      }
      value_start = close + 1;
    } else {
      if (space == std::string::npos) continue;
      sample.name = line.substr(0, space);
      value_start = space;
    }
    if (sample.name.empty()) continue;  // "{...} v" or leading space
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    if (value_start >= line.size()) continue;
    char* end = nullptr;
    sample.value = std::strtod(line.c_str() + value_start, &end);
    if (end == line.c_str() + value_start) continue;
    // Our renderers never emit NaN/Inf; a non-finite value in scraped text
    // is damage (or an adversarial feed) and would poison every aggregate
    // it touches downstream, so drop the sample rather than propagate it.
    if (!std::isfinite(sample.value)) continue;
    samples.push_back(std::move(sample));
  }
  return samples;
}

double prom_value(const std::vector<PromSample>& samples,
                  const std::string& name, double fallback) {
  for (const PromSample& sample : samples) {
    if (sample.name == name && sample.labels.empty()) return sample.value;
  }
  return fallback;
}

bool write_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace dart::telemetry
