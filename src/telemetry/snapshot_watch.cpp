#include "telemetry/snapshot_watch.hpp"

#include <sys/stat.h>

#include <fstream>
#include <sstream>
#include <utility>

namespace dart::telemetry {
namespace {

bool read_from_disk(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

FileSignature probe_file(const std::string& path) {
  struct stat st;
  FileSignature sig;
  if (::stat(path.c_str(), &st) != 0) return sig;  // exists stays false
  sig.exists = true;
  sig.size = static_cast<std::uint64_t>(st.st_size);
  sig.mtime_ns = static_cast<std::int64_t>(st.st_mtim.tv_sec) *
                     1'000'000'000 +
                 static_cast<std::int64_t>(st.st_mtim.tv_nsec);
  return sig;
}

SnapshotWatcher::SnapshotWatcher(std::string path, ReadFileFn read_file)
    : path_(std::move(path)),
      read_file_(read_file ? std::move(read_file) : read_from_disk) {}

bool SnapshotWatcher::parsed_ok(const std::string& text,
                                const std::vector<PromSample>& samples) const {
  if (!samples.empty()) return true;
  // Zero samples is a legitimate parse of blank/comment-only text; it is a
  // failure only when there was substantive text to parse (the torn-read
  // shape: half a line of digits, no complete sample).
  for (std::size_t i = 0; i < text.size();) {
    std::size_t end = text.find('\n', i);
    if (end == std::string::npos) end = text.size();
    std::size_t start = i;
    while (start < end && (text[start] == ' ' || text[start] == '\t')) {
      ++start;
    }
    if (start < end && text[start] != '#') return false;
    i = end + 1;
  }
  return true;
}

SnapshotWatcher::Event SnapshotWatcher::poll(
    std::vector<PromSample>& samples) {
  const FileSignature sig = probe_file(path_);
  if (sig == last_) return Event::kUnchanged;

  // The file changed. Read-and-parse with one retry: a failure on the
  // first attempt is more likely a torn read racing the writer than real
  // damage, and the second attempt observes the settled file.
  Event failure = Event::kUnreadable;
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::string text;
    if (!sig.exists || !read_file_(path_, text)) {
      failure = Event::kUnreadable;
      continue;
    }
    samples = parse_prometheus(text);
    if (parsed_ok(text, samples)) {
      // Adopt the pre-read probe, not a fresh one: if the writer landed
      // between probe and read, the next poll re-renders rather than
      // silently skipping the newer content.
      last_ = sig;
      return Event::kRendered;
    }
    samples.clear();
    failure = Event::kParseError;
  }
  // Report this signature's failure exactly once: adopting it here means
  // the next poll sees "unchanged" until the writer touches the file again.
  last_ = sig;
  return failure;
}

}  // namespace dart::telemetry
