#include "fleet/frame.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>

#include "common/hashing.hpp"

namespace dart::fleet {

namespace {

constexpr std::uint8_t kMagic[4] = {'D', 'F', 'R', 'M'};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

void patch_u32(std::vector<std::uint8_t>& out, std::size_t offset,
               std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
}

/// Bounds-checked little-endian cursor over the whole frame (the
/// CheckpointReader idiom, specialized to this decoder).
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  bool take(std::size_t n) {
    if (error_) return false;
    if (bytes_.size() - pos_ < n) {
      error_ = FrameError::at(FrameErrorCode::kTruncated, pos_);
      return false;
    }
    last_read_at_ = pos_;
    pos_ += n;
    return true;
  }

  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= std::uint32_t{bytes_[last_read_at_ +
                                    static_cast<std::size_t>(i)]}
               << (8 * i);
    }
    return value;
  }

  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= std::uint64_t{bytes_[last_read_at_ +
                                    static_cast<std::size_t>(i)]}
               << (8 * i);
    }
    return value;
  }

  std::span<const std::uint8_t> blob(std::size_t n) {
    if (!take(n)) return {};
    return bytes_.subspan(last_read_at_, n);
  }

  FrameError error_here(FrameErrorCode code) const {
    return FrameError::at(code, last_read_at_);
  }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }
  const FrameError& error() const { return error_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  std::size_t last_read_at_ = 0;
  FrameError error_;
};

FrameError decode_vantage_info(std::span<const std::uint8_t> payload,
                               std::uint64_t base_offset, VantageInfo* info) {
  Cursor cursor(payload);
  const std::uint32_t name_len = cursor.u32();
  if (name_len > payload.size()) {
    return FrameError::at(FrameErrorCode::kBadFieldValue, base_offset);
  }
  const auto name = cursor.blob(name_len);
  info->name.assign(reinterpret_cast<const char*>(name.data()), name.size());
  info->expected_routed = cursor.u64();
  info->planned_epochs = cursor.u64();
  info->epoch_interval = cursor.u64();
  if (cursor.error()) {
    return FrameError::at(cursor.error().code,
                          base_offset + cursor.error().offset);
  }
  if (cursor.remaining() != 0) {
    return FrameError::at(FrameErrorCode::kTrailingBytes,
                          base_offset + cursor.pos());
  }
  return FrameError::ok();
}

FrameError decode_rtt_histogram(std::span<const std::uint8_t> payload,
                                std::uint64_t base_offset,
                                RttHistogramSection* hist) {
  Cursor cursor(payload);
  hist->log_min = std::bit_cast<double>(cursor.u64());
  hist->log_step = std::bit_cast<double>(cursor.u64());
  hist->seen_min = cursor.u64();
  hist->seen_max = cursor.u64();
  const std::uint32_t bin_count = cursor.u32();
  if (cursor.error()) {
    return FrameError::at(cursor.error().code,
                          base_offset + cursor.error().offset);
  }
  // The layout must be one LogHistogram can actually hold: finite log10
  // bounds, a strictly positive step, and a bounded bin table — a CRC-valid
  // but hostile frame must not drive quantile math into NaN territory or
  // force an unbounded allocation.
  if (!std::isfinite(hist->log_min) || !std::isfinite(hist->log_step) ||
      hist->log_step <= 0.0 || bin_count == 0 ||
      bin_count > kMaxHistogramBins) {
    return FrameError::at(FrameErrorCode::kBadFieldValue, base_offset);
  }
  hist->bins.resize(bin_count);
  for (std::uint32_t i = 0; i < bin_count; ++i) hist->bins[i] = cursor.u64();
  if (cursor.error()) {
    return FrameError::at(cursor.error().code,
                          base_offset + cursor.error().offset);
  }
  if (cursor.remaining() != 0) {
    return FrameError::at(FrameErrorCode::kTrailingBytes,
                          base_offset + cursor.pos());
  }
  if (hist->total() > 0 && hist->seen_min > hist->seen_max) {
    return FrameError::at(FrameErrorCode::kBadFieldValue, base_offset + 16);
  }
  return FrameError::ok();
}

}  // namespace

const char* to_string(FrameErrorCode code) {
  switch (code) {
    case FrameErrorCode::kNone:
      return "ok";
    case FrameErrorCode::kTruncated:
      return "truncated";
    case FrameErrorCode::kBadMagic:
      return "bad magic";
    case FrameErrorCode::kBadVersion:
      return "unsupported version";
    case FrameErrorCode::kCrcMismatch:
      return "CRC mismatch";
    case FrameErrorCode::kBadSectionHeader:
      return "bad section header";
    case FrameErrorCode::kDuplicateSection:
      return "duplicate section";
    case FrameErrorCode::kBadKind:
      return "bad frame kind";
    case FrameErrorCode::kBadFieldValue:
      return "bad field value";
    case FrameErrorCode::kTrailingBytes:
      return "trailing bytes";
    case FrameErrorCode::kIoError:
      return "I/O error";
  }
  return "unknown";
}

std::string FrameError::to_string() const {
  if (code == FrameErrorCode::kNone) return "ok";
  return std::string(fleet::to_string(code)) + " at byte offset " +
         std::to_string(offset);
}

std::vector<std::uint8_t> encode_frame(const SnapshotFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes);
  for (const std::uint8_t byte : kMagic) out.push_back(byte);
  put_u32(out, kFrameVersion);
  put_u32(out, 0);  // CRC placeholder
  put_u64(out, frame.header.vantage);
  put_u64(out, frame.header.sequence);
  put_u64(out, frame.header.epoch);
  put_u64(out, frame.header.cursor);
  put_u32(out, static_cast<std::uint32_t>(frame.header.kind));
  const std::size_t count_at = out.size();
  put_u32(out, 0);  // section count placeholder

  std::uint32_t sections = 0;
  const auto begin_section = [&out, &sections](FrameSection id,
                                               std::uint64_t length) {
    put_u32(out, static_cast<std::uint32_t>(id));
    put_u64(out, length);
    ++sections;
  };
  if (frame.has_info) {
    std::vector<std::uint8_t> body;
    put_u32(body, static_cast<std::uint32_t>(frame.info.name.size()));
    body.insert(body.end(), frame.info.name.begin(), frame.info.name.end());
    put_u64(body, frame.info.expected_routed);
    put_u64(body, frame.info.planned_epochs);
    put_u64(body, frame.info.epoch_interval);
    begin_section(FrameSection::kVantageInfo, body.size());
    out.insert(out.end(), body.begin(), body.end());
  }
  if (frame.has_checkpoint) {
    begin_section(FrameSection::kCheckpoint, frame.checkpoint.bytes.size());
    out.insert(out.end(), frame.checkpoint.bytes.begin(),
               frame.checkpoint.bytes.end());
  }
  if (frame.has_telemetry) {
    begin_section(FrameSection::kTelemetry, frame.telemetry.size());
    out.insert(out.end(), frame.telemetry.begin(), frame.telemetry.end());
  }
  if (frame.has_rtt_histogram) {
    const RttHistogramSection& hist = frame.rtt_histogram;
    std::vector<std::uint8_t> body;
    put_u64(body, std::bit_cast<std::uint64_t>(hist.log_min));
    put_u64(body, std::bit_cast<std::uint64_t>(hist.log_step));
    put_u64(body, hist.seen_min);
    put_u64(body, hist.seen_max);
    put_u32(body, static_cast<std::uint32_t>(hist.bins.size()));
    for (const std::uint64_t bin : hist.bins) put_u64(body, bin);
    begin_section(FrameSection::kRttHistogram, body.size());
    out.insert(out.end(), body.begin(), body.end());
  }

  patch_u32(out, count_at, sections);
  reseal_frame(out);
  return out;
}

FrameError decode_frame(std::span<const std::uint8_t> bytes,
                        SnapshotFrame* out) {
  *out = SnapshotFrame{};
  if (bytes.size() < kFrameHeaderBytes) {
    return FrameError::at(FrameErrorCode::kTruncated, bytes.size());
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return FrameError::at(FrameErrorCode::kBadMagic, 0);
  }
  Cursor cursor(bytes);
  cursor.blob(4);  // magic, already checked
  const std::uint32_t version = cursor.u32();
  if (version != kFrameVersion) {
    return cursor.error_here(FrameErrorCode::kBadVersion);
  }
  const std::uint32_t stored_crc = cursor.u32();
  const std::uint32_t computed_crc = crc32(bytes.subspan(kFrameCrcStart));
  if (stored_crc != computed_crc) {
    return FrameError::at(FrameErrorCode::kCrcMismatch, kFrameCrcOffset);
  }
  out->header.vantage = cursor.u64();
  out->header.sequence = cursor.u64();
  out->header.epoch = cursor.u64();
  out->header.cursor = cursor.u64();
  const std::uint32_t kind = cursor.u32();
  if (kind < static_cast<std::uint32_t>(FrameKind::kManifest) ||
      kind > static_cast<std::uint32_t>(FrameKind::kFinal)) {
    return cursor.error_here(FrameErrorCode::kBadKind);
  }
  out->header.kind = static_cast<FrameKind>(kind);
  const std::uint32_t section_count = cursor.u32();

  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::size_t section_at = cursor.pos();
    const std::uint32_t id = cursor.u32();
    const std::uint64_t length = cursor.u64();
    if (cursor.error()) return cursor.error();
    if (length > cursor.remaining()) {
      return FrameError::at(FrameErrorCode::kBadSectionHeader, section_at);
    }
    const auto payload = cursor.blob(static_cast<std::size_t>(length));
    const std::uint64_t payload_at = section_at + 12;
    switch (static_cast<FrameSection>(id)) {
      case FrameSection::kVantageInfo: {
        if (out->has_info) {
          return FrameError::at(FrameErrorCode::kDuplicateSection,
                                section_at);
        }
        out->has_info = true;
        if (auto err = decode_vantage_info(payload, payload_at, &out->info)) {
          return err;
        }
        break;
      }
      case FrameSection::kCheckpoint: {
        if (out->has_checkpoint) {
          return FrameError::at(FrameErrorCode::kDuplicateSection,
                                section_at);
        }
        out->has_checkpoint = true;
        out->checkpoint.bytes.assign(payload.begin(), payload.end());
        break;
      }
      case FrameSection::kTelemetry: {
        if (out->has_telemetry) {
          return FrameError::at(FrameErrorCode::kDuplicateSection,
                                section_at);
        }
        out->has_telemetry = true;
        out->telemetry.assign(reinterpret_cast<const char*>(payload.data()),
                              payload.size());
        break;
      }
      case FrameSection::kRttHistogram: {
        if (out->has_rtt_histogram) {
          return FrameError::at(FrameErrorCode::kDuplicateSection,
                                section_at);
        }
        out->has_rtt_histogram = true;
        if (auto err = decode_rtt_histogram(payload, payload_at,
                                            &out->rtt_histogram)) {
          return err;
        }
        break;
      }
      default:
        return FrameError::at(FrameErrorCode::kBadSectionHeader, section_at);
    }
    if (cursor.error()) return cursor.error();
  }
  if (cursor.remaining() != 0) {
    return FrameError::at(FrameErrorCode::kTrailingBytes, cursor.pos());
  }
  if (out->header.kind == FrameKind::kManifest && !out->has_info) {
    return FrameError::at(FrameErrorCode::kBadFieldValue,
                          kFrameHeaderBytes - 8);
  }
  return FrameError::ok();
}

void reseal_frame(std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kFrameHeaderBytes) return;
  const std::uint32_t crc =
      crc32(std::span<const std::uint8_t>(bytes).subspan(kFrameCrcStart));
  patch_u32(bytes, kFrameCrcOffset, crc);
}

FrameError load_frame_file(const std::string& path,
                           std::vector<std::uint8_t>* bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return FrameError::at(FrameErrorCode::kIoError, 0);
  bytes->assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  if (in.bad()) return FrameError::at(FrameErrorCode::kIoError, 0);
  return FrameError::ok();
}

}  // namespace dart::fleet
