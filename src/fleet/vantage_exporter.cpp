#include "fleet/vantage_exporter.hpp"

#include <utility>

#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/runtime_metrics.hpp"

#if defined(DART_FAULT_INJECTION)
#include "runtime/fault_injection.hpp"
#endif

namespace dart::fleet {

VantageExporter::VantageExporter(VantageExporterConfig config,
                                 SnapshotSink& sink)
    : config_(std::move(config)), sink_(sink) {
  if (config_.name.empty()) {
    config_.name = "v" + std::to_string(config_.vantage);
  }
}

bool VantageExporter::publish_manifest() {
  SnapshotFrame frame;
  frame.header.vantage = config_.vantage;
  frame.header.kind = FrameKind::kManifest;
  frame.has_info = true;
  frame.info.name = config_.name;
  frame.info.expected_routed = config_.expected_routed;
  frame.info.planned_epochs = config_.planned_epochs;
  frame.info.epoch_interval = config_.epoch_interval;
  return publish_frame(std::move(frame));
}

namespace {

RttHistogramSection to_section(const analytics::LogHistogram& hist) {
  RttHistogramSection section;
  section.log_min = hist.log_min();
  section.log_step = hist.log_step();
  section.seen_min = hist.min();
  section.seen_max = hist.max();
  section.bins = hist.bins();
  return section;
}

}  // namespace

bool VantageExporter::publish_epoch(std::uint64_t epoch, std::uint64_t cursor,
                                    const core::CheckpointImage* checkpoint,
                                    std::string telemetry,
                                    const analytics::LogHistogram* rtt_histogram) {
  SnapshotFrame frame;
  frame.header.vantage = config_.vantage;
  frame.header.epoch = epoch;
  frame.header.cursor = cursor;
  frame.header.kind = FrameKind::kEpoch;
  if (checkpoint != nullptr) {
    frame.has_checkpoint = true;
    frame.checkpoint = *checkpoint;
  }
  frame.has_telemetry = true;
  frame.telemetry = std::move(telemetry);
  if (rtt_histogram != nullptr) {
    frame.has_rtt_histogram = true;
    frame.rtt_histogram = to_section(*rtt_histogram);
  }
  return publish_frame(std::move(frame));
}

bool VantageExporter::publish_heartbeat(std::uint64_t epoch,
                                        std::uint64_t cursor) {
  SnapshotFrame frame;
  frame.header.vantage = config_.vantage;
  frame.header.epoch = epoch;
  frame.header.cursor = cursor;
  frame.header.kind = FrameKind::kHeartbeat;
  return publish_frame(std::move(frame));
}

bool VantageExporter::publish_final(std::uint64_t epoch, std::uint64_t cursor,
                                    const core::CheckpointImage* checkpoint,
                                    std::string telemetry,
                                    const analytics::LogHistogram* rtt_histogram) {
  SnapshotFrame frame;
  frame.header.vantage = config_.vantage;
  frame.header.epoch = epoch;
  frame.header.cursor = cursor;
  frame.header.kind = FrameKind::kFinal;
  if (checkpoint != nullptr) {
    frame.has_checkpoint = true;
    frame.checkpoint = *checkpoint;
  }
  frame.has_telemetry = true;
  frame.telemetry = std::move(telemetry);
  if (rtt_histogram != nullptr) {
    frame.has_rtt_histogram = true;
    frame.rtt_histogram = to_section(*rtt_histogram);
  }
  return publish_frame(std::move(frame));
}

bool VantageExporter::publish_frame(SnapshotFrame frame) {
  if (killed_) return false;
  frame.header.sequence = next_sequence_;

#if defined(DART_FAULT_INJECTION)
  if (faults_ != nullptr) {
    if (faults_->exporter_before_publish(frames_published_) ==
        runtime::FaultPlan::Action::kExit) {
      // A kill fault models a crash *before* this frame left the process:
      // the sequence number is never consumed and nothing is delivered.
      killed_ = true;
      return false;
    }
    // Epoch skew rewrites the header *before* sealing: the frame is
    // internally consistent (valid CRC, matching cursor/telemetry), only
    // its claimed barrier is wrong — the collector's alignment layer, not
    // the envelope, has to catch it. The manifest carries no epoch.
    std::uint64_t skewed = 0;
    if (frame.header.kind != FrameKind::kManifest &&
        faults_->exporter_skewed_epoch(frame.header.epoch, &skewed)) {
      frame.header.epoch = skewed;
    }
  }
#endif

  const std::uint64_t sequence = next_sequence_++;
  std::vector<std::uint8_t> bytes = encode_frame(frame);

#if defined(DART_FAULT_INJECTION)
  if (faults_ != nullptr) {
    std::uint64_t keep_bytes = 0;
    if (faults_->exporter_truncate_bytes(sequence, &keep_bytes)) {
      // A torn publish: the sealed frame loses its tail. The CRC (or the
      // header length checks) must catch this on the collector side.
      if (keep_bytes < bytes.size()) {
        bytes.resize(static_cast<std::size_t>(keep_bytes));
      }
    }
    if (faults_->exporter_hold_frame(sequence)) {
      // Reorder: hold this frame back; it is delivered right after its
      // successor, so the collector sees sequence order s+1, s.
      held_ = HeldFrame{std::move(bytes), sequence};
      ++frames_published_;
      return true;
    }
  }
#endif

  if (!deliver(std::move(bytes), sequence)) {
    killed_ = true;
    return false;
  }
  ++frames_published_;
  if (held_.has_value()) {
    HeldFrame late = std::move(*held_);
    held_.reset();
    if (!deliver(std::move(late.bytes), late.sequence)) {
      killed_ = true;
      return false;
    }
  }
  return true;
}

bool VantageExporter::deliver(std::vector<std::uint8_t> bytes,
                              std::uint64_t sequence) {
  if (!sink_.publish(config_.vantage, publish_index_++, bytes)) {
    return false;
  }
#if defined(DART_FAULT_INJECTION)
  if (faults_ != nullptr && faults_->exporter_duplicate_frame(sequence)) {
    // Duplicate delivery occupies its own publish slot; the collector must
    // quarantine the second copy by sequence number, not crash.
    if (!sink_.publish(config_.vantage, publish_index_++, bytes)) {
      return false;
    }
  }
#else
  (void)sequence;
#endif
  return true;
}

std::string render_vantage_telemetry(
    std::span<const core::DartStats> per_shard,
    std::span<const std::uint64_t> routed_per_shard) {
  telemetry::Registry registry(per_shard.empty() ? 1 : per_shard.size());
  telemetry::RuntimeMetrics metrics(registry);
  for (std::size_t shard = 0; shard < per_shard.size(); ++shard) {
    metrics.fold_authoritative(shard, routed_per_shard[shard],
                               per_shard[shard]);
  }
  telemetry::SnapshotOptions options;
  options.deterministic_only = true;
  return telemetry::to_prometheus(registry.snapshot(options));
}

}  // namespace dart::fleet
