// Fleet snapshot frames: the cross-process wire format of the vantage
// exporter (the checkpoint subsystem's envelope discipline, one level up).
//
// A frame is one self-validating publication from one vantage process:
//
//   offset  0  magic "DFRM"
//   offset  4  u32 format version (kFrameVersion)
//   offset  8  u32 CRC-32 (IEEE) over every byte from offset 12 to the end
//   offset 12  u64 vantage id
//   offset 20  u64 sequence   — per-vantage frame number (manifest is 0)
//   offset 28  u64 epoch      — the barrier that cut the enclosed state
//   offset 36  u64 cursor     — vantage packets covered at that barrier
//   offset 44  u32 frame kind (FrameKind)
//   offset 48  u32 section count
//   then per section: u32 section id, u64 payload length, payload bytes.
//
// All integers are little-endian. State-bearing frames (kEpoch / kFinal)
// carry *cumulative* counters: each one supersedes its predecessors, so a
// collector that loses frame k and accepts frame k+1 has lost nothing.
// The manifest (sequence 0) declares what the vantage will route in total —
// the collector's denominator for exact loss-window accounting when the
// vantage dies mid-run.
//
// Like checkpoints, frames parse into staging state and are accepted whole
// or quarantined whole: a damaged frame never half-updates the collector.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"

namespace dart::fleet {

inline constexpr std::uint32_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 52;
inline constexpr std::size_t kFrameCrcOffset = 8;
/// First byte covered by the CRC (everything before identifies the format).
inline constexpr std::size_t kFrameCrcStart = 12;

enum class FrameKind : std::uint32_t {
  kManifest = 1,   ///< sequence 0: vantage name + expected totals
  kEpoch = 2,      ///< cumulative state at an epoch barrier
  kHeartbeat = 3,  ///< liveness/progress only (no state sections)
  kFinal = 4,      ///< last cumulative state; the vantage is complete
};

/// Section ids inside a frame. Version-1 readers reject unknown ids
/// (strict framing, as in the checkpoint format).
enum class FrameSection : std::uint32_t {
  kVantageInfo = 1,   ///< manifest body (name + expected totals)
  kCheckpoint = 2,    ///< a complete DCKP CheckpointImage, verbatim
  kTelemetry = 3,     ///< deterministic Prometheus text snapshot
  kRttHistogram = 4,  ///< cumulative log-binned RTT distribution
};

/// Upper bound on histogram bins a frame may declare. The default layout
/// (usec(10)..sec(120), 20 bins/decade) needs ~150 bins; 4096 leaves room
/// for exotic layouts while keeping a hostile frame from forcing a huge
/// allocation before the CRC has already vetoed random corruption.
inline constexpr std::uint32_t kMaxHistogramBins = 4096;

enum class FrameErrorCode : std::uint8_t {
  kNone = 0,
  kTruncated,         ///< fewer bytes than the header/frame promises
  kBadMagic,          ///< not a fleet frame
  kBadVersion,        ///< format version this reader does not speak
  kCrcMismatch,       ///< integrity check failed (torn write or corruption)
  kBadSectionHeader,  ///< section frame inconsistent with the byte count
  kDuplicateSection,  ///< the same section id appears twice
  kBadKind,           ///< frame kind outside the known set
  kBadFieldValue,     ///< a field decodes to an impossible value
  kTrailingBytes,     ///< bytes after the last declared section
  kIoError,           ///< file read/write failed
};

const char* to_string(FrameErrorCode code);

/// Typed frame diagnostic: what went wrong and the byte offset of the
/// damage (0 when meaningless, e.g. kIoError).
struct FrameError {
  FrameErrorCode code = FrameErrorCode::kNone;
  std::uint64_t offset = 0;

  explicit operator bool() const { return code != FrameErrorCode::kNone; }
  std::string to_string() const;

  static FrameError ok() { return {}; }
  static FrameError at(FrameErrorCode code, std::uint64_t offset) {
    return FrameError{code, offset};
  }
};

/// Fixed per-frame header fields (everything between the CRC and the
/// section table).
struct FrameHeader {
  std::uint64_t vantage = 0;
  std::uint64_t sequence = 0;
  std::uint64_t epoch = 0;
  std::uint64_t cursor = 0;
  FrameKind kind = FrameKind::kEpoch;

  friend bool operator==(const FrameHeader&, const FrameHeader&) = default;
};

/// Manifest body: what the vantage promises to deliver. The collector uses
/// `expected_routed` as the routed denominator of the extended identity —
/// it is known before the first packet is processed (the workload slice is
/// deterministic), so a vantage that dies still has an exact loss window.
struct VantageInfo {
  std::string name;
  std::uint64_t expected_routed = 0;
  std::uint64_t planned_epochs = 0;
  std::uint64_t epoch_interval = 0;  ///< packets per epoch barrier

  friend bool operator==(const VantageInfo&, const VantageInfo&) = default;
};

/// Raw wire form of a cumulative RTT histogram: the `LogHistogram` layout
/// (log10 bounds + per-bin counts) plus the exact seen extrema. Kept as
/// plain fields here so the frame layer stays a pure codec — the collector
/// rehydrates it through `analytics::LogHistogram::from_layout`, whose
/// mass-conserving merge makes fleet-wide quantiles exact. Counts are
/// cumulative like every other state section: each frame supersedes its
/// predecessors, so losing frame k and accepting k+1 loses no samples.
struct RttHistogramSection {
  double log_min = 0.0;   ///< log10 of the lowest bin edge
  double log_step = 0.0;  ///< log10 width of one bin (> 0, finite)
  std::uint64_t seen_min = 0;  ///< exact minimum sample (ns)
  std::uint64_t seen_max = 0;  ///< exact maximum sample (ns)
  std::vector<std::uint64_t> bins;

  /// Total mass; must equal the vantage's cumulative sample counter.
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const std::uint64_t bin : bins) sum += bin;
    return sum;
  }

  friend bool operator==(const RttHistogramSection&,
                         const RttHistogramSection&) = default;
};

/// A fully decoded frame (or one staged for encoding). Optional sections
/// are flagged: a heartbeat has neither checkpoint nor telemetry; an epoch
/// frame from a single-monitor vantage has both.
struct SnapshotFrame {
  FrameHeader header;
  bool has_info = false;
  VantageInfo info;
  bool has_checkpoint = false;
  core::CheckpointImage checkpoint;
  bool has_telemetry = false;
  std::string telemetry;
  bool has_rtt_histogram = false;
  RttHistogramSection rtt_histogram;
};

/// Serialize a frame: header, sections present, CRC seal. Infallible.
std::vector<std::uint8_t> encode_frame(const SnapshotFrame& frame);

/// Parse and validate one frame. Returns the first damage found; on any
/// error `out` may be partially filled and must be discarded.
FrameError decode_frame(std::span<const std::uint8_t> bytes,
                        SnapshotFrame* out);

/// Recompute and store the CRC (requires a complete header) — for tests
/// and tools that deliberately edit frame bytes.
void reseal_frame(std::vector<std::uint8_t>& bytes);

/// Read a whole spool file (kIoError on failure; no parsing).
FrameError load_frame_file(const std::string& path,
                           std::vector<std::uint8_t>* bytes);

}  // namespace dart::fleet
