#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "fleet/snapshot_sink.hpp"
#include "telemetry/export.hpp"

namespace dart::fleet {

SpoolSink::SpoolSink(std::string directory, std::uint64_t incarnation)
    : directory_(std::move(directory)), incarnation_(incarnation) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
}

std::string SpoolSink::file_name(std::uint64_t vantage,
                                 std::uint64_t publish_index) {
  char name[64];
  std::snprintf(name, sizeof(name), "v%06" PRIu64 "-p%010" PRIu64 ".dfrm",
                vantage, publish_index);
  return name;
}

std::string SpoolSink::file_name(std::uint64_t vantage,
                                 std::uint64_t incarnation,
                                 std::uint64_t publish_index) {
  // Incarnation 0 is the common (never-restarted) case and keeps the
  // legacy untagged name, so spools written before the tag existed and
  // spools written after coexist under one scan.
  if (incarnation == 0) return file_name(vantage, publish_index);
  char name[80];
  std::snprintf(name, sizeof(name),
                "v%06" PRIu64 "-i%04" PRIu64 "-p%010" PRIu64 ".dfrm", vantage,
                incarnation, publish_index);
  return name;
}

bool SpoolSink::publish(std::uint64_t vantage, std::uint64_t publish_index,
                        std::span<const std::uint8_t> bytes) {
  const std::string path =
      directory_ + "/" + file_name(vantage, incarnation_, publish_index);
  // write_atomic publishes via tmp + rename, so a collector scanning the
  // spool never observes a torn frame — only absent or whole.
  return telemetry::write_atomic(
      path,
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

std::vector<SpoolEntry> scan_spool(const std::string& directory) {
  std::vector<SpoolEntry> entries;
  std::error_code ec;
  // A missing directory constructs the end iterator: an empty scan, not an
  // error — the exporter may simply not have published yet.
  for (const auto& dirent :
       std::filesystem::directory_iterator(directory, ec)) {
    if (!dirent.is_regular_file(ec)) continue;
    const std::string name = dirent.path().filename().string();
    if (!name.ends_with(".dfrm")) continue;
    std::uint64_t vantage = 0;
    std::uint64_t incarnation = 0;
    std::uint64_t publish_index = 0;
    int consumed = 0;
    // Tagged form first (it is the stricter pattern); fall back to the
    // legacy untagged form, which scans as incarnation 0.
    if (std::sscanf(name.c_str(), "v%" SCNu64 "-i%" SCNu64 "-p%" SCNu64 "%n",
                    &vantage, &incarnation, &publish_index,
                    &consumed) == 3 &&
        name.compare(static_cast<std::size_t>(consumed), std::string::npos,
                     ".dfrm") == 0) {
      // parsed tagged name
    } else if (std::sscanf(name.c_str(), "v%" SCNu64 "-p%" SCNu64 "%n",
                           &vantage, &publish_index, &consumed) == 2 &&
               name.compare(static_cast<std::size_t>(consumed),
                            std::string::npos, ".dfrm") == 0) {
      incarnation = 0;
    } else {
      continue;
    }
    entries.push_back(SpoolEntry{dirent.path().string(), vantage, incarnation,
                                 publish_index});
  }
  std::sort(entries.begin(), entries.end(),
            [](const SpoolEntry& a, const SpoolEntry& b) {
              if (a.vantage != b.vantage) return a.vantage < b.vantage;
              if (a.incarnation != b.incarnation) {
                return a.incarnation < b.incarnation;
              }
              if (a.publish_index != b.publish_index) {
                return a.publish_index < b.publish_index;
              }
              return a.path < b.path;
            });
  return entries;
}

}  // namespace dart::fleet
