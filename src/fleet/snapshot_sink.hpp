// SnapshotSink: where a vantage exporter publishes its frames.
//
// The sink sees opaque sealed frame bytes plus the (vantage, publish slot)
// pair that orders arrivals. The *publish index* is deliberately distinct
// from the frame's internal sequence number: faults (and real networks)
// deliver frames out of order or twice, and the collector must recover the
// logical sequence from the sealed header, never from arrival order. A
// spool-directory sink is provided (atomic publish via tmp+rename, so a
// concurrent collector never reads a torn frame); a socket transport slots
// in behind the same interface.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dart::fleet {

class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;

  /// Publish one sealed frame. `publish_index` is the sink-visible arrival
  /// slot, strictly monotonic per vantage (a duplicated frame occupies two
  /// slots). Returns false on transport failure.
  virtual bool publish(std::uint64_t vantage, std::uint64_t publish_index,
                      std::span<const std::uint8_t> bytes) = 0;
};

/// Publishes each frame as one file in a spool directory, named
/// v<vantage>-p<publish_index>.dfrm (zero-padded so lexicographic order is
/// arrival order), or v<vantage>-i<incarnation>-p<publish_index>.dfrm for
/// restarted incarnations. Files appear atomically: the bytes go to a temp
/// file first and are renamed into place, the write_atomic discipline.
///
/// The incarnation tag is how a restarted vantage process avoids silently
/// overwriting its predecessor's live publish slots: both processes count
/// publish indices from zero, so without the tag the successor's manifest
/// would clobber slot 0 of a stream the collector may not have read yet.
/// Incarnation 0 keeps the legacy untagged name, so old spools still scan.
class SpoolSink final : public SnapshotSink {
 public:
  explicit SpoolSink(std::string directory, std::uint64_t incarnation = 0);

  bool publish(std::uint64_t vantage, std::uint64_t publish_index,
               std::span<const std::uint8_t> bytes) override;

  const std::string& directory() const { return directory_; }
  std::uint64_t incarnation() const { return incarnation_; }

  /// The spool filename for a (vantage, publish slot) pair (incarnation 0).
  static std::string file_name(std::uint64_t vantage,
                               std::uint64_t publish_index);

  /// The spool filename with an explicit incarnation tag.
  static std::string file_name(std::uint64_t vantage,
                               std::uint64_t incarnation,
                               std::uint64_t publish_index);

 private:
  std::string directory_;
  std::uint64_t incarnation_ = 0;
};

/// Test sink: keeps every published frame in memory, in arrival order.
class MemorySink final : public SnapshotSink {
 public:
  struct Entry {
    std::uint64_t vantage = 0;
    std::uint64_t publish_index = 0;
    std::vector<std::uint8_t> bytes;
  };

  bool publish(std::uint64_t vantage, std::uint64_t publish_index,
               std::span<const std::uint8_t> bytes) override {
    entries_.push_back(
        Entry{vantage, publish_index, {bytes.begin(), bytes.end()}});
    return true;
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

/// One spool file the collector has discovered (not yet parsed).
struct SpoolEntry {
  std::string path;
  std::uint64_t vantage = 0;
  std::uint64_t incarnation = 0;
  std::uint64_t publish_index = 0;
};

/// Enumerate the spool: every *.dfrm file whose name parses, sorted by
/// (vantage, incarnation, publish index). Temp files and foreign names are
/// ignored, so a scan concurrent with publishes only ever sees complete
/// frames. Untagged legacy names scan as incarnation 0.
std::vector<SpoolEntry> scan_spool(const std::string& directory);

}  // namespace dart::fleet
