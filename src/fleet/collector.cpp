#include "fleet/collector.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <utility>

#include "common/hashing.hpp"
#include "telemetry/export.hpp"

namespace dart::fleet {

namespace {

/// Value of the sample `name{vantage="<vantage>"}`, or `fallback`.
double labeled_value(const std::vector<telemetry::PromSample>& samples,
                     const std::string& name, const std::string& vantage,
                     double fallback = 0.0) {
  for (const auto& sample : samples) {
    if (sample.name != name) continue;
    auto it = sample.labels.find("vantage");
    if (it != sample.labels.end() && it->second == vantage) {
      return sample.value;
    }
  }
  return fallback;
}

std::uint64_t as_count(double value) {
  if (value <= 0.0) return 0;
  // Counters near 2^64 survive the text round-trip as the double closest
  // to 2^64; llround would overflow (UB), so saturate explicitly. Doubles
  // in [2^63, 2^64) convert directly without rounding help.
  if (value >= 18446744073709551615.0) return ~std::uint64_t{0};
  if (value >= 9223372036854775808.0) return static_cast<std::uint64_t>(value);
  return static_cast<std::uint64_t>(std::llround(value));
}

/// Shortest round-trippable rendering, byte-for-byte the telemetry
/// exporter's discipline — the fleet quantile block must be byte-stable.
std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Skew estimate of a state frame against its cursor-derived barrier. A
/// final frame may honestly claim either the last covered barrier or one
/// past it (an exporter's final either replaces or follows its last epoch
/// frame), so the nearer candidate is used.
std::int64_t frame_epoch_skew(const FrameHeader& header,
                              std::uint64_t epoch_interval) {
  const std::uint64_t aligned = header.cursor / epoch_interval;
  const std::int64_t claimed = static_cast<std::int64_t>(header.epoch);
  std::int64_t skew = claimed - static_cast<std::int64_t>(aligned);
  if (header.kind == FrameKind::kFinal) {
    const std::int64_t alt =
        claimed - static_cast<std::int64_t>(aligned + 1);
    if (std::llabs(alt) < std::llabs(skew)) skew = alt;
  }
  return skew;
}

QuarantineReason reason_for(FrameErrorCode code) {
  switch (code) {
    case FrameErrorCode::kTruncated:
      return QuarantineReason::kTruncated;
    case FrameErrorCode::kBadMagic:
      return QuarantineReason::kBadMagic;
    case FrameErrorCode::kBadVersion:
      return QuarantineReason::kBadVersion;
    case FrameErrorCode::kCrcMismatch:
      return QuarantineReason::kCrcMismatch;
    case FrameErrorCode::kIoError:
      return QuarantineReason::kIoError;
    default:
      return QuarantineReason::kBadFrame;
  }
}

}  // namespace

const char* to_string(VantageState state) {
  switch (state) {
    case VantageState::kMissing:
      return "missing";
    case VantageState::kLive:
      return "live";
    case VantageState::kComplete:
      return "complete";
    case VantageState::kStale:
      return "stale";
  }
  return "unknown";
}

const char* to_string(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kTruncated:
      return "truncated";
    case QuarantineReason::kBadMagic:
      return "bad-magic";
    case QuarantineReason::kBadVersion:
      return "bad-version";
    case QuarantineReason::kCrcMismatch:
      return "crc-mismatch";
    case QuarantineReason::kBadFrame:
      return "bad-frame";
    case QuarantineReason::kUnknownVantage:
      return "unknown-vantage";
    case QuarantineReason::kDuplicateSequence:
      return "duplicate-sequence";
    case QuarantineReason::kStaleEpoch:
      return "stale-epoch";
    case QuarantineReason::kBadCheckpoint:
      return "bad-checkpoint";
    case QuarantineReason::kStatsMismatch:
      return "stats-mismatch";
    case QuarantineReason::kIoError:
      return "io-error";
    case QuarantineReason::kExcessiveSkew:
      return "excessive-skew";
  }
  return "unknown";
}

std::uint64_t RetryPolicy::delay_ns(std::uint64_t attempt) const {
  std::uint64_t base = base_delay_ns == 0 ? 1 : base_delay_ns;
  for (std::uint64_t i = 0; i < attempt && base < max_delay_ns; ++i) {
    base *= 2;
  }
  if (base > max_delay_ns) base = max_delay_ns;
  // Seeded jitter in [1 - jitter_fraction, 1 + jitter_fraction): the same
  // (policy, attempt) pair always yields the same delay.
  const double unit =
      static_cast<double>(mix64(seed ^ (attempt + 1)) >> 11) * 0x1.0p-53;
  const double factor = 1.0 - jitter_fraction + 2.0 * jitter_fraction * unit;
  const double scaled = static_cast<double>(base) * factor;
  std::uint64_t delay =
      scaled <= 1.0 ? 1 : static_cast<std::uint64_t>(scaled);
  if (delay > max_delay_ns) delay = max_delay_ns;
  return delay;
}

FleetCollector::FleetCollector(CollectorConfig config)
    : config_(std::move(config)) {
  vantages_.resize(config_.vantages);
  pending_.resize(config_.vantages);
  for (std::uint64_t v = 0; v < config_.vantages; ++v) {
    vantages_[v].info.name = "v" + std::to_string(v);
  }
}

void FleetCollector::quarantine(const std::string& file,
                                std::uint64_t vantage,
                                QuarantineReason reason,
                                std::uint64_t offset) {
  quarantined_.push_back(QuarantineRecord{file, vantage, reason, offset});
  ++quarantine_counts_[static_cast<std::size_t>(reason)];
  if (vantage < vantages_.size()) {
    ++vantages_[vantage].frames_quarantined;
  }
}

void FleetCollector::ingest_file(const SpoolEntry& entry) {
  seen_files_.insert(entry.path);
  if (entry.vantage >= config_.vantages) {
    quarantine(entry.path, entry.vantage, QuarantineReason::kUnknownVantage,
               0);
    return;
  }
  std::vector<std::uint8_t> bytes;
  if (auto err = load_frame_file(entry.path, &bytes)) {
    quarantine(entry.path, entry.vantage, QuarantineReason::kIoError,
               err.offset);
    return;
  }
  SnapshotFrame frame;
  if (auto err = decode_frame(bytes, &frame)) {
    quarantine(entry.path, entry.vantage, reason_for(err.code), err.offset);
    return;
  }
  if (frame.header.vantage != entry.vantage) {
    // The sealed header and the spool slot disagree: a misdelivered frame.
    quarantine(entry.path, entry.vantage, QuarantineReason::kBadFrame, 12);
    return;
  }
  VantageStatus& status = vantages_[entry.vantage];
  auto& pending = pending_[entry.vantage];
  if (frame.header.sequence < status.next_sequence ||
      pending.contains(frame.header.sequence)) {
    quarantine(entry.path, entry.vantage,
               QuarantineReason::kDuplicateSequence, 20);
    return;
  }
  pending.emplace(frame.header.sequence,
                  PendingFrame{std::move(frame), entry.path});
}

bool FleetCollector::apply_frame(std::uint64_t vantage,
                                 PendingFrame&& pending) {
  VantageStatus& status = vantages_[vantage];
  SnapshotFrame& frame = pending.frame;
  switch (frame.header.kind) {
    case FrameKind::kManifest: {
      if (frame.header.sequence != 0) {
        quarantine(pending.file, vantage, QuarantineReason::kBadFrame, 20);
        return false;
      }
      status.has_manifest = true;
      status.info = frame.info;
      if (status.info.name.empty()) {
        status.info.name = "v" + std::to_string(vantage);
      }
      status.state = VantageState::kLive;
      ++status.frames_accepted;
      return true;
    }
    case FrameKind::kHeartbeat: {
      // Liveness only: sequence discipline already admitted it in order;
      // it carries no state to validate and must not move the loss cursor
      // (its progress claim is not backed by counters).
      if (status.state != VantageState::kComplete &&
          status.state != VantageState::kStale) {
        status.state = VantageState::kLive;
      }
      ++status.frames_accepted;
      return true;
    }
    case FrameKind::kEpoch:
    case FrameKind::kFinal: {
      if (status.has_stats && (frame.header.epoch <= status.last_epoch ||
                               frame.header.cursor < status.cursor)) {
        quarantine(pending.file, vantage, QuarantineReason::kStaleEpoch, 28);
        return false;
      }
      // Skew gate: with a manifest interval the cursor pins which barrier
      // this frame really describes; a claimed epoch within the grace
      // window heals losslessly (the frame is applied, the report renders
      // the aligned epoch), beyond it the frame is quarantined and the
      // cursor stays put — the exact loss window charges the vantage.
      std::int64_t skew = 0;
      if (status.has_manifest && status.info.epoch_interval > 0) {
        skew = frame_epoch_skew(frame.header, status.info.epoch_interval);
        const std::uint64_t magnitude = static_cast<std::uint64_t>(
            skew < 0 ? -skew : skew);
        if (magnitude > config_.skew_grace_epochs) {
          quarantine(pending.file, vantage,
                     QuarantineReason::kExcessiveSkew, 28);
          return false;
        }
      }
      if (!frame.has_telemetry) {
        quarantine(pending.file, vantage, QuarantineReason::kBadFrame, 44);
        return false;
      }
      const auto samples = telemetry::parse_prometheus(frame.telemetry);
      const std::uint64_t prom_routed =
          as_count(telemetry::prom_value(samples, "dart_routed_total"));
      const std::uint64_t prom_processed =
          as_count(telemetry::prom_value(samples, "dart_processed_total"));
      const std::uint64_t prom_shed =
          as_count(telemetry::prom_value(samples, "dart_shed_total"));
      const std::uint64_t prom_abandoned =
          as_count(telemetry::prom_value(samples, "dart_abandoned_total"));
      const std::uint64_t prom_lost_to_crash = as_count(
          telemetry::prom_value(samples, "dart_lost_to_crash_total"));
      const std::uint64_t prom_samples =
          as_count(telemetry::prom_value(samples, "dart_samples_total"));
      // Deep cross-validation before any state moves: the telemetry text
      // must agree with the envelope cursor and satisfy the per-vantage
      // identity; an embedded checkpoint must validate and agree too.
      if (prom_routed != frame.header.cursor ||
          prom_processed + prom_shed + prom_abandoned + prom_lost_to_crash !=
              prom_routed) {
        quarantine(pending.file, vantage, QuarantineReason::kStatsMismatch,
                   36);
        return false;
      }
      // A histogram section's mass is the vantage's cumulative sample
      // count; disagreement means the frame is internally inconsistent.
      if (frame.has_rtt_histogram &&
          frame.rtt_histogram.total() != prom_samples) {
        quarantine(pending.file, vantage, QuarantineReason::kStatsMismatch,
                   36);
        return false;
      }
      core::DartStats stats;
      if (frame.has_checkpoint) {
        core::CheckpointInfo info;
        if (auto err = core::read_info(frame.checkpoint, &info)) {
          quarantine(pending.file, vantage,
                     QuarantineReason::kBadCheckpoint, err.offset);
          return false;
        }
        if (auto err = core::read_stats(frame.checkpoint, &stats)) {
          quarantine(pending.file, vantage,
                     QuarantineReason::kBadCheckpoint, err.offset);
          return false;
        }
        if (stats.packets_processed != prom_processed ||
            stats.samples != prom_samples) {
          quarantine(pending.file, vantage,
                     QuarantineReason::kStatsMismatch, 36);
          return false;
        }
      } else {
        // No image (e.g. a sharded vantage): the telemetry text is the
        // authoritative source for the merge counters.
        stats.packets_processed = prom_processed;
        stats.samples = prom_samples;
        stats.recirculations = as_count(
            telemetry::prom_value(samples, "dart_recirculations_total"));
        stats.runtime.shed_packets = prom_shed;
        stats.runtime.abandoned_packets = prom_abandoned;
        stats.runtime.lost_to_crash = prom_lost_to_crash;
      }
      status.last_epoch = frame.header.epoch;
      status.cursor = frame.header.cursor;
      status.epoch_skew = skew;
      status.stats = stats;
      status.has_stats = true;
      status.telemetry = std::move(frame.telemetry);
      if (frame.has_rtt_histogram) {
        // Cumulative like every other state section: replace, don't add.
        status.rtt_histogram = analytics::LogHistogram::from_layout(
            frame.rtt_histogram.log_min, frame.rtt_histogram.log_step,
            std::move(frame.rtt_histogram.bins), frame.rtt_histogram.seen_min,
            frame.rtt_histogram.seen_max);
        status.has_rtt_histogram = true;
      }
      ++status.frames_accepted;
      status.state = frame.header.kind == FrameKind::kFinal
                         ? VantageState::kComplete
                         : VantageState::kLive;
      return true;
    }
  }
  quarantine(pending.file, vantage, QuarantineReason::kBadFrame, 44);
  return false;
}

void FleetCollector::drain_pending(std::uint64_t vantage) {
  VantageStatus& status = vantages_[vantage];
  auto& pending = pending_[vantage];
  bool blocked_by_gap = false;
  while (!pending.empty()) {
    if (status.state == VantageState::kComplete) {
      // Frames after an accepted final frame are protocol violations.
      for (auto& [seq, frame] : pending) {
        quarantine(frame.file, vantage, QuarantineReason::kStaleEpoch, 20);
      }
      pending.clear();
      break;
    }
    auto it = pending.find(status.next_sequence);
    if (it == pending.end()) {
      // Sequence gap: hold it open for the grace window (a reordered
      // frame may still fill it), then skip to the next available frame —
      // state frames are cumulative, so skipping costs no accounting.
      if (status.gap_attempts < config_.gap_grace_attempts &&
          !status.fenced) {
        blocked_by_gap = true;
        break;
      }
      const std::uint64_t next_available = pending.begin()->first;
      status.frames_missing += next_available - status.next_sequence;
      status.next_sequence = next_available;
      status.gap_attempts = 0;
      continue;
    }
    PendingFrame frame = std::move(it->second);
    pending.erase(it);
    ++status.next_sequence;
    status.gap_attempts = 0;
    apply_frame(vantage, std::move(frame));
  }
  if (blocked_by_gap) {
    ++status.gap_attempts;
  }
}

void FleetCollector::fence(std::uint64_t vantage) {
  VantageStatus& status = vantages_[vantage];
  status.fenced = true;
  // Salvage everything reachable: gaps will never fill now, so skip them
  // all and accept whatever state the stuck frames carry.
  drain_pending(vantage);
  if (status.state == VantageState::kComplete) return;
  status.state = status.frames_accepted > 0 ? VantageState::kStale
                                            : VantageState::kMissing;
}

bool FleetCollector::poll() {
  ++polls_;
  bool any_progress = false;
  for (const auto& entry : scan_spool(config_.spool_dir)) {
    if (seen_files_.contains(entry.path)) continue;
    ingest_file(entry);
  }
  for (std::uint64_t v = 0; v < config_.vantages; ++v) {
    VantageStatus& status = vantages_[v];
    if (status.state == VantageState::kComplete || status.fenced) continue;
    const std::uint64_t before_accepted = status.frames_accepted;
    const std::uint64_t before_sequence = status.next_sequence;
    drain_pending(v);
    const bool progress = status.frames_accepted != before_accepted ||
                          status.next_sequence != before_sequence;
    any_progress = any_progress || progress;
    if (progress) {
      status.attempts_without_progress = 0;
    } else if (++status.attempts_without_progress >=
               config_.fence_after_attempts) {
      fence(v);
    }
  }
  return any_progress;
}

bool FleetCollector::resolved() const {
  for (const auto& status : vantages_) {
    if (status.state != VantageState::kComplete && !status.fenced) {
      return false;
    }
  }
  return true;
}

void FleetCollector::finalize() {
  for (std::uint64_t v = 0; v < config_.vantages; ++v) {
    if (vantages_[v].state != VantageState::kComplete &&
        !vantages_[v].fenced) {
      fence(v);
    }
  }
}

std::uint64_t FleetCollector::run() {
  std::uint64_t attempt = 0;
  while (!resolved() && attempt < config_.max_attempts) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(config_.retry.delay_ns(attempt)));
    }
    poll();
    ++attempt;
  }
  finalize();
  return attempt;
}

std::uint64_t FleetCollector::epoch_watermark() const {
  // Fenced stale/missing vantages are excluded: the fleet cannot wait on a
  // vantage it has already given up on (its loss window is charged
  // instead). Complete and live vantages all gate the watermark, so a live
  // vantage with no accepted state pins it at zero.
  std::uint64_t watermark = ~std::uint64_t{0};
  bool any = false;
  for (const auto& status : vantages_) {
    if (status.state == VantageState::kStale ||
        status.state == VantageState::kMissing) {
      continue;
    }
    any = true;
    const std::uint64_t aligned = status.aligned_epoch();
    if (aligned < watermark) watermark = aligned;
  }
  return any ? watermark : 0;
}

analytics::LogHistogram FleetCollector::merged_rtt_histogram(
    std::uint64_t* contributors) const {
  // Start from the default layout: every exporter bins with it today, so
  // the merge is the exact bin-by-bin path; a foreign layout still merges
  // mass-conservingly by bin midpoint.
  analytics::LogHistogram merged;
  std::uint64_t count = 0;
  for (const auto& status : vantages_) {
    if (!status.has_rtt_histogram) continue;
    ++count;
    merged.merge(status.rtt_histogram);
  }
  if (contributors != nullptr) *contributors = count;
  return merged;
}

std::string FleetCollector::report_text() const {
  std::string out;
  out.reserve(4096);
  const auto line = [&out](const std::string& name, std::uint64_t value) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  const auto vline = [&out](const std::string& name,
                            const std::string& vantage,
                            std::uint64_t value) {
    out += name;
    out += "{vantage=\"";
    out += vantage;
    out += "\"} ";
    out += std::to_string(value);
    out += '\n';
  };

  std::uint64_t complete = 0;
  std::uint64_t live = 0;
  std::uint64_t stale = 0;
  std::uint64_t missing = 0;
  std::uint64_t accepted = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t frames_missing = 0;
  core::DartStats totals;
  std::uint64_t total_routed = 0;
  std::uint64_t total_lost_to_vantage = 0;
  for (const auto& status : vantages_) {
    switch (status.state) {
      case VantageState::kComplete:
        ++complete;
        break;
      case VantageState::kLive:
        ++live;
        break;
      case VantageState::kStale:
        ++stale;
        break;
      case VantageState::kMissing:
        ++missing;
        break;
    }
    accepted += status.frames_accepted;
    quarantined += status.frames_quarantined;
    frames_missing += status.frames_missing;
    totals += status.stats;
    total_routed +=
        status.has_manifest ? status.info.expected_routed : status.cursor;
    total_lost_to_vantage += status.lost_to_vantage();
  }
  // Files quarantined before any vantage could be charged (unknown ids).
  quarantined +=
      quarantine_counts_[static_cast<std::size_t>(
          QuarantineReason::kUnknownVantage)];

  out += "# Dart fleet merged report v1\n";
  line("fleet_vantages", vantages_.size());
  line("fleet_vantages_complete", complete);
  line("fleet_vantages_live", live);
  line("fleet_vantages_stale", stale);
  line("fleet_vantages_missing", missing);
  line("fleet_frames_accepted_total", accepted);
  line("fleet_frames_quarantined_total", quarantined);
  line("fleet_frames_missing_total", frames_missing);
  line("fleet_epoch_watermark", epoch_watermark());
  for (std::size_t r = 0; r < kQuarantineReasons; ++r) {
    out += "fleet_frames_quarantined_total{reason=\"";
    out += to_string(static_cast<QuarantineReason>(r));
    out += "\"} ";
    out += std::to_string(quarantine_counts_[r]);
    out += '\n';
  }
  for (const auto& status : vantages_) {
    const std::string& name = status.info.name;
    vline("fleet_vantage_state", name,
          static_cast<std::uint64_t>(status.state));
    vline("fleet_routed_total", name,
          status.has_manifest ? status.info.expected_routed : status.cursor);
    vline("fleet_observed_cursor", name, status.cursor);
    vline("fleet_processed_total", name, status.stats.packets_processed);
    vline("fleet_shed_total", name, status.stats.runtime.shed_packets);
    vline("fleet_abandoned_total", name,
          status.stats.runtime.abandoned_packets);
    vline("fleet_lost_to_crash_total", name,
          status.stats.runtime.lost_to_crash);
    vline("fleet_lost_to_vantage_total", name, status.lost_to_vantage());
    vline("fleet_samples_total", name, status.stats.samples);
    vline("fleet_recirculations_total", name, status.stats.recirculations);
    // Aligned, not claimed: a within-grace skewed clock must not perturb
    // one byte of the canonical report (skew_report_text() carries the
    // claimed epochs and signed estimates).
    vline("fleet_last_epoch", name, status.aligned_epoch());
    vline("fleet_frames_accepted_total", name, status.frames_accepted);
    vline("fleet_frames_quarantined_total", name, status.frames_quarantined);
    vline("fleet_frames_missing_total", name, status.frames_missing);
  }
  line("fleet_routed_total", total_routed);
  line("fleet_processed_total", totals.packets_processed);
  line("fleet_shed_total", totals.runtime.shed_packets);
  line("fleet_abandoned_total", totals.runtime.abandoned_packets);
  line("fleet_lost_to_crash_total", totals.runtime.lost_to_crash);
  line("fleet_lost_to_vantage_total", total_lost_to_vantage);
  line("fleet_samples_total", totals.samples);
  line("fleet_recirculations_total", totals.recirculations);

  // Fleet-wide RTT distribution, folded from the vantages' cumulative
  // histogram sections. Quantile rows render only when mass exists —
  // quantiles of an empty distribution are not numbers worth printing —
  // but the contributor/sample counts always render, keeping the schema
  // decidable from the report alone.
  std::uint64_t hist_vantages = 0;
  const analytics::LogHistogram merged = merged_rtt_histogram(&hist_vantages);
  line("fleet_rtt_vantages", hist_vantages);
  line("fleet_rtt_samples_total", merged.count());
  if (merged.count() > 0) {
    line("fleet_rtt_min_ns", merged.min());
    line("fleet_rtt_max_ns", merged.max());
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      out += "fleet_rtt_ns{quantile=\"";
      out += format_double(q);
      out += "\"} ";
      out += format_double(merged.quantile(q));
      out += '\n';
    }
  }
  return out;
}

std::string FleetCollector::skew_report_text() const {
  std::string out;
  out.reserve(1024);
  out += "# Dart fleet skew report v1\n";
  out += "fleet_epoch_watermark " + std::to_string(epoch_watermark()) + '\n';
  out += "fleet_skew_grace_epochs " +
         std::to_string(config_.skew_grace_epochs) + '\n';
  for (const auto& status : vantages_) {
    const std::string label = "{vantage=\"" + status.info.name + "\"} ";
    out += "fleet_claimed_epoch" + label + std::to_string(status.last_epoch) +
           '\n';
    out += "fleet_aligned_epoch" + label +
           std::to_string(status.aligned_epoch()) + '\n';
    out += "fleet_epoch_skew" + label + std::to_string(status.epoch_skew) +
           '\n';
  }
  return out;
}

bool check_fleet_identity(const std::string& report_text,
                          std::string* error) {
  const auto samples = telemetry::parse_prometheus(report_text);
  const auto set_error = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };

  std::vector<std::string> names;
  for (const auto& sample : samples) {
    if (sample.name != "fleet_vantage_state") continue;
    auto it = sample.labels.find("vantage");
    if (it != sample.labels.end()) names.push_back(it->second);
  }
  if (names.empty()) {
    return set_error("no fleet_vantage_state samples found");
  }

  std::uint64_t sum_routed = 0;
  std::uint64_t sum_accounted = 0;
  for (const auto& name : names) {
    const std::uint64_t routed =
        as_count(labeled_value(samples, "fleet_routed_total", name));
    const std::uint64_t accounted =
        as_count(labeled_value(samples, "fleet_processed_total", name)) +
        as_count(labeled_value(samples, "fleet_shed_total", name)) +
        as_count(labeled_value(samples, "fleet_abandoned_total", name)) +
        as_count(labeled_value(samples, "fleet_lost_to_crash_total", name)) +
        as_count(
            labeled_value(samples, "fleet_lost_to_vantage_total", name));
    if (routed != accounted) {
      return set_error("identity violated for vantage \"" + name +
                       "\": accounted " + std::to_string(accounted) +
                       " != routed " + std::to_string(routed));
    }
    sum_routed += routed;
    sum_accounted += accounted;
  }
  const std::uint64_t agg_routed =
      as_count(telemetry::prom_value(samples, "fleet_routed_total"));
  const std::uint64_t agg_accounted =
      as_count(telemetry::prom_value(samples, "fleet_processed_total")) +
      as_count(telemetry::prom_value(samples, "fleet_shed_total")) +
      as_count(telemetry::prom_value(samples, "fleet_abandoned_total")) +
      as_count(
          telemetry::prom_value(samples, "fleet_lost_to_crash_total")) +
      as_count(
          telemetry::prom_value(samples, "fleet_lost_to_vantage_total"));
  if (agg_routed != agg_accounted) {
    return set_error("aggregate identity violated: accounted " +
                     std::to_string(agg_accounted) + " != routed " +
                     std::to_string(agg_routed));
  }
  if (agg_routed != sum_routed || agg_accounted != sum_accounted) {
    return set_error("aggregate rows disagree with per-vantage sums");
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace dart::fleet
