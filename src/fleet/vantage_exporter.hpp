// VantageExporter: one monitoring process's side of the fleet protocol.
//
// The exporter turns quiesce-time monitor state into the sealed,
// sequence-numbered frame stream the collector ingests:
//
//   seq 0            manifest   — name + expected totals (the loss-window
//                                 denominator, known before packet 1)
//   seq 1..k         epoch / heartbeat frames at barrier cadence
//   seq k+1          final      — last cumulative state, stream complete
//
// Epoch frames are cut at packet-count barriers (every epoch_interval
// packets), so two vantages replaying deterministic slices publish
// epoch-aligned state without any clock agreement. All counters in a frame
// are cumulative: losing any non-final frame loses no accounting.
//
// Under DART_FAULT_INJECTION the exporter consults the process's FaultPlan
// before every publish, which is where the chaos harness injects crashes
// (kill), latency (stall), torn frames (truncate), duplicate delivery, and
// reordering — all downstream of sealing, exactly as a sick transport
// would mangle a correct sender.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analytics/histogram.hpp"
#include "core/stats.hpp"
#include "fleet/frame.hpp"
#include "fleet/snapshot_sink.hpp"

namespace dart::runtime {
class FaultPlan;
}  // namespace dart::runtime

namespace dart::fleet {

struct VantageExporterConfig {
  std::uint64_t vantage = 0;
  std::string name;  ///< empty -> "v<id>"
  std::uint64_t expected_routed = 0;
  std::uint64_t planned_epochs = 0;
  std::uint64_t epoch_interval = 0;
};

class VantageExporter {
 public:
  VantageExporter(VantageExporterConfig config, SnapshotSink& sink);

#if defined(DART_FAULT_INJECTION)
  /// Install the process's fault plan (exporter-side faults only). The
  /// plan must outlive the exporter.
  void set_fault_plan(runtime::FaultPlan* plan) { faults_ = plan; }
#endif

  /// Frame 0. Must be the first publication.
  bool publish_manifest();

  /// Cumulative state at epoch barrier `epoch`, after `cursor` packets.
  /// Either optional section may be omitted (a sharded vantage has no
  /// single checkpoint image; a checkpoint-less deployment may send stats
  /// only). `rtt_histogram`, when given, is the vantage's *cumulative*
  /// log-binned RTT distribution — the collector folds it into the fleet
  /// quantiles, so its count must equal the telemetry's samples counter.
  bool publish_epoch(std::uint64_t epoch, std::uint64_t cursor,
                     const core::CheckpointImage* checkpoint,
                     std::string telemetry,
                     const analytics::LogHistogram* rtt_histogram = nullptr);

  /// Progress-only liveness signal between state frames.
  bool publish_heartbeat(std::uint64_t epoch, std::uint64_t cursor);

  /// Last cumulative state; marks the stream complete.
  bool publish_final(std::uint64_t epoch, std::uint64_t cursor,
                     const core::CheckpointImage* checkpoint,
                     std::string telemetry,
                     const analytics::LogHistogram* rtt_histogram = nullptr);

  /// True once a kill fault (or sink failure) has fired: the process is
  /// considered crashed and every later publish is a no-op returning false.
  bool killed() const { return killed_; }

  std::uint64_t frames_published() const { return frames_published_; }
  const VantageExporterConfig& config() const { return config_; }

 private:
  bool publish_frame(SnapshotFrame frame);
  bool deliver(std::vector<std::uint8_t> bytes, std::uint64_t sequence);

  VantageExporterConfig config_;
  SnapshotSink& sink_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t publish_index_ = 0;
  std::uint64_t frames_published_ = 0;
  bool killed_ = false;
  /// A frame held back by a reorder fault; delivered after its successor.
  struct HeldFrame {
    std::vector<std::uint8_t> bytes;
    std::uint64_t sequence = 0;
  };
  std::optional<HeldFrame> held_;
#if defined(DART_FAULT_INJECTION)
  runtime::FaultPlan* faults_ = nullptr;
#endif
};

/// Render the deterministic telemetry text a state frame embeds: a fresh
/// registry, the standard runtime families, one authoritative fold per
/// shard, deterministic-only snapshot. Rebuilding from scratch per frame
/// keeps cumulative counters exact (folds are set, not add) and works in
/// every build configuration — the vantage does not need a live-telemetry
/// runtime, only its merged DartStats.
std::string render_vantage_telemetry(
    std::span<const core::DartStats> per_shard,
    std::span<const std::uint64_t> routed_per_shard);

}  // namespace dart::fleet
