// FleetCollector: merge N vantage frame streams into one deterministic
// report, surviving everything a sick fleet can emit.
//
// Hardening model (the runtime's shard discipline, applied across process
// boundaries):
//
//  * Typed ingest errors + quarantine, never a crash: a frame that fails
//    envelope validation (torn, truncated, CRC-bad), sequence discipline
//    (duplicate, stale epoch), or deep cross-validation (embedded
//    checkpoint counters disagree with the telemetry text) is recorded
//    with a reason and set aside. Because state frames are cumulative, a
//    quarantined mid-stream frame costs nothing once a later one lands.
//
//  * Retry with bounded exponential backoff + jitter: run() polls the
//    spool under RetryPolicy delays. All *decisions* are counted in poll
//    attempts, not wall time, so the same spool always produces the same
//    report — the backoff only spaces the polls out.
//
//  * Liveness deadlines: a vantage that makes no progress for
//    fence_after_attempts polls is fenced — `stale` if it ever spoke,
//    `missing` if it never did. Fencing is exact, not approximate: the
//    manifest's expected_routed minus the last accepted cursor is the
//    vantage's loss window, extending the runtime identity to
//
//      fleet_processed + fleet_shed + fleet_abandoned
//        + fleet_lost_to_crash + fleet_lost_to_vantage == fleet_routed
//
//    per vantage and in aggregate (vantages that never sent a manifest
//    have no denominator; they are excluded and reported as missing).
//
//  * Reorder healing: frames are accepted in sequence order regardless of
//    arrival order; a sequence gap is held open for gap_grace_attempts
//    polls (an in-flight reordered frame fills it losslessly) and only
//    then skipped and counted missing.
//
//  * Epoch alignment under clock skew: the *cursor* (packets covered,
//    cross-validated against the telemetry counters) is the trusted clock;
//    the epoch header is just a claim. With a manifest interval the barrier
//    a state frame should claim is cursor / epoch_interval, so a skewed
//    claim within skew_grace_epochs heals losslessly (the frame is applied
//    and the report renders the *aligned* epoch) while a claim beyond the
//    grace window is quarantined (excessive-skew) — the cursor does not
//    advance, so the vantage's loss window stays exact and the fleet
//    identity holds. The fleet epoch watermark is the minimum aligned
//    epoch over non-fenced vantages: a fleet epoch is committed only once
//    every participant has exported at or past it. Heartbeats carry no
//    validated state and never move cursors, skew estimates, or the
//    watermark.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analytics/histogram.hpp"
#include "core/stats.hpp"
#include "fleet/frame.hpp"
#include "fleet/snapshot_sink.hpp"

namespace dart::fleet {

enum class VantageState : std::uint8_t {
  kMissing = 0,  ///< no accepted frame (not even a manifest)
  kLive = 1,     ///< frames accepted, final not yet seen
  kComplete = 2, ///< final frame accepted
  kStale = 3,    ///< fenced at the liveness deadline with frames accepted
};

const char* to_string(VantageState state);

/// Why a frame was quarantined. The enum order is the exported label
/// order; every reason renders in the report (zeros included) so the
/// report schema is fixed.
enum class QuarantineReason : std::uint8_t {
  kTruncated = 0,     ///< envelope shorter than it promises
  kBadMagic,          ///< not a fleet frame
  kBadVersion,        ///< format version mismatch
  kCrcMismatch,       ///< integrity seal failed
  kBadFrame,          ///< section framing / field damage inside the frame
  kUnknownVantage,    ///< vantage id outside the configured fleet
  kDuplicateSequence, ///< sequence number already accepted or pending
  kStaleEpoch,        ///< epoch/cursor went backwards vs accepted state
  kBadCheckpoint,     ///< embedded checkpoint image failed validation
  kStatsMismatch,     ///< checkpoint counters disagree with telemetry text
  kIoError,           ///< spool file could not be read
  kExcessiveSkew,     ///< claimed epoch beyond the skew-grace window
};

inline constexpr std::size_t kQuarantineReasons = 12;

const char* to_string(QuarantineReason reason);

/// Bounded exponential backoff with deterministic seeded jitter. Pure:
/// delay_ns(attempt) is a function of (policy, attempt), so tests pin the
/// schedule without sleeping.
struct RetryPolicy {
  std::uint64_t base_delay_ns = 1'000'000;    ///< 1 ms
  std::uint64_t max_delay_ns = 200'000'000;   ///< 200 ms cap
  double jitter_fraction = 0.2;               ///< +/- around the base curve
  std::uint64_t seed = 0xF1EE7;

  std::uint64_t delay_ns(std::uint64_t attempt) const;
};

struct CollectorConfig {
  std::string spool_dir;
  std::uint64_t vantages = 0;  ///< expected vantage ids are [0, vantages)
  /// Polls without progress before a vantage is fenced stale/missing.
  std::uint64_t fence_after_attempts = 8;
  /// Polls a sequence gap stays open awaiting a reordered frame.
  std::uint64_t gap_grace_attempts = 3;
  /// Upper bound on run()'s poll loop; finalize() fences whatever is left.
  std::uint64_t max_attempts = 64;
  /// How far a state frame's claimed epoch may sit from the cursor-derived
  /// barrier before the frame is quarantined instead of healed.
  std::uint64_t skew_grace_epochs = 2;
  RetryPolicy retry;
};

struct VantageStatus {
  VantageState state = VantageState::kMissing;
  bool has_manifest = false;
  VantageInfo info;
  std::uint64_t next_sequence = 0;  ///< next frame accepted contiguously
  std::uint64_t last_epoch = 0;
  std::uint64_t cursor = 0;         ///< packets covered by accepted state
  bool has_stats = false;
  core::DartStats stats;            ///< from the last accepted state frame
  std::string telemetry;            ///< its embedded telemetry text
  std::uint64_t frames_accepted = 0;
  std::uint64_t frames_quarantined = 0;
  std::uint64_t frames_missing = 0;  ///< gaps skipped after grace
  std::uint64_t attempts_without_progress = 0;
  std::uint64_t gap_attempts = 0;    ///< polls the current gap stayed open
  bool fenced = false;               ///< liveness deadline fired (terminal)
  /// Claimed-minus-aligned epoch of the last accepted state frame: the
  /// per-vantage skew estimate (zero for an honest clock). Heartbeats
  /// never update it.
  std::int64_t epoch_skew = 0;
  bool has_rtt_histogram = false;
  /// Cumulative RTT distribution from the last accepted state frame
  /// carrying a histogram section.
  analytics::LogHistogram rtt_histogram;

  /// Exact loss window: what the manifest promised minus what the last
  /// accepted state frame covered. Zero for a complete vantage.
  std::uint64_t lost_to_vantage() const {
    if (!has_manifest) return 0;
    return info.expected_routed > cursor ? info.expected_routed - cursor : 0;
  }

  /// The barrier actually covered by the accepted cursor — the skew-immune
  /// epoch the report renders and the watermark is computed from. Without
  /// a manifest interval there is nothing to align against, so the claimed
  /// epoch stands.
  std::uint64_t aligned_epoch() const {
    if (!has_stats) return 0;
    if (has_manifest && info.epoch_interval > 0) {
      return cursor / info.epoch_interval;
    }
    return last_epoch;
  }
};

struct QuarantineRecord {
  std::string file;
  std::uint64_t vantage = 0;  ///< from the file name (header untrusted)
  QuarantineReason reason = QuarantineReason::kTruncated;
  std::uint64_t offset = 0;   ///< damage offset, when known
};

class FleetCollector {
 public:
  explicit FleetCollector(CollectorConfig config);

  /// One spool scan: ingest every new frame, advance per-vantage sequence
  /// acceptance, apply gap grace and liveness fencing. Deterministic given
  /// the spool contents and the poll count. Returns true if any vantage
  /// made progress.
  bool poll();

  /// True once every vantage reached a terminal state (complete, stale, or
  /// fenced missing).
  bool resolved() const;

  /// Fence every unresolved vantage now (run()'s attempt budget ran out).
  void finalize();

  /// Poll under the retry policy until resolved or max_attempts, sleeping
  /// delay_ns(attempt) between polls, then finalize. Returns the number of
  /// polls taken.
  std::uint64_t run();

  const VantageStatus& status(std::uint64_t vantage) const {
    return vantages_[vantage];
  }
  const std::vector<QuarantineRecord>& quarantined() const {
    return quarantined_;
  }
  std::uint64_t quarantined_by(QuarantineReason reason) const {
    return quarantine_counts_[static_cast<std::size_t>(reason)];
  }
  std::uint64_t polls() const { return polls_; }

  /// The fleet epoch watermark: the highest epoch every participating
  /// (complete or live, non-fenced-stale/missing) vantage has exported at
  /// or past, measured in *aligned* epochs so a skewed claim cannot move
  /// it. Zero when no vantage has accepted state.
  std::uint64_t epoch_watermark() const;

  /// Fold every vantage's accepted cumulative RTT histogram into one
  /// fleet-wide distribution (mass-conserving merge, vantage-index order).
  /// `contributors`, when non-null, gets the number of vantages that
  /// carried a histogram.
  analytics::LogHistogram merged_rtt_histogram(
      std::uint64_t* contributors = nullptr) const;

  /// The deterministic merged report: fleet/vantage states, the extended
  /// identity counters, quarantine accounting, the epoch watermark, and
  /// the fleet RTT quantile block, in Prometheus-style text
  /// (parse_prometheus-compatible). Byte-stable for identical spool
  /// contents — epochs render *aligned*, so within-grace skew cannot
  /// perturb a single byte.
  std::string report_text() const;

  /// Skew diagnostics, separate from report_text() so the canonical report
  /// stays byte-identical under healed skew: per-vantage claimed epoch,
  /// aligned epoch, and the signed skew estimate, plus the watermark.
  std::string skew_report_text() const;

 private:
  struct PendingFrame {
    SnapshotFrame frame;
    std::string file;
  };

  void ingest_file(const SpoolEntry& entry);
  void drain_pending(std::uint64_t vantage);
  /// Accept or quarantine the next-in-sequence frame. True on accept.
  bool apply_frame(std::uint64_t vantage, PendingFrame&& pending);
  void quarantine(const std::string& file, std::uint64_t vantage,
                  QuarantineReason reason, std::uint64_t offset);
  void fence(std::uint64_t vantage);

  CollectorConfig config_;
  std::vector<VantageStatus> vantages_;
  std::set<std::string> seen_files_;
  /// Per vantage: decoded frames waiting for their sequence turn.
  std::vector<std::map<std::uint64_t, PendingFrame>> pending_;
  std::vector<QuarantineRecord> quarantined_;
  std::uint64_t quarantine_counts_[kQuarantineReasons] = {};
  std::uint64_t polls_ = 0;
};

/// Verify the extended accounting identity inside a rendered (or reparsed)
/// fleet report: per labeled vantage and in aggregate,
///   processed + shed + abandoned + lost_to_crash + lost_to_vantage
///     == routed.
/// On failure returns false and describes the first violation in `error`.
bool check_fleet_identity(const std::string& report_text, std::string* error);

}  // namespace dart::fleet
