// dart-analyze: whole-tree concurrency & determinism checker for the host
// runtime — the src/-side sibling of dart-pipeline-lint. The data-plane
// checker proves a deployment feasible before it compiles; this tool proves
// the host runtime's concurrency discipline before it runs. Both speak the
// same language: stable rule codes, error[CODE]-formatted diagnostics, and
// exit 0/1/2.
//
// Rules (see DESIGN.md section 12 for the invariant each one protects):
//
//   CON001  hot-path atomics must spell out their memory_order (an
//           implicit or explicit seq_cst on the packet path is either a
//           perf bug or an unstated algorithm assumption)
//   CON002  no raw std::thread / detach() outside the sharded runtime's
//           worker management (thread lifetime is the supervisor's job)
//   CON003  no wall-clock reads in deterministic (replay) code — virtual
//           time only, or two runs of one trace stop being comparable
//   CON004  no unordered-container iteration feeding exported or merged
//           output (hash order is not replay-stable)
//   CON005  fields sharing a class with a mutex carry DART_GUARDED_BY (or
//           say why not), so the clang -Wthread-safety build can prove
//           locking instead of trusting it
//   CON006  mutexes are locked through RAII scopes, never bare
//           lock()/unlock() pairs an early return can unbalance
//   CON007  exporter code (the fleet spool publishers) must write through
//           telemetry::write_atomic — a raw ofstream/fopen/fwrite/rename
//           can expose a torn frame to a concurrently scanning collector
//   CON008  no wall-clock reads in collector decision paths — fencing,
//           gap grace, and skew healing are counted in poll attempts, so
//           the same spool always yields the same report; a ::now() (or a
//           deadline wait built on one) smuggles wall time back into the
//           decisions (sleep_for pacing between polls stays legal)
//   CON009  no unbounded blocking socket waits in daemon code — a raw
//           accept/recv/read (or a poll with an infinite timeout) parks
//           the thread until a peer acts, so SIGTERM cannot drain; wait
//           through the daemon::net bounded helpers, which slice the wait
//           and re-check the shutdown flag between slices
//
// The checker is lexical by design: no compiler, no flags, no compile
// database — it runs identically on every developer box and in CI, and the
// rules are chosen to be patterns a token scan can catch with near-zero
// false positives in this codebase. What it cannot see (alias-laundered
// clocks, iterator-based unordered walks) the clang thread-safety build and
// the TSan jobs cover from the other side.
//
// Waivers:
//   * inline  — a comment `con-ok(CODE): reason` on the finding line or on
//     a comment line directly above it;
//   * tree    — `CODE path reason` lines in dart_analyze_waivers.txt at the
//     repo root (loaded in --repo-root mode or via --waivers).
// A waiver that suppresses nothing is itself an error (stale-waiver), so
// fixed code cannot leave silent holes behind — same contract as
// scripts/lint_hotpath.py.
//
// Usage:
//   dart-analyze --repo-root DIR          # scan DIR/src tree-wide
//   dart-analyze [--treat-as CLASS] FILE...  # explicit files (fixtures)
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string code;
  std::string file;
  std::size_t line = 0;
  std::string message;
  bool waived = false;
};

// Which rule families apply to a file. A file can be several things at
// once (src/core is hot-path *and* deterministic *and* export-feeding).
struct FileClass {
  bool hotpath = false;
  bool deterministic = false;
  bool exported = false;
  bool threads_ok = false;
  bool exporter = false;
  bool collector = false;
  bool daemon = false;
};

struct RuleInfo {
  const char* code;
  const char* name;
};

constexpr RuleInfo kRules[] = {
    {"CON001", "hot-path atomic without explicit memory_order"},
    {"CON002", "raw std::thread / detach outside the shard runtime"},
    {"CON003", "wall-clock source in deterministic code"},
    {"CON004", "unordered-container iteration feeding exported output"},
    {"CON005", "mutex-guarded field missing DART_GUARDED_BY"},
    {"CON006", "mutex locked outside an RAII scope"},
    {"CON007", "raw filesystem write in exporter code (use write_atomic)"},
    {"CON008", "wall-clock read in collector decision path"},
    {"CON009", "unbounded blocking socket wait in daemon code"},
};

// ---------------------------------------------------------------------------
// Source preprocessing
// ---------------------------------------------------------------------------

/// Replaces comments, string/char literals, and preprocessor lines with
/// spaces (newlines preserved), so every rule scans code and only code.
std::string strip_noncode(const std::string& text) {
  std::string out = text;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kPreproc
  };
  State state = State::kCode;
  bool at_line_start = true;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (at_line_start && c == '#') {
          state = State::kPreproc;
          out[i] = ' ';
        } else if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0' && next != '\n') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"' || c == '\n') {
          state = State::kCode;
          if (c == '"') out[i] = ' ';
        } else {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'' || c == '\n') {
          state = State::kCode;
          if (c == '\'') out[i] = ' ';
        } else {
          out[i] = ' ';
        }
        break;
      case State::kPreproc:
        if (c == '\n' && (i == 0 || out[i - 1] != '\\')) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
    at_line_start = c == '\n';
  }
  return out;
}

std::vector<std::size_t> line_offsets(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

std::size_t line_of(const std::vector<std::size_t>& starts,
                    std::size_t offset) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<std::size_t>(it - starts.begin());
}

/// Position of the ')' matching the '(' at `open`, or npos.
std::size_t match_paren(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains_word(const std::string& text, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

struct InlineWaiver {
  std::size_t line = 0;  ///< line the waiver comment sits on
  std::string code;
  bool used = false;
};

struct FileWaivers {
  /// Effective waived codes per finding line (same-line plus comment-lines
  /// directly above, chained through consecutive comment-only lines).
  std::map<std::size_t, std::set<std::string>> effective;
  std::vector<InlineWaiver> waivers;

  void mark_used(std::size_t line, const std::string& code) {
    for (InlineWaiver& w : waivers) {
      // A waiver covers its own line and the code line(s) it chains onto;
      // crediting every matching waiver at or above the finding is fine
      // because `effective` already bounded the reach.
      if (w.code == code && w.line <= line) w.used = true;
    }
  }
};

FileWaivers scan_inline_waivers(const std::string& original,
                                const std::string& stripped) {
  FileWaivers out;
  static const std::regex kWaiver(R"(con-ok\((CON[0-9]{3})\))");
  std::istringstream orig(original);
  std::istringstream bare(stripped);
  std::string oline;
  std::string bline;
  std::size_t lineno = 0;
  std::set<std::string> pending;
  while (std::getline(orig, oline)) {
    std::getline(bare, bline);
    ++lineno;
    std::set<std::string> here;
    for (std::sregex_iterator it(oline.begin(), oline.end(), kWaiver), end;
         it != end; ++it) {
      here.insert((*it)[1].str());
      out.waivers.push_back({lineno, (*it)[1].str(), false});
    }
    const bool code_blank =
        bline.find_first_not_of(" \t\r") == std::string::npos;
    const bool orig_blank =
        oline.find_first_not_of(" \t\r") == std::string::npos;
    if (code_blank && !orig_blank) {
      // Comment-only line: waivers ride forward to the next code line.
      pending.insert(here.begin(), here.end());
    } else {
      here.insert(pending.begin(), pending.end());
      pending.clear();
      if (!here.empty()) out.effective[lineno] = std::move(here);
    }
  }
  return out;
}

struct TreeWaiver {
  std::string code;
  std::string path;
  std::string reason;
  std::size_t line = 0;  ///< line in the waiver file
  bool used = false;
};

bool load_tree_waivers(const fs::path& file, std::vector<TreeWaiver>& out,
                       std::string& error) {
  std::ifstream in(file);
  if (!in) {
    error = "cannot read waiver file " + file.string();
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    TreeWaiver w;
    w.line = lineno;
    fields >> w.code >> w.path;
    std::getline(fields, w.reason);
    const std::size_t start = w.reason.find_first_not_of(" \t");
    w.reason = start == std::string::npos ? "" : w.reason.substr(start);
    if (!std::regex_match(w.code, std::regex(R"(CON[0-9]{3})")) ||
        w.path.empty() || w.reason.empty()) {
      error = file.string() + ":" + std::to_string(lineno) +
              ": expected 'CODE path reason'";
      return false;
    }
    out.push_back(std::move(w));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void check_con001(const std::string& code,
                  const std::vector<std::size_t>& lines,
                  const std::string& file, std::vector<Finding>& findings) {
  static const std::regex kAtomicOp(
      R"((\.|->)(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\()");
  for (std::sregex_iterator it(code.begin(), code.end(), kAtomicOp), end;
       it != end; ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position()) + it->length() - 1;
    const std::size_t close = match_paren(code, open);
    const std::string args =
        close == std::string::npos ? "" : code.substr(open, close - open + 1);
    const std::size_t line =
        line_of(lines, static_cast<std::size_t>(it->position()));
    if (args.find("memory_order_") == std::string::npos) {
      findings.push_back(
          {"CON001", file, line,
           "atomic '" + (*it)[2].str() +
               "' without an explicit memory_order (defaults to seq_cst) "
               "on the hot path"});
    } else if (args.find("memory_order_seq_cst") != std::string::npos) {
      findings.push_back({"CON001", file, line,
                          "seq_cst atomic '" + (*it)[2].str() +
                              "' on the hot path; state the required "
                              "ordering instead"});
    }
  }
}

void check_con002(const std::string& code,
                  const std::vector<std::size_t>& lines,
                  const std::string& file, std::vector<Finding>& findings) {
  static const std::regex kThread(R"(std\s*::\s*thread\b|\bpthread_create\b)");
  static const std::regex kDetach(R"((\.|->)\s*detach\s*\(\s*\))");
  for (std::sregex_iterator it(code.begin(), code.end(), kThread), end;
       it != end; ++it) {
    findings.push_back(
        {"CON002", file,
         line_of(lines, static_cast<std::size_t>(it->position())),
         "raw thread creation outside the shard runtime; workers belong to "
         "ShardedMonitor / ShardSupervisor"});
  }
  for (std::sregex_iterator it(code.begin(), code.end(), kDetach), end;
       it != end; ++it) {
    findings.push_back(
        {"CON002", file,
         line_of(lines, static_cast<std::size_t>(it->position())),
         "detach() outside the shard runtime; only the supervisor may "
         "abandon a worker"});
  }
}

void check_con003(const std::string& code,
                  const std::vector<std::size_t>& lines,
                  const std::string& file, std::vector<Finding>& findings) {
  static const std::regex kClock(
      R"(\b(steady_clock|system_clock|high_resolution_clock|gettimeofday|clock_gettime|timespec_get)\b|\btime\s*\(\s*(nullptr|NULL|0)\s*\))");
  for (std::sregex_iterator it(code.begin(), code.end(), kClock), end;
       it != end; ++it) {
    findings.push_back(
        {"CON003", file,
         line_of(lines, static_cast<std::size_t>(it->position())),
         "wall-clock source in deterministic code; replay uses virtual "
         "(trace) time only"});
  }
}

/// Names declared with an unordered container type in `code`.
std::set<std::string> collect_unordered_names(const std::string& code) {
  std::set<std::string> names;
  static const std::regex kDecl(R"(\bunordered_(?:multi)?(?:map|set)\s*<)");
  for (std::sregex_iterator it(code.begin(), code.end(), kDecl), end;
       it != end; ++it) {
    std::size_t i = static_cast<std::size_t>(it->position()) + it->length();
    int depth = 1;  // inside the template argument list
    while (i < code.size() && depth > 0) {
      if (code[i] == '<') ++depth;
      if (code[i] == '>') --depth;
      ++i;
    }
    while (i < code.size() && (std::isspace(static_cast<unsigned char>(
                                   code[i])) != 0 ||
                               code[i] == '&' || code[i] == '*')) {
      ++i;
    }
    std::string name;
    while (i < code.size() && is_ident_char(code[i])) name += code[i++];
    if (!name.empty()) names.insert(name);
  }
  return names;
}

void check_con004(const std::string& code,
                  const std::vector<std::size_t>& lines,
                  const std::string& file,
                  const std::set<std::string>& header_names,
                  std::vector<Finding>& findings) {
  std::set<std::string> unordered_names = collect_unordered_names(code);
  unordered_names.insert(header_names.begin(), header_names.end());
  if (unordered_names.empty()) return;

  // Pass 2: range-for loops whose range expression names one of them.
  static const std::regex kFor(R"(\bfor\s*\()");
  for (std::sregex_iterator it(code.begin(), code.end(), kFor), end;
       it != end; ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position()) + it->length() - 1;
    const std::size_t close = match_paren(code, open);
    if (close == std::string::npos) continue;
    const std::string head = code.substr(open + 1, close - open - 1);
    if (head.find(';') != std::string::npos) continue;  // classic for
    const std::size_t colon = head.find(':');
    if (colon == std::string::npos) continue;
    const std::string range = head.substr(colon + 1);
    for (const std::string& name : unordered_names) {
      if (contains_word(range, name)) {
        findings.push_back(
            {"CON004", file,
             line_of(lines, static_cast<std::size_t>(it->position())),
             "iteration over unordered container '" + name +
                 "' in export-feeding code; hash order is not "
                 "replay-stable"});
        break;
      }
    }
  }
}

// Class-body statement, for CON005. Statements are grouped by the brace
// scope they appear in, so "shares a class with a mutex" is literal: same
// group as a mutex-typed member.
struct Statement {
  std::string text;
  std::size_t line = 0;
  int group = 0;
};

std::vector<Statement> split_statements(
    const std::string& code, const std::vector<std::size_t>& lines) {
  std::vector<Statement> out;
  std::vector<int> stack{0};
  int next_group = 0;
  int paren_depth = 0;
  std::string current;
  std::size_t start_offset = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '(') ++paren_depth;
    if (c == ')' && paren_depth > 0) --paren_depth;
    if (c == '{' && paren_depth == 0) {
      stack.push_back(++next_group);
      current.clear();
      continue;
    }
    if (c == '}' && paren_depth == 0) {
      if (stack.size() > 1) stack.pop_back();
      current.clear();
      continue;
    }
    if (c == ';' && paren_depth == 0) {
      const std::size_t first = current.find_first_not_of(" \t\r\n");
      if (first != std::string::npos) {
        out.push_back({current.substr(first),
                       line_of(lines, start_offset + first), stack.back()});
      }
      current.clear();
      continue;
    }
    if (current.empty()) start_offset = i;
    current += c;
  }
  return out;
}

bool is_mutex_decl(const std::string& text) {
  static const std::regex kMutex(
      R"(\b[Mm]utex\s*&?\s+[A-Za-z_]\w*\s*$)");
  return std::regex_search(text, kMutex);
}

void check_con005(const std::string& code,
                  const std::vector<std::size_t>& lines,
                  const std::string& file, std::vector<Finding>& findings) {
  std::vector<Statement> statements = split_statements(code, lines);
  for (Statement& s : statements) {
    // Access labels glue onto the following statement; drop them.
    static const std::regex kLabel(R"(\b(public|private|protected)\s*:)");
    s.text = std::regex_replace(s.text, kLabel, "");
    const std::size_t first = s.text.find_first_not_of(" \t\r\n");
    s.text = first == std::string::npos ? "" : s.text.substr(first);
  }
  std::set<int> mutex_groups;
  for (const Statement& s : statements) {
    if (s.group != 0 && is_mutex_decl(s.text)) mutex_groups.insert(s.group);
  }
  if (mutex_groups.empty()) return;

  static const std::regex kSkipLead(
      R"(^(mutable\s+)?(const|constexpr|static|using|typedef|friend|enum|struct|class|template|return|namespace)\b)");
  static const std::regex kMemberShape(
      R"(^[\w:<>,\s&*\[\]]+\s[A-Za-z_]\w*\s*$)");
  for (const Statement& s : statements) {
    if (mutex_groups.count(s.group) == 0 || s.text.empty()) continue;
    if (s.text.find("DART_GUARDED_BY") != std::string::npos) continue;
    if (s.text.find("DART_PT_GUARDED_BY") != std::string::npos) continue;
    if (is_mutex_decl(s.text)) continue;
    if (s.text.find("condition_variable") != std::string::npos) continue;
    if (s.text.find("atomic") != std::string::npos) continue;
    if (std::regex_search(s.text, kSkipLead)) continue;
    if (s.text.find('(') != std::string::npos) continue;
    std::string decl = s.text;
    const std::size_t eq = decl.find('=');
    if (eq != std::string::npos) decl = decl.substr(0, eq);
    while (!decl.empty() &&
           std::isspace(static_cast<unsigned char>(decl.back())) != 0) {
      decl.pop_back();
    }
    if (!std::regex_match(decl, kMemberShape)) continue;
    std::size_t name_start = decl.size();
    while (name_start > 0 && is_ident_char(decl[name_start - 1])) {
      --name_start;
    }
    findings.push_back({"CON005", file, s.line,
                        "member '" + decl.substr(name_start) +
                            "' shares a class with a mutex but carries no "
                            "DART_GUARDED_BY annotation"});
  }
}

void check_con006(const std::string& code,
                  const std::vector<std::size_t>& lines,
                  const std::string& file, std::vector<Finding>& findings) {
  static const std::regex kRawLock(
      R"((\.|->)\s*(lock|unlock|try_lock)\s*\(\s*\))");
  for (std::sregex_iterator it(code.begin(), code.end(), kRawLock), end;
       it != end; ++it) {
    findings.push_back(
        {"CON006", file,
         line_of(lines, static_cast<std::size_t>(it->position())),
         "bare " + (*it)[2].str() +
             "() call; lock through an RAII scope (common::MutexLock / "
             "common::UniqueLock)"});
  }
}

void check_con007(const std::string& code,
                  const std::vector<std::size_t>& lines,
                  const std::string& file, std::vector<Finding>& findings) {
  // Only the write side can tear a publish: ofstream construction and
  // fopen/fwrite/rename calls are flagged, ifstream/fread reads are not.
  // write_atomic itself lives in src/telemetry (not exporter-classified),
  // so its own ofstream + rename implementation stays legal.
  static const std::regex kOfstream(
      R"(\b(?:std\s*::\s*)?ofstream\s+[A-Za-z_]\w*\s*[({])");
  static const std::regex kWriteCall(R"(\b(fopen|fwrite|rename)\s*\()");
  for (std::sregex_iterator it(code.begin(), code.end(), kOfstream), end;
       it != end; ++it) {
    findings.push_back(
        {"CON007", file,
         line_of(lines, static_cast<std::size_t>(it->position())),
         "raw ofstream in exporter code; publish through "
         "telemetry::write_atomic (tmp + rename) so a concurrent collector "
         "never observes a torn frame"});
  }
  for (std::sregex_iterator it(code.begin(), code.end(), kWriteCall), end;
       it != end; ++it) {
    findings.push_back(
        {"CON007", file,
         line_of(lines, static_cast<std::size_t>(it->position())),
         "raw " + (*it)[1].str() +
             "() in exporter code; publish through telemetry::write_atomic "
             "(tmp + rename) so a concurrent collector never observes a "
             "torn frame"});
  }
}

void check_con008(const std::string& code,
                  const std::vector<std::size_t>& lines,
                  const std::string& file, std::vector<Finding>& findings) {
  // The collector's contract is poll-attempt-counted determinism: fencing,
  // gap grace, and skew healing must be functions of (spool contents, poll
  // count), never of when the polls happened. Any ::now() read — or a
  // wait_for/wait_until/sleep_until deadline built on one — lets wall time
  // back into those decisions. sleep_for between polls is deliberately
  // legal: it spaces the polls out without any decision observing a clock.
  static const std::regex kNowCall(R"(\b[A-Za-z_]\w*\s*::\s*now\s*\()");
  static const std::regex kDeadlineWait(
      R"(\b(wait_for|wait_until|sleep_until)\s*\()");
  for (std::sregex_iterator it(code.begin(), code.end(), kNowCall), end;
       it != end; ++it) {
    findings.push_back(
        {"CON008", file,
         line_of(lines, static_cast<std::size_t>(it->position())),
         "wall-clock read in collector code; decisions must be counted in "
         "poll attempts so the same spool always yields the same report"});
  }
  for (std::sregex_iterator it(code.begin(), code.end(), kDeadlineWait), end;
       it != end; ++it) {
    findings.push_back(
        {"CON008", file,
         line_of(lines, static_cast<std::size_t>(it->position())),
         (*it)[1].str() +
             "() deadline in collector code; pace with sleep_for and count "
             "decisions in poll attempts, not elapsed time"});
  }
}

void check_con009(const std::string& code,
                  const std::vector<std::size_t>& lines,
                  const std::string& file, std::vector<Finding>& findings) {
  // Free-function socket waits that block until a peer acts. Member calls
  // (`in.read(...)`, `stream->read(...)`) are stream I/O, not socket
  // syscalls, so the name must not follow '.' or '->'; an identifier
  // character to the left (fread, bounded_read) is a different function.
  static const std::regex kBlockingCall(
      R"((^|[^\w.>])(accept4?|recv|recvfrom|recvmsg|read)\s*\()");
  for (std::sregex_iterator it(code.begin(), code.end(), kBlockingCall), end;
       it != end; ++it) {
    const std::size_t name_pos =
        static_cast<std::size_t>(it->position(2));
    // `long read(...)` is a declaration, not a wait: a preceding word
    // other than an expression keyword means a return type sits there.
    std::size_t back = name_pos;
    while (back > 0 && (code[back - 1] == ' ' || code[back - 1] == '\t' ||
                        code[back - 1] == '\n' || code[back - 1] == '\r')) {
      --back;
    }
    if (back > 0 && is_ident_char(code[back - 1])) {
      std::size_t word_start = back;
      while (word_start > 0 && is_ident_char(code[word_start - 1])) {
        --word_start;
      }
      const std::string word = code.substr(word_start, back - word_start);
      if (word != "return" && word != "co_return" && word != "co_await" &&
          word != "throw" && word != "else" && word != "do") {
        continue;
      }
    }
    findings.push_back(
        {"CON009", file, line_of(lines, name_pos),
         "blocking " + (*it)[2].str() +
             "() in daemon code can park the thread past SIGTERM; wait "
             "through the daemon::net bounded helpers (poll slice + stop "
             "re-check)"});
  }
  // poll()/ppoll() with an infinite timeout is the same bug with extra
  // steps: the wait never wakes to look at the shutdown flag.
  static const std::regex kPoll(R"(\bp?poll\s*\()");
  for (std::sregex_iterator it(code.begin(), code.end(), kPoll), end;
       it != end; ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position()) + it->length() - 1;
    const std::size_t close = match_paren(code, open);
    if (close == std::string::npos) continue;
    const std::string args = code.substr(open + 1, close - open - 1);
    static const std::regex kInfinite(R"(,\s*(-\s*1|nullptr|NULL)\s*$)");
    if (std::regex_search(args, kInfinite)) {
      findings.push_back(
          {"CON009", file,
           line_of(lines, static_cast<std::size_t>(it->position())),
           "poll() with an infinite timeout in daemon code never wakes to "
           "check the shutdown flag; use a bounded slice and re-check"});
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Path classification for tree mode; `rel` uses forward slashes.
FileClass classify(const std::string& rel) {
  FileClass fc;
  const auto starts = [&rel](const char* prefix) {
    return rel.rfind(prefix, 0) == 0;
  };
  fc.hotpath = starts("src/core/") || starts("src/runtime/") ||
               rel == "src/telemetry/metrics.hpp" ||
               starts("src/common/packet.");
  // Daemon code is wall-clock-paced by nature (rate pacing, idle sleeps),
  // so it is exempt from CON003 and gets CON009 instead.
  fc.deterministic = starts("src/") && !starts("src/runtime/") &&
                     !starts("src/tools/") && !starts("src/daemon/");
  fc.exported = starts("src/core/") || starts("src/telemetry/") ||
                starts("src/analytics/");
  const std::string base = fs::path(rel).filename().string();
  fc.threads_ok = base.rfind("sharded_monitor.", 0) == 0 ||
                  base.rfind("shard_supervisor.", 0) == 0 ||
                  base.rfind("query_server.", 0) == 0;
  // Everything that publishes snapshot frames for a concurrent reader:
  // the fleet subsystem and the dart-fleet CLI around it.
  fc.exporter = starts("src/fleet/") || rel == "src/tools/dart_fleet.cpp";
  // The merge side: its fencing/grace/skew decisions are poll-counted.
  fc.collector =
      rel == "src/fleet/collector.cpp" || rel == "src/fleet/collector.hpp";
  fc.daemon = starts("src/daemon/") || rel == "src/tools/dart_daemon.cpp";
  return fc;
}

struct FileResult {
  std::vector<Finding> findings;
  FileWaivers waivers;
};

bool analyze_file(const fs::path& path, const std::string& display,
                  const FileClass& fc, FileResult& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot read " + path.string();
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string original = buffer.str();
  const std::string code = strip_noncode(original);
  const std::vector<std::size_t> lines = line_offsets(code);

  out.waivers = scan_inline_waivers(original, code);
  if (fc.hotpath) check_con001(code, lines, display, out.findings);
  if (!fc.threads_ok) check_con002(code, lines, display, out.findings);
  if (fc.deterministic) check_con003(code, lines, display, out.findings);
  if (fc.exported) {
    // A .cpp iterates members its own text never declares; pull unordered
    // member names from the sibling header so hash-order walks over them
    // are visible from the implementation file.
    std::set<std::string> header_names;
    const std::string ext = path.extension().string();
    if (ext == ".cpp" || ext == ".cc") {
      for (const char* hext : {".hpp", ".h"}) {
        fs::path header = path;
        header.replace_extension(hext);
        std::ifstream hin(header, std::ios::binary);
        if (!hin) continue;
        std::stringstream hbuf;
        hbuf << hin.rdbuf();
        const std::set<std::string> names =
            collect_unordered_names(strip_noncode(hbuf.str()));
        header_names.insert(names.begin(), names.end());
      }
    }
    check_con004(code, lines, display, header_names, out.findings);
  }
  check_con005(code, lines, display, out.findings);
  check_con006(code, lines, display, out.findings);
  if (fc.exporter) check_con007(code, lines, display, out.findings);
  if (fc.collector) check_con008(code, lines, display, out.findings);
  if (fc.daemon) check_con009(code, lines, display, out.findings);
  return true;
}

void print_usage(std::ostream& out) {
  out << "usage: dart-analyze [options] [file...]\n"
         "\n"
         "Modes:\n"
         "  --repo-root DIR   scan DIR/src recursively; loads\n"
         "                    DIR/dart_analyze_waivers.txt when present\n"
         "  file...           analyze the given files (fixture mode)\n"
         "\n"
         "Options:\n"
         "  --treat-as CLASS  classify explicit files as hotpath|\n"
         "                    deterministic|export|exporter|collector|\n"
         "                    daemon|threads-ok|plain\n"
         "                    (default: plain; CON005/CON006 always apply)\n"
         "  --waivers FILE    load a tree waiver file in fixture mode\n"
         "  --quiet           diagnostics only, no summary line\n"
         "  --list-rules      describe the rules and exit\n"
         "  --help            this text\n"
         "\n"
         "Inline waivers: a comment 'con-ok(CODE): reason' on the finding\n"
         "line or a comment line directly above it. Waivers that suppress\n"
         "nothing are stale-waiver errors.\n"
         "Exits 0 when clean, 1 on findings or stale waivers, 2 on usage\n"
         "or I/O error.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string repo_root;
  std::string treat_as = "plain";
  std::string waiver_path;
  bool quiet = false;
  std::vector<std::string> files;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&](std::string& out) -> bool {
      if (i + 1 >= args.size()) {
        std::cerr << "error: " << arg << " needs a value\n";
        return false;
      }
      out = args[++i];
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& rule : kRules) {
        std::cout << rule.code << "  " << rule.name << "\n";
      }
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--repo-root") {
      if (!value(repo_root)) return 2;
    } else if (arg == "--treat-as") {
      if (!value(treat_as)) return 2;
    } else if (arg == "--waivers") {
      if (!value(waiver_path)) return 2;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  FileClass fixture_class;
  if (treat_as == "hotpath") {
    fixture_class.hotpath = true;
    fixture_class.deterministic = true;
  } else if (treat_as == "deterministic") {
    fixture_class.deterministic = true;
  } else if (treat_as == "export") {
    fixture_class.exported = true;
  } else if (treat_as == "exporter") {
    fixture_class.exporter = true;
  } else if (treat_as == "collector") {
    fixture_class.collector = true;
  } else if (treat_as == "daemon") {
    fixture_class.daemon = true;
  } else if (treat_as == "threads-ok") {
    fixture_class.threads_ok = true;
  } else if (treat_as != "plain") {
    std::cerr << "error: unknown --treat-as class '" << treat_as << "'\n";
    return 2;
  }

  // Assemble the work list: (filesystem path, display path, class).
  struct Work {
    fs::path path;
    std::string display;
    FileClass fc;
  };
  std::vector<Work> work;
  std::vector<TreeWaiver> tree_waivers;
  std::string error;

  if (!repo_root.empty()) {
    if (!files.empty()) {
      std::cerr << "error: --repo-root and explicit files are exclusive\n";
      return 2;
    }
    const fs::path root(repo_root);
    const fs::path src = root / "src";
    std::error_code ec;
    if (!fs::is_directory(src, ec)) {
      std::cerr << "error: no src/ under " << root.string() << "\n";
      return 2;
    }
    for (fs::recursive_directory_iterator it(src), end; it != end; ++it) {
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") {
        continue;
      }
      std::string rel = fs::relative(it->path(), root).generic_string();
      work.push_back({it->path(), rel, classify(rel)});
    }
    std::sort(work.begin(), work.end(),
              [](const Work& a, const Work& b) {
                return a.display < b.display;
              });
    const fs::path default_waivers = root / "dart_analyze_waivers.txt";
    if (waiver_path.empty() && fs::exists(default_waivers, ec)) {
      waiver_path = default_waivers.string();
    }
  } else {
    if (files.empty()) {
      std::cerr << "error: no input (give files or --repo-root)\n";
      print_usage(std::cerr);
      return 2;
    }
    for (const std::string& file : files) {
      work.push_back({fs::path(file), file, fixture_class});
    }
  }

  if (!waiver_path.empty() &&
      !load_tree_waivers(waiver_path, tree_waivers, error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }

  std::vector<Finding> reported;
  std::vector<std::string> stale;
  std::size_t waived_count = 0;
  for (const Work& item : work) {
    FileResult result;
    if (!analyze_file(item.path, item.display, item.fc, result, error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    for (Finding& f : result.findings) {
      const auto it = result.waivers.effective.find(f.line);
      if (it != result.waivers.effective.end() &&
          it->second.count(f.code) != 0) {
        f.waived = true;
        result.waivers.mark_used(f.line, f.code);
      }
      for (TreeWaiver& w : tree_waivers) {
        if (!f.waived && w.code == f.code && w.path == f.file) {
          f.waived = true;
          w.used = true;
        }
      }
      if (f.waived) {
        ++waived_count;
      } else {
        reported.push_back(f);
      }
    }
    for (const InlineWaiver& w : result.waivers.waivers) {
      if (!w.used) {
        stale.push_back("error[stale-waiver]: " + item.display + ":" +
                        std::to_string(w.line) + ": inline waiver for " +
                        w.code + " suppresses no finding; remove it");
      }
    }
  }
  if (!repo_root.empty() || !waiver_path.empty()) {
    for (const TreeWaiver& w : tree_waivers) {
      if (!w.used) {
        stale.push_back("error[stale-waiver]: " + waiver_path + ":" +
                        std::to_string(w.line) + ": waiver '" + w.code +
                        " " + w.path + "' suppresses no finding; remove it");
      }
    }
  }

  for (const Finding& f : reported) {
    std::cout << "error[" << f.code << "]: " << f.file << ":" << f.line
              << ": " << f.message << "\n";
  }
  for (const std::string& message : stale) std::cout << message << "\n";
  if (!quiet) {
    std::cout << "dart-analyze: " << work.size() << " file(s), "
              << reported.size() << " finding(s), " << waived_count
              << " waived, " << stale.size() << " stale waiver(s)\n";
  }
  return reported.empty() && stale.empty() ? 0 : 1;
}
