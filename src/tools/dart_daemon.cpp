// dartd: the Dart monitor as a long-running service.
//
//   dartd gen --out FILE [--seed S] [--connections N] [--duration-s D]
//       write a seeded campus-workload .dtrc trace (feeder corpus)
//   dartd replay --trace FILE [--shards N] [--epoch-interval N] [--out FILE]
//       offline reference: drive the trace through the daemon runner
//       unpaced and print/write the deterministic final report
//   dartd run (--trace FILE [--rate X] | --listen PORT)
//             [--shards N] [--epoch-interval N] [--port P]
//             [--port-file FILE] [--final-out FILE]
//       live service: ingest from a rate-paced trace replay or a loopback
//       TCP feed of 32-byte packet records, rotate epochs continuously,
//       and serve queries until SIGTERM/SIGINT
//
// Query routes (HTTP GET or bare line over the --port listener):
//   /healthz        liveness
//   /status         state / cycle / epochs / routed / source_exhausted
//   /epoch          last sealed epoch barrier (router-side cursors)
//   /deterministic  final deterministic report once drained, else the
//                   last barrier snapshot
//   /metrics        live telemetry tier (DART_TELEMETRY builds)
//
// Lifetime contract (the bug this daemon exists to fix): end-of-trace is
// NOT shutdown — the service drains to the barrier, seals the final
// report, and keeps answering queries until SIGTERM, which is itself a
// drain-to-barrier stop, never an abort. The sealed report preserves
//     processed + shed + abandoned + lost_to_crash == routed
// and is byte-identical to `dartd replay` of the same trace.
// Exit codes: 0 ok, 1 runtime error, 2 usage error.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "daemon/epoch_runner.hpp"
#include "daemon/query_server.hpp"
#include "daemon/replay_source.hpp"
#include "daemon/socket_source.hpp"
#include "gen/workload.hpp"
#include "telemetry/export.hpp"
#include "trace/trace_io.hpp"

#if defined(DART_TELEMETRY)
#include "telemetry/registry.hpp"
#include "telemetry/runtime_metrics.hpp"
#endif

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int /*signum*/) { g_stop = 1; }

void print_usage(std::ostream& out) {
  out << "usage: dartd <command> [options]\n"
         "\n"
         "  gen --out FILE                write a seeded .dtrc workload\n"
         "    --seed S                    generator seed (default 1)\n"
         "    --connections N             concurrent flows (default 400)\n"
         "    --duration-s D              trace duration (default 4)\n"
         "  replay --trace FILE           offline deterministic reference\n"
         "    --shards N                  worker shards (default 2)\n"
         "    --epoch-interval N          packets per epoch (default 65536)\n"
         "    --out FILE                  write the report (atomic)\n"
         "  run                           live daemon until SIGTERM\n"
         "    --trace FILE                replay-source ingest\n"
         "    --rate X                    pace at X * real time (0 = unpaced)\n"
         "    --listen PORT               socket-source ingest instead\n"
         "    --shards N, --epoch-interval N    as for replay\n"
         "    --port P                    query port (default 0 = ephemeral)\n"
         "    --port-file FILE            write \"<query> <ingest>\" ports\n"
         "    --final-out FILE            write the final report (atomic)\n";
}

std::uint64_t parse_u64(const char* text) {
  return static_cast<std::uint64_t>(std::strtoull(text, nullptr, 10));
}

std::string render_status(const dart::daemon::DaemonStatus& status) {
  std::string out = "# dartd status\n";
  out += "state ";
  out += dart::daemon::to_string(status.state);
  out += '\n';
  out += "cycle " + std::to_string(status.cycle) + "\n";
  out += "epochs " + std::to_string(status.epochs) + "\n";
  out += "routed " + std::to_string(status.routed) + "\n";
  out += "source_exhausted ";
  out += status.source_exhausted ? '1' : '0';
  out += '\n';
  return out;
}

int run_gen(std::uint64_t seed, std::uint64_t connections,
            std::uint64_t duration_s, const std::string& out_path) {
  dart::gen::CampusConfig workload;
  workload.seed = seed;
  workload.connections = static_cast<std::uint32_t>(connections);
  workload.duration = dart::sec(duration_s);
  const dart::trace::Trace trace = dart::gen::build_campus(workload);
  if (!dart::trace::write_binary_file(trace, out_path)) {
    std::cerr << "dartd: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "dartd: wrote " << trace.packets().size() << " packets to "
            << out_path << "\n";
  return 0;
}

dart::daemon::DaemonConfig make_daemon_config(std::uint32_t shards,
                                              std::uint64_t epoch_interval) {
  dart::daemon::DaemonConfig config;
  config.shards = shards == 0 ? 1 : shards;
  config.epoch_interval = epoch_interval;
  return config;
}

int run_replay(const std::string& trace_path, std::uint32_t shards,
               std::uint64_t epoch_interval, const std::string& out_path) {
  auto trace = dart::trace::read_binary_file(trace_path);
  if (!trace.has_value()) {
    std::cerr << "dartd: cannot read trace " << trace_path << "\n";
    return 1;
  }
  dart::daemon::ReplaySource source(std::move(*trace));
  dart::daemon::EpochRunner runner(
      make_daemon_config(shards, epoch_interval));
  const std::string report = runner.run_cycle(source, {});
  if (!out_path.empty() &&
      !dart::telemetry::write_atomic(out_path, report)) {
    std::cerr << "dartd: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << report;
  return 0;
}

struct RunOptions {
  std::string trace_path;
  double rate = 0.0;
  bool listen = false;
  std::uint16_t listen_port = 0;
  std::uint32_t shards = 2;
  std::uint64_t epoch_interval = 65536;
  std::uint16_t query_port = 0;
  std::string port_file;
  std::string final_out;
};

int run_daemon(const RunOptions& options) {
  // Drain-to-barrier on SIGTERM/SIGINT: the handler only raises a flag;
  // the ingest loop and every bounded socket wait observe it within one
  // poll slice. Registered before any thread starts.
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  std::unique_ptr<dart::daemon::PacketSource> source;
  dart::daemon::SocketSource* ingest_socket = nullptr;
  if (options.listen) {
    auto socket_source =
        std::make_unique<dart::daemon::SocketSource>(options.listen_port);
    if (socket_source->port() == 0) {
      std::cerr << "dartd: cannot bind ingest port "
                << options.listen_port << "\n";
      return 1;
    }
    ingest_socket = socket_source.get();
    source = std::move(socket_source);
  } else {
    auto trace = dart::trace::read_binary_file(options.trace_path);
    if (!trace.has_value()) {
      std::cerr << "dartd: cannot read trace " << options.trace_path << "\n";
      return 1;
    }
    dart::daemon::ReplaySourceConfig pacing;
    pacing.rate = options.rate;
    source = std::make_unique<dart::daemon::ReplaySource>(std::move(*trace),
                                                          pacing);
  }

  dart::daemon::DaemonConfig config =
      make_daemon_config(options.shards, options.epoch_interval);
#if defined(DART_TELEMETRY)
  dart::telemetry::Registry registry(config.shards);
  dart::telemetry::RuntimeMetrics metrics(registry);
  config.telemetry = &metrics;
#endif
  dart::daemon::EpochRunner runner(config);

  dart::daemon::QueryServer server(
      options.query_port,
      [&runner
#if defined(DART_TELEMETRY)
       ,
       &registry
#endif
  ](const std::string& path) -> std::string {
        if (path == "/healthz") return "ok\n";
        if (path == "/status") return render_status(runner.status());
        if (path == "/epoch") return runner.epoch_report();
        if (path == "/deterministic") {
          const std::string report = runner.final_report();
          return report.empty() ? runner.epoch_report() : report;
        }
        if (path == "/metrics") {
#if defined(DART_TELEMETRY)
          return dart::telemetry::to_prometheus(registry.snapshot());
#else
          return "error: built without DART_TELEMETRY\n";
#endif
        }
        return std::string();  // 404
      });
  if (!server.running()) {
    std::cerr << "dartd: cannot bind query port " << options.query_port
              << "\n";
    return 1;
  }

  if (!options.port_file.empty()) {
    // Atomic write: a scraper polling for this file never reads half a
    // port number. "<query_port> <ingest_port>"; ingest is 0 for replay.
    const std::string ports =
        std::to_string(server.port()) + " " +
        std::to_string(ingest_socket != nullptr ? ingest_socket->port() : 0) +
        "\n";
    if (!dart::telemetry::write_atomic(options.port_file, ports)) {
      std::cerr << "dartd: cannot write " << options.port_file << "\n";
      return 1;
    }
  }
  std::cerr << "dartd: serving queries on 127.0.0.1:" << server.port()
            << "\n";

  const std::string report =
      runner.run_cycle(*source, [] { return g_stop != 0; });

  if (!options.final_out.empty() &&
      !dart::telemetry::write_atomic(options.final_out, report)) {
    std::cerr << "dartd: cannot write " << options.final_out << "\n";
    return 1;
  }

  // End-of-input is not exit: stay up answering queries (the whole point
  // of the daemon) until the operator says stop.
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();
  std::cerr << "dartd: drained cleanly after "
            << runner.status().routed << " routed packets\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string command = argv[1];

  if (command == "gen") {
    std::uint64_t seed = 1;
    std::uint64_t connections = 400;
    std::uint64_t duration_s = 4;
    std::string out_path;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--seed" && i + 1 < argc) {
        seed = parse_u64(argv[++i]);
      } else if (arg == "--connections" && i + 1 < argc) {
        connections = parse_u64(argv[++i]);
      } else if (arg == "--duration-s" && i + 1 < argc) {
        duration_s = parse_u64(argv[++i]);
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else {
        print_usage(std::cerr);
        return 2;
      }
    }
    if (out_path.empty()) {
      print_usage(std::cerr);
      return 2;
    }
    return run_gen(seed, connections, duration_s, out_path);
  }

  if (command == "replay") {
    std::string trace_path;
    std::uint32_t shards = 2;
    std::uint64_t epoch_interval = 65536;
    std::string out_path;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--trace" && i + 1 < argc) {
        trace_path = argv[++i];
      } else if (arg == "--shards" && i + 1 < argc) {
        shards = static_cast<std::uint32_t>(parse_u64(argv[++i]));
      } else if (arg == "--epoch-interval" && i + 1 < argc) {
        epoch_interval = parse_u64(argv[++i]);
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else {
        print_usage(std::cerr);
        return 2;
      }
    }
    if (trace_path.empty()) {
      print_usage(std::cerr);
      return 2;
    }
    return run_replay(trace_path, shards, epoch_interval, out_path);
  }

  if (command == "run") {
    RunOptions options;
    bool have_source = false;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--trace" && i + 1 < argc) {
        options.trace_path = argv[++i];
        have_source = true;
      } else if (arg == "--rate" && i + 1 < argc) {
        options.rate = std::strtod(argv[++i], nullptr);
      } else if (arg == "--listen" && i + 1 < argc) {
        options.listen = true;
        options.listen_port = static_cast<std::uint16_t>(parse_u64(argv[++i]));
        have_source = true;
      } else if (arg == "--shards" && i + 1 < argc) {
        options.shards = static_cast<std::uint32_t>(parse_u64(argv[++i]));
      } else if (arg == "--epoch-interval" && i + 1 < argc) {
        options.epoch_interval = parse_u64(argv[++i]);
      } else if (arg == "--port" && i + 1 < argc) {
        options.query_port = static_cast<std::uint16_t>(parse_u64(argv[++i]));
      } else if (arg == "--port-file" && i + 1 < argc) {
        options.port_file = argv[++i];
      } else if (arg == "--final-out" && i + 1 < argc) {
        options.final_out = argv[++i];
      } else {
        print_usage(std::cerr);
        return 2;
      }
    }
    if (!have_source || (options.listen && !options.trace_path.empty())) {
      print_usage(std::cerr);
      return 2;
    }
    return run_daemon(options);
  }

  print_usage(std::cerr);
  return 2;
}
