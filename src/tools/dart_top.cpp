// dart-top: render live per-shard state of the sharded replay runtime from
// an exported telemetry snapshot (the Prometheus text files the runtime's
// exporter writes via telemetry::write_atomic).
//
//   dart-top render <file> [--check]          one-shot table
//   dart-top watch <file> [--interval-ms N]   re-render as the file changes
//                         [--iterations N]
//   dart-top demo [--shards N] [--seed S]     run a seeded campus workload
//                 [--out FILE] [--json FILE]  through the instrumented
//                 [--deterministic] [--check] runtime, export, and render
//
// --check verifies the accounting identity
//     processed + shed + abandoned + lost_to_crash == routed
// per shard and in aggregate; a violation exits nonzero, which is what the
// ctest entries assert. `demo` requires a DART_TELEMETRY build; `render`
// and `watch` work on any snapshot file regardless of build flavor.
// Exit codes: 0 ok, 1 identity violation / unreadable file, 2 usage error.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/snapshot_watch.hpp"

#if defined(DART_TELEMETRY)
#include "gen/workload.hpp"
#include "runtime/sharded_monitor.hpp"
#include "telemetry/runtime_metrics.hpp"
#endif

namespace {

using dart::telemetry::PromSample;

void print_usage(std::ostream& out) {
  out << "usage: dart-top <command> [options]\n"
         "\n"
         "  render <file> [--check]       render one snapshot and exit\n"
         "  watch <file>                  re-render periodically\n"
         "    --interval-ms N             poll interval (default 1000)\n"
         "    --iterations N              stop after N renders (0 = forever)\n"
         "  demo                          run an instrumented demo workload\n"
         "    --shards N                  worker shards (default 4)\n"
         "    --seed S                    workload seed (default 1)\n"
         "    --out FILE                  also write the Prometheus snapshot\n"
         "    --json FILE                 also write the JSON snapshot\n"
         "    --deterministic             export the deterministic tier only\n"
         "    --check                     verify the accounting identity\n";
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

double labeled_value(const std::vector<PromSample>& samples,
                     const std::string& name, const std::string& shard) {
  for (const PromSample& sample : samples) {
    if (sample.name == name && sample.labels.count("shard") != 0 &&
        sample.labels.at("shard") == shard) {
      return sample.value;
    }
  }
  return 0.0;
}

double quantile_value(const std::vector<PromSample>& samples,
                      const std::string& name, const std::string& quantile) {
  for (const PromSample& sample : samples) {
    if (sample.name == name && sample.labels.count("quantile") != 0 &&
        sample.labels.at("quantile") == quantile) {
      return sample.value;
    }
  }
  return 0.0;
}

std::set<std::string> shard_labels(const std::vector<PromSample>& samples) {
  // Sorted numerically so shard 10 renders after shard 9.
  std::set<std::string> raw;
  for (const PromSample& sample : samples) {
    const auto it = sample.labels.find("shard");
    if (it != sample.labels.end()) raw.insert(it->second);
  }
  return raw;
}

/// processed + shed + abandoned + lost_to_crash == routed, per shard and
/// merged. Returns true when the snapshot satisfies it everywhere.
bool check_identity(const std::vector<PromSample>& samples,
                    std::ostream& err) {
  bool ok = true;
  const double routed = prom_value(samples, "dart_routed_total");
  const double sum = prom_value(samples, "dart_processed_total") +
                     prom_value(samples, "dart_shed_total") +
                     prom_value(samples, "dart_abandoned_total") +
                     prom_value(samples, "dart_lost_to_crash_total");
  if (sum != routed) {
    err << "identity violated (aggregate): processed+shed+abandoned+lost = "
        << sum << " != routed = " << routed << "\n";
    ok = false;
  }
  for (const std::string& shard : shard_labels(samples)) {
    const double s_routed = labeled_value(samples, "dart_routed_total", shard);
    const double s_sum =
        labeled_value(samples, "dart_processed_total", shard) +
        labeled_value(samples, "dart_shed_total", shard) +
        labeled_value(samples, "dart_abandoned_total", shard) +
        labeled_value(samples, "dart_lost_to_crash_total", shard);
    if (s_sum != s_routed) {
      err << "identity violated (shard " << shard << "): " << s_sum
          << " != " << s_routed << "\n";
      ok = false;
    }
  }
  return ok;
}

void render(const std::vector<PromSample>& samples, std::ostream& out) {
  out << "dart-top — sharded runtime snapshot\n";
  const std::set<std::string> labels = shard_labels(samples);
  std::vector<std::string> shards(labels.begin(), labels.end());
  // Numeric order for display.
  std::sort(shards.begin(), shards.end(),
            [](const std::string& a, const std::string& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });

  std::printf("%-6s %12s %12s %10s %10s %10s %10s %8s\n", "shard", "routed",
              "processed", "shed", "abandoned", "lost", "batches", "ring");
  for (const std::string& shard : shards) {
    std::printf("%-6s %12.0f %12.0f %10.0f %10.0f %10.0f %10.0f %8.0f\n",
                shard.c_str(),
                labeled_value(samples, "dart_routed_total", shard),
                labeled_value(samples, "dart_processed_total", shard),
                labeled_value(samples, "dart_shed_total", shard),
                labeled_value(samples, "dart_abandoned_total", shard),
                labeled_value(samples, "dart_lost_to_crash_total", shard),
                labeled_value(samples, "dart_worker_batches_total", shard),
                labeled_value(samples, "dart_ring_occupancy", shard));
  }
  std::printf("%-6s %12.0f %12.0f %10.0f %10.0f %10.0f %10.0f %8s\n", "all",
              prom_value(samples, "dart_routed_total"),
              prom_value(samples, "dart_processed_total"),
              prom_value(samples, "dart_shed_total"),
              prom_value(samples, "dart_abandoned_total"),
              prom_value(samples, "dart_lost_to_crash_total"),
              prom_value(samples, "dart_worker_batches_total"), "-");

  const double batch_count =
      prom_value(samples, "dart_batch_latency_ns_count");
  if (batch_count > 0) {
    out << "batch latency (ns): p50="
        << quantile_value(samples, "dart_batch_latency_ns", "0.5")
        << " p90=" << quantile_value(samples, "dart_batch_latency_ns", "0.9")
        << " p99=" << quantile_value(samples, "dart_batch_latency_ns", "0.99")
        << " over " << batch_count << " batches\n";
  }
  const double commits =
      prom_value(samples, "dart_checkpoint_commits_total");
  if (commits > 0) {
    out << "checkpoints: " << commits << " committed, "
        << prom_value(samples, "dart_checkpoint_rejected_total")
        << " rejected, commit p99(ns)="
        << quantile_value(samples, "dart_commit_latency_ns", "0.99") << "\n";
  }
  const double samples_total = prom_value(samples, "dart_samples_total");
  out << "rtt samples: " << samples_total << "  recirculations: "
      << prom_value(samples, "dart_recirculations_total")
      << "  sheds(gov): "
      << prom_value(samples, "dart_governor_sheds_total")
      << "  backoffs: "
      << prom_value(samples, "dart_governor_backoffs_total") << "\n";
}

int render_file(const std::string& path, bool check) {
  std::string text;
  if (!read_file(path, text)) {
    std::cerr << "dart-top: cannot read " << path << "\n";
    return 1;
  }
  const std::vector<PromSample> samples =
      dart::telemetry::parse_prometheus(text);
  render(samples, std::cout);
  if (check && !check_identity(samples, std::cerr)) return 1;
  return 0;
}

int run_watch(const std::string& path, std::uint64_t interval_ms,
              std::uint64_t iterations) {
  using Event = dart::telemetry::SnapshotWatcher::Event;
  std::uint64_t rendered = 0;
  dart::telemetry::SnapshotWatcher watcher(path);
  for (;;) {
    std::vector<PromSample> samples;
    switch (watcher.poll(samples)) {
      case Event::kUnchanged:
        break;  // mtime/size signature unchanged: no read, no redraw
      case Event::kRendered:
        std::cout << "\033[2J\033[H";  // clear + home; harmless when piped
        render(samples, std::cout);
        std::cout.flush();
        ++rendered;
        if (iterations != 0 && rendered >= iterations) return 0;
        break;
      case Event::kParseError:
        // Already retried once inside poll(), and the watcher reports each
        // bad signature only once — no per-tick spam.
        std::cerr << "dart-top: snapshot did not parse (torn write?): "
                  << path << "\n";
        break;
      case Event::kUnreadable:
        std::cerr << "dart-top: cannot read " << path << "\n";
        break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

#if defined(DART_TELEMETRY)
int run_demo(std::uint32_t shards, std::uint64_t seed,
             const std::string& out_path, const std::string& json_path,
             bool deterministic, bool check) {
  dart::gen::CampusConfig workload;
  workload.seed = seed;
  workload.connections = 1500;
  workload.duration = dart::sec(6);
  const dart::trace::Trace trace = dart::gen::build_campus(workload);

  dart::telemetry::Registry registry(shards);
  dart::telemetry::RuntimeMetrics metrics(registry);

  dart::runtime::ShardedConfig config;
  config.shards = shards;
  config.telemetry = &metrics;
  dart::core::DartConfig dart_config;
  dart_config.leg = dart::core::LegMode::kBoth;
  dart::runtime::ShardedMonitor monitor(config, dart_config);
  monitor.process_all(trace.packets());
  monitor.finish();

  dart::telemetry::SnapshotOptions options;
  options.deterministic_only = deterministic;
  const dart::telemetry::TelemetrySnapshot snap = registry.snapshot(options);
  const std::string prom = dart::telemetry::to_prometheus(snap);
  if (!out_path.empty() &&
      !dart::telemetry::write_atomic(out_path, prom)) {
    std::cerr << "dart-top: cannot write " << out_path << "\n";
    return 1;
  }
  if (!json_path.empty() &&
      !dart::telemetry::write_atomic(json_path,
                                     dart::telemetry::to_json(snap))) {
    std::cerr << "dart-top: cannot write " << json_path << "\n";
    return 1;
  }
  const std::vector<PromSample> samples =
      dart::telemetry::parse_prometheus(prom);
  render(samples, std::cout);
  if (check && !check_identity(samples, std::cerr)) return 1;
  return 0;
}
#endif

std::uint64_t parse_u64(const char* text) {
  return static_cast<std::uint64_t>(std::strtoull(text, nullptr, 10));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string command = argv[1];

  if (command == "render") {
    if (argc < 3) {
      print_usage(std::cerr);
      return 2;
    }
    bool check = false;
    for (int i = 3; i < argc; ++i) {
      if (std::string(argv[i]) == "--check") check = true;
    }
    return render_file(argv[2], check);
  }

  if (command == "watch") {
    if (argc < 3) {
      print_usage(std::cerr);
      return 2;
    }
    std::uint64_t interval_ms = 1000;
    std::uint64_t iterations = 0;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--interval-ms" && i + 1 < argc) {
        interval_ms = parse_u64(argv[++i]);
      } else if (arg == "--iterations" && i + 1 < argc) {
        iterations = parse_u64(argv[++i]);
      } else {
        print_usage(std::cerr);
        return 2;
      }
    }
    return run_watch(argv[2], interval_ms == 0 ? 1 : interval_ms,
                     iterations);
  }

  if (command == "demo") {
#if defined(DART_TELEMETRY)
    std::uint32_t shards = 4;
    std::uint64_t seed = 1;
    std::string out_path;
    std::string json_path;
    bool deterministic = false;
    bool check = false;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--shards" && i + 1 < argc) {
        shards = static_cast<std::uint32_t>(parse_u64(argv[++i]));
      } else if (arg == "--seed" && i + 1 < argc) {
        seed = parse_u64(argv[++i]);
      } else if (arg == "--out" && i + 1 < argc) {
        out_path = argv[++i];
      } else if (arg == "--json" && i + 1 < argc) {
        json_path = argv[++i];
      } else if (arg == "--deterministic") {
        deterministic = true;
      } else if (arg == "--check") {
        check = true;
      } else {
        print_usage(std::cerr);
        return 2;
      }
    }
    return run_demo(shards == 0 ? 1 : shards, seed, out_path, json_path,
                    deterministic, check);
#else
    std::cerr << "dart-top: demo requires a DART_TELEMETRY=ON build\n";
    return 2;
#endif
  }

  print_usage(std::cerr);
  return 2;
}
