// dart-fleet: the fleet-scale vantage/collector pair (DESIGN.md §13).
//
//   dart-fleet vantage --id I --vantages M --spool DIR [workload options]
//       run one vantage process: replay vantage I's deterministic slice of
//       the campus workload and publish epoch-aligned snapshot frames.
//   dart-fleet collect --spool DIR --vantages M [--out FILE] [--check]
//       ingest every vantage stream (retry + quarantine + liveness
//       fencing) and emit the deterministic merged report.
//   dart-fleet check FILE
//       verify the extended accounting identity
//         processed + shed + abandoned + lost_to_crash + lost_to_vantage
//           == routed
//       per vantage and in aggregate inside a saved report.
//   dart-fleet demo --dir DIR [--vantages M] [--check] [fault options]
//       run a whole fleet in-process (serially) against a spool directory
//       and collect it — the ctest surface.
//
// Exporter fault flags (--fault-*) require a DART_FAULT_INJECTION build;
// in `vantage` mode a kill fault terminates the process with exit code 3
// so drivers can assert the crash actually happened. Exit codes: 0 ok,
// 1 check failure / collection error, 2 usage error, 3 killed by fault.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analytics/histogram.hpp"
#include "core/dart_monitor.hpp"
#include "fleet/collector.hpp"
#include "fleet/snapshot_sink.hpp"
#include "fleet/vantage_exporter.hpp"
#include "gen/workload.hpp"
#include "runtime/shard_router.hpp"
#include "runtime/sharded_monitor.hpp"
#include "telemetry/export.hpp"

#if defined(DART_FAULT_INJECTION)
#include "runtime/fault_injection.hpp"
#endif

namespace {

using dart::PacketRecord;
using dart::fleet::FleetCollector;

constexpr int kExitOk = 0;
constexpr int kExitFailure = 1;
constexpr int kExitUsage = 2;
constexpr int kExitKilled = 3;

/// Routing seed of the fleet-level workload partition — decorrelated from
/// both the monitors' table hashes and the intra-process shard router.
constexpr std::uint64_t kFleetRouteSeed = 0xDA27'000F;

void print_usage(std::ostream& out) {
  out << "usage: dart-fleet <command> [options]\n"
         "\n"
         "  vantage                     run one vantage process\n"
         "    --id I                    vantage id in [0, --vantages)\n"
         "    --vantages M              fleet size (default 4)\n"
         "    --spool DIR               spool directory to publish into\n"
         "    --name NAME               vantage name (default campus-<I>)\n"
         "    --seed S                  workload seed (default 42)\n"
         "    --connections N           campus connections (default 2000)\n"
         "    --duration-s T            campus duration seconds (default 6)\n"
         "    --epochs E                epoch barriers to publish (default 4)\n"
         "    --shards K                worker shards; 1 = single monitor\n"
         "                              with checkpoint frames (default 1)\n"
         "    --incarnation N           restart incarnation tag: publish\n"
         "                              slots never collide with an earlier\n"
         "                              incarnation's files (default 0)\n"
         "    --fault-kill-after N      crash before publishing frame N\n"
         "    --fault-stall F:C:MS      stall frames [F, F+C) by MS ms\n"
         "    --fault-truncate S[:K]    deliver frame seq S torn at K bytes\n"
         "                              (default 40)\n"
         "    --fault-duplicate S       deliver frame seq S twice\n"
         "    --fault-reorder S         deliver frame seq S after its\n"
         "                              successor\n"
         "    --fault-skew-offset K     epoch headers skewed by constant K\n"
         "                              (signed)\n"
         "    --fault-skew-drift D      epoch headers drift by D per epoch\n"
         "                              (signed)\n"
         "    --fault-epoch-lag N       epoch headers lag N barriers behind\n"
         "  collect                     merge vantage streams\n"
         "    --spool DIR --vantages M\n"
         "    --out FILE                write the report atomically\n"
         "    --check                   verify the extended identity\n"
         "    --fence-after N           polls without progress before a\n"
         "                              vantage is fenced (default 8)\n"
         "    --gap-grace N             polls a sequence gap stays open\n"
         "                              (default 3)\n"
         "    --skew-grace N            epochs a claimed barrier may sit\n"
         "                              from the cursor-derived one before\n"
         "                              quarantine (default 2)\n"
         "    --skew-out FILE           write the skew diagnostics report\n"
         "    --max-attempts N          poll budget (default 64)\n"
         "    --poll-base-ms N          retry backoff base (default 20)\n"
         "    --poll-max-ms N           retry backoff cap (default 500)\n"
         "    --retry-seed S            jitter seed (default 0xF1EE7)\n"
         "    --quiet                   suppress the report on stdout\n"
         "  check FILE                  verify a saved report\n"
         "  demo                        in-process fleet + collect\n"
         "    --dir DIR                 spool directory (required)\n"
         "    --vantages M --seed S --connections N --epochs E\n"
         "    --fault-vantage I         vantage the fault flags apply to\n"
         "                              (default 1)\n"
         "    --out FILE --skew-out FILE --skew-grace N --check --quiet\n"
         "    (fault flags as for vantage)\n";
}

bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

bool parse_i64(const std::string& text, std::int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

struct FaultOptions {
  bool any = false;
  std::uint64_t kill_after = ~std::uint64_t{0};
  bool has_stall = false;
  std::uint64_t stall_first = 0;
  std::uint64_t stall_count = 0;
  std::uint64_t stall_ms = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> truncate;
  std::vector<std::uint64_t> duplicate;
  std::vector<std::uint64_t> reorder;
  bool has_skew = false;
  std::int64_t skew_offset = 0;
  std::int64_t skew_drift = 0;
  std::uint64_t epoch_lag = 0;
};

struct VantageOptions {
  std::uint64_t id = 0;
  std::uint64_t vantages = 4;
  std::string spool;
  std::string name;
  std::uint64_t seed = 42;
  std::uint64_t connections = 2000;
  std::uint64_t duration_s = 6;
  std::uint64_t epochs = 4;
  std::uint64_t shards = 1;
  std::uint64_t incarnation = 0;
  FaultOptions faults;
  /// Demo mode: a kill fault ends this vantage's loop instead of
  /// terminating the process.
  bool in_process = false;
};

/// Parse one --fault-* flag (shared by vantage and demo). Returns 0 when
/// `arg` was not a fault flag, 1 when consumed, -1 on a malformed value.
int parse_fault_flag(const std::string& arg, const std::string& value,
                     bool has_value, FaultOptions* faults) {
  const auto split = [](const std::string& text, char sep) {
    std::vector<std::string> parts;
    std::stringstream stream(text);
    std::string part;
    while (std::getline(stream, part, sep)) parts.push_back(part);
    return parts;
  };
  if (arg == "--fault-kill-after") {
    if (!has_value || !parse_u64(value, &faults->kill_after)) return -1;
    faults->any = true;
    return 1;
  }
  if (arg == "--fault-stall") {
    const auto parts = split(value, ':');
    if (!has_value || parts.size() != 3 ||
        !parse_u64(parts[0], &faults->stall_first) ||
        !parse_u64(parts[1], &faults->stall_count) ||
        !parse_u64(parts[2], &faults->stall_ms)) {
      return -1;
    }
    faults->has_stall = true;
    faults->any = true;
    return 1;
  }
  if (arg == "--fault-truncate") {
    const auto parts = split(value, ':');
    std::uint64_t seq = 0;
    std::uint64_t keep = 40;
    if (!has_value || parts.empty() || parts.size() > 2 ||
        !parse_u64(parts[0], &seq) ||
        (parts.size() == 2 && !parse_u64(parts[1], &keep))) {
      return -1;
    }
    faults->truncate.emplace_back(seq, keep);
    faults->any = true;
    return 1;
  }
  if (arg == "--fault-duplicate" || arg == "--fault-reorder") {
    std::uint64_t seq = 0;
    if (!has_value || !parse_u64(value, &seq)) return -1;
    (arg == "--fault-duplicate" ? faults->duplicate : faults->reorder)
        .push_back(seq);
    faults->any = true;
    return 1;
  }
  if (arg == "--fault-skew-offset" || arg == "--fault-skew-drift") {
    std::int64_t amount = 0;
    if (!has_value || !parse_i64(value, &amount)) return -1;
    (arg == "--fault-skew-offset" ? faults->skew_offset
                                  : faults->skew_drift) = amount;
    faults->has_skew = true;
    faults->any = true;
    return 1;
  }
  if (arg == "--fault-epoch-lag") {
    if (!has_value || !parse_u64(value, &faults->epoch_lag)) return -1;
    faults->has_skew = true;
    faults->any = true;
    return 1;
  }
  return 0;
}

#if defined(DART_FAULT_INJECTION)
void apply_faults(const FaultOptions& options, dart::runtime::FaultPlan& plan) {
  if (options.kill_after != ~std::uint64_t{0}) {
    plan.exporter_kill(options.kill_after);
  }
  if (options.has_stall) {
    plan.exporter_stall(options.stall_first, options.stall_count,
                        options.stall_ms * 1'000'000);
  }
  for (const auto& [seq, keep] : options.truncate) {
    plan.exporter_truncate(seq, keep);
  }
  for (const std::uint64_t seq : options.duplicate) {
    plan.exporter_duplicate(seq);
  }
  for (const std::uint64_t seq : options.reorder) plan.exporter_reorder(seq);
  if (options.has_skew) {
    plan.exporter_epoch_skew(options.skew_offset, options.skew_drift,
                             options.epoch_lag);
  }
}
#endif

/// Vantage I's deterministic slice: the packets of the full fixed-seed
/// campus trace whose canonical 4-tuple routes to I out of M — the same
/// flow-affinity partition the intra-process router uses, one level up.
/// Every vantage derives the identical full trace, so the fleet's merged
/// denominator is exact without any coordination.
std::vector<PacketRecord> build_slice(const VantageOptions& options) {
  dart::gen::CampusConfig config;
  config.seed = options.seed;
  config.connections = static_cast<std::uint32_t>(options.connections);
  config.duration = dart::sec(options.duration_s);
  const dart::trace::Trace trace = dart::gen::build_campus(config);
  const dart::runtime::ShardRouter partition(
      static_cast<std::uint32_t>(options.vantages), kFleetRouteSeed);
  std::vector<PacketRecord> slice;
  for (const PacketRecord& packet : trace.packets()) {
    if (partition.route(packet.tuple) == options.id) {
      slice.push_back(packet);
    }
  }
  return slice;
}

int run_vantage_single(const std::vector<PacketRecord>& slice,
                       dart::fleet::VantageExporter& exporter,
                       std::uint64_t interval) {
  // Cumulative RTT distribution, fed straight off the sample callback:
  // every state frame carries the histogram-so-far, so the collector's
  // fleet-wide quantiles stay exact whichever frame it last accepted.
  dart::analytics::LogHistogram rtt;
  dart::core::DartMonitor monitor(
      dart::core::DartConfig{},
      [&rtt](const dart::core::RttSample& sample) { rtt.add(sample.rtt()); });
  std::uint64_t epoch = 0;
  for (std::size_t i = 0; i < slice.size(); ++i) {
    monitor.process(slice[i]);
    const std::uint64_t cursor = i + 1;
    if (cursor % interval != 0) continue;
    ++epoch;
    const dart::core::CheckpointImage image = monitor.snapshot(
        dart::core::SnapshotMeta{epoch, cursor, monitor.stats().samples});
    const dart::core::DartStats stats = monitor.stats();
    const std::string telemetry = dart::fleet::render_vantage_telemetry(
        std::span(&stats, 1), std::span(&cursor, 1));
    exporter.publish_epoch(epoch, cursor, &image, telemetry, &rtt);
    if (exporter.killed()) return kExitKilled;
  }
  const std::uint64_t cursor = slice.size();
  const dart::core::CheckpointImage image = monitor.snapshot(
      dart::core::SnapshotMeta{epoch + 1, cursor, monitor.stats().samples});
  const dart::core::DartStats stats = monitor.stats();
  const std::string telemetry = dart::fleet::render_vantage_telemetry(
      std::span(&stats, 1), std::span(&cursor, 1));
  exporter.publish_final(epoch + 1, cursor, &image, telemetry, &rtt);
  return exporter.killed() ? kExitKilled : kExitOk;
}

int run_vantage_sharded(const VantageOptions& options,
                        const std::vector<PacketRecord>& slice,
                        dart::fleet::VantageExporter& exporter,
                        std::uint64_t interval) {
  dart::runtime::ShardedConfig config;
  config.shards = static_cast<std::uint32_t>(options.shards);
  config.epoch_interval_packets = interval;
  config.on_epoch = [&exporter](std::uint64_t epoch, std::uint64_t routed) {
    // Router-thread barrier: progress-only heartbeats; the cumulative
    // state frame comes after quiesce, when the counters are settled.
    exporter.publish_heartbeat(epoch, routed);
  };
  dart::runtime::ShardedMonitor monitor(config, dart::core::DartConfig{});
  for (const PacketRecord& packet : slice) {
    monitor.process(packet);
    if (exporter.killed()) return kExitKilled;
  }
  monitor.finish();
  std::vector<dart::core::DartStats> per_shard;
  std::vector<std::uint64_t> routed_per_shard;
  for (std::uint32_t shard = 0; shard < monitor.shards(); ++shard) {
    const dart::core::DartStats stats = monitor.shard_stats(shard);
    per_shard.push_back(stats);
    routed_per_shard.push_back(
        stats.packets_processed + stats.runtime.shed_packets +
        stats.runtime.abandoned_packets + stats.runtime.lost_to_crash);
  }
  // The sharded runtime only settles its sample stream at finish(), so the
  // histogram rides the final frame (heartbeats at the barriers carry no
  // state anyway).
  dart::analytics::LogHistogram rtt;
  for (const dart::core::RttSample& sample : monitor.merged_samples()) {
    rtt.add(sample.rtt());
  }
  const std::uint64_t epochs_fired = slice.size() / interval;
  exporter.publish_final(
      epochs_fired + 1, slice.size(), nullptr,
      dart::fleet::render_vantage_telemetry(per_shard, routed_per_shard),
      &rtt);
  return exporter.killed() ? kExitKilled : kExitOk;
}

int run_vantage(const VantageOptions& options,
                dart::fleet::SnapshotSink& sink) {
  const std::vector<PacketRecord> slice = build_slice(options);
  const std::uint64_t interval =
      std::max<std::uint64_t>(1, options.epochs == 0
                                     ? slice.size() + 1
                                     : slice.size() / options.epochs);

  dart::fleet::VantageExporterConfig config;
  config.vantage = options.id;
  config.name = options.name.empty() ? "campus-" + std::to_string(options.id)
                                     : options.name;
  config.expected_routed = slice.size();
  config.planned_epochs = options.epochs;
  config.epoch_interval = interval;
  dart::fleet::VantageExporter exporter(config, sink);

#if defined(DART_FAULT_INJECTION)
  dart::runtime::FaultPlan plan(options.seed);
  if (options.faults.any) {
    apply_faults(options.faults, plan);
    exporter.set_fault_plan(&plan);
  }
#else
  if (options.faults.any) {
    std::cerr << "dart-fleet: --fault-* flags require a "
                 "DART_FAULT_INJECTION build\n";
    return kExitUsage;
  }
#endif

  exporter.publish_manifest();
  if (exporter.killed()) return kExitKilled;
  const int code =
      options.shards > 1
          ? run_vantage_sharded(options, slice, exporter, interval)
          : run_vantage_single(slice, exporter, interval);
  return code;
}

int cmd_vantage(const VantageOptions& options) {
  if (options.spool.empty() || options.vantages == 0 ||
      options.id >= options.vantages) {
    std::cerr << "dart-fleet vantage: need --spool and --id < --vantages\n";
    return kExitUsage;
  }
  dart::fleet::SpoolSink sink(options.spool, options.incarnation);
  const int code = run_vantage(options, sink);
  if (code == kExitKilled) {
    // The kill fault models a crash: stop the process abruptly so any
    // worker threads die with it, exactly like the real failure.
    std::_Exit(kExitKilled);
  }
  return code;
}

struct CollectOptions {
  std::string spool;
  std::uint64_t vantages = 4;
  std::string out;
  std::string skew_out;
  bool check = false;
  bool quiet = false;
  dart::fleet::CollectorConfig config;
};

int cmd_collect(CollectOptions options) {
  if (options.spool.empty() || options.vantages == 0) {
    std::cerr << "dart-fleet collect: need --spool and --vantages > 0\n";
    return kExitUsage;
  }
  options.config.spool_dir = options.spool;
  options.config.vantages = options.vantages;
  FleetCollector collector(std::move(options.config));
  const std::uint64_t polls = collector.run();
  const std::string report = collector.report_text();
  if (!options.out.empty() &&
      !dart::telemetry::write_atomic(options.out, report)) {
    std::cerr << "dart-fleet collect: cannot write " << options.out << "\n";
    return kExitFailure;
  }
  if (!options.skew_out.empty() &&
      !dart::telemetry::write_atomic(options.skew_out,
                                     collector.skew_report_text())) {
    std::cerr << "dart-fleet collect: cannot write " << options.skew_out
              << "\n";
    return kExitFailure;
  }
  if (!options.quiet) std::cout << report;
  std::cerr << "dart-fleet: collected in " << polls << " polls, "
            << collector.quarantined().size() << " frames quarantined\n";
  if (options.check) {
    std::string error;
    if (!dart::fleet::check_fleet_identity(report, &error)) {
      std::cerr << "dart-fleet collect --check: " << error << "\n";
      return kExitFailure;
    }
    std::cerr << "dart-fleet: extended identity holds\n";
  }
  return kExitOk;
}

int cmd_check(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "dart-fleet check: cannot read " << path << "\n";
    return kExitFailure;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!dart::fleet::check_fleet_identity(buffer.str(), &error)) {
    std::cerr << "dart-fleet check: " << error << "\n";
    return kExitFailure;
  }
  std::cout << "dart-fleet check: extended identity holds\n";
  return kExitOk;
}

struct DemoOptions {
  std::string dir;
  std::uint64_t vantages = 4;
  std::uint64_t seed = 42;
  std::uint64_t connections = 2000;
  std::uint64_t duration_s = 6;
  std::uint64_t epochs = 4;
  std::uint64_t fault_vantage = 1;
  std::uint64_t skew_grace = 2;
  FaultOptions faults;
  std::string out;
  std::string skew_out;
  bool check = false;
  bool quiet = false;
};

int cmd_demo(const DemoOptions& options) {
  if (options.dir.empty() || options.vantages == 0) {
    std::cerr << "dart-fleet demo: need --dir and --vantages > 0\n";
    return kExitUsage;
  }
#if !defined(DART_FAULT_INJECTION)
  if (options.faults.any) {
    std::cerr << "dart-fleet: --fault-* flags require a "
                 "DART_FAULT_INJECTION build\n";
    return kExitUsage;
  }
#endif
  dart::fleet::SpoolSink sink(options.dir);
  for (std::uint64_t id = 0; id < options.vantages; ++id) {
    VantageOptions vantage;
    vantage.id = id;
    vantage.vantages = options.vantages;
    vantage.seed = options.seed;
    vantage.connections = options.connections;
    vantage.duration_s = options.duration_s;
    vantage.epochs = options.epochs;
    vantage.in_process = true;
    if (options.faults.any && id == options.fault_vantage % options.vantages) {
      vantage.faults = options.faults;
    }
    const int code = run_vantage(vantage, sink);
    if (code == kExitUsage) return code;
    // kExitKilled just ends this vantage's stream early (in-process
    // "crash"); the collector must fence it and account the loss.
  }
  CollectOptions collect;
  collect.spool = options.dir;
  collect.vantages = options.vantages;
  collect.out = options.out;
  collect.skew_out = options.skew_out;
  collect.check = options.check;
  collect.quiet = options.quiet;
  collect.config.skew_grace_epochs = options.skew_grace;
  return cmd_collect(std::move(collect));
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    print_usage(std::cerr);
    return kExitUsage;
  }
  const std::string& command = args[0];

  const auto value_of = [&args](std::size_t i) {
    return i + 1 < args.size() ? args[i + 1] : std::string();
  };
  const auto has_value = [&args](std::size_t i) {
    return i + 1 < args.size();
  };

  if (command == "vantage") {
    VantageOptions options;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::string& arg = args[i];
      const int fault =
          parse_fault_flag(arg, value_of(i), has_value(i), &options.faults);
      if (fault == 1) {
        ++i;
        continue;
      }
      if (fault == -1) {
        std::cerr << "dart-fleet vantage: malformed " << arg << " value\n";
        return kExitUsage;
      }
      std::uint64_t* number = nullptr;
      if (arg == "--id") number = &options.id;
      else if (arg == "--vantages") number = &options.vantages;
      else if (arg == "--seed") number = &options.seed;
      else if (arg == "--connections") number = &options.connections;
      else if (arg == "--duration-s") number = &options.duration_s;
      else if (arg == "--epochs") number = &options.epochs;
      else if (arg == "--shards") number = &options.shards;
      else if (arg == "--incarnation") number = &options.incarnation;
      if (number != nullptr) {
        if (!has_value(i) || !parse_u64(args[++i], number)) {
          std::cerr << "dart-fleet vantage: bad value for " << arg << "\n";
          return kExitUsage;
        }
        continue;
      }
      if (arg == "--spool" && has_value(i)) {
        options.spool = args[++i];
      } else if (arg == "--name" && has_value(i)) {
        options.name = args[++i];
      } else {
        std::cerr << "dart-fleet vantage: unknown option " << arg << "\n";
        return kExitUsage;
      }
    }
    return cmd_vantage(options);
  }

  if (command == "collect") {
    CollectOptions options;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::string& arg = args[i];
      std::uint64_t* number = nullptr;
      std::uint64_t poll_base_ms = 0;
      std::uint64_t poll_max_ms = 0;
      if (arg == "--vantages") number = &options.vantages;
      else if (arg == "--fence-after")
        number = &options.config.fence_after_attempts;
      else if (arg == "--gap-grace")
        number = &options.config.gap_grace_attempts;
      else if (arg == "--skew-grace")
        number = &options.config.skew_grace_epochs;
      else if (arg == "--max-attempts") number = &options.config.max_attempts;
      else if (arg == "--retry-seed") number = &options.config.retry.seed;
      else if (arg == "--poll-base-ms") number = &poll_base_ms;
      else if (arg == "--poll-max-ms") number = &poll_max_ms;
      if (number != nullptr) {
        if (!has_value(i) || !parse_u64(args[++i], number)) {
          std::cerr << "dart-fleet collect: bad value for " << arg << "\n";
          return kExitUsage;
        }
        if (poll_base_ms != 0) {
          options.config.retry.base_delay_ns = poll_base_ms * 1'000'000;
        }
        if (poll_max_ms != 0) {
          options.config.retry.max_delay_ns = poll_max_ms * 1'000'000;
        }
        continue;
      }
      if (arg == "--spool" && has_value(i)) {
        options.spool = args[++i];
      } else if (arg == "--out" && has_value(i)) {
        options.out = args[++i];
      } else if (arg == "--skew-out" && has_value(i)) {
        options.skew_out = args[++i];
      } else if (arg == "--check") {
        options.check = true;
      } else if (arg == "--quiet") {
        options.quiet = true;
      } else {
        std::cerr << "dart-fleet collect: unknown option " << arg << "\n";
        return kExitUsage;
      }
    }
    return cmd_collect(std::move(options));
  }

  if (command == "check") {
    if (args.size() != 2) {
      print_usage(std::cerr);
      return kExitUsage;
    }
    return cmd_check(args[1]);
  }

  if (command == "demo") {
    DemoOptions options;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::string& arg = args[i];
      const int fault =
          parse_fault_flag(arg, value_of(i), has_value(i), &options.faults);
      if (fault == 1) {
        ++i;
        continue;
      }
      if (fault == -1) {
        std::cerr << "dart-fleet demo: malformed " << arg << " value\n";
        return kExitUsage;
      }
      std::uint64_t* number = nullptr;
      if (arg == "--vantages") number = &options.vantages;
      else if (arg == "--seed") number = &options.seed;
      else if (arg == "--connections") number = &options.connections;
      else if (arg == "--duration-s") number = &options.duration_s;
      else if (arg == "--epochs") number = &options.epochs;
      else if (arg == "--fault-vantage") number = &options.fault_vantage;
      else if (arg == "--skew-grace") number = &options.skew_grace;
      if (number != nullptr) {
        if (!has_value(i) || !parse_u64(args[++i], number)) {
          std::cerr << "dart-fleet demo: bad value for " << arg << "\n";
          return kExitUsage;
        }
        continue;
      }
      if (arg == "--dir" && has_value(i)) {
        options.dir = args[++i];
      } else if (arg == "--out" && has_value(i)) {
        options.out = args[++i];
      } else if (arg == "--skew-out" && has_value(i)) {
        options.skew_out = args[++i];
      } else if (arg == "--check") {
        options.check = true;
      } else if (arg == "--quiet") {
        options.quiet = true;
      } else {
        std::cerr << "dart-fleet demo: unknown option " << arg << "\n";
        return kExitUsage;
      }
    }
    return cmd_demo(options);
  }

  print_usage(command == "--help" || command == "-h" ? std::cout
                                                     : std::cerr);
  return command == "--help" || command == "-h" ? kExitOk : kExitUsage;
}
