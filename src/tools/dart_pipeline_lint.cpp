// dart-pipeline-lint: ahead-of-time feasibility check of a Dart
// deployment against a Tofino-style target, playing the role of the
// hardware compiler's constraint pass (Section 4/5 and Table 1 of the
// paper). Prints a placement report and rule-coded diagnostics; exits 0
// when the configuration is feasible, 1 when it is not, 2 on usage error.
//
//   dart-pipeline-lint --target tofino1                 # paper defaults
//   dart-pipeline-lint --target tofino1 --pt-stages 4   # rejected: stages
//   dart-pipeline-lint --target tofino1 --pt-stages 4 --split   # feasible
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "dataplane/resource_model.hpp"
#include "dataplane/verify/checker.hpp"
#include "dataplane/verify/pipeline_program.hpp"
#include "dataplane/verify/static_checks.hpp"

namespace {

using dart::dataplane::DartLayout;
using dart::dataplane::TargetProfile;
using dart::dataplane::verify::CheckReport;
using dart::dataplane::verify::MonitorShape;
using dart::dataplane::verify::Rule;

void print_usage(std::ostream& out) {
  out << "usage: dart-pipeline-lint [options]\n"
         "\n"
         "Target selection:\n"
         "  --target tofino1|tofino2   chip profile (default tofino1)\n"
         "  --split                    span ingress+egress (Tofino1\n"
         "                             prototype deployment)\n"
         "\n"
         "Deployment knobs (defaults are the paper's configuration):\n"
         "  --rt-slots N               Range Tracker slots (default 65536)\n"
         "  --pt-slots N               Packet Tracker slots (default "
         "131072)\n"
         "  --pt-stages N              Packet Tracker stages (default 1)\n"
         "  --recirc N                 per-insertion recirculation budget\n"
         "                             (default 1)\n"
         "  --flow-rules N             TCAM flow-selection rules (default "
         "1024)\n"
         "  --both-legs                monitor both path legs (Section 5)\n"
         "  --shadow-rt                Section 7 shadow Range Tracker\n"
         "  --ipv6                     36-byte flow keys instead of 12\n"
         "  --register-bits N          stateful register width (default "
         "32)\n"
         "  --no-flow-filter           drop the operator flow filter\n"
         "  --no-payload-lut           compute payload size arithmetically\n"
         "  --extra-table NAME         declare NAME without accessing it\n"
         "                             (models a dead-table generator bug;\n"
         "                             rejected by DPL008)\n"
         "\n"
         "Other:\n"
         "  --quiet                    print diagnostics only, no report\n"
         "  --list-rules               describe the checker rules and exit\n"
         "  --help                     this text\n";
}

void print_rules(std::ostream& out) {
  const Rule rules[] = {
      Rule::kConfig,        Rule::kSingleAccessPerPass,
      Rule::kRmwSingleStage, Rule::kStagePlacement,
      Rule::kStageBudget,   Rule::kRecirculation,
      Rule::kRegisterWidth, Rule::kMemoryBudget,
      Rule::kDeadTable,
  };
  for (const Rule rule : rules) {
    out << dart::dataplane::verify::rule_code(rule) << "  "
        << dart::dataplane::verify::rule_name(rule) << "\n";
  }
}

bool parse_u32(const std::string& text, std::uint32_t& out) {
  try {
    const unsigned long long value = std::stoull(text);
    if (value > 0xFFFFFFFFull) return false;
    out = static_cast<std::uint32_t>(value);
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  try {
    out = std::stoull(text);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  DartLayout layout;
  MonitorShape shape;
  TargetProfile target = dart::dataplane::tofino1_profile();
  std::vector<std::string> extra_tables;
  bool quiet = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&](std::string& out) -> bool {
      if (i + 1 >= args.size()) {
        std::cerr << "error: " << arg << " needs a value\n";
        return false;
      }
      out = args[++i];
      return true;
    };
    std::string v;
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--list-rules") {
      print_rules(std::cout);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--split") {
      shape.split_ingress_egress = true;
    } else if (arg == "--both-legs") {
      shape.both_legs = true;
    } else if (arg == "--shadow-rt") {
      shape.shadow_rt = true;
    } else if (arg == "--ipv6") {
      shape.flow_key_bytes = 36;  // v6 addresses + ports
    } else if (arg == "--no-flow-filter") {
      shape.use_flow_filter = false;
    } else if (arg == "--no-payload-lut") {
      shape.use_payload_lut = false;
    } else if (arg == "--target") {
      if (!value(v)) return 2;
      if (v == "tofino1") {
        target = dart::dataplane::tofino1_profile();
      } else if (v == "tofino2") {
        target = dart::dataplane::tofino2_profile();
      } else {
        std::cerr << "error: unknown target '" << v << "'\n";
        return 2;
      }
    } else if (arg == "--rt-slots") {
      std::uint64_t n = 0;
      if (!value(v) || !parse_u64(v, n)) return 2;
      layout.rt_slots = static_cast<std::size_t>(n);
    } else if (arg == "--pt-slots") {
      std::uint64_t n = 0;
      if (!value(v) || !parse_u64(v, n)) return 2;
      layout.pt_slots = static_cast<std::size_t>(n);
    } else if (arg == "--pt-stages") {
      if (!value(v) || !parse_u32(v, shape.pt_stages)) return 2;
    } else if (arg == "--recirc") {
      if (!value(v) || !parse_u32(v, shape.max_recirculations)) return 2;
    } else if (arg == "--flow-rules") {
      if (!value(v) || !parse_u32(v, layout.flow_filter_rules)) return 2;
    } else if (arg == "--register-bits") {
      if (!value(v) || !parse_u32(v, shape.register_bits)) return 2;
    } else if (arg == "--extra-table") {
      if (!value(v)) return 2;
      extra_tables.push_back(v);
    } else {
      std::cerr << "error: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    }
  }

  const CheckReport report = dart::dataplane::verify::check_deployment(
      layout, shape, target, extra_tables);
  if (quiet) {
    const std::string diags =
        dart::dataplane::verify::format_diagnostics(report.diagnostics);
    if (!diags.empty()) std::cout << diags << "\n";
    std::cout << (report.feasible() ? "FEASIBLE" : "INFEASIBLE") << "\n";
  } else {
    std::cout << report.to_string();
  }
  return report.feasible() ? 0 : 1;
}
