// dart-ckpt: inspect and verify Dart checkpoint images (the recovery
// artifacts the supervised shard runtime cuts at epoch barriers).
//
//   dart-ckpt inspect <file>    print header, cursors, CRC and sections
//   dart-ckpt verify <file>     deep-validate; exit 0 iff fully restorable
//   dart-ckpt make-demo <file>  cut a deterministic demo image, optionally
//                               damaging it (the ctest reject matrix)
//
// verify goes beyond envelope checks: it rebuilds a monitor from the
// image's own config section and performs a real restore, so field-level
// damage hiding behind a valid CRC is still caught. Exit codes: 0 valid,
// 1 damaged, 2 usage error.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/dart_monitor.hpp"
#include "core/flow_filter.hpp"
#include "core/stats.hpp"
#include "gen/workload.hpp"

namespace {

using dart::core::CheckpointError;
using dart::core::CheckpointImage;
using dart::core::CheckpointInfo;
using dart::core::CheckpointSection;
using dart::core::CheckpointSectionInfo;

void print_usage(std::ostream& out) {
  out << "usage: dart-ckpt <command> [options]\n"
         "\n"
         "  inspect <file>     print header, cursors, CRC and section map\n"
         "  verify <file>      deep-validate the image (envelope + full\n"
         "                     restore into a monitor built from the\n"
         "                     image's config section); exit 0 iff valid\n"
         "  make-demo <file>   write a deterministic demo checkpoint\n"
         "    --flip-crc       corrupt the stored CRC\n"
         "    --truncate N     keep only the first N bytes\n"
         "    --corrupt-body   flip a byte inside the stats section\n"
         "    --reseal         recompute the CRC after damaging the body\n"
         "                     (damage then only detectable by verify)\n";
}

const char* section_name(std::uint32_t id) {
  switch (static_cast<CheckpointSection>(id)) {
    case CheckpointSection::kConfig: return "config";
    case CheckpointSection::kStats: return "stats";
    case CheckpointSection::kRangeTracker: return "range-tracker";
    case CheckpointSection::kPacketTracker: return "packet-tracker";
    case CheckpointSection::kShadowRt: return "shadow-rt";
    case CheckpointSection::kShadowBacklog: return "shadow-backlog";
    case CheckpointSection::kFlowFilter: return "flow-filter";
  }
  return "unknown";
}

/// Rebuild a monitor from the image's own config section and restore into
/// it. Returns the first error anywhere in the chain.
CheckpointError deep_verify(const CheckpointImage& image) {
  dart::core::DartConfig config;
  if (const CheckpointError err = dart::core::read_config(image, &config)) {
    return err;
  }
  dart::core::DartMonitor monitor(config,
                                  [](const dart::core::RttSample&) {});
  // If the image carries a flow filter, install an identical one: filter
  // presence is part of the monitor shape restore() insists on.
  CheckpointInfo info;
  if (const CheckpointError err = dart::core::read_info(image, &info)) {
    return err;
  }
  dart::core::FlowFilter filter;
  bool has_filter = false;
  for (const CheckpointSectionInfo& section : info.sections) {
    if (section.id !=
        static_cast<std::uint32_t>(CheckpointSection::kFlowFilter)) {
      continue;
    }
    dart::core::CheckpointReader reader(
        std::span(image.bytes).subspan(section.offset, section.length),
        section.offset);
    if (const CheckpointError err = filter.restore(reader)) return err;
    has_filter = true;
    break;
  }
  if (has_filter) monitor.set_flow_filter(&filter);
  return monitor.restore(image);
}

int cmd_inspect(const std::string& path) {
  CheckpointImage image;
  if (const CheckpointError err =
          dart::core::load_checkpoint(path, &image)) {
    std::cerr << "dart-ckpt: " << path << ": " << err.to_string() << "\n";
    return 1;
  }
  CheckpointInfo info;
  const CheckpointError err = dart::core::read_info(image, &info);
  std::cout << "file            " << path << "\n"
            << "size            " << image.bytes.size() << " bytes\n"
            << "version         " << info.version << "\n"
            << "epoch           " << info.meta.epoch << "\n"
            << "cursor          " << info.meta.cursor << "\n"
            << "sample-cursor   " << info.meta.sample_cursor << "\n";
  std::cout << "crc             stored=" << std::hex << std::showbase
            << info.stored_crc << " computed=" << info.computed_crc
            << std::dec << std::noshowbase
            << (info.stored_crc == info.computed_crc ? " (match)"
                                                     : " (MISMATCH)")
            << "\n";
  std::cout << "sections        " << info.sections.size() << "\n";
  for (const CheckpointSectionInfo& section : info.sections) {
    std::cout << "  id " << section.id << "  " << section_name(section.id)
              << "  offset " << section.offset << "  length "
              << section.length << "\n";
  }
  if (err) {
    std::cout << "status          DAMAGED: " << err.to_string() << "\n";
    return 1;
  }
  std::cout << "status          OK (envelope)\n";
  return 0;
}

/// Attribute a deep-restore failure to the framed section that contains
/// the damaged byte. Each section owns its 12-byte framing header (u32 id
/// + u64 length) plus its payload; offsets below the image header fall in
/// the envelope. Best-effort: an unreadable section map prints nothing.
void describe_failure_site(const CheckpointImage& image,
                           const CheckpointError& err, std::ostream& out) {
  if (err.offset == 0) return;  // offsetless errors, e.g. I/O
  if (err.offset < dart::core::kCheckpointHeaderBytes) {
    out << " [image header, byte " << err.offset << "]";
    return;
  }
  CheckpointInfo info;
  if (dart::core::read_info(image, &info)) return;
  constexpr std::uint64_t kSectionFraming = 12;  // u32 id + u64 length
  for (const CheckpointSectionInfo& section : info.sections) {
    const std::uint64_t begin = section.offset - kSectionFraming;
    const std::uint64_t end = section.offset + section.length;
    if (err.offset >= begin && err.offset < end) {
      out << " [section " << section.id << " (" << section_name(section.id)
          << "), bytes " << begin << ".." << end << ", damage at byte "
          << err.offset << "]";
      return;
    }
  }
  out << " [byte " << err.offset << ", outside every framed section]";
}

int cmd_verify(const std::string& path) {
  CheckpointImage image;
  if (const CheckpointError err =
          dart::core::load_checkpoint(path, &image)) {
    std::cerr << "dart-ckpt: " << path << ": " << err.to_string() << "\n";
    return 1;
  }
  if (const CheckpointError err = deep_verify(image)) {
    std::cerr << "dart-ckpt: " << path << ": " << err.to_string();
    describe_failure_site(image, err, std::cerr);
    std::cerr << "\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}

/// A deterministic image: a small shadow-RT monitor with a flow filter,
/// fed a fixed synthetic workload. Every invocation produces identical
/// bytes, which is what the golden round-trip CI check relies on.
CheckpointImage demo_image() {
  dart::core::DartConfig config;
  config.rt_size = 1024;
  config.pt_size = 2048;
  config.shadow_rt = true;
  config.rt_idle_timeout = 2'000'000'000ULL;  // 2 s
  dart::core::FlowFilter filter = dart::core::FlowFilter::allow_all();
  std::uint64_t samples = 0;
  dart::core::DartMonitor monitor(
      config, [&samples](const dart::core::RttSample&) { ++samples; });
  monitor.set_flow_filter(&filter);

  dart::gen::CampusConfig workload;
  workload.seed = 7;
  workload.connections = 64;
  workload.duration = 1'000'000'000ULL;  // 1 s
  const dart::trace::Trace trace = dart::gen::build_campus(workload);
  monitor.process_all(trace.packets());

  dart::core::SnapshotMeta meta;
  meta.epoch = 1;
  meta.cursor = trace.packets().size();
  meta.sample_cursor = samples;
  return monitor.snapshot(meta);
}

int cmd_make_demo(const std::string& path,
                  const std::vector<std::string>& options) {
  bool flip_crc = false;
  bool corrupt_body = false;
  bool reseal = false;
  std::size_t truncate_to = ~std::size_t{0};
  for (std::size_t i = 0; i < options.size(); ++i) {
    const std::string& option = options[i];
    if (option == "--flip-crc") {
      flip_crc = true;
    } else if (option == "--corrupt-body") {
      corrupt_body = true;
    } else if (option == "--reseal") {
      reseal = true;
    } else if (option == "--truncate") {
      if (i + 1 >= options.size()) {
        std::cerr << "error: --truncate needs a value\n";
        return 2;
      }
      try {
        truncate_to = static_cast<std::size_t>(std::stoull(options[++i]));
      } catch (...) {
        std::cerr << "error: bad --truncate value\n";
        return 2;
      }
    } else {
      std::cerr << "error: unknown option '" << option << "'\n";
      return 2;
    }
  }

  CheckpointImage image = demo_image();
  if (corrupt_body) {
    // Flip the low byte of the stats section's field count: a precise,
    // deterministic wound that survives a reseal (the CRC matches again)
    // but can never pass a real restore.
    CheckpointInfo info;
    if (dart::core::read_info(image, &info)) {
      std::cerr << "error: demo image unexpectedly damaged\n";
      return 1;
    }
    for (const CheckpointSectionInfo& section : info.sections) {
      if (section.id == static_cast<std::uint32_t>(CheckpointSection::kStats)) {
        image.bytes[section.offset] ^= 0xFF;
        break;
      }
    }
  }
  if (truncate_to != ~std::size_t{0} && truncate_to < image.bytes.size()) {
    image.bytes.resize(truncate_to);
  }
  if (reseal && image.bytes.size() >= dart::core::kCheckpointHeaderBytes) {
    dart::core::reseal_checkpoint(image);
  }
  if (flip_crc && image.bytes.size() > dart::core::kCheckpointCrcOffset) {
    image.bytes[dart::core::kCheckpointCrcOffset] ^= 0xFF;
  }
  if (const CheckpointError err =
          dart::core::save_checkpoint(image, path)) {
    std::cerr << "dart-ckpt: " << path << ": " << err.to_string() << "\n";
    return 1;
  }
  std::cout << "wrote " << image.bytes.size() << " bytes to " << path
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    print_usage(args.empty() ? std::cerr : std::cout);
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  if (command == "inspect" || command == "verify") {
    if (args.size() != 2) {
      std::cerr << "error: " << command << " takes exactly one file\n";
      return 2;
    }
    return command == "inspect" ? cmd_inspect(args[1]) : cmd_verify(args[1]);
  }
  if (command == "make-demo") {
    if (args.size() < 2) {
      std::cerr << "error: make-demo needs an output file\n";
      return 2;
    }
    return cmd_make_demo(
        args[1], std::vector<std::string>(args.begin() + 2, args.end()));
  }
  std::cerr << "error: unknown command '" << command << "'\n";
  print_usage(std::cerr);
  return 2;
}
