// Exact percentile computation over collected RTT samples.
//
// The evaluation metrics (Section 6.2) are defined on percentiles of the
// RTT distribution: error at p = {50, 95, 99} and the maximum error over
// p in [5, 95]. Sample volumes here are a few million, so an exact sorted
// set is simpler and more trustworthy than a sketch.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace dart::analytics {

class PercentileSet {
 public:
  void add(Timestamp value) {
    values_.push_back(value);
    sorted_ = false;
  }

  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Percentile with linear interpolation between order statistics;
  /// `p` in [0, 100]. An empty set answers 0.0 (like mean()/cdf_at()) —
  /// never an out-of-bounds read; callers that must distinguish "no data"
  /// check empty() first.
  double percentile(double p) const;

  /// 0 on an empty set, like percentile().
  Timestamp min() const;
  /// 0 on an empty set, like percentile().
  Timestamp max() const;
  double mean() const;

  /// Fraction of values <= threshold (one CDF point).
  double cdf_at(Timestamp threshold) const;

  /// Fraction of values > threshold (one CCDF point).
  double ccdf_at(Timestamp threshold) const {
    return 1.0 - cdf_at(threshold);
  }

  const std::vector<Timestamp>& sorted_values() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<Timestamp> values_;
  mutable bool sorted_ = true;
};

}  // namespace dart::analytics
