// Logarithmically binned streaming histogram for RTT distributions.
//
// Used where keeping every sample is wasteful (per-prefix aggregation) and
// for printing the CDF/CCDF series of Figures 6, 9b, and 9c. Bin edges grow
// geometrically from `min_value`, giving constant relative resolution across
// the microsecond-to-minute RTT range.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace dart::analytics {

class LogHistogram {
 public:
  /// Bins span [min_value, max_value] with `bins_per_decade` geometric bins
  /// per 10x; values outside are clamped to the edge bins.
  LogHistogram(Timestamp min_value = usec(10), Timestamp max_value = sec(120),
               std::uint32_t bins_per_decade = 20);

  void add(Timestamp value);

  std::uint64_t count() const { return total_; }
  Timestamp min() const { return seen_min_; }
  Timestamp max() const { return seen_max_; }

  /// Approximate quantile (q in [0, 1]) via bin interpolation.
  double quantile(double q) const;

  /// Fraction of values <= threshold.
  double cdf_at(Timestamp threshold) const;

  /// Representative value (geometric midpoint) of bin `i`.
  double bin_value(std::size_t i) const;
  const std::vector<std::uint64_t>& bins() const { return counts_; }

  /// Merge another histogram with identical binning.
  void merge(const LogHistogram& other);

 private:
  std::size_t bin_of(Timestamp value) const;

  double log_min_;
  double log_step_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  Timestamp seen_min_ = 0;
  Timestamp seen_max_ = 0;
};

}  // namespace dart::analytics
