// Logarithmically binned streaming histogram for RTT distributions.
//
// Used where keeping every sample is wasteful (per-prefix aggregation) and
// for printing the CDF/CCDF series of Figures 6, 9b, and 9c. Bin edges grow
// geometrically from `min_value`, giving constant relative resolution across
// the microsecond-to-minute RTT range.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace dart::analytics {

class LogHistogram {
 public:
  /// Bins span [min_value, max_value] with `bins_per_decade` geometric bins
  /// per 10x; values outside are clamped to the edge bins.
  LogHistogram(Timestamp min_value = usec(10), Timestamp max_value = sec(120),
               std::uint32_t bins_per_decade = 20);

  void add(Timestamp value);

  std::uint64_t count() const { return total_; }
  Timestamp min() const { return seen_min_; }
  Timestamp max() const { return seen_max_; }

  /// Approximate quantile (q in [0, 1]) via bin interpolation. The target
  /// rank is at least one sample, so q=0 answers the first *occupied* bin
  /// (an empty leading bin never satisfies "cumulative 0 >= 0").
  double quantile(double q) const;

  /// Fraction of values <= threshold.
  double cdf_at(Timestamp threshold) const;

  /// Representative value (geometric midpoint) of bin `i`.
  double bin_value(std::size_t i) const;
  const std::vector<std::uint64_t>& bins() const { return counts_; }

  /// Bin that `value` lands in (clamped to the edge bins, like add()).
  std::size_t bin_index(Timestamp value) const { return bin_of(value); }

  /// Bin-edge geometry, exported so external aggregators (the telemetry
  /// fold) can mirror the layout exactly.
  double log_min() const { return log_min_; }
  double log_step() const { return log_step_; }

  /// True when `other` has byte-identical binning (same geometry and bin
  /// count), i.e. merge() will be an exact bin-by-bin sum.
  bool same_layout(const LogHistogram& other) const;

  /// Fold another histogram's mass into this one. Identical layouts merge
  /// bin by bin (exact); differing layouts are remapped by each source
  /// bin's representative value, clamped to this histogram's range like
  /// add() — every sample is preserved, so count() and the quantile/cdf
  /// denominators stay consistent either way.
  void merge(const LogHistogram& other);

  /// Rebuild a histogram from an exported layout plus raw bin counts (the
  /// telemetry fold's import path). `seen_min`/`seen_max` seed the extreme
  /// trackers; total is the sum of `bins`.
  static LogHistogram from_layout(double log_min, double log_step,
                                  std::vector<std::uint64_t> bins,
                                  Timestamp seen_min, Timestamp seen_max);

 private:
  std::size_t bin_of(Timestamp value) const;
  std::size_t bin_for_log(double log_value) const;

  double log_min_;
  double log_step_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  Timestamp seen_min_ = 0;
  Timestamp seen_max_ = 0;
};

}  // namespace dart::analytics
