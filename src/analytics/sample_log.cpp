#include "analytics/sample_log.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

namespace dart::analytics {
namespace {

const char* leg_name(core::LegMode leg) {
  switch (leg) {
    case core::LegMode::kExternal:
      return "external";
    case core::LegMode::kInternal:
      return "internal";
    case core::LegMode::kBoth:
      return "both";
  }
  return "external";
}

std::optional<core::LegMode> leg_from(std::string_view name) {
  if (name == "external") return core::LegMode::kExternal;
  if (name == "internal") return core::LegMode::kInternal;
  if (name == "both") return core::LegMode::kBoth;
  return std::nullopt;
}

template <typename T>
bool parse_number(std::string_view text, T& value) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

std::optional<core::RttSample> parse_row(const std::string& line) {
  std::vector<std::string_view> fields;
  std::string_view rest = line;
  while (true) {
    const auto comma = rest.find(',');
    fields.push_back(rest.substr(0, comma));
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  if (fields.size() != 9) return std::nullopt;

  core::RttSample sample;
  const auto src = Ipv4Addr::parse(fields[0]);
  const auto dst = Ipv4Addr::parse(fields[2]);
  std::uint64_t rtt = 0;
  const auto leg = leg_from(fields[8]);
  if (!src || !dst || !leg ||
      !parse_number(fields[1], sample.tuple.src_port) ||
      !parse_number(fields[3], sample.tuple.dst_port) ||
      !parse_number(fields[4], sample.eack) ||
      !parse_number(fields[5], sample.seq_ts) ||
      !parse_number(fields[6], sample.ack_ts) ||
      !parse_number(fields[7], rtt)) {
    return std::nullopt;
  }
  sample.tuple.src_ip = *src;
  sample.tuple.dst_ip = *dst;
  sample.leg = *leg;
  if (sample.rtt() != rtt) return std::nullopt;  // consistency check
  return sample;
}

}  // namespace

void SampleLog::absorb(SampleLog&& other) {
  if (samples_.empty()) {
    samples_ = std::move(other.samples_);
  } else {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    other.samples_.clear();
  }
}

bool SampleLog::write_csv(std::ostream& out) const {
  return write_samples_csv(samples_, out);
}

bool SampleLog::write_csv_file(const std::string& path) const {
  return write_samples_csv_file(samples_, path);
}

bool write_samples_csv(const std::vector<core::RttSample>& samples,
                       std::ostream& out) {
  out << "src_ip,src_port,dst_ip,dst_port,eack,seq_ts_ns,ack_ts_ns,rtt_ns,"
         "leg\n";
  for (const core::RttSample& s : samples) {
    out << s.tuple.src_ip.to_string() << ',' << s.tuple.src_port << ','
        << s.tuple.dst_ip.to_string() << ',' << s.tuple.dst_port << ','
        << s.eack << ',' << s.seq_ts << ',' << s.ack_ts << ',' << s.rtt()
        << ',' << leg_name(s.leg) << '\n';
  }
  return static_cast<bool>(out);
}

bool write_samples_csv_file(const std::vector<core::RttSample>& samples,
                            const std::string& path) {
  std::ofstream out(path);
  return out && write_samples_csv(samples, out);
}

std::optional<std::vector<core::RttSample>> read_samples_csv(
    std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.rfind("src_ip,", 0) != 0) {
    return std::nullopt;
  }
  std::vector<core::RttSample> samples;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto sample = parse_row(line);
    if (!sample) return std::nullopt;
    samples.push_back(*sample);
  }
  return samples;
}

std::optional<std::vector<core::RttSample>> read_samples_csv_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return read_samples_csv(in);
}

}  // namespace dart::analytics
