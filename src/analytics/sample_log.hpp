// RTT sample reports (Section 5: Dart "collects raw RTT samples and sends
// them to a collection server").
//
// CSV writer/reader for sample streams so detection pipelines can run
// offline on collected reports, mirroring the paper's testbed where the
// switch exports reports and a server runs the change detector.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/rtt_sample.hpp"

namespace dart::analytics {

/// An in-memory sample stream: the collection buffer between a monitor and
/// the export/detection pipelines. The sharded replay runtime gives each
/// worker a private log (single-writer, no locking); logs are merged after
/// the workers join.
class SampleLog {
 public:
  void append(const core::RttSample& sample) { samples_.push_back(sample); }

  /// Sink adapter for monitor constructors. The log must outlive the
  /// returned callback.
  core::SampleCallback callback() {
    return [this](const core::RttSample& sample) { append(sample); };
  }

  const std::vector<core::RttSample>& samples() const { return samples_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  void reserve(std::size_t n) { samples_.reserve(n); }
  void clear() { samples_.clear(); }

  /// Steal `other`'s samples onto the end of this log.
  void absorb(SampleLog&& other);

  /// Drop every sample past the first `n` — the recovery path's rollback to
  /// a checkpoint's sample cursor (samples emitted after the cut belong to
  /// the discarded crash window). No-op when the log is already shorter.
  void truncate(std::size_t n) {
    if (n < samples_.size()) samples_.resize(n);
  }

  bool write_csv(std::ostream& out) const;
  bool write_csv_file(const std::string& path) const;

 private:
  std::vector<core::RttSample> samples_;
};

/// Header + one row per sample:
///   src_ip,src_port,dst_ip,dst_port,eack,seq_ts_ns,ack_ts_ns,rtt_ns,leg
bool write_samples_csv(const std::vector<core::RttSample>& samples,
                       std::ostream& out);
bool write_samples_csv_file(const std::vector<core::RttSample>& samples,
                            const std::string& path);

/// Parse a CSV produced by write_samples_csv; nullopt on malformed input.
std::optional<std::vector<core::RttSample>> read_samples_csv(
    std::istream& in);
std::optional<std::vector<core::RttSample>> read_samples_csv_file(
    const std::string& path);

}  // namespace dart::analytics
