// RTT sample reports (Section 5: Dart "collects raw RTT samples and sends
// them to a collection server").
//
// CSV writer/reader for sample streams so detection pipelines can run
// offline on collected reports, mirroring the paper's testbed where the
// switch exports reports and a server runs the change detector.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/rtt_sample.hpp"

namespace dart::analytics {

/// Header + one row per sample:
///   src_ip,src_port,dst_ip,dst_port,eack,seq_ts_ns,ack_ts_ns,rtt_ns,leg
bool write_samples_csv(const std::vector<core::RttSample>& samples,
                       std::ostream& out);
bool write_samples_csv_file(const std::vector<core::RttSample>& samples,
                            const std::string& path);

/// Parse a CSV produced by write_samples_csv; nullopt on malformed input.
std::optional<std::vector<core::RttSample>> read_samples_csv(
    std::istream& in);
std::optional<std::vector<core::RttSample>> read_samples_csv_file(
    const std::string& path);

}  // namespace dart::analytics
