// Congestion inference from measurement-range collapses (Section 3.1).
//
// "The measurement ranges collapse more often [under congestion]... Dart
// can be adjusted to report the frequency of measurement range collapses
// for a flow as an indicator of congestion." Collapses are the one signal
// Dart still produces when loss/reordering suppress RTT samples, so a
// collapse-rate estimator complements the min-RTT change detector.
//
// The estimator buckets collapse events into fixed-duration time windows
// (optionally per destination /p prefix) and flags a window whose rate
// rises abruptly over the preceding baseline.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/ipv4.hpp"
#include "core/rtt_sample.hpp"

namespace dart::analytics {

struct CongestionConfig {
  Timestamp window = sec(1);
  /// Alarm when a window's collapse count exceeds `rise_factor` times the
  /// mean of the preceding `baseline_windows` windows (and at least
  /// `min_collapses` absolute).
  double rise_factor = 3.0;
  std::uint32_t baseline_windows = 5;
  std::uint64_t min_collapses = 10;
};

struct CongestionAlarm {
  std::uint64_t window_index = 0;
  std::uint64_t collapses = 0;
  double baseline_mean = 0.0;
};

class CongestionEstimator {
 public:
  explicit CongestionEstimator(const CongestionConfig& config = {});

  /// Feed one collapse event; may emit an alarm when its window closes
  /// (i.e. when an event for a later window arrives).
  std::optional<CongestionAlarm> record(const core::CollapseEvent& event);

  /// Collapse counts per closed window (index 0 = first window with data).
  const std::vector<std::uint64_t>& window_counts() const { return closed_; }

  std::uint64_t total_collapses() const { return total_; }

 private:
  std::optional<CongestionAlarm> close_windows_up_to(std::uint64_t window);

  CongestionConfig config_;
  std::vector<std::uint64_t> closed_;
  std::uint64_t current_window_ = 0;
  std::uint64_t current_count_ = 0;
  bool any_ = false;
  std::uint64_t total_ = 0;
};

/// Per-prefix collapse aggregation: one estimator per destination /p,
/// pinpointing *which* subnet's path is congested.
class PrefixCongestion {
 public:
  explicit PrefixCongestion(unsigned prefix_length = 24,
                            const CongestionConfig& config = {});

  struct PrefixAlarm {
    Ipv4Prefix prefix;
    CongestionAlarm alarm;
  };

  std::optional<PrefixAlarm> record(const core::CollapseEvent& event);

  const std::map<Ipv4Prefix, CongestionEstimator>& estimators() const {
    return estimators_;
  }

 private:
  unsigned prefix_length_;
  CongestionConfig config_;
  std::map<Ipv4Prefix, CongestionEstimator> estimators_;
};

}  // namespace dart::analytics
