#include "analytics/percentile.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dart::analytics {

void PercentileSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double PercentileSet::percentile(double p) const {
  // An assert alone compiles out in release builds, turning the empty set
  // into an out-of-bounds read of values_[0]; return the documented
  // defined value instead.
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(values_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return static_cast<double>(values_[lo]) * (1.0 - frac) +
         static_cast<double>(values_[hi]) * frac;
}

Timestamp PercentileSet::min() const {
  if (values_.empty()) return 0;
  ensure_sorted();
  return values_.front();
}

Timestamp PercentileSet::max() const {
  if (values_.empty()) return 0;
  ensure_sorted();
  return values_.back();
}

double PercentileSet::mean() const {
  if (values_.empty()) return 0.0;
  const double total = std::accumulate(
      values_.begin(), values_.end(), 0.0,
      [](double acc, Timestamp v) { return acc + static_cast<double>(v); });
  return total / static_cast<double>(values_.size());
}

double PercentileSet::cdf_at(Timestamp threshold) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it =
      std::upper_bound(values_.begin(), values_.end(), threshold);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

const std::vector<Timestamp>& PercentileSet::sorted_values() const {
  ensure_sorted();
  return values_;
}

}  // namespace dart::analytics
