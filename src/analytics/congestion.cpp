#include "analytics/congestion.hpp"

namespace dart::analytics {

CongestionEstimator::CongestionEstimator(const CongestionConfig& config)
    : config_(config) {}

std::optional<CongestionAlarm> CongestionEstimator::record(
    const core::CollapseEvent& event) {
  const std::uint64_t window = event.ts / config_.window;
  std::optional<CongestionAlarm> alarm;
  if (!any_) {
    any_ = true;
    current_window_ = window;
  } else if (window > current_window_) {
    alarm = close_windows_up_to(window);
  }
  ++current_count_;
  ++total_;
  return alarm;
}

std::optional<CongestionAlarm> CongestionEstimator::close_windows_up_to(
    std::uint64_t window) {
  std::optional<CongestionAlarm> alarm;

  // Close the current window and evaluate it against the baseline.
  const std::uint64_t count = current_count_;
  if (closed_.size() >= config_.baseline_windows &&
      count >= config_.min_collapses) {
    double baseline = 0.0;
    for (std::size_t i = closed_.size() - config_.baseline_windows;
         i < closed_.size(); ++i) {
      baseline += static_cast<double>(closed_[i]);
    }
    baseline /= static_cast<double>(config_.baseline_windows);
    if (static_cast<double>(count) > baseline * config_.rise_factor) {
      alarm = CongestionAlarm{
          static_cast<std::uint64_t>(closed_.size()), count, baseline};
    }
  }
  closed_.push_back(count);
  current_count_ = 0;

  // Quiet windows in between count as zero.
  for (std::uint64_t w = current_window_ + 1; w < window; ++w) {
    closed_.push_back(0);
  }
  current_window_ = window;
  return alarm;
}

PrefixCongestion::PrefixCongestion(unsigned prefix_length,
                                   const CongestionConfig& config)
    : prefix_length_(prefix_length), config_(config) {}

std::optional<PrefixCongestion::PrefixAlarm> PrefixCongestion::record(
    const core::CollapseEvent& event) {
  const Ipv4Prefix prefix =
      Ipv4Prefix::of(event.tuple.dst_ip, prefix_length_);
  auto [it, inserted] = estimators_.try_emplace(prefix, config_);
  const auto alarm = it->second.record(event);
  if (!alarm) return std::nullopt;
  return PrefixAlarm{prefix, *alarm};
}

}  // namespace dart::analytics
