// Min-filter-driven preemptive discard (Section 3.3).
//
// When the analytics only needs the minimum RTT per window, a Packet
// Tracker record that has already waited longer than the window's current
// minimum cannot improve the result: even if its ACK arrived right now, the
// sample would exceed the minimum. Recirculating it wastes bandwidth, so
// Dart drops it at eviction time instead.
//
// Wire-up: install as the monitor's UsefulnessFilter and feed it every
// emitted sample (it advances the window and maintains the current min).
#pragma once

#include "analytics/min_filter.hpp"
#include "core/rtt_sample.hpp"

namespace dart::analytics {

class MinFilterUsefulness final : public core::UsefulnessFilter {
 public:
  explicit MinFilterUsefulness(std::uint32_t window_size)
      : filter_(window_size) {}

  /// Feed each emitted sample (hook this to the monitor's sample callback).
  void observe(const core::RttSample& sample) {
    filter_.add(sample.rtt(), sample.ack_ts);
  }

  bool useful(Timestamp seq_ts, Timestamp now) const override {
    const auto current = filter_.current_min();
    if (!current) return true;  // no reference yet: keep everything
    return now - seq_ts < *current;
  }

  const MinFilter& filter() const { return filter_; }

 private:
  MinFilter filter_;
};

}  // namespace dart::analytics
