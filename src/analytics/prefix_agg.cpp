#include "analytics/prefix_agg.hpp"

#include <algorithm>

namespace dart::analytics {

PrefixAggregator::PrefixAggregator(unsigned prefix_length,
                                   bool by_destination)
    : prefix_length_(prefix_length), by_destination_(by_destination) {}

void PrefixAggregator::add(const core::RttSample& sample) {
  const Ipv4Addr addr =
      by_destination_ ? sample.tuple.dst_ip : sample.tuple.src_ip;
  PrefixStats& stats = prefixes_[Ipv4Prefix::of(addr, prefix_length_)];
  const Timestamp rtt = sample.rtt();
  if (stats.samples == 0 || rtt < stats.min_rtt) stats.min_rtt = rtt;
  ++stats.samples;
  stats.histogram.add(rtt);
}

std::vector<std::pair<Ipv4Prefix, const PrefixStats*>> PrefixAggregator::top(
    std::size_t n) const {
  std::vector<std::pair<Ipv4Prefix, const PrefixStats*>> out;
  out.reserve(prefixes_.size());
  for (const auto& [prefix, stats] : prefixes_) {
    out.emplace_back(prefix, &stats);
  }
  std::partial_sort(out.begin(), out.begin() + std::min(n, out.size()),
                    out.end(), [](const auto& a, const auto& b) {
                      return a.second->samples > b.second->samples;
                    });
  out.resize(std::min(n, out.size()));
  return out;
}

}  // namespace dart::analytics
