// Per-prefix RTT aggregation (Sections 3.1 and 3.3).
//
// Dart can aggregate samples of flows destined to the same subnet (e.g.
// /24s) before analyzing them, giving a more complete view of a target
// network's health than any single flow. Each prefix keeps a streaming
// histogram plus min/count, enough for the min-filter analytics and the
// per-subnet CDFs of Figure 6.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analytics/histogram.hpp"
#include "common/ipv4.hpp"
#include "core/rtt_sample.hpp"

namespace dart::analytics {

struct PrefixStats {
  std::uint64_t samples = 0;
  Timestamp min_rtt = 0;
  LogHistogram histogram;
};

class PrefixAggregator {
 public:
  /// `prefix_length` of the aggregation buckets (paper example: /24).
  /// `by_destination`: bucket by the data-direction destination (the remote
  /// server) — the natural choice for external-leg monitoring; when false,
  /// bucket by source (the internal client), used for internal-leg subnets.
  explicit PrefixAggregator(unsigned prefix_length = 24,
                            bool by_destination = true);

  void add(const core::RttSample& sample);

  const std::map<Ipv4Prefix, PrefixStats>& prefixes() const {
    return prefixes_;
  }

  /// Prefixes ordered by sample count, descending.
  std::vector<std::pair<Ipv4Prefix, const PrefixStats*>> top(
      std::size_t n) const;

 private:
  unsigned prefix_length_;
  bool by_destination_;
  std::map<Ipv4Prefix, PrefixStats> prefixes_;
};

}  // namespace dart::analytics
