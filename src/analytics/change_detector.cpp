#include "analytics/change_detector.hpp"

namespace dart::analytics {

ChangeDetector::ChangeDetector(const ChangeDetectorConfig& config)
    : config_(config), filter_(config.window_size) {}

bool ChangeDetector::abrupt_rise(Timestamp from, Timestamp to) const {
  if (to <= from) return false;
  const bool relative =
      static_cast<double>(to) >
      static_cast<double>(from) * config_.rise_factor;
  const bool absolute = to - from > config_.min_abs_rise;
  return relative && absolute;
}

std::optional<DetectionEvent> ChangeDetector::add(Timestamp rtt,
                                                  Timestamp sample_ts) {
  auto window = filter_.add(rtt, sample_ts);
  if (!window) return std::nullopt;
  windows_.push_back(*window);

  std::optional<DetectionEvent> emitted;
  if (previous_min_) {
    switch (state_) {
      case DetectionState::kNormal:
        if (abrupt_rise(*previous_min_, window->min_rtt)) {
          state_ = DetectionState::kSuspected;
          baseline_min_ = *previous_min_;
          DetectionEvent event{DetectionState::kSuspected,
                               window->window_index, window->window_end_ts,
                               baseline_min_, window->min_rtt,
                               window->samples_seen};
          events_.push_back(event);
          emitted = event;
        }
        break;
      case DetectionState::kSuspected:
        if (abrupt_rise(baseline_min_, window->min_rtt)) {
          // The rise sustained for another window: confirmed.
          state_ = DetectionState::kConfirmed;
          DetectionEvent event{DetectionState::kConfirmed,
                               window->window_index, window->window_end_ts,
                               baseline_min_, window->min_rtt,
                               window->samples_seen};
          events_.push_back(event);
          emitted = event;
        } else {
          state_ = DetectionState::kNormal;  // transient outlier window
        }
        break;
      case DetectionState::kConfirmed:
        break;  // latched until reset
    }
  }
  previous_min_ = window->min_rtt;
  return emitted;
}

void ChangeDetector::finish() {
  auto window = filter_.flush();
  if (!window) return;
  windows_.push_back(*window);
}

}  // namespace dart::analytics
