// Fleet-wide interception/latency-shift detection: one windowed min-RTT
// change detector per destination prefix (Sections 3.3 and 5.2).
//
// The paper's operator story: aggregate RTT samples per /24 and alarm when
// a prefix's propagation delay jumps — the per-prefix generalization of the
// Figure 8 detector. Detectors are created lazily per prefix; prefixes with
// too few samples never complete a window and stay silent.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "analytics/change_detector.hpp"
#include "common/ipv4.hpp"
#include "core/rtt_sample.hpp"

namespace dart::analytics {

class PrefixChangeDetector {
 public:
  struct PrefixEvent {
    Ipv4Prefix prefix;
    DetectionEvent event;
  };

  explicit PrefixChangeDetector(
      unsigned prefix_length = 24,
      const ChangeDetectorConfig& config = ChangeDetectorConfig{});

  /// Feed one sample; may emit a suspicion/confirmation for its prefix.
  std::optional<PrefixEvent> add(const core::RttSample& sample);

  /// End-of-replay finalization: flush every prefix detector's trailing
  /// partial window into its window history. Prefixes whose total sample
  /// count never filled a single window thus still surface their min in
  /// window_history() (flagged partial) instead of vanishing.
  void finish();

  /// Prefixes whose detectors have confirmed a sustained RTT rise.
  std::vector<Ipv4Prefix> confirmed() const;

  std::size_t tracked_prefixes() const { return detectors_.size(); }
  const std::map<Ipv4Prefix, ChangeDetector>& detectors() const {
    return detectors_;
  }

 private:
  unsigned prefix_length_;
  ChangeDetectorConfig config_;
  std::map<Ipv4Prefix, ChangeDetector> detectors_;
};

}  // namespace dart::analytics
