#include "analytics/usefulness.hpp"

// MinFilterUsefulness is header-only; this translation unit anchors the
// class's vtable.
namespace dart::analytics {}
