#include "analytics/metrics.hpp"

#include <cmath>

namespace dart::analytics {

double collection_error(const PercentileSet& baseline,
                        const PercentileSet& measured, double p) {
  const double base = baseline.percentile(p);
  if (base == 0.0) return 0.0;
  return 100.0 * (base - measured.percentile(p)) / base;
}

AccuracyReport compare(const PercentileSet& baseline,
                       const PercentileSet& measured) {
  AccuracyReport report;
  report.error_p50 = collection_error(baseline, measured, 50);
  report.error_p95 = collection_error(baseline, measured, 95);
  report.error_p99 = collection_error(baseline, measured, 99);

  double worst = 0.0;
  for (int p = 5; p <= 95; ++p) {
    const double err = collection_error(baseline, measured, p);
    if (std::abs(err) > std::abs(worst)) worst = err;
  }
  report.max_error_5_95 = worst;

  report.fraction_collected =
      baseline.count() == 0
          ? 0.0
          : 100.0 * static_cast<double>(measured.count()) /
                static_cast<double>(baseline.count());
  return report;
}

}  // namespace dart::analytics
