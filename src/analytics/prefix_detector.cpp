#include "analytics/prefix_detector.hpp"

namespace dart::analytics {

PrefixChangeDetector::PrefixChangeDetector(
    unsigned prefix_length, const ChangeDetectorConfig& config)
    : prefix_length_(prefix_length), config_(config) {}

std::optional<PrefixChangeDetector::PrefixEvent> PrefixChangeDetector::add(
    const core::RttSample& sample) {
  const Ipv4Prefix prefix =
      Ipv4Prefix::of(sample.tuple.dst_ip, prefix_length_);
  auto [it, inserted] = detectors_.try_emplace(prefix, config_);
  const auto event = it->second.add(sample.rtt(), sample.ack_ts);
  if (!event) return std::nullopt;
  return PrefixEvent{prefix, *event};
}

void PrefixChangeDetector::finish() {
  for (auto& [prefix, detector] : detectors_) detector.finish();
}

std::vector<Ipv4Prefix> PrefixChangeDetector::confirmed() const {
  std::vector<Ipv4Prefix> out;
  for (const auto& [prefix, detector] : detectors_) {
    if (detector.state() == DetectionState::kConfirmed) {
      out.push_back(prefix);
    }
  }
  return out;
}

}  // namespace dart::analytics
