// Threshold-based change detection over windowed minimum RTTs (Section 5.2).
//
// The paper's interception detector: compute the min RTT per window of N
// raw samples; when the min rises abruptly between consecutive windows the
// attack is *suspected*, and when the rise sustains for another window it is
// *confirmed*. Figure 8 shows suspicion almost immediately after onset and
// confirmation one window later — 63 packets end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analytics/min_filter.hpp"

namespace dart::analytics {

struct ChangeDetectorConfig {
  std::uint32_t window_size = 8;  ///< samples per window (paper: 8)
  /// A rise is abrupt when new_min > old_min * rise_factor and
  /// new_min - old_min > min_abs_rise.
  double rise_factor = 2.0;
  Timestamp min_abs_rise = msec(10);
};

enum class DetectionState : std::uint8_t {
  kNormal,
  kSuspected,
  kConfirmed,
};

struct DetectionEvent {
  DetectionState state = DetectionState::kNormal;
  std::uint64_t window_index = 0;
  Timestamp at_ts = 0;                ///< ACK time of the closing sample
  Timestamp baseline_min = 0;         ///< min before the rise
  Timestamp elevated_min = 0;         ///< min after the rise
  std::uint64_t samples_seen = 0;     ///< cumulative samples at this point
};

class ChangeDetector {
 public:
  explicit ChangeDetector(const ChangeDetectorConfig& config);

  /// Feed one raw RTT sample; may emit a suspicion or confirmation event.
  std::optional<DetectionEvent> add(Timestamp rtt, Timestamp sample_ts);

  /// End-of-stream finalization: flush the min filter's trailing partial
  /// window into window_history() so a short flow's only samples are not
  /// silently dropped. The partial window is recorded (flagged) but never
  /// drives a state transition — the thresholds are calibrated for full
  /// windows, and a 1-sample tail could false-confirm. Idempotent per tail.
  void finish();

  DetectionState state() const { return state_; }
  const std::vector<DetectionEvent>& events() const { return events_; }
  const std::vector<WindowMin>& window_history() const { return windows_; }

 private:
  bool abrupt_rise(Timestamp from, Timestamp to) const;

  ChangeDetectorConfig config_;
  MinFilter filter_;
  DetectionState state_ = DetectionState::kNormal;
  std::optional<Timestamp> previous_min_;
  Timestamp baseline_min_ = 0;  ///< min before the suspected rise
  std::vector<DetectionEvent> events_;
  std::vector<WindowMin> windows_;
};

}  // namespace dart::analytics
