#include "analytics/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace dart::analytics {

LogHistogram::LogHistogram(Timestamp min_value, Timestamp max_value,
                           std::uint32_t bins_per_decade) {
  const double lo = std::log10(static_cast<double>(std::max<Timestamp>(
      min_value, 1)));
  const double hi = std::log10(static_cast<double>(
      std::max(max_value, min_value + 1)));
  log_min_ = lo;
  log_step_ = 1.0 / static_cast<double>(std::max<std::uint32_t>(
      bins_per_decade, 1));
  const std::size_t bins =
      static_cast<std::size_t>(std::ceil((hi - lo) / log_step_)) + 1;
  counts_.assign(bins, 0);
}

std::size_t LogHistogram::bin_of(Timestamp value) const {
  return bin_for_log(
      std::log10(static_cast<double>(std::max<Timestamp>(value, 1))));
}

std::size_t LogHistogram::bin_for_log(double log_value) const {
  const double raw = (log_value - log_min_) / log_step_;
  if (raw <= 0.0) return 0;
  const std::size_t bin = static_cast<std::size_t>(raw);
  return std::min(bin, counts_.size() - 1);
}

void LogHistogram::add(Timestamp value) {
  if (total_ == 0) {
    seen_min_ = value;
    seen_max_ = value;
  } else {
    seen_min_ = std::min(seen_min_, value);
    seen_max_ = std::max(seen_max_, value);
  }
  ++counts_[bin_of(value)];
  ++total_;
}

double LogHistogram::bin_value(std::size_t i) const {
  // Geometric midpoint of the bin.
  const double lo = log_min_ + static_cast<double>(i) * log_step_;
  return std::pow(10.0, lo + log_step_ / 2.0);
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  // The target rank is at least one sample: a plain q*total_ is 0 at q=0,
  // which "cumulative >= target" satisfies at bin 0 even when that bin is
  // empty — answering a value no sample ever took.
  const double target = std::max(
      1.0, std::clamp(q, 0.0, 1.0) * static_cast<double>(total_));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= target) return bin_value(i);
  }
  return bin_value(counts_.size() - 1);
}

double LogHistogram::cdf_at(Timestamp threshold) const {
  if (total_ == 0) return 0.0;
  const std::size_t limit = bin_of(threshold);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= limit; ++i) cumulative += counts_[i];
  return static_cast<double>(cumulative) / static_cast<double>(total_);
}

bool LogHistogram::same_layout(const LogHistogram& other) const {
  return log_min_ == other.log_min_ && log_step_ == other.log_step_ &&
         counts_.size() == other.counts_.size();
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.total_ == 0) return;
  if (same_layout(other)) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
  } else {
    // Differing layouts (range, resolution, or bin count): remap each
    // source bin's mass by its representative value, clamping to the edge
    // bins exactly as add() would. Every sample lands somewhere, so the
    // totals — and with them every quantile()/cdf_at() denominator — stay
    // exact. The pre-fix code summed only min(size, other.size) bins but
    // still added the full other.total_, silently vaporizing tail-bin mass
    // while inflating the denominator.
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      if (other.counts_[i] == 0) continue;
      const double mid =
          other.log_min_ + (static_cast<double>(i) + 0.5) * other.log_step_;
      counts_[bin_for_log(mid)] += other.counts_[i];
    }
  }
  if (total_ == 0) {
    seen_min_ = other.seen_min_;
    seen_max_ = other.seen_max_;
  } else {
    seen_min_ = std::min(seen_min_, other.seen_min_);
    seen_max_ = std::max(seen_max_, other.seen_max_);
  }
  total_ += other.total_;
}

LogHistogram LogHistogram::from_layout(double log_min, double log_step,
                                       std::vector<std::uint64_t> bins,
                                       Timestamp seen_min,
                                       Timestamp seen_max) {
  LogHistogram hist;
  hist.log_min_ = log_min;
  hist.log_step_ = log_step;
  hist.total_ = 0;
  for (const std::uint64_t count : bins) hist.total_ += count;
  hist.counts_ = std::move(bins);
  if (hist.counts_.empty()) hist.counts_.assign(1, 0);
  hist.seen_min_ = seen_min;
  hist.seen_max_ = seen_max;
  return hist;
}

}  // namespace dart::analytics
