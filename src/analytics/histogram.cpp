#include "analytics/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace dart::analytics {

LogHistogram::LogHistogram(Timestamp min_value, Timestamp max_value,
                           std::uint32_t bins_per_decade) {
  const double lo = std::log10(static_cast<double>(std::max<Timestamp>(
      min_value, 1)));
  const double hi = std::log10(static_cast<double>(
      std::max(max_value, min_value + 1)));
  log_min_ = lo;
  log_step_ = 1.0 / static_cast<double>(std::max<std::uint32_t>(
      bins_per_decade, 1));
  const std::size_t bins =
      static_cast<std::size_t>(std::ceil((hi - lo) / log_step_)) + 1;
  counts_.assign(bins, 0);
}

std::size_t LogHistogram::bin_of(Timestamp value) const {
  const double lv =
      std::log10(static_cast<double>(std::max<Timestamp>(value, 1)));
  const double raw = (lv - log_min_) / log_step_;
  if (raw <= 0.0) return 0;
  const std::size_t bin = static_cast<std::size_t>(raw);
  return std::min(bin, counts_.size() - 1);
}

void LogHistogram::add(Timestamp value) {
  if (total_ == 0) {
    seen_min_ = value;
    seen_max_ = value;
  } else {
    seen_min_ = std::min(seen_min_, value);
    seen_max_ = std::max(seen_max_, value);
  }
  ++counts_[bin_of(value)];
  ++total_;
}

double LogHistogram::bin_value(std::size_t i) const {
  // Geometric midpoint of the bin.
  const double lo = log_min_ + static_cast<double>(i) * log_step_;
  return std::pow(10.0, lo + log_step_ / 2.0);
}

double LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  const double target = std::clamp(q, 0.0, 1.0) *
                        static_cast<double>(total_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= target) return bin_value(i);
  }
  return bin_value(counts_.size() - 1);
}

double LogHistogram::cdf_at(Timestamp threshold) const {
  if (total_ == 0) return 0.0;
  const std::size_t limit = bin_of(threshold);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= limit; ++i) cumulative += counts_[i];
  return static_cast<double>(cumulative) / static_cast<double>(total_);
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.total_ == 0) return;
  const std::size_t n = std::min(counts_.size(), other.counts_.size());
  for (std::size_t i = 0; i < n; ++i) counts_[i] += other.counts_[i];
  if (total_ == 0) {
    seen_min_ = other.seen_min_;
    seen_max_ = other.seen_max_;
  } else {
    seen_min_ = std::min(seen_min_, other.seen_min_);
    seen_max_ = std::max(seen_max_, other.seen_max_);
  }
  total_ += other.total_;
}

}  // namespace dart::analytics
