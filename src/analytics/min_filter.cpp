#include "analytics/min_filter.hpp"

#include <algorithm>

namespace dart::analytics {

std::optional<WindowMin> MinFilter::add(Timestamp rtt, Timestamp sample_ts) {
  ++samples_seen_;
  last_sample_ts_ = sample_ts;
  if (in_window_ == 0) {
    current_min_ = rtt;
  } else {
    current_min_ = std::min(current_min_, rtt);
  }
  if (++in_window_ < window_size_) return std::nullopt;

  WindowMin out;
  out.window_index = windows_emitted_++;
  out.min_rtt = current_min_;
  out.window_end_ts = sample_ts;
  out.samples_seen = samples_seen_;
  out.samples_in_window = window_size_;
  in_window_ = 0;
  return out;
}

std::optional<WindowMin> MinFilter::flush() {
  if (in_window_ == 0) return std::nullopt;
  WindowMin out;
  out.window_index = windows_emitted_++;
  out.min_rtt = current_min_;
  out.window_end_ts = last_sample_ts_;
  out.samples_seen = samples_seen_;
  out.samples_in_window = in_window_;
  out.partial = true;
  in_window_ = 0;
  return out;
}

}  // namespace dart::analytics
