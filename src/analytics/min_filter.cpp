#include "analytics/min_filter.hpp"

#include <algorithm>

namespace dart::analytics {

std::optional<WindowMin> MinFilter::add(Timestamp rtt, Timestamp sample_ts) {
  ++samples_seen_;
  if (in_window_ == 0) {
    current_min_ = rtt;
  } else {
    current_min_ = std::min(current_min_, rtt);
  }
  if (++in_window_ < window_size_) return std::nullopt;

  WindowMin out;
  out.window_index = windows_emitted_++;
  out.min_rtt = current_min_;
  out.window_end_ts = sample_ts;
  out.samples_seen = samples_seen_;
  in_window_ = 0;
  return out;
}

}  // namespace dart::analytics
