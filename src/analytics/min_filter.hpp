// Windowed min-filtering of RTT samples (Section 3.3).
//
// Tracking the minimum RTT over a window of samples isolates propagation
// delay from end-host noise (delayed ACKs, scheduling) and outliers. The
// paper's interception detector (Figure 8) consumes exactly this stream:
// the minimum over windows of 8 consecutive raw samples.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time.hpp"

namespace dart::analytics {

struct WindowMin {
  std::uint64_t window_index = 0;
  Timestamp min_rtt = 0;
  Timestamp window_end_ts = 0;      ///< ACK timestamp of the closing sample
  std::uint64_t samples_seen = 0;   ///< cumulative samples at window close
  std::uint32_t samples_in_window = 0;  ///< window_size, or fewer if partial
  /// True when this window was closed by flush() before filling — the
  /// end-of-stream tail. Its min is over fewer samples and correspondingly
  /// noisier; consumers decide whether to act on it or only report it.
  bool partial = false;
};

/// Emits one WindowMin per `window_size` consecutive samples.
class MinFilter {
 public:
  explicit MinFilter(std::uint32_t window_size) : window_size_(window_size) {}

  /// Feed one sample; returns the window summary when a window closes.
  std::optional<WindowMin> add(Timestamp rtt, Timestamp sample_ts);

  /// Close the current window even if it is not full — the end-of-replay
  /// path. Without this a short flow whose sample count never reaches
  /// `window_size` contributes *nothing* to the windowed-min stream. The
  /// emitted window is flagged `partial` and timestamped with the last
  /// sample's time; returns nullopt when no sample is pending.
  std::optional<WindowMin> flush();

  /// Minimum of the (possibly partial) current window, if any sample seen.
  std::optional<Timestamp> current_min() const {
    return in_window_ == 0 ? std::nullopt : std::make_optional(current_min_);
  }

  std::uint32_t window_size() const { return window_size_; }
  std::uint64_t samples_seen() const { return samples_seen_; }

 private:
  std::uint32_t window_size_;
  std::uint32_t in_window_ = 0;
  Timestamp current_min_ = 0;
  Timestamp last_sample_ts_ = 0;
  std::uint64_t windows_emitted_ = 0;
  std::uint64_t samples_seen_ = 0;
};

}  // namespace dart::analytics
