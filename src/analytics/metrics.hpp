// The paper's accuracy metrics (Section 6.2).
//
//   * RTT collection error at percentile p: the difference between the
//     baseline's and Dart's p-th percentile RTT, normalized by the
//     baseline's (positive = Dart underestimates, negative = overestimates);
//   * max error over p in [5, 95]: worst-case accuracy;
//   * fraction of RTT samples collected: Dart's sample count over the
//     baseline's, as a percentage.
#pragma once

#include "analytics/percentile.hpp"

namespace dart::analytics {

struct AccuracyReport {
  double error_p50 = 0.0;  ///< percent
  double error_p95 = 0.0;
  double error_p99 = 0.0;
  double max_error_5_95 = 0.0;  ///< max |error| over integer p in [5, 95],
                                ///< reported signed at the argmax
  double fraction_collected = 0.0;  ///< percent
};

/// Signed collection error (in percent) at percentile `p`.
double collection_error(const PercentileSet& baseline,
                        const PercentileSet& measured, double p);

/// Full report per the paper's definitions. Both sets must be non-empty.
AccuracyReport compare(const PercentileSet& baseline,
                       const PercentileSet& measured);

}  // namespace dart::analytics
