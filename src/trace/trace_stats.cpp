#include "trace/trace_stats.hpp"

#include <unordered_map>

namespace dart::trace {
namespace {

// Handshake progress per connection, keyed by canonical tuple.
struct HandshakeState {
  bool saw_syn = false;
  bool saw_syn_ack = false;
  bool complete = false;
};

}  // namespace

double TraceStats::packets_per_second() const {
  const Timestamp d = duration();
  if (d == 0) return 0.0;
  return static_cast<double>(packets) /
         (static_cast<double>(d) / static_cast<double>(kNsPerSec));
}

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  std::unordered_map<FourTuple, HandshakeState, FourTupleHash> handshakes;

  bool first = true;
  for (const PacketRecord& p : trace.packets()) {
    ++stats.packets;
    if (p.carries_data()) {
      ++stats.data_packets;
    } else if (p.is_ack()) {
      ++stats.pure_acks;
    }
    if (p.is_syn()) ++stats.syn_packets;

    if (first) {
      stats.first_ts = p.ts;
      first = false;
    }
    stats.last_ts = p.ts;

    HandshakeState& hs = handshakes[p.tuple.canonical()];
    if (p.is_syn() && !p.is_ack()) {
      hs.saw_syn = true;
    } else if (p.is_syn() && p.is_ack()) {
      hs.saw_syn_ack = true;
    } else if (hs.saw_syn && hs.saw_syn_ack) {
      // Any non-SYN segment after both handshake halves completes it.
      hs.complete = true;
    }
  }

  stats.connections = handshakes.size();
  for (const auto& [tuple, hs] : handshakes) {
    if (hs.complete) ++stats.complete_handshakes;
  }
  return stats;
}

}  // namespace dart::trace
