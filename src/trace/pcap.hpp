// Export traces as nanosecond-resolution pcap files.
//
// The paper's testbed replays captures with tcpreplay and inspects reports
// with tcpdump (Section 5); this writer closes the loop for the synthetic
// workloads: any generated trace can be opened in Wireshark/tcpdump.
// Frames are synthesized Ethernet+IPv4+TCP with correct lengths, sequence
// and acknowledgment numbers and flags; payload bytes are elided (snap
// length = headers), which standard tools report as truncated captures.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace dart::trace {

/// Nanosecond pcap (magic 0xA1B23C4D), linktype Ethernet.
bool write_pcap(const Trace& trace, std::ostream& out);
bool write_pcap_file(const Trace& trace, const std::string& path);

}  // namespace dart::trace
