#include "trace/trace_io.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

namespace dart::trace {
namespace {

constexpr std::array<char, 4> kMagic = {'D', 'T', 'R', 'C'};

template <typename T>
void put(std::ostream& out, T value) {
  // Serialize little-endian regardless of host order.
  std::array<char, sizeof(T)> bytes;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<char>((static_cast<std::uint64_t>(value) >>
                                  (8 * i)) & 0xFF);
  }
  out.write(bytes.data(), bytes.size());
}

void put_tuple(std::ostream& out, const FourTuple& tuple) {
  put<std::uint32_t>(out, tuple.src_ip.value());
  put<std::uint32_t>(out, tuple.dst_ip.value());
  put<std::uint16_t>(out, tuple.src_port);
  put<std::uint16_t>(out, tuple.dst_port);
}

/// Byte-counting little-endian reader: every failure site knows the stream
/// offset it stopped at, so TraceError can point at the damage.
class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  template <typename T>
  bool get(T& value) {
    std::array<char, sizeof(T)> bytes;
    if (!in_.read(bytes.data(), bytes.size())) return false;
    offset_ += sizeof(T);
    std::uint64_t accum = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      accum |= static_cast<std::uint64_t>(
                   static_cast<std::uint8_t>(bytes[i]))
               << (8 * i);
    }
    value = static_cast<T>(accum);
    return true;
  }

  bool get_tuple(FourTuple& tuple) {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    if (!get(src) || !get(dst) || !get(tuple.src_port) ||
        !get(tuple.dst_port)) {
      return false;
    }
    tuple.src_ip = Ipv4Addr{src};
    tuple.dst_ip = Ipv4Addr{dst};
    return true;
  }

  bool get_magic(std::array<char, 4>& magic) {
    if (!in_.read(magic.data(), magic.size())) return false;
    offset_ += magic.size();
    return true;
  }

  std::uint64_t offset() const { return offset_; }

  /// Bytes from the current position to end-of-stream, when the stream is
  /// seekable; nullopt otherwise (e.g. a pipe).
  std::optional<std::uint64_t> remaining() {
    const auto pos = in_.tellg();
    if (pos == std::istream::pos_type(-1)) return std::nullopt;
    in_.seekg(0, std::ios::end);
    const auto end = in_.tellg();
    in_.seekg(pos);
    if (end == std::istream::pos_type(-1) || end < pos) return std::nullopt;
    return static_cast<std::uint64_t>(end - pos);
  }

 private:
  std::istream& in_;
  std::uint64_t offset_ = 0;
};

TraceReadResult fail(TraceErrorCode code, std::uint64_t offset) {
  TraceReadResult result;
  result.error = {code, offset};
  return result;
}

}  // namespace

const char* to_string(TraceErrorCode code) {
  switch (code) {
    case TraceErrorCode::kNone: return "none";
    case TraceErrorCode::kIoError: return "I/O error";
    case TraceErrorCode::kBadMagic: return "bad magic";
    case TraceErrorCode::kBadVersion: return "unsupported version";
    case TraceErrorCode::kTruncatedHeader: return "truncated header";
    case TraceErrorCode::kImpossibleCount: return "impossible record count";
    case TraceErrorCode::kTruncatedPacket: return "truncated packet record";
    case TraceErrorCode::kTruncatedTruth: return "truncated truth record";
    case TraceErrorCode::kBadFieldValue: return "out-of-range field value";
  }
  return "unknown";
}

std::string TraceError::to_string() const {
  std::string out = trace::to_string(code);
  out += " at byte ";
  out += std::to_string(offset);
  return out;
}

namespace {

template <typename T>
void pack_le(std::uint8_t*& cursor, T value) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    *cursor++ = static_cast<std::uint8_t>(
        (static_cast<std::uint64_t>(value) >> (8 * i)) & 0xFF);
  }
}

template <typename T>
T unpack_le(const std::uint8_t*& cursor) {
  std::uint64_t accum = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    accum |= static_cast<std::uint64_t>(*cursor++) << (8 * i);
  }
  return static_cast<T>(accum);
}

}  // namespace

void encode_packet_record(const PacketRecord& packet, std::uint8_t* out) {
  std::uint8_t* cursor = out;
  pack_le<std::uint64_t>(cursor, packet.ts);
  pack_le<std::uint32_t>(cursor, packet.tuple.src_ip.value());
  pack_le<std::uint32_t>(cursor, packet.tuple.dst_ip.value());
  pack_le<std::uint16_t>(cursor, packet.tuple.src_port);
  pack_le<std::uint16_t>(cursor, packet.tuple.dst_port);
  pack_le<std::uint32_t>(cursor, packet.seq);
  pack_le<std::uint32_t>(cursor, packet.ack);
  pack_le<std::uint16_t>(cursor, packet.payload);
  pack_le<std::uint8_t>(cursor, packet.flags);
  pack_le<std::uint8_t>(cursor, packet.outbound ? 1 : 0);
}

bool decode_packet_record(const std::uint8_t* in, PacketRecord& packet) {
  const std::uint8_t* cursor = in;
  packet.ts = unpack_le<std::uint64_t>(cursor);
  packet.tuple.src_ip = Ipv4Addr{unpack_le<std::uint32_t>(cursor)};
  packet.tuple.dst_ip = Ipv4Addr{unpack_le<std::uint32_t>(cursor)};
  packet.tuple.src_port = unpack_le<std::uint16_t>(cursor);
  packet.tuple.dst_port = unpack_le<std::uint16_t>(cursor);
  packet.seq = unpack_le<std::uint32_t>(cursor);
  packet.ack = unpack_le<std::uint32_t>(cursor);
  packet.payload = unpack_le<std::uint16_t>(cursor);
  packet.flags = unpack_le<std::uint8_t>(cursor);
  const std::uint8_t outbound = unpack_le<std::uint8_t>(cursor);
  if (outbound > 1) return false;
  packet.outbound = outbound != 0;
  return true;
}

bool write_binary(const Trace& trace, std::ostream& out) {
  out.write(kMagic.data(), kMagic.size());
  put<std::uint32_t>(out, kTraceFormatVersion);
  put<std::uint64_t>(out, trace.packets().size());
  put<std::uint64_t>(out, trace.truth().size());
  for (const PacketRecord& p : trace.packets()) {
    put<std::uint64_t>(out, p.ts);
    put_tuple(out, p.tuple);
    put<std::uint32_t>(out, p.seq);
    put<std::uint32_t>(out, p.ack);
    put<std::uint16_t>(out, p.payload);
    put<std::uint8_t>(out, p.flags);
    put<std::uint8_t>(out, p.outbound ? 1 : 0);
  }
  for (const TruthSample& s : trace.truth()) {
    put_tuple(out, s.tuple);
    put<std::uint32_t>(out, s.eack);
    put<std::uint64_t>(out, s.seq_ts);
    put<std::uint64_t>(out, s.ack_ts);
  }
  return static_cast<bool>(out);
}

bool write_binary_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  return out && write_binary(trace, out);
}

TraceReadResult read_binary_checked(std::istream& in,
                                    const TraceReadOptions& options) {
  Reader reader(in);
  if (!in.good()) return fail(TraceErrorCode::kIoError, 0);

  // --- Header: damage here is fatal in every mode. ---
  std::array<char, 4> magic;
  if (!reader.get_magic(magic)) {
    return fail(TraceErrorCode::kTruncatedHeader, reader.offset());
  }
  if (magic != kMagic) return fail(TraceErrorCode::kBadMagic, 0);
  std::uint32_t version = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t truth_count = 0;
  if (!reader.get(version)) {
    return fail(TraceErrorCode::kTruncatedHeader, reader.offset());
  }
  if (version != kTraceFormatVersion) {
    return fail(TraceErrorCode::kBadVersion, reader.offset() - 4);
  }
  if (!reader.get(packet_count) || !reader.get(truth_count)) {
    return fail(TraceErrorCode::kTruncatedHeader, reader.offset());
  }

  // --- Count sanity: never trust a header enough to allocate for it. A
  // corrupt count either provably exceeds the stream (seekable: reject or
  // tolerate as full-stream truncation) or is capped for reservation so a
  // hostile header cannot demand terabytes before the first record fails.
  const std::optional<std::uint64_t> remaining = reader.remaining();
  bool counts_impossible = false;
  if (remaining.has_value()) {
    const std::uint64_t max_packets = *remaining / kPacketRecordBytes;
    const std::uint64_t max_truth = *remaining / kTruthRecordBytes;
    if (packet_count > max_packets || truth_count > max_truth ||
        (packet_count * kPacketRecordBytes +
             truth_count * kTruthRecordBytes >
         *remaining)) {
      counts_impossible = true;
    }
  }
  if (counts_impossible && !options.tolerant) {
    return fail(TraceErrorCode::kImpossibleCount, kHeaderBytes - 16);
  }

  TraceReadResult result;
  if (counts_impossible) {
    result.error = {TraceErrorCode::kImpossibleCount, kHeaderBytes - 16};
  }
  Trace trace;
  const std::uint64_t reserve_cap =
      remaining.has_value() ? *remaining / kPacketRecordBytes
                            : std::uint64_t{1} << 20;
  trace.packets().reserve(static_cast<std::size_t>(
      std::min(packet_count, reserve_cap)));

  // --- Packet records. ---
  for (std::uint64_t i = 0; i < packet_count; ++i) {
    const std::uint64_t record_start = reader.offset();
    PacketRecord p;
    std::uint8_t outbound = 0;
    if (!reader.get(p.ts) || !reader.get_tuple(p.tuple) ||
        !reader.get(p.seq) || !reader.get(p.ack) || !reader.get(p.payload) ||
        !reader.get(p.flags) || !reader.get(outbound)) {
      if (!options.tolerant) {
        return fail(TraceErrorCode::kTruncatedPacket, record_start);
      }
      if (!result.error) {
        result.error = {TraceErrorCode::kTruncatedPacket, record_start};
      }
      result.lost_records += (packet_count - i) + truth_count;
      result.trace = std::move(trace);
      return result;
    }
    if (outbound > 1) {
      if (!options.tolerant) {
        return fail(TraceErrorCode::kBadFieldValue, record_start);
      }
      if (!result.error) {
        result.error = {TraceErrorCode::kBadFieldValue, record_start};
      }
      ++result.skipped_records;
      continue;
    }
    p.outbound = outbound != 0;
    trace.add(p);
    ++result.packets_read;
  }

  // --- Truth records. ---
  trace.truth().reserve(static_cast<std::size_t>(
      std::min(truth_count, remaining.has_value()
                                ? *remaining / kTruthRecordBytes
                                : std::uint64_t{1} << 20)));
  for (std::uint64_t i = 0; i < truth_count; ++i) {
    const std::uint64_t record_start = reader.offset();
    TruthSample s;
    if (!reader.get_tuple(s.tuple) || !reader.get(s.eack) ||
        !reader.get(s.seq_ts) || !reader.get(s.ack_ts)) {
      if (!options.tolerant) {
        return fail(TraceErrorCode::kTruncatedTruth, record_start);
      }
      if (!result.error) {
        result.error = {TraceErrorCode::kTruncatedTruth, record_start};
      }
      result.lost_records += truth_count - i;
      result.trace = std::move(trace);
      return result;
    }
    // A truth RTT must be non-negative: ack observed before its data
    // packet is an impossible record, not a measurement.
    if (s.ack_ts < s.seq_ts) {
      if (!options.tolerant) {
        return fail(TraceErrorCode::kBadFieldValue, record_start);
      }
      if (!result.error) {
        result.error = {TraceErrorCode::kBadFieldValue, record_start};
      }
      ++result.skipped_records;
      continue;
    }
    trace.add_truth(s);
    ++result.truth_read;
  }

  result.trace = std::move(trace);
  return result;
}

TraceReadResult read_binary_checked_file(const std::string& path,
                                         const TraceReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(TraceErrorCode::kIoError, 0);
  return read_binary_checked(in, options);
}

std::optional<Trace> read_binary(std::istream& in) {
  TraceReadResult result = read_binary_checked(in);
  if (!result.ok()) return std::nullopt;
  return std::move(result.trace);
}

std::optional<Trace> read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return read_binary(in);
}

bool write_csv(const Trace& trace, std::ostream& out) {
  out << "ts_ns,src_ip,src_port,dst_ip,dst_port,seq,ack,payload,flags,"
         "outbound\n";
  for (const PacketRecord& p : trace.packets()) {
    out << p.ts << ',' << p.tuple.src_ip.to_string() << ',' << p.tuple.src_port
        << ',' << p.tuple.dst_ip.to_string() << ',' << p.tuple.dst_port << ','
        << p.seq << ',' << p.ack << ',' << p.payload << ','
        << static_cast<unsigned>(p.flags) << ',' << (p.outbound ? 1 : 0)
        << '\n';
  }
  return static_cast<bool>(out);
}

bool write_csv_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  return out && write_csv(trace, out);
}

}  // namespace dart::trace
