#include "trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <ostream>

namespace dart::trace {
namespace {

constexpr std::array<char, 4> kMagic = {'D', 'T', 'R', 'C'};

template <typename T>
void put(std::ostream& out, T value) {
  // Serialize little-endian regardless of host order.
  std::array<char, sizeof(T)> bytes;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<char>((static_cast<std::uint64_t>(value) >>
                                  (8 * i)) & 0xFF);
  }
  out.write(bytes.data(), bytes.size());
}

template <typename T>
bool get(std::istream& in, T& value) {
  std::array<char, sizeof(T)> bytes;
  if (!in.read(bytes.data(), bytes.size())) return false;
  std::uint64_t accum = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    accum |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[i]))
             << (8 * i);
  }
  value = static_cast<T>(accum);
  return true;
}

void put_tuple(std::ostream& out, const FourTuple& tuple) {
  put<std::uint32_t>(out, tuple.src_ip.value());
  put<std::uint32_t>(out, tuple.dst_ip.value());
  put<std::uint16_t>(out, tuple.src_port);
  put<std::uint16_t>(out, tuple.dst_port);
}

bool get_tuple(std::istream& in, FourTuple& tuple) {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  if (!get(in, src) || !get(in, dst) || !get(in, tuple.src_port) ||
      !get(in, tuple.dst_port)) {
    return false;
  }
  tuple.src_ip = Ipv4Addr{src};
  tuple.dst_ip = Ipv4Addr{dst};
  return true;
}

}  // namespace

bool write_binary(const Trace& trace, std::ostream& out) {
  out.write(kMagic.data(), kMagic.size());
  put<std::uint32_t>(out, kTraceFormatVersion);
  put<std::uint64_t>(out, trace.packets().size());
  put<std::uint64_t>(out, trace.truth().size());
  for (const PacketRecord& p : trace.packets()) {
    put<std::uint64_t>(out, p.ts);
    put_tuple(out, p.tuple);
    put<std::uint32_t>(out, p.seq);
    put<std::uint32_t>(out, p.ack);
    put<std::uint16_t>(out, p.payload);
    put<std::uint8_t>(out, p.flags);
    put<std::uint8_t>(out, p.outbound ? 1 : 0);
  }
  for (const TruthSample& s : trace.truth()) {
    put_tuple(out, s.tuple);
    put<std::uint32_t>(out, s.eack);
    put<std::uint64_t>(out, s.seq_ts);
    put<std::uint64_t>(out, s.ack_ts);
  }
  return static_cast<bool>(out);
}

bool write_binary_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  return out && write_binary(trace, out);
}

std::optional<Trace> read_binary(std::istream& in) {
  std::array<char, 4> magic;
  if (!in.read(magic.data(), magic.size()) || magic != kMagic) {
    return std::nullopt;
  }
  std::uint32_t version = 0;
  std::uint64_t packet_count = 0;
  std::uint64_t truth_count = 0;
  if (!get(in, version) || version != kTraceFormatVersion ||
      !get(in, packet_count) || !get(in, truth_count)) {
    return std::nullopt;
  }

  Trace trace;
  trace.packets().reserve(packet_count);
  for (std::uint64_t i = 0; i < packet_count; ++i) {
    PacketRecord p;
    std::uint8_t outbound = 0;
    if (!get(in, p.ts) || !get_tuple(in, p.tuple) || !get(in, p.seq) ||
        !get(in, p.ack) || !get(in, p.payload) || !get(in, p.flags) ||
        !get(in, outbound)) {
      return std::nullopt;
    }
    p.outbound = outbound != 0;
    trace.add(p);
  }
  trace.truth().reserve(truth_count);
  for (std::uint64_t i = 0; i < truth_count; ++i) {
    TruthSample s;
    if (!get_tuple(in, s.tuple) || !get(in, s.eack) || !get(in, s.seq_ts) ||
        !get(in, s.ack_ts)) {
      return std::nullopt;
    }
    trace.add_truth(s);
  }
  return trace;
}

std::optional<Trace> read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return read_binary(in);
}

bool write_csv(const Trace& trace, std::ostream& out) {
  out << "ts_ns,src_ip,src_port,dst_ip,dst_port,seq,ack,payload,flags,"
         "outbound\n";
  for (const PacketRecord& p : trace.packets()) {
    out << p.ts << ',' << p.tuple.src_ip.to_string() << ',' << p.tuple.src_port
        << ',' << p.tuple.dst_ip.to_string() << ',' << p.tuple.dst_port << ','
        << p.seq << ',' << p.ack << ',' << p.payload << ','
        << static_cast<unsigned>(p.flags) << ',' << (p.outbound ? 1 : 0)
        << '\n';
  }
  return static_cast<bool>(out);
}

bool write_csv_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  return out && write_csv(trace, out);
}

}  // namespace dart::trace
