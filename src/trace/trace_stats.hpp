// Trace summary statistics.
//
// Mirrors the trace characterization the paper reports for its campus
// capture (Section 6: 1.38M TCP connections, 135.78M packets, 15 minutes;
// Figure 10: 72.5% of connections never complete the handshake) so bench
// harnesses can print the same summary rows for the synthetic workload.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace dart::trace {

struct TraceStats {
  std::uint64_t packets = 0;
  std::uint64_t data_packets = 0;  ///< seq_span() > 0 (includes SYN/FIN).
  std::uint64_t pure_acks = 0;
  std::uint64_t syn_packets = 0;  ///< SYN or SYN-ACK.
  std::uint64_t connections = 0;  ///< Distinct canonical 4-tuples.
  std::uint64_t complete_handshakes = 0;  ///< SYN, SYN-ACK and a third
                                          ///< segment from the initiator.
  Timestamp first_ts = 0;
  Timestamp last_ts = 0;

  constexpr Timestamp duration() const {
    return last_ts >= first_ts ? last_ts - first_ts : 0;
  }
  constexpr std::uint64_t incomplete_handshakes() const {
    return connections - complete_handshakes;
  }
  double packets_per_second() const;
};

TraceStats compute_stats(const Trace& trace);

}  // namespace dart::trace
