// Packet traces: the input to every monitor in this repository.
//
// A Trace is a time-ordered sequence of PacketRecords observed at a single
// monitoring vantage point, standing in for the paper's anonymized campus
// captures. Alongside the packets, a trace may carry the generator's ground
// truth — the set of (flow, eACK, RTT) samples a perfect monitor with
// unlimited memory would collect — used to validate monitor accuracy.
#pragma once

#include <cstdint>
#include <vector>

#include "common/packet.hpp"

namespace dart::trace {

/// A ground-truth RTT sample recorded by the workload generator: data packet
/// with expected ACK `eack` on flow `tuple` crossed the monitor at `seq_ts`
/// and its acknowledgment crossed back at `ack_ts`.
struct TruthSample {
  FourTuple tuple{};  ///< Data (SEQ) direction tuple.
  SeqNum eack = 0;
  Timestamp seq_ts = 0;
  Timestamp ack_ts = 0;

  constexpr Timestamp rtt() const { return ack_ts - seq_ts; }

  friend constexpr bool operator==(const TruthSample&, const TruthSample&) =
      default;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<PacketRecord> packets)
      : packets_(std::move(packets)) {}

  const std::vector<PacketRecord>& packets() const { return packets_; }
  std::vector<PacketRecord>& packets() { return packets_; }

  const std::vector<TruthSample>& truth() const { return truth_; }
  std::vector<TruthSample>& truth() { return truth_; }

  std::size_t size() const { return packets_.size(); }
  bool empty() const { return packets_.empty(); }

  void add(PacketRecord packet) { packets_.push_back(packet); }
  void add_truth(TruthSample sample) { truth_.push_back(sample); }

  /// Stable-sort packets by timestamp (generators emit per-flow streams that
  /// must be interleaved). Ground truth is sorted by SEQ timestamp.
  void sort_by_time();

  /// True if packets are non-decreasing in timestamp.
  bool is_time_ordered() const;

  /// Append another trace's packets and truth (does not re-sort).
  void append(const Trace& other);

 private:
  std::vector<PacketRecord> packets_;
  std::vector<TruthSample> truth_;
};

/// Merge traces into one time-ordered trace (k-way by timestamp).
Trace merge(std::vector<Trace> traces);

}  // namespace dart::trace
