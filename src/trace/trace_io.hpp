// Binary (.dtrc) and CSV serialization for traces.
//
// The binary format is a fixed little-endian layout so regenerated workloads
// can be cached on disk between benchmark runs:
//
//   header:  magic "DTRC" | u32 version | u64 packet count | u64 truth count
//   packets: u64 ts | u32 src_ip | u32 dst_ip | u16 sport | u16 dport |
//            u32 seq | u32 ack | u16 payload | u8 flags | u8 outbound
//   truth:   u32 src_ip | u32 dst_ip | u16 sport | u16 dport | u32 eack |
//            u64 seq_ts | u64 ack_ts
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace dart::trace {

inline constexpr std::uint32_t kTraceFormatVersion = 1;

/// Serialize to a stream; returns false on I/O error.
bool write_binary(const Trace& trace, std::ostream& out);
bool write_binary_file(const Trace& trace, const std::string& path);

/// Deserialize; returns nullopt on bad magic, version, or truncated input.
std::optional<Trace> read_binary(std::istream& in);
std::optional<Trace> read_binary_file(const std::string& path);

/// Human-readable packet CSV (header row included); for debugging and for
/// feeding external plotting scripts.
bool write_csv(const Trace& trace, std::ostream& out);
bool write_csv_file(const Trace& trace, const std::string& path);

}  // namespace dart::trace
