// Binary (.dtrc) and CSV serialization for traces.
//
// The binary format is a fixed little-endian layout so regenerated workloads
// can be cached on disk between benchmark runs:
//
//   header:  magic "DTRC" | u32 version | u64 packet count | u64 truth count
//   packets: u64 ts | u32 src_ip | u32 dst_ip | u16 sport | u16 dport |
//            u32 seq | u32 ack | u16 payload | u8 flags | u8 outbound
//   truth:   u32 src_ip | u32 dst_ip | u16 sport | u16 dport | u32 eack |
//            u64 seq_ts | u64 ack_ts
//
// Reading is hardened: a damaged capture is a *diagnosed* condition, never
// undefined behaviour. read_binary_checked() returns a typed TraceError
// (what went wrong, at which byte offset) plus per-record accounting; a
// tolerant mode mirrors how a real collector must survive a corrupt
// capture — skip bad records, keep the readable prefix of a truncated
// file, and count what was lost instead of aborting. Declared record
// counts are validated against the stream size before any allocation, so
// a corrupt header cannot demand terabytes of memory.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace dart::trace {

inline constexpr std::uint32_t kTraceFormatVersion = 1;

/// Serialized sizes (bytes) of one record of each stream; used for the
/// header-count sanity check and by tests that build corrupt corpora.
inline constexpr std::uint64_t kPacketRecordBytes = 32;
inline constexpr std::uint64_t kTruthRecordBytes = 32;
inline constexpr std::uint64_t kHeaderBytes = 4 + 4 + 8 + 8;

/// Serialize to a stream; returns false on I/O error.
bool write_binary(const Trace& trace, std::ostream& out);
bool write_binary_file(const Trace& trace, const std::string& path);

/// Wire codec for a single packet record: exactly the 32-byte little-endian
/// layout of the .dtrc packet stream, exposed for byte-stream ingest (the
/// daemon's socket source) so live feeds and file replay share one format
/// instead of growing a second, subtly different framing.
void encode_packet_record(const PacketRecord& packet,
                          std::uint8_t* out /* kPacketRecordBytes */);

/// Returns false when a field is out of range (outbound flag > 1) — the
/// same validation read_binary_checked applies per record.
bool decode_packet_record(const std::uint8_t* in /* kPacketRecordBytes */,
                          PacketRecord& packet);

enum class TraceErrorCode : std::uint8_t {
  kNone = 0,
  kIoError,           ///< stream unreadable before any parsing
  kBadMagic,          ///< not a DTRC file
  kBadVersion,        ///< unsupported format version
  kTruncatedHeader,   ///< EOF inside the fixed header
  kImpossibleCount,   ///< declared records cannot fit the stream
  kTruncatedPacket,   ///< EOF inside a packet record
  kTruncatedTruth,    ///< EOF inside a truth record
  kBadFieldValue,     ///< a field holds an out-of-range value
};

const char* to_string(TraceErrorCode code);

struct TraceError {
  TraceErrorCode code = TraceErrorCode::kNone;
  /// Byte offset into the stream where the error was detected (start of
  /// the offending record or field).
  std::uint64_t offset = 0;

  explicit operator bool() const { return code != TraceErrorCode::kNone; }
  std::string to_string() const;
};

struct TraceReadOptions {
  /// Collector mode: skip records with out-of-range fields (counted in
  /// `skipped_records`) and keep the readable prefix of a truncated
  /// stream (missing records counted in `lost_records`) instead of
  /// failing the whole read. Header damage (magic/version/truncation
  /// inside the header) is fatal in every mode — there is nothing to
  /// salvage without a trusted header.
  bool tolerant = false;
};

struct TraceReadResult {
  /// Present on success; in tolerant mode also present (possibly partial)
  /// after record-level damage. Absent only on fatal errors.
  std::optional<Trace> trace;

  /// kNone when the stream was fully clean. In tolerant mode a set error
  /// alongside a present trace means "partial read": `error` describes
  /// the first damage encountered.
  TraceError error;

  std::uint64_t packets_read = 0;
  std::uint64_t truth_read = 0;
  std::uint64_t skipped_records = 0;  ///< corrupt records dropped (tolerant)
  std::uint64_t lost_records = 0;     ///< declared but missing (truncation)

  /// Fully clean read: a trace with no damage at all.
  bool ok() const { return trace.has_value() && !error; }

  /// A usable trace was produced but some input was skipped or lost.
  bool degraded() const {
    return trace.has_value() &&
           (error || skipped_records != 0 || lost_records != 0);
  }
};

/// Hardened deserialization with typed errors and tolerant-mode salvage.
TraceReadResult read_binary_checked(std::istream& in,
                                    const TraceReadOptions& options = {});
TraceReadResult read_binary_checked_file(const std::string& path,
                                         const TraceReadOptions& options = {});

/// Strict convenience wrappers; nullopt on any damage (bad magic, version,
/// truncated input, out-of-range fields).
std::optional<Trace> read_binary(std::istream& in);
std::optional<Trace> read_binary_file(const std::string& path);

/// Human-readable packet CSV (header row included); for debugging and for
/// feeding external plotting scripts.
bool write_csv(const Trace& trace, std::ostream& out);
bool write_csv_file(const Trace& trace, const std::string& path);

}  // namespace dart::trace
