#include "trace/trace.hpp"

#include <algorithm>
#include <queue>

namespace dart::trace {

void Trace::sort_by_time() {
  std::stable_sort(
      packets_.begin(), packets_.end(),
      [](const PacketRecord& a, const PacketRecord& b) { return a.ts < b.ts; });
  std::stable_sort(truth_.begin(), truth_.end(),
                   [](const TruthSample& a, const TruthSample& b) {
                     return a.seq_ts < b.seq_ts;
                   });
}

bool Trace::is_time_ordered() const {
  for (std::size_t i = 1; i < packets_.size(); ++i) {
    if (packets_[i].ts < packets_[i - 1].ts) return false;
  }
  return true;
}

void Trace::append(const Trace& other) {
  packets_.insert(packets_.end(), other.packets_.begin(),
                  other.packets_.end());
  truth_.insert(truth_.end(), other.truth_.begin(), other.truth_.end());
}

Trace merge(std::vector<Trace> traces) {
  // Heap of (next packet index, trace index) ordered by timestamp; each
  // input is assumed time-ordered (generator output always is).
  struct Cursor {
    std::size_t trace;
    std::size_t index;
  };
  auto later = [&traces](const Cursor& a, const Cursor& b) {
    return traces[a.trace].packets()[a.index].ts >
           traces[b.trace].packets()[b.index].ts;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(
      later);

  Trace out;
  std::size_t total = 0;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    total += traces[t].size();
    if (!traces[t].empty()) heap.push(Cursor{t, 0});
  }
  out.packets().reserve(total);

  while (!heap.empty()) {
    Cursor cursor = heap.top();
    heap.pop();
    out.add(traces[cursor.trace].packets()[cursor.index]);
    if (cursor.index + 1 < traces[cursor.trace].size()) {
      heap.push(Cursor{cursor.trace, cursor.index + 1});
    }
  }

  for (const Trace& t : traces) {
    out.truth().insert(out.truth().end(), t.truth().begin(), t.truth().end());
  }
  std::stable_sort(out.truth().begin(), out.truth().end(),
                   [](const TruthSample& a, const TruthSample& b) {
                     return a.seq_ts < b.seq_ts;
                   });
  return out;
}

}  // namespace dart::trace
