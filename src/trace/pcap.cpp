#include "trace/pcap.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <fstream>
#include <ostream>

namespace dart::trace {
namespace {

constexpr std::size_t kEthLen = 14;
constexpr std::size_t kIpLen = 20;
constexpr std::size_t kTcpLen = 20;
constexpr std::size_t kFrameLen = kEthLen + kIpLen + kTcpLen;

void put_u16be(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

void put_u32be(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

template <typename T>
void put_host(std::ostream& out, T value) {
  // pcap file headers are written in host order; readers detect via magic.
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

std::uint16_t ip_checksum(const std::uint8_t* header, std::size_t words) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < words; ++i) {
    sum += static_cast<std::uint32_t>(header[2 * i]) << 8 |
           header[2 * i + 1];
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace

bool write_pcap(const Trace& trace, std::ostream& out) {
  // Global header: nanosecond magic, v2.4, Ethernet.
  put_host<std::uint32_t>(out, 0xA1B23C4DU);
  put_host<std::uint16_t>(out, 2);
  put_host<std::uint16_t>(out, 4);
  put_host<std::int32_t>(out, 0);
  put_host<std::uint32_t>(out, 0);
  put_host<std::uint32_t>(out, 65535);
  put_host<std::uint32_t>(out, 1);  // LINKTYPE_ETHERNET

  std::array<std::uint8_t, kFrameLen> frame{};
  for (const PacketRecord& p : trace.packets()) {
    // The IPv4 total-length field is 16 bits; payloads above 65495 bytes
    // (65535 - the two header lengths) cannot be represented and used to
    // wrap silently to a tiny bogus length. Clamp to the field's maximum
    // instead: the capture stays parseable and the on-wire length is the
    // closest representable value.
    const std::uint32_t ip_total_wide =
        static_cast<std::uint32_t>(kIpLen + kTcpLen) + p.payload;
    const std::uint16_t ip_total = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(ip_total_wide, 65535));

    // Record header.
    put_host<std::uint32_t>(out,
                            static_cast<std::uint32_t>(p.ts / kNsPerSec));
    put_host<std::uint32_t>(out,
                            static_cast<std::uint32_t>(p.ts % kNsPerSec));
    put_host<std::uint32_t>(out, kFrameLen);               // captured
    put_host<std::uint32_t>(out, kEthLen + ip_total);      // on the wire

    frame.fill(0);
    // Ethernet: locally administered MACs encoding the direction.
    frame[0] = frame[6] = 0x02;
    frame[5] = p.outbound ? 0x01 : 0x02;  // dst
    frame[11] = p.outbound ? 0x02 : 0x01; // src
    put_u16be(&frame[12], 0x0800);

    // IPv4.
    std::uint8_t* ip = frame.data() + kEthLen;
    ip[0] = 0x45;
    put_u16be(ip + 2, ip_total);
    ip[8] = 64;  // TTL
    ip[9] = 6;   // TCP
    put_u32be(ip + 12, p.tuple.src_ip.value());
    put_u32be(ip + 16, p.tuple.dst_ip.value());
    put_u16be(ip + 10, 0);
    put_u16be(ip + 10, ip_checksum(ip, kIpLen / 2));

    // TCP.
    std::uint8_t* tcp = frame.data() + kEthLen + kIpLen;
    put_u16be(tcp + 0, p.tuple.src_port);
    put_u16be(tcp + 2, p.tuple.dst_port);
    put_u32be(tcp + 4, p.seq);
    put_u32be(tcp + 8, p.ack);
    tcp[12] = 0x50;  // data offset 5 words
    tcp[13] = p.flags;
    put_u16be(tcp + 14, 65535);  // window

    out.write(reinterpret_cast<const char*>(frame.data()), frame.size());
  }
  return static_cast<bool>(out);
}

bool write_pcap_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  return out && write_pcap(trace, out);
}

}  // namespace dart::trace
