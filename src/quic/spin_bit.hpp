// QUIC spin-bit RTT observation (Section 7, "Extending Dart to QUIC").
//
// QUIC encrypts sequence/ack numbers, so Dart's SEQ/ACK matching cannot
// work. The spin bit is QUIC's explicit concession to passive measurement:
// the client sets the bit to the complement of the last value it saw from
// the server, and the server reflects the last value it saw from the
// client. At any on-path observer, the client-to-server bit stream forms a
// square wave whose period is one end-to-end RTT.
//
// The paper's critique, which this module lets us quantify against Dart:
//   * at most ONE RTT sample per round trip (vs per-packet for Dart);
//   * no way to detect reordering/retransmission, so a reordered packet
//     with a stale spin value silently corrupts an edge measurement.
//
// Packets are carried in the ordinary PacketRecord; QUIC-ness and the spin
// value are flagged in two reserved bits (TCP and QUIC packets never mix
// within a flow).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "common/packet.hpp"
#include "core/rtt_sample.hpp"

namespace dart::quic {

/// Reserved PacketRecord flag bits for QUIC packets.
inline constexpr std::uint8_t kQuicFlag = 0x40;
inline constexpr std::uint8_t kSpinFlag = 0x80;

constexpr bool is_quic(const PacketRecord& packet) {
  return (packet.flags & kQuicFlag) != 0;
}
constexpr bool spin_value(const PacketRecord& packet) {
  return (packet.flags & kSpinFlag) != 0;
}

struct SpinStats {
  std::uint64_t packets_processed = 0;
  std::uint64_t quic_packets = 0;
  std::uint64_t edges = 0;    ///< observed spin transitions
  std::uint64_t samples = 0;  ///< emitted RTT samples (edges after warmup)
  std::uint64_t flows = 0;
};

/// Passive spin-bit observer: watches the outbound (client-to-server)
/// direction and emits one sample per spin transition.
class SpinBitMonitor {
 public:
  explicit SpinBitMonitor(core::SampleCallback on_sample = {});

  void process(const PacketRecord& packet);
  void process_all(std::span<const PacketRecord> packets);

  const SpinStats& stats() const { return stats_; }

 private:
  struct FlowState {
    bool seen = false;
    bool last_spin = false;
    Timestamp last_edge_ts = 0;
    bool have_edge = false;  ///< a first edge exists: next edge is a sample
  };

  core::SampleCallback on_sample_;
  SpinStats stats_;
  std::unordered_map<FourTuple, FlowState, FourTupleHash> flows_;
};

}  // namespace dart::quic
