#include "quic/spin_bit.hpp"

namespace dart::quic {

SpinBitMonitor::SpinBitMonitor(core::SampleCallback on_sample)
    : on_sample_(std::move(on_sample)) {}

void SpinBitMonitor::process(const PacketRecord& packet) {
  ++stats_.packets_processed;
  if (!is_quic(packet) || !packet.outbound) return;
  ++stats_.quic_packets;

  auto [it, inserted] = flows_.try_emplace(packet.tuple);
  FlowState& flow = it->second;
  if (inserted) ++stats_.flows;

  const bool spin = spin_value(packet);
  if (!flow.seen) {
    flow.seen = true;
    flow.last_spin = spin;
    return;
  }
  if (spin == flow.last_spin) return;

  // A spin transition: the square wave flipped. The interval between
  // consecutive transitions is one end-to-end RTT.
  flow.last_spin = spin;
  ++stats_.edges;
  if (flow.have_edge) {
    ++stats_.samples;
    if (on_sample_) {
      core::RttSample sample;
      sample.tuple = packet.tuple;
      sample.eack = 0;  // QUIC exposes no sequence numbers
      sample.seq_ts = flow.last_edge_ts;
      sample.ack_ts = packet.ts;
      sample.leg = core::LegMode::kBoth;  // end-to-end, not per leg
      on_sample_(sample);
    }
  }
  flow.have_edge = true;
  flow.last_edge_ts = packet.ts;
}

void SpinBitMonitor::process_all(std::span<const PacketRecord> packets) {
  for (const PacketRecord& packet : packets) process(packet);
}

}  // namespace dart::quic
