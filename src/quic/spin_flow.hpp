// Generator for QUIC-like flows carrying the latency spin bit (Section 7).
//
// Both endpoints transmit packets at a fixed interval (QUIC sends
// ack-eliciting traffic continuously on an active connection); each follows
// the spin-bit rules: the client sets its bit to the complement of the last
// bit it received from the server, the server reflects the last bit it
// received from the client. The resulting client-to-server stream observed
// at the monitor is a square wave with one transition per end-to-end RTT.
#pragma once

#include "common/four_tuple.hpp"
#include "gen/rtt_model.hpp"
#include "trace/trace.hpp"

namespace dart::quic {

struct SpinFlowProfile {
  FourTuple tuple{};  ///< client -> server; such packets are outbound.
  Timestamp start = 0;
  Timestamp duration = sec(10);
  Timestamp send_interval = msec(2);  ///< per-endpoint packet spacing

  gen::RttModelPtr internal;  ///< client <-> monitor
  gen::RttModelPtr external;  ///< monitor <-> server

  double loss = 0.0;          ///< per packet, anywhere on the path
  double reorder_prob = 0.0;  ///< upstream-of-monitor extra delay
  Timestamp reorder_extra = msec(3);

  std::uint64_t seed = 1;
};

/// Simulate one spinning connection; returns the monitor-observed packet
/// stream (flags carry kQuicFlag and kSpinFlag; no ground-truth samples —
/// QUIC exposes no sequence numbers to match).
trace::Trace simulate_spin_flow(const SpinFlowProfile& profile);

}  // namespace dart::quic
