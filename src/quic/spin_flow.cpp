#include "quic/spin_flow.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <vector>

#include "quic/spin_bit.hpp"

namespace dart::quic {
namespace {

enum class EventKind : std::uint8_t { kSend, kCross, kArrive };

struct Event {
  Timestamp t = 0;
  std::uint64_t order = 0;
  EventKind kind = EventKind::kSend;
  bool from_client = false;
  bool spin = false;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.order > b.order;
  }
};

class SpinSim {
 public:
  explicit SpinSim(const SpinFlowProfile& profile)
      : p_(profile), rng_(mix64(profile.seed ^ hash_tuple(profile.tuple))) {}

  trace::Trace run() {
    schedule_send(p_.start, /*from_client=*/true);
    schedule_send(p_.start + p_.send_interval / 2, /*from_client=*/false);

    while (!queue_.empty()) {
      const Event event = queue_.top();
      queue_.pop();
      switch (event.kind) {
        case EventKind::kSend:
          on_send(event);
          break;
        case EventKind::kCross:
          on_cross(event);
          break;
        case EventKind::kArrive:
          // Spin update rules: the client inverts what it hears, the
          // server reflects it.
          if (event.from_client) {
            server_spin_ = event.spin;
          } else {
            client_spin_ = !event.spin;
          }
          break;
      }
    }
    trace_.sort_by_time();
    return std::move(trace_);
  }

 private:
  void push(Timestamp t, Event event) {
    event.t = t;
    event.order = next_order_++;
    queue_.push(std::move(event));
  }

  void schedule_send(Timestamp t, bool from_client) {
    Event event;
    event.kind = EventKind::kSend;
    event.from_client = from_client;
    push(t, std::move(event));
  }

  void on_send(const Event& event) {
    const bool spin = event.from_client ? client_spin_ : server_spin_;
    transmit(event.from_client, spin, event.t);
    const Timestamp next = event.t + p_.send_interval;
    if (next < p_.start + p_.duration) schedule_send(next, event.from_client);
  }

  void transmit(bool from_client, bool spin, Timestamp t) {
    if (p_.loss > 0.0 && rng_.bernoulli(p_.loss)) return;

    const gen::RttModel& sender_leg =
        from_client ? *p_.internal : *p_.external;
    const gen::RttModel& receiver_leg =
        from_client ? *p_.external : *p_.internal;
    Timestamp cross_t = t + sender_leg.sample(t, rng_) / 2;
    Timestamp arrive_t = cross_t + receiver_leg.sample(t, rng_) / 2;

    const bool reordered =
        p_.reorder_prob > 0.0 && rng_.bernoulli(p_.reorder_prob);
    const int dir = from_client ? 0 : 1;
    if (reordered) {
      const Timestamp extra = p_.reorder_extra;
      cross_t += extra;
      arrive_t += extra;
    } else {
      cross_t = std::max(cross_t, last_cross_[dir] + 1);
      arrive_t = std::max(arrive_t, last_arrive_[dir] + 1);
      last_cross_[dir] = cross_t;
      last_arrive_[dir] = arrive_t;
    }

    Event cross;
    cross.kind = EventKind::kCross;
    cross.from_client = from_client;
    cross.spin = spin;
    push(cross_t, std::move(cross));

    Event arrive;
    arrive.kind = EventKind::kArrive;
    arrive.from_client = from_client;
    arrive.spin = spin;
    push(arrive_t, std::move(arrive));
  }

  void on_cross(const Event& event) {
    PacketRecord packet;
    packet.ts = event.t;
    packet.tuple = event.from_client ? p_.tuple : p_.tuple.reversed();
    packet.payload = 1200;  // typical QUIC datagram
    packet.flags = kQuicFlag;
    if (event.spin) packet.flags |= kSpinFlag;
    packet.outbound = event.from_client;
    trace_.add(packet);
  }

  const SpinFlowProfile& p_;
  Rng rng_;
  trace::Trace trace_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::uint64_t next_order_ = 0;
  bool client_spin_ = true;  // first flip after the first server echo
  bool server_spin_ = false;
  Timestamp last_cross_[2] = {0, 0};
  Timestamp last_arrive_[2] = {0, 0};
};

}  // namespace

trace::Trace simulate_spin_flow(const SpinFlowProfile& profile) {
  assert(profile.internal && profile.external &&
         "SpinFlowProfile requires RTT models for both legs");
  return SpinSim(profile).run();
}

}  // namespace dart::quic
