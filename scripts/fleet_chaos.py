#!/usr/bin/env python3
"""Process-level chaos harness for the fleet aggregation subsystem.

Runs a *real* fleet: one ``dart-fleet vantage`` subprocess per vantage over
deterministic slices of the shared campus workload, some of them carrying
exporter-side faults (crash, torn frame, duplicate delivery, reordering),
then collects the spool twice and asserts the hard guarantees:

  1. byte-stability  — two independent collections over the same spool
                       produce identical merged reports;
  2. identity        — ``dart-fleet check`` accepts the report: per vantage
                       and in aggregate,
                       processed + shed + abandoned + lost_to_crash
                         + lost_to_vantage == routed;
  3. exact loss      — the faulted fleet's processed + lost_to_vantage
                       equals the clean baseline's processed, per vantage:
                       nothing vanishes without being accounted;
  4. quarantine      — the torn and duplicated frames show up in the
                       quarantine counters (and nothing else does), and
                       the collector exits 0: corrupt frames never crash it;
  5. crash fidelity  — the killed vantage's process really died with the
                       dedicated exit code (3), not a clean shutdown.

Requires a DART_FAULT_INJECTION build::

    cmake -B build-fi -S . -DDART_FAULT_INJECTION=ON
    cmake --build build-fi --target dart-fleet
    scripts/fleet_chaos.py --binary build-fi/src/tools/dart-fleet

Exit status: 0 if every assertion holds, 1 otherwise.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

EXIT_KILLED = 3

FAILURES = []


def fail(message: str) -> None:
    FAILURES.append(message)
    print(f"FAIL: {message}", file=sys.stderr)


def note(message: str) -> None:
    print(f"chaos: {message}")


def collect(binary, spool, fleet, out_path):
    cmd = [
        binary, "collect",
        "--spool", spool,
        "--vantages", str(fleet),
        "--fence-after", "3",
        "--max-attempts", "16",
        "--poll-base-ms", "5",
        "--poll-max-ms", "20",
        "--quiet", "--check",
        "--out", out_path,
    ]
    return subprocess.run(cmd, capture_output=True, text=True, check=False)


def parse_report(text: str) -> dict:
    """name or name{vantage="v"} -> int value (fleet counters are counts)."""
    values = {}
    for line in text.splitlines():
        match = re.match(r'^([a-z_]+)(\{[^}]*\})? (\d+)$', line)
        if match:
            values[match.group(1) + (match.group(2) or "")] = int(
                match.group(3))
    return values


def vantage_metric(values, name, vantage):
    return values.get(f'{name}{{vantage="campus-{vantage}"}}', 0)


def run_fleet(binary, spool, args, faults_by_vantage):
    """Launch every vantage process concurrently; return exit codes."""
    procs = {}
    for vantage in range(args.vantages):
        extra = list(faults_by_vantage.get(vantage, ()))
        if vantage in faults_by_vantage:
            note(f"vantage {vantage}: faults {' '.join(extra)}")
        cmd = [
            binary, "vantage",
            "--id", str(vantage),
            "--vantages", str(args.vantages),
            "--spool", spool,
            "--seed", str(args.seed),
            "--connections", str(args.connections),
            "--epochs", str(args.epochs),
            *extra,
        ]
        procs[vantage] = subprocess.Popen(
            cmd, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    codes = {}
    for vantage, proc in procs.items():
        _, stderr = proc.communicate(timeout=args.timeout)
        codes[vantage] = proc.returncode
        if proc.returncode not in (0, EXIT_KILLED):
            fail(f"vantage {vantage} exited {proc.returncode}: "
                 f"{stderr.strip()}")
    return codes


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", required=True,
                        help="path to a DART_FAULT_INJECTION dart-fleet")
    parser.add_argument("--vantages", type=int, default=4)
    parser.add_argument("--connections", type=int, default=600)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--timeout", type=int, default=120,
                        help="per-process timeout, seconds")
    parser.add_argument("--workdir", default=None,
                        help="keep artifacts here instead of a temp dir")
    args = parser.parse_args()

    binary = os.path.abspath(args.binary)
    if not os.access(binary, os.X_OK):
        print(f"chaos: {binary} is not executable", file=sys.stderr)
        return 1

    workdir = args.workdir or tempfile.mkdtemp(prefix="fleet-chaos-")
    os.makedirs(workdir, exist_ok=True)
    note(f"workdir {workdir}")

    # --- Clean baseline fleet: the loss-free reference per vantage. ------
    base_spool = os.path.join(workdir, "spool-baseline")
    shutil.rmtree(base_spool, ignore_errors=True)
    run_fleet(binary, base_spool, args, faults_by_vantage={})
    base_report = os.path.join(workdir, "baseline.report")
    result = collect(binary, base_spool, args.vantages, base_report)
    if result.returncode != 0:
        fail(f"baseline collect failed: {result.stderr.strip()}")
        return 1
    baseline = parse_report(open(base_report, encoding="utf-8").read())
    if baseline.get("fleet_vantages_complete") != args.vantages:
        fail("baseline fleet did not complete cleanly")

    # --- Chaos fleet: same workload, faults on three vantages. -----------
    # vantage 1 crashes after 3 frames (manifest + 2 epochs);
    # vantage 2 delivers one torn and one duplicated frame;
    # vantage 3 reorders a mid-stream frame (must heal losslessly).
    faults = {
        1: ("--fault-kill-after", "3"),
        2: ("--fault-truncate", "2:40", "--fault-duplicate", "1"),
        3: ("--fault-reorder", "2"),
    }
    if args.vantages < 4:
        print("chaos: need at least 4 vantages", file=sys.stderr)
        return 1
    chaos_spool = os.path.join(workdir, "spool-chaos")
    shutil.rmtree(chaos_spool, ignore_errors=True)
    codes = run_fleet(binary, chaos_spool, args, faults_by_vantage=faults)

    # 5. crash fidelity: the killed vantage died with the dedicated code.
    if codes.get(1) != EXIT_KILLED:
        fail(f"killed vantage exited {codes.get(1)}, expected {EXIT_KILLED}")
    for vantage, code in codes.items():
        if vantage != 1 and code != 0:
            fail(f"vantage {vantage} exited {code}, expected 0")

    # 4. the collector survives the damage (exit 0 incl. --check) ...
    report_a = os.path.join(workdir, "chaos-a.report")
    result = collect(binary, chaos_spool, args.vantages, report_a)
    if result.returncode != 0:
        fail(f"chaos collect failed: {result.stderr.strip()}")
        return 1

    # 1. byte-stability: a second, independent collection is identical.
    report_b = os.path.join(workdir, "chaos-b.report")
    result = collect(binary, chaos_spool, args.vantages, report_b)
    if result.returncode != 0:
        fail(f"second chaos collect failed: {result.stderr.strip()}")
        return 1
    bytes_a = open(report_a, "rb").read()
    bytes_b = open(report_b, "rb").read()
    if bytes_a != bytes_b:
        fail("merged reports differ between two collections of one spool")
    else:
        note("merged report is byte-stable across collections")

    # 2. identity: the standalone verifier agrees.
    result = subprocess.run([binary, "check", report_a],
                            capture_output=True, text=True, check=False)
    if result.returncode != 0:
        fail(f"dart-fleet check rejected the report: {result.stderr.strip()}")
    else:
        note("extended accounting identity holds")

    chaos = parse_report(bytes_a.decode())

    # 3. exact loss: faulted processed + lost_to_vantage == baseline
    # processed, per vantage — the injected losses and nothing else.
    for vantage in range(args.vantages):
        base_processed = vantage_metric(baseline, "fleet_processed_total",
                                        vantage)
        processed = vantage_metric(chaos, "fleet_processed_total", vantage)
        lost = vantage_metric(chaos, "fleet_lost_to_vantage_total", vantage)
        if processed + lost != base_processed:
            fail(f"vantage {vantage}: processed {processed} + lost {lost} "
                 f"!= baseline {base_processed}")
    note("per-vantage accounting matches the baseline minus injected loss")
    if vantage_metric(chaos, "fleet_lost_to_vantage_total", 1) == 0:
        fail("killed vantage shows no loss window")

    # 4. quarantine accounting: exactly the injected damage, observable.
    expected_quarantine = {
        "truncated": 1,           # vantage 2's torn frame
        "duplicate-sequence": 1,  # vantage 2's duplicated frame
    }
    for reason, count in expected_quarantine.items():
        got = chaos.get(f'fleet_frames_quarantined_total{{reason="{reason}"}}',
                        0)
        if got != count:
            fail(f"quarantine[{reason}] == {got}, expected {count}")
    total_quarantined = chaos.get("fleet_frames_quarantined_total", 0)
    if total_quarantined != sum(expected_quarantine.values()):
        fail(f"total quarantined {total_quarantined} != "
             f"{sum(expected_quarantine.values())}")
    else:
        note("quarantine counters match the injected damage exactly")

    # The reordered vantage must have healed without loss.
    if vantage_metric(chaos, "fleet_vantage_state", 3) != 2:  # complete
        fail("reordered vantage did not complete")
    if vantage_metric(chaos, "fleet_frames_missing_total", 3) != 0:
        fail("reordered vantage lost frames despite gap grace")

    if FAILURES:
        print(f"chaos: {len(FAILURES)} assertion(s) failed", file=sys.stderr)
        return 1
    if not args.workdir:
        shutil.rmtree(workdir, ignore_errors=True)
    print("chaos: all fleet chaos assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
