#!/usr/bin/env python3
"""End-to-end smoke for dartd, the live monitoring daemon.

Two scenarios against a generated campus trace:

  drain       — a rate-paced live run must drain to the barrier, serve a
                /deterministic report that is byte-stable across scrapes,
                byte-identical to an offline ``dartd replay`` of the same
                trace, and identical to the --final-out file; SIGTERM on
                the drained daemon must exit 0.
  sigterm     — a slow-paced run killed *mid-ingest* must drain to the
                barrier (exit 0, "drained cleanly"), and the partial
                final report must still carry the accounting identity
                processed + shed + abandoned + lost_to_crash == routed.

The offline replay is run twice first: byte-identical reports are the
precondition for every later comparison (the deterministic tier).

This script is both the ctest ``daemon_smoke`` row (--quick) and the CI
``daemon-smoke`` job's payload, where it runs under ASan/UBSan.

Exit status: 0 if every assertion holds, 1 otherwise.
"""

import argparse
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time


def fail(message):
    print("daemon_smoke: FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def log(message):
    print("daemon_smoke: " + message, flush=True)


def run_checked(cmd, what):
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        fail("%s exited %d\nstdout: %s\nstderr: %s"
             % (what, proc.returncode, proc.stdout, proc.stderr))
    return proc


def query(port, path, timeout_s=10.0):
    """One line-protocol request: send the path, read to EOF."""
    with socket.create_connection(("127.0.0.1", port), timeout=timeout_s) as s:
        s.sendall(path.encode() + b"\n")
        chunks = []
        while True:
            data = s.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks).decode()


def wait_for_ports(path, deadline):
    """Poll the atomically-written port file until it appears."""
    while time.monotonic() < deadline:
        try:
            with open(path) as f:
                text = f.read().strip()
            if text:
                query_port, ingest_port = text.split()
                return int(query_port), int(ingest_port)
        except (FileNotFoundError, ValueError):
            pass
        time.sleep(0.05)
    fail("port file %s never appeared" % path)


def wait_for_status(port, predicate, what, deadline):
    last = ""
    while time.monotonic() < deadline:
        last = query(port, "/status")
        if predicate(last):
            return last
        time.sleep(0.1)
    fail("timed out waiting for %s; last /status:\n%s" % (what, last))


def aggregate_value(report, name):
    """Value of the unlabeled aggregate line ``name value``."""
    for line in report.splitlines():
        if line.startswith(name + " "):
            return int(line.split()[1])
    fail("report lacks aggregate line %r:\n%s" % (name, report))


def check_identity(report, what):
    routed = aggregate_value(report, "dart_routed_total")
    accounted = (aggregate_value(report, "dart_processed_total")
                 + aggregate_value(report, "dart_shed_total")
                 + aggregate_value(report, "dart_abandoned_total")
                 + aggregate_value(report, "dart_lost_to_crash_total"))
    if accounted != routed:
        fail("%s: identity broken: accounted %d != routed %d\n%s"
             % (what, accounted, routed, report))
    return routed


def start_daemon(binary, trace, rate, port_file, final_out, shards,
                 epoch_interval):
    cmd = [binary, "run", "--trace", trace, "--rate", str(rate),
           "--shards", str(shards), "--epoch-interval", str(epoch_interval),
           "--port-file", port_file, "--final-out", final_out]
    return subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)


def stop_and_reap(daemon, what, deadline_s=60):
    daemon.send_signal(signal.SIGTERM)
    try:
        stdout, stderr = daemon.communicate(timeout=deadline_s)
    except subprocess.TimeoutExpired:
        daemon.kill()
        daemon.communicate()
        fail("%s did not exit within %ds of SIGTERM" % (what, deadline_s))
    if daemon.returncode != 0:
        fail("%s exited %d after SIGTERM\nstderr: %s"
             % (what, daemon.returncode, stderr))
    if "drained cleanly" not in stderr:
        fail("%s exit message missing 'drained cleanly': %s" % (what, stderr))
    return stderr


def scenario_drain(binary, trace, replay_report, workdir, rate, shards,
                   epoch_interval, timeout_s):
    port_file = os.path.join(workdir, "drain.ports")
    final_out = os.path.join(workdir, "drain.final")
    daemon = start_daemon(binary, trace, rate, port_file, final_out,
                          shards, epoch_interval)
    try:
        deadline = time.monotonic() + timeout_s
        query_port, _ = wait_for_ports(port_file, deadline)
        if query(query_port, "/healthz") != "ok\n":
            fail("/healthz did not answer ok")
        wait_for_status(query_port, lambda s: "state drained" in s,
                        "drain", deadline)

        first = query(query_port, "/deterministic")
        second = query(query_port, "/deterministic")
        if first != second:
            fail("two /deterministic scrapes differ:\n%s\n-- vs --\n%s"
                 % (first, second))
        if first != replay_report:
            fail("live paced report differs from offline replay:\n%s\n"
                 "-- vs --\n%s" % (first, replay_report))
        routed = check_identity(first, "live report")
        log("drain: live == offline, identity holds over %d packets"
            % routed)

        stderr = stop_and_reap(daemon, "drained daemon")
        log("drain: " + stderr.strip().splitlines()[-1])
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate()
    with open(final_out) as f:
        if f.read() != replay_report:
            fail("--final-out differs from offline replay")


def scenario_sigterm_mid_run(binary, trace, workdir, shards,
                             epoch_interval, timeout_s):
    port_file = os.path.join(workdir, "sigterm.ports")
    final_out = os.path.join(workdir, "sigterm.final")
    # Real-time pacing: the trace spans seconds, so the daemon is still
    # mid-ingest when the signal lands.
    daemon = start_daemon(binary, trace, 1.0, port_file, final_out,
                          shards, epoch_interval)
    try:
        deadline = time.monotonic() + timeout_s
        query_port, _ = wait_for_ports(port_file, deadline)
        wait_for_status(query_port, lambda s: "state running" in s,
                        "ingest start", deadline)
        stderr = stop_and_reap(daemon, "mid-run daemon")
        log("sigterm: " + stderr.strip().splitlines()[-1])
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate()
    with open(final_out) as f:
        report = f.read()
    routed = check_identity(report, "mid-run final report")
    log("sigterm: identity holds over %d routed packets" % routed)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True, help="path to dartd")
    parser.add_argument("--quick", action="store_true",
                        help="smaller trace, faster pace (the ctest row)")
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a temp dir)")
    args = parser.parse_args()

    connections = 300 if args.quick else 1500
    duration_s = 2 if args.quick else 4
    rate = 50.0 if args.quick else 20.0  # trace seconds per wall second
    shards, epoch_interval = 3, 500
    timeout_s = 60 if args.quick else 120

    workdir = args.workdir or tempfile.mkdtemp(prefix="daemon_smoke_")
    os.makedirs(workdir, exist_ok=True)
    trace = os.path.join(workdir, "smoke.dtrc")

    run_checked([args.binary, "gen", "--out", trace, "--seed", "7",
                 "--connections", str(connections),
                 "--duration-s", str(duration_s)], "dartd gen")

    # Offline reference, twice: determinism first, then everything else
    # compares against these bytes.
    replays = []
    for i in (1, 2):
        out = os.path.join(workdir, "replay%d.txt" % i)
        run_checked([args.binary, "replay", "--trace", trace,
                     "--shards", str(shards),
                     "--epoch-interval", str(epoch_interval),
                     "--out", out], "dartd replay #%d" % i)
        with open(out) as f:
            replays.append(f.read())
    if replays[0] != replays[1]:
        fail("two offline replays differ — deterministic tier broken")
    check_identity(replays[0], "offline replay")
    log("offline replay: byte-stable, identity holds")

    scenario_drain(args.binary, trace, replays[0], workdir, rate, shards,
                   epoch_interval, timeout_s)
    scenario_sigterm_mid_run(args.binary, trace, workdir, shards,
                             epoch_interval, timeout_s)
    log("OK")


if __name__ == "__main__":
    main()
