#!/usr/bin/env python3
"""Long-haul soak harness for the fleet aggregation subsystem.

Where ``fleet_chaos.py`` is one adversarial round, this harness runs a
*rotation* of fault plans over a real multi-process fleet (20+ vantages by
default) and asserts the hard guarantees after every round:

  identity        — ``dart-fleet check`` accepts every merged report:
                    processed + shed + abandoned + lost_to_crash
                      + lost_to_vantage == routed, per vantage and total;
  byte-stability  — two independent collections of one spool are
                    byte-identical, every round;
  skew healing    — a round whose vantages claim epochs skewed within the
                    grace window produces a report *byte-identical to the
                    clean baseline*: healed skew never perturbs the output;
  exact loss      — every injected fault (kill, excessive skew, spool
                    damage, restart) shows up in the loss and quarantine
                    counters with exactly the injected magnitude, and
                    processed + lost always equals the clean baseline's
                    processed, per vantage.

The rotation (``--rounds`` cycles through it):

  clean           no faults; establishes the per-vantage baseline
  skew_heal       constant offsets and an epoch lag, all within grace
  skew_quarantine a hopeless offset and a drifting clock, beyond grace
  kills           two vantages crash mid-stream (exit code 3)
  restart         a killed vantage restarts with --incarnation 1 and
                  replays; the collector dedupes and completes losslessly
  spool_damage    the harness flips a sealed byte in published frames
  stall_reorder   stalled and reordered delivery, healed losslessly
  mixed           a kill + healed skew + duplicate + damage, together

Requires a DART_FAULT_INJECTION build::

    cmake -B build-fi -S . -DDART_FAULT_INJECTION=ON
    cmake --build build-fi --target dart-fleet
    scripts/fleet_soak.py --binary build-fi/src/tools/dart-fleet

``--bench-out`` writes a ``dart-bench-v1`` row file (one row per round)
for ``bench_persist.py`` to fold into the committed trajectory.

Exit status: 0 if every assertion in every round holds, 1 otherwise.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time

EXIT_KILLED = 3

ROTATION = [
    "clean", "skew_heal", "skew_quarantine", "kills",
    "restart", "spool_damage", "stall_reorder", "mixed",
]

FAILURES = []


def fail(message: str) -> None:
    FAILURES.append(message)
    print(f"FAIL: {message}", file=sys.stderr)


def note(message: str) -> None:
    print(f"soak: {message}")
    sys.stdout.flush()


def parse_report(text: str) -> dict:
    """name or name{label="v"} -> int value (fleet counters are counts)."""
    values = {}
    for line in text.splitlines():
        match = re.match(r'^([a-z_]+)(\{[^}]*\})? (\d+)$', line)
        if match:
            values[match.group(1) + (match.group(2) or "")] = int(
                match.group(3))
    return values


def vantage_metric(values, name, vantage):
    return values.get(f'{name}{{vantage="campus-{vantage}"}}', 0)


class Soak:
    def __init__(self, args):
        self.args = args
        self.binary = os.path.abspath(args.binary)
        self.workdir = args.workdir or tempfile.mkdtemp(prefix="fleet-soak-")
        os.makedirs(self.workdir, exist_ok=True)
        self.baseline = None        # parsed clean report
        self.baseline_bytes = None  # raw clean report bytes
        self.bench_rows = []

    def vantage_cmd(self, spool, vantage, extra=(), incarnation=0):
        cmd = [
            self.binary, "vantage",
            "--id", str(vantage),
            "--vantages", str(self.args.vantages),
            "--spool", spool,
            "--seed", str(self.args.seed),
            "--connections", str(self.args.connections),
            "--duration-s", str(self.args.duration_s),
            "--epochs", str(self.args.epochs),
        ]
        if incarnation:
            cmd += ["--incarnation", str(incarnation)]
        return cmd + list(extra)

    def run_fleet(self, spool, faults_by_vantage):
        procs = {}
        for vantage in range(self.args.vantages):
            extra = faults_by_vantage.get(vantage, ())
            if extra:
                note(f"  vantage {vantage}: faults {' '.join(extra)}")
            procs[vantage] = subprocess.Popen(
                self.vantage_cmd(spool, vantage, extra),
                stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
        codes = {}
        for vantage, proc in procs.items():
            _, stderr = proc.communicate(timeout=self.args.timeout)
            codes[vantage] = proc.returncode
            if proc.returncode not in (0, EXIT_KILLED):
                fail(f"vantage {vantage} exited {proc.returncode}: "
                     f"{stderr.strip()}")
        return codes

    def collect(self, spool, out_path, skew_out=None):
        cmd = [
            self.binary, "collect",
            "--spool", spool,
            "--vantages", str(self.args.vantages),
            "--fence-after", "3",
            "--max-attempts", "16",
            "--poll-base-ms", "5",
            "--poll-max-ms", "20",
            "--quiet", "--check",
            "--out", out_path,
        ]
        if skew_out:
            cmd += ["--skew-out", skew_out]
        return subprocess.run(cmd, capture_output=True, text=True,
                              check=False)

    def collect_stable(self, round_name, spool, skew_out=None):
        """Collect twice; assert exit 0, byte-stability, and the identity.

        Returns (parsed report, raw bytes) or (None, None) on failure.
        """
        path_a = os.path.join(self.workdir, f"{round_name}-a.report")
        path_b = os.path.join(self.workdir, f"{round_name}-b.report")
        result = self.collect(spool, path_a, skew_out=skew_out)
        if result.returncode != 0:
            fail(f"{round_name}: collect failed: {result.stderr.strip()}")
            return None, None
        result = self.collect(spool, path_b)
        if result.returncode != 0:
            fail(f"{round_name}: second collect failed: "
                 f"{result.stderr.strip()}")
            return None, None
        bytes_a = open(path_a, "rb").read()
        bytes_b = open(path_b, "rb").read()
        if bytes_a != bytes_b:
            fail(f"{round_name}: merged report not byte-stable across "
                 f"collections")
        result = subprocess.run([self.binary, "check", path_a],
                                capture_output=True, text=True, check=False)
        if result.returncode != 0:
            fail(f"{round_name}: identity check rejected the report: "
                 f"{result.stderr.strip()}")
        return parse_report(bytes_a.decode()), bytes_a

    def assert_loss_parity(self, round_name, report, exempt=()):
        """processed + lost_to_vantage == baseline processed, per vantage."""
        for vantage in range(self.args.vantages):
            if vantage in exempt:
                continue
            base = vantage_metric(self.baseline, "fleet_processed_total",
                                  vantage)
            processed = vantage_metric(report, "fleet_processed_total",
                                       vantage)
            lost = vantage_metric(report, "fleet_lost_to_vantage_total",
                                  vantage)
            if processed + lost != base:
                fail(f"{round_name}: vantage {vantage}: processed "
                     f"{processed} + lost {lost} != baseline {base}")

    def quarantined(self, report, reason):
        return report.get(
            f'fleet_frames_quarantined_total{{reason="{reason}"}}', 0)

    def fresh_spool(self, round_name):
        spool = os.path.join(self.workdir, f"spool-{round_name}")
        shutil.rmtree(spool, ignore_errors=True)
        return spool

    def damage_frame(self, spool, vantage, publish_index):
        """Flip one sealed byte of a published frame, in place."""
        name = f"v{vantage:06d}-p{publish_index:010d}.dfrm"
        path = os.path.join(spool, name)
        with open(path, "r+b") as handle:
            data = bytearray(handle.read())
            data[-1] ^= 0x01  # inside the CRC-sealed region
            handle.seek(0)
            handle.write(data)

    # --- rounds ----------------------------------------------------------

    def round_clean(self, name):
        spool = self.fresh_spool(name)
        self.run_fleet(spool, {})
        skew_out = os.path.join(self.workdir, "clean.skew")
        report, raw = self.collect_stable(name, spool, skew_out=skew_out)
        if report is None:
            return
        if report.get("fleet_vantages_complete") != self.args.vantages:
            fail(f"{name}: clean fleet did not complete")
        if report.get("fleet_frames_quarantined_total", 0) != 0:
            fail(f"{name}: clean fleet quarantined frames")
        skew_text = open(skew_out, encoding="utf-8").read()
        if "fleet_epoch_skew" not in skew_text:
            fail(f"{name}: skew diagnostics report missing estimates")
        self.baseline, self.baseline_bytes = report, raw

    def round_skew_heal(self, name):
        spool = self.fresh_spool(name)
        fleet = self.args.vantages
        self.run_fleet(spool, {
            1: ("--fault-skew-offset", "1"),
            fleet // 2: ("--fault-skew-offset", "2"),
            fleet - 1: ("--fault-epoch-lag", "1"),
        })
        report, raw = self.collect_stable(name, spool)
        if report is None:
            return
        # The tentpole guarantee: within-grace skew heals to a report
        # byte-identical to the clean fleet's — not close, identical.
        if raw != self.baseline_bytes:
            fail(f"{name}: healed-skew report differs from the clean "
                 f"baseline")
        else:
            note("  healed-skew report is byte-identical to the baseline")
        if report.get("fleet_frames_quarantined_total", 0) != 0:
            fail(f"{name}: within-grace skew was quarantined")

    def round_skew_quarantine(self, name):
        spool = self.fresh_spool(name)
        epochs = self.args.epochs
        offset_v, drift_v = 2, 3
        self.run_fleet(spool, {
            offset_v: ("--fault-skew-offset", "5"),
            drift_v: ("--fault-skew-drift", "2"),
        })
        report, _ = self.collect_stable(name, spool)
        if report is None:
            return
        # Offset 5 poisons every state frame (epochs + the distinct final);
        # drift 2 heals the first barrier (skew exactly at the grace bound)
        # and poisons the rest. Exact arithmetic, nothing else.
        expected = (epochs + 1) + epochs
        got = self.quarantined(report, "excessive-skew")
        if got != expected:
            fail(f"{name}: excessive-skew quarantines {got}, "
                 f"expected {expected}")
        if report.get("fleet_frames_quarantined_total", 0) != expected:
            fail(f"{name}: unexpected extra quarantines")
        self.assert_loss_parity(name, report)
        for vantage in (offset_v, drift_v):
            if vantage_metric(report, "fleet_lost_to_vantage_total",
                              vantage) == 0:
                fail(f"{name}: skew-poisoned vantage {vantage} shows no "
                     f"loss window")

    def round_kills(self, name):
        spool = self.fresh_spool(name)
        killed = {4: 2, 9: 3}  # vantage -> frames before the crash
        codes = self.run_fleet(spool, {
            v: ("--fault-kill-after", str(n)) for v, n in killed.items()})
        for vantage in killed:
            if codes.get(vantage) != EXIT_KILLED:
                fail(f"{name}: killed vantage {vantage} exited "
                     f"{codes.get(vantage)}, expected {EXIT_KILLED}")
        report, _ = self.collect_stable(name, spool)
        if report is None:
            return
        self.assert_loss_parity(name, report)
        for vantage in killed:
            if vantage_metric(report, "fleet_lost_to_vantage_total",
                              vantage) == 0:
                fail(f"{name}: killed vantage {vantage} shows no loss")

    def round_restart(self, name):
        spool = self.fresh_spool(name)
        victim = 6
        codes = self.run_fleet(spool, {
            victim: ("--fault-kill-after", "3")})
        if codes.get(victim) != EXIT_KILLED:
            fail(f"{name}: victim exited {codes.get(victim)}")
        # The operator restarts the dead vantage; the new process counts
        # publish slots from zero again, so without the incarnation tag it
        # would overwrite its predecessor's spool files.
        result = subprocess.run(
            self.vantage_cmd(spool, victim, incarnation=1),
            capture_output=True, text=True, timeout=self.args.timeout,
            check=False)
        if result.returncode != 0:
            fail(f"{name}: restarted vantage exited {result.returncode}: "
                 f"{result.stderr.strip()}")
        report, _ = self.collect_stable(name, spool)
        if report is None:
            return
        # The replayed prefix (manifest + 2 epochs) dedupes; the fresh
        # suffix completes the vantage with zero loss.
        if self.quarantined(report, "duplicate-sequence") != 3:
            fail(f"{name}: expected exactly 3 deduped replay frames, got "
                 f"{self.quarantined(report, 'duplicate-sequence')}")
        if vantage_metric(report, "fleet_vantage_state", victim) != 2:
            fail(f"{name}: restarted vantage did not complete")
        self.assert_loss_parity(name, report)  # victim included: no loss

    def round_spool_damage(self, name):
        spool = self.fresh_spool(name)
        self.run_fleet(spool, {})
        damaged = (3, 11)
        for vantage in damaged:
            self.damage_frame(spool, vantage, 1)  # first epoch frame
        report, _ = self.collect_stable(name, spool)
        if report is None:
            return
        if self.quarantined(report, "crc-mismatch") != len(damaged):
            fail(f"{name}: crc quarantines "
                 f"{self.quarantined(report, 'crc-mismatch')}, expected "
                 f"{len(damaged)}")
        for vantage in damaged:
            if vantage_metric(report, "fleet_vantage_state", vantage) != 2:
                fail(f"{name}: damaged vantage {vantage} did not complete")
            if vantage_metric(report, "fleet_frames_missing_total",
                              vantage) != 1:
                fail(f"{name}: damaged vantage {vantage} missing-frame "
                     f"count wrong")
        self.assert_loss_parity(name, report)  # cumulative frames heal all

    def round_stall_reorder(self, name):
        spool = self.fresh_spool(name)
        self.run_fleet(spool, {
            2: ("--fault-stall", "2:2:50"),
            7: ("--fault-reorder", "2"),
        })
        report, raw = self.collect_stable(name, spool)
        if report is None:
            return
        # Stalls and reordering change delivery, not content: once the
        # fleet drains, the collector's report must match the baseline
        # byte for byte.
        if raw != self.baseline_bytes:
            fail(f"{name}: stall/reorder round did not heal to the "
                 f"baseline report")
        if report.get("fleet_frames_quarantined_total", 0) != 0:
            fail(f"{name}: lossless faults were quarantined")

    def round_mixed(self, name):
        spool = self.fresh_spool(name)
        epochs = self.args.epochs
        self.run_fleet(spool, {
            1: ("--fault-kill-after", "2"),
            5: ("--fault-skew-offset", "1"),       # heals
            8: ("--fault-duplicate", "2"),
            12: ("--fault-skew-offset", "9"),      # hopeless
        })
        self.damage_frame(spool, 15, 1)
        report, _ = self.collect_stable(name, spool)
        if report is None:
            return
        expected = {
            "duplicate-sequence": 1,
            "crc-mismatch": 1,
            "excessive-skew": epochs + 1,  # every state frame incl. final
        }
        for reason, count in expected.items():
            if self.quarantined(report, reason) != count:
                fail(f"{name}: quarantine[{reason}] == "
                     f"{self.quarantined(report, reason)}, expected {count}")
        if report.get("fleet_frames_quarantined_total", 0) != \
                sum(expected.values()):
            fail(f"{name}: unexpected extra quarantines")
        self.assert_loss_parity(name, report)

    # --- driver ----------------------------------------------------------

    def run_round(self, index, plan):
        name = f"r{index:03d}-{plan}"
        note(f"round {index}: {plan}")
        started = time.monotonic()
        getattr(self, f"round_{plan}")(name)
        elapsed = max(time.monotonic() - started, 1e-9)
        report_path = os.path.join(self.workdir, f"{name}-a.report")
        packets = 0
        if os.path.exists(report_path):
            packets = parse_report(
                open(report_path, encoding="utf-8").read()).get(
                    "fleet_routed_total", 0)
        if packets > 0:
            self.bench_rows.append({
                "name": f"fleet_soak_{plan}",
                "mode": "soak",
                "shards": self.args.vantages,
                "packets": packets,
                "reps": 1,
                "mpps": packets / elapsed / 1e6,
            })

    def run(self):
        note(f"workdir {self.workdir}")
        note(f"{self.args.vantages} vantages, {self.args.rounds} rounds, "
             f"seed {self.args.seed}")
        for index in range(self.args.rounds):
            plan = ROTATION[index % len(ROTATION)]
            if index == 0 and plan != "clean":
                plan = "clean"  # the baseline must exist first
            if self.baseline is None and plan != "clean":
                note("  (no baseline yet, forcing clean round)")
                plan = "clean"
            self.run_round(index, plan)
            if FAILURES and self.args.fail_fast:
                break
        if self.args.bench_out and self.bench_rows:
            with open(self.args.bench_out, "w", encoding="utf-8") as handle:
                json.dump({"schema": "dart-bench-v1", "bench": "fleet_soak",
                           "rows": self.bench_rows}, handle, indent=2)
                handle.write("\n")
            note(f"bench rows written to {self.args.bench_out}")
        return 1 if FAILURES else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", required=True,
                        help="path to a DART_FAULT_INJECTION dart-fleet")
    parser.add_argument("--vantages", type=int, default=20)
    parser.add_argument("--rounds", type=int, default=len(ROTATION),
                        help="fault-plan rounds (cycles the rotation)")
    parser.add_argument("--connections", type=int, default=400)
    parser.add_argument("--duration-s", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--timeout", type=int, default=120,
                        help="per-process timeout, seconds")
    parser.add_argument("--workdir", default=None,
                        help="keep artifacts here instead of a temp dir")
    parser.add_argument("--bench-out", default=None,
                        help="write dart-bench-v1 rows here")
    parser.add_argument("--fail-fast", action="store_true")
    args = parser.parse_args()

    if args.vantages < 16:
        print("soak: need at least 16 vantages for the fault rotation",
              file=sys.stderr)
        return 1
    if not os.access(os.path.abspath(args.binary), os.X_OK):
        print(f"soak: {args.binary} is not executable", file=sys.stderr)
        return 1

    soak = Soak(args)
    status = soak.run()
    if status == 0:
        if not args.workdir:
            shutil.rmtree(soak.workdir, ignore_errors=True)
        print(f"soak: all assertions held across {args.rounds} round(s)")
    else:
        print(f"soak: {len(FAILURES)} assertion(s) failed "
              f"(artifacts in {soak.workdir})", file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
