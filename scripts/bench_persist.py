#!/usr/bin/env python3
"""Persist and validate the repo's benchmark trajectory.

The bench binaries emit per-run ``dart-bench-v1`` documents (one per
binary, via ``--json``)::

    {"schema": "dart-bench-v1", "bench": "bench_throughput",
     "rows": [{"name": ..., "mode": ..., "shards": ..., "packets": ...,
               "reps": ..., "mpps": ...}, ...]}

This script folds those into a single ``dart-bench-trajectory-v1`` file
committed at the repo root (``BENCH_pr6.json``), keyed by bench name so
re-running one binary replaces only its own rows, and validates the result:

    merge:  bench_persist.py --out BENCH_pr6.json rows1.json [rows2.json ...]
    check:  bench_persist.py --check BENCH_pr6.json [--min-speedup 1.5]

``--check`` asserts the schema, that every row is well-formed with a
positive Mpps, and that both a scalar and a batched single-shard row exist.
``--min-speedup`` additionally enforces the batched/scalar single-shard
ratio — used when committing a measured trajectory, not in CI smoke runs,
whose oversubscribed hosts make ratios meaningless.
"""

import argparse
import json
import os
import sys

ROW_SCHEMA = "dart-bench-v1"
TRAJECTORY_SCHEMA = "dart-bench-trajectory-v1"
ROW_KEYS = {"name", "mode", "shards", "packets", "reps", "mpps"}


def fail(message: str) -> None:
    print(f"bench_persist: {message}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"{path}: {exc}")


def validate_rows(rows: list, origin: str) -> None:
    if not rows:
        fail(f"{origin}: empty row list")
    for row in rows:
        if not isinstance(row, dict) or not ROW_KEYS.issubset(row):
            fail(f"{origin}: malformed row {row!r}")
        if not isinstance(row["mpps"], (int, float)) or row["mpps"] <= 0:
            fail(f"{origin}: non-positive mpps in row {row['name']!r}")
        if row["packets"] <= 0 or row["reps"] <= 0:
            fail(f"{origin}: empty measurement in row {row['name']!r}")


def merge(out_path: str, inputs: list) -> None:
    # A missing output file starts a fresh trajectory; anything else that
    # cannot be parsed is refused, never silently overwritten — a corrupt
    # trajectory means history was damaged and deserves a human decision.
    trajectory = {"schema": TRAJECTORY_SCHEMA, "benches": {}}
    if os.path.exists(out_path):
        if os.path.getsize(out_path) == 0:
            fail(f"{out_path}: refusing to merge into an empty trajectory "
                 f"file — remove it to start fresh")
        try:
            with open(out_path, encoding="utf-8") as handle:
                existing = json.load(handle)
        except json.JSONDecodeError as exc:
            fail(f"{out_path}: refusing to merge into a corrupt trajectory "
                 f"file ({exc}) — remove it to start fresh")
        except OSError as exc:
            fail(f"{out_path}: {exc}")
        if existing.get("schema") != TRAJECTORY_SCHEMA:
            fail(f"{out_path}: refusing to merge into a file with schema "
                 f"{existing.get('schema')!r}, expected {TRAJECTORY_SCHEMA!r}")
        trajectory = existing

    for path in inputs:
        document = load(path)
        if document.get("schema") != ROW_SCHEMA:
            fail(f"{path}: expected schema {ROW_SCHEMA!r}, "
                 f"got {document.get('schema')!r}")
        bench = document.get("bench")
        if not bench:
            fail(f"{path}: missing bench name")
        rows = document.get("rows", [])
        validate_rows(rows, path)
        trajectory["benches"][bench] = {"rows": rows}

    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    total = sum(len(b["rows"]) for b in trajectory["benches"].values())
    print(f"bench_persist: {out_path}: "
          f"{len(trajectory['benches'])} bench(es), {total} rows")


def single_shard_mpps(rows: list, mode: str) -> float:
    for row in rows:
        if row["mode"] == mode and row["shards"] == 1 \
                and row["name"].startswith("dart_"):
            return row["mpps"]
    fail(f"no single-shard {mode!r} row in bench_throughput")


def check(path: str, min_speedup: float) -> None:
    # The baseline's absence is the most dangerous failure mode: a CI job
    # that forgets to commit or restore it must go red, not quietly green.
    if not os.path.exists(path):
        fail(f"{path}: baseline trajectory missing — merge rows with "
             f"--out first, or restore the committed file")
    if os.path.getsize(path) == 0:
        fail(f"{path}: baseline trajectory is empty — a truncated or "
             f"never-written baseline must not pass")
    trajectory = load(path)
    if trajectory.get("schema") != TRAJECTORY_SCHEMA:
        fail(f"{path}: expected schema {TRAJECTORY_SCHEMA!r}, "
             f"got {trajectory.get('schema')!r}")
    benches = trajectory.get("benches", {})
    if not benches:
        fail(f"{path}: baseline has no benches")
    if "bench_throughput" not in benches:
        fail(f"{path}: missing bench_throughput rows")
    for bench, body in benches.items():
        validate_rows(body.get("rows", []), f"{path}:{bench}")

    rows = benches["bench_throughput"]["rows"]
    scalar = single_shard_mpps(rows, "scalar")
    batched = single_shard_mpps(rows, "batched")
    speedup = batched / scalar
    print(f"bench_persist: {path}: OK "
          f"(single-shard scalar {scalar:.3f} Mpps, "
          f"batched {batched:.3f} Mpps, speedup {speedup:.2f}x)")
    if min_speedup > 0 and speedup < min_speedup:
        fail(f"{path}: batched/scalar speedup {speedup:.2f}x "
             f"below required {min_speedup:.2f}x")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", metavar="TRAJECTORY",
                        help="merge row files into this trajectory file")
    parser.add_argument("--check", metavar="TRAJECTORY",
                        help="validate an existing trajectory file")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="with --check: require this batched/scalar "
                             "single-shard ratio")
    parser.add_argument("inputs", nargs="*",
                        help="dart-bench-v1 row files (merge mode)")
    options = parser.parse_args()

    if bool(options.out) == bool(options.check):
        parser.error("exactly one of --out or --check is required")
    if options.out:
        if not options.inputs:
            parser.error("merge mode needs at least one input row file")
        merge(options.out, options.inputs)
    else:
        check(options.check, options.min_speedup)


if __name__ == "__main__":
    main()
