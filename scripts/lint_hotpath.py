#!/usr/bin/env python3
"""Custom lint: forbid per-packet-hostile constructs in hot-path files.

The per-packet path (src/core/, the SPSC ring, the packet record) must not
heap-allocate, use node-based/heap-backed std containers, or dispatch
virtually — those cost allocations, pointer chases, and branch
mispredictions on every packet, and the whole point of mirroring a
line-rate pipeline is that the steady state touches none of them.

Rules (matched after comments and string literals are stripped):
  heap-alloc   new expressions, malloc/calloc/realloc, make_unique/shared
  std-map      std::map / std::multimap (node-based, O(log n) chases)
  std-string   std::string (heap-backed, allocates on mutation)
  virtual      virtual member functions (indirect dispatch per call)

A construct that is genuinely setup-time or reporting-time (constructor
allocation, end-of-run summary) may be waived with a same-line comment:

    shadow_rt_ = std::make_unique<...>(  // hotpath-ok: construction only

or, for declarations too long to annotate inline, a comment-only line
immediately above the offending line:

    // hotpath-ok: invoked only on eviction, not per packet
    virtual bool useful(...) const = 0;

Every waiver must carry a reason after the colon; a bare "hotpath-ok"
fails the lint. A waiver that shields no finding is itself an error
([stale-waiver]) — stale waivers rot into blanket permission slips when
the code around them changes, so they must be deleted with the construct
they excused.

Usage:
    lint_hotpath.py              lint the hot-path globs of this repo
    lint_hotpath.py FILE...      lint exactly these files (fixture/test
                                 hook; files are repo-relative or absolute)

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# Per-packet translation units. config_check.* is construction-time-only
# support code (it exists to *reject* configs before any packet flows) and
# is exempt wholesale; checkpoint.* is quiesce-time-only (images are cut and
# restored at epoch barriers, never on the per-packet path) and likewise
# exempt — the snapshot()/restore() members living in hot files stay linted.
HOT_GLOBS = [
    "src/core/*.hpp",
    "src/core/*.cpp",
    "src/runtime/spsc_ring.hpp",
    "src/common/packet.hpp",
    "src/common/packet.cpp",
]
EXEMPT = {
    "src/core/config_check.hpp", "src/core/config_check.cpp",
    "src/core/checkpoint.hpp", "src/core/checkpoint.cpp",
}

RULES = [
    ("heap-alloc",
     re.compile(r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|"
                r"\bmake_unique\b|\bmake_shared\b"),
     "heap allocation on the packet path"),
    ("std-map",
     re.compile(r"\bstd::(multi)?map\s*<"),
     "node-based map: O(log n) pointer chases per lookup"),
    ("std-string",
     re.compile(r"\bstd::string\b"),
     "heap-backed string on the packet path"),
    ("virtual",
     re.compile(r"\bvirtual\b"),
     "virtual dispatch: indirect call per packet"),
]

WAIVER = re.compile(r"hotpath-ok:\s*(\S.*)")
BARE_WAIVER = re.compile(r"hotpath-ok(?!:)|hotpath-ok:\s*$")

STRING_LIT = re.compile(r'"(?:[^"\\]|\\.)*"')
CHAR_LIT = re.compile(r"'(?:[^'\\]|\\.)*'")
LINE_COMMENT = re.compile(r"//.*$")


def strip_code(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Remove comments and literals; returns (code, still_in_block)."""
    out = []
    i = 0
    while i < len(line):
        if in_block_comment:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        start = line.find("/*", i)
        rest = line[i:] if start == -1 else line[i:start]
        out.append(rest)
        if start == -1:
            break
        i = start + 2
        in_block_comment = True
    code = "".join(out)
    code = LINE_COMMENT.sub("", code)
    code = STRING_LIT.sub('""', code)
    code = CHAR_LIT.sub("''", code)
    return code, in_block_comment


def lint_file(path: pathlib.Path) -> list[str]:
    findings = []
    in_block = False
    try:
        rel = path.relative_to(REPO)
    except ValueError:
        rel = path
    # Waiver lineno -> number of findings it shielded; anything still at
    # zero after the scan is stale and reported as its own finding.
    waiver_hits: dict[int, int] = {}
    carry_from = None  # comment-only waiver line covering this line
    for lineno, raw in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if BARE_WAIVER.search(raw) and not WAIVER.search(raw):
            findings.append(
                f"{rel}:{lineno}: [waiver] 'hotpath-ok' without a reason — "
                f"write 'hotpath-ok: <why this is not per-packet>'")
        has_waiver = WAIVER.search(raw) is not None
        if has_waiver:
            waiver_hits[lineno] = 0
        covering = lineno if has_waiver else carry_from
        code, in_block = strip_code(raw, in_block)
        # A comment-only waiver line extends its waiver to the next line,
        # covering declarations too long to annotate inline.
        carry_from = lineno if (has_waiver and not code.strip()) else None
        for name, pattern, why in RULES:
            if pattern.search(code):
                if covering is not None:
                    waiver_hits[covering] += 1
                    continue
                findings.append(f"{rel}:{lineno}: [{name}] {why}\n"
                                f"    {raw.strip()}")
    for lineno in sorted(waiver_hits):
        if waiver_hits[lineno] == 0:
            findings.append(
                f"{rel}:{lineno}: [stale-waiver] 'hotpath-ok' shields no "
                f"finding — the construct it excused is gone; delete the "
                f"waiver")
    return findings


def main(argv: list[str]) -> int:
    if any(a in ("-h", "--help") for a in argv[1:]):
        print(__doc__)
        return 2
    if len(argv) > 1:
        # Explicit file list: the fixture/test hook.
        files = []
        for name in argv[1:]:
            path = pathlib.Path(name)
            if not path.is_absolute():
                path = REPO / path
            if not path.is_file():
                print(f"lint_hotpath: no such file: {name}")
                return 2
            files.append(path)
    else:
        files = []
        for glob in HOT_GLOBS:
            files.extend(sorted(REPO.glob(glob)))
        files = [f for f in files
                 if str(f.relative_to(REPO)) not in EXEMPT]
    if not files:
        print("lint_hotpath: no hot-path files found — tree layout changed?")
        return 2

    all_findings = []
    for path in files:
        all_findings.extend(lint_file(path))
    if all_findings:
        print(f"lint_hotpath: {len(all_findings)} finding(s) in "
              f"{len(files)} hot-path files:\n")
        for finding in all_findings:
            print(finding)
        return 1
    print(f"lint_hotpath: OK ({len(files)} hot-path files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
