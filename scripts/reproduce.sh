#!/usr/bin/env bash
# One-shot reproduction: build, run the full test suite, and regenerate
# every table and figure of the paper's evaluation.
#
#   ./scripts/reproduce.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"

echo "== configure & build =="
cmake -B "$BUILD_DIR" -S "$REPO_DIR" -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR"

echo
echo "== test suite =="
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo
echo "== paper tables & figures =="
for bench in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bench" ] || continue
  "$bench"
done

echo
echo "Done. Paper-vs-measured commentary lives in EXPERIMENTS.md."
