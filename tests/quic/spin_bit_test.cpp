// QUIC spin-bit generation and observation (the Section 7 extension).
#include <gtest/gtest.h>

#include "analytics/percentile.hpp"
#include "quic/spin_bit.hpp"
#include "quic/spin_flow.hpp"

namespace dart::quic {
namespace {

const FourTuple kFlow{Ipv4Addr{10, 8, 0, 3}, Ipv4Addr{142, 250, 64, 100},
                      44321, 443};

SpinFlowProfile clean_profile() {
  SpinFlowProfile profile;
  profile.tuple = kFlow;
  profile.duration = sec(10);
  profile.send_interval = msec(2);
  profile.internal = gen::constant_rtt(msec(2));
  profile.external = gen::constant_rtt(msec(38));  // end-to-end 40 ms
  return profile;
}

analytics::PercentileSet observe(const trace::Trace& trace,
                                 SpinStats* stats_out = nullptr) {
  analytics::PercentileSet rtts;
  SpinBitMonitor monitor([&rtts](const core::RttSample& sample) {
    rtts.add(sample.rtt());
  });
  monitor.process_all(trace.packets());
  if (stats_out != nullptr) *stats_out = monitor.stats();
  return rtts;
}

TEST(SpinFlow, FlagsMarkQuicAndSpin) {
  const trace::Trace trace = simulate_spin_flow(clean_profile());
  ASSERT_FALSE(trace.empty());
  bool spin_zero = false;
  bool spin_one = false;
  for (const auto& p : trace.packets()) {
    EXPECT_TRUE(is_quic(p));
    if (spin_value(p)) {
      spin_one = true;
    } else {
      spin_zero = true;
    }
  }
  EXPECT_TRUE(spin_zero);
  EXPECT_TRUE(spin_one) << "the bit must actually spin";
  EXPECT_TRUE(trace.is_time_ordered());
}

TEST(SpinFlow, IsDeterministic) {
  const trace::Trace a = simulate_spin_flow(clean_profile());
  const trace::Trace b = simulate_spin_flow(clean_profile());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.packets().front(), b.packets().front());
  EXPECT_EQ(a.packets().back(), b.packets().back());
}

TEST(SpinObserver, MeasuresEndToEndRtt) {
  const trace::Trace trace = simulate_spin_flow(clean_profile());
  const analytics::PercentileSet rtts = observe(trace);
  ASSERT_GT(rtts.count(), 100U);
  // Spin period = one end-to-end RTT (40 ms), quantized by the 2 ms send
  // interval.
  EXPECT_NEAR(rtts.percentile(50) / 1e6, 40.0, 4.0);
}

TEST(SpinObserver, OneSamplePerRoundTripOnly) {
  // The paper's critique: at a 2 ms send interval, a 40 ms RTT flow carries
  // ~20 packets per round trip, but the spin bit yields just one sample —
  // Dart on equivalent TCP traffic would sample per packet.
  const trace::Trace trace = simulate_spin_flow(clean_profile());
  SpinStats stats;
  observe(trace, &stats);
  const double outbound_packets =
      static_cast<double>(stats.quic_packets);
  EXPECT_LT(static_cast<double>(stats.samples),
            outbound_packets / 15.0);
  // Roughly duration / RTT samples: 10 s / 40 ms = 250.
  EXPECT_NEAR(static_cast<double>(stats.samples), 250.0, 30.0);
}

TEST(SpinObserver, ReorderingCorruptsEdgesSilently) {
  // A reordered packet carrying a stale spin value forges extra edges; the
  // observer cannot detect this (no sequence numbers) and emits bogus
  // short samples — the second critique.
  SpinFlowProfile noisy = clean_profile();
  noisy.reorder_prob = 0.02;
  noisy.reorder_extra = msec(6);
  noisy.seed = 5;
  const trace::Trace trace = simulate_spin_flow(noisy);
  const analytics::PercentileSet rtts = observe(trace);
  ASSERT_GT(rtts.count(), 100U);
  EXPECT_LT(rtts.percentile(5) / 1e6, 25.0)
      << "spurious edges must produce implausibly small samples";
}

TEST(SpinObserver, IgnoresTcpTraffic) {
  PacketRecord tcp;
  tcp.tuple = kFlow;
  tcp.flags = tcp_flag::kAck | tcp_flag::kPsh;
  tcp.payload = 100;
  tcp.outbound = true;
  SpinBitMonitor monitor;
  monitor.process(tcp);
  EXPECT_EQ(monitor.stats().quic_packets, 0U);
  EXPECT_EQ(monitor.stats().flows, 0U);
}

TEST(SpinObserver, TracksFlowsIndependently) {
  const trace::Trace a = simulate_spin_flow(clean_profile());
  SpinFlowProfile other = clean_profile();
  other.tuple.src_port = 55555;
  other.external = gen::constant_rtt(msec(78));  // end-to-end 80 ms
  const trace::Trace b = simulate_spin_flow(other);

  std::vector<trace::Trace> parts;
  parts.push_back(a);
  parts.push_back(b);
  const trace::Trace merged = trace::merge(std::move(parts));

  analytics::PercentileSet fast;
  analytics::PercentileSet slow;
  SpinBitMonitor monitor([&](const core::RttSample& sample) {
    if (sample.tuple.src_port == 55555) {
      slow.add(sample.rtt());
    } else {
      fast.add(sample.rtt());
    }
  });
  monitor.process_all(merged.packets());
  ASSERT_GT(fast.count(), 50U);
  ASSERT_GT(slow.count(), 50U);
  EXPECT_NEAR(fast.percentile(50) / 1e6, 40.0, 4.0);
  EXPECT_NEAR(slow.percentile(50) / 1e6, 80.0, 6.0);
  EXPECT_EQ(monitor.stats().flows, 2U);
}

TEST(SpinObserver, LossDelaysButDoesNotForgeSamples) {
  SpinFlowProfile lossy = clean_profile();
  lossy.loss = 0.05;
  lossy.seed = 9;
  const trace::Trace trace = simulate_spin_flow(lossy);
  const analytics::PercentileSet rtts = observe(trace);
  ASSERT_GT(rtts.count(), 50U);
  // Loss can stretch a period (missed edge packet) but never shrink it
  // below the true RTT minus send-interval quantization.
  EXPECT_GT(rtts.min(), from_ms(35.0));
}

}  // namespace
}  // namespace dart::quic
