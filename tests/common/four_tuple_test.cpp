#include "common/four_tuple.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace dart {
namespace {

FourTuple example() {
  return FourTuple{Ipv4Addr{10, 8, 1, 2}, Ipv4Addr{23, 52, 0, 9}, 41000, 443};
}

TEST(FourTuple, ReversedSwapsEndpoints) {
  const FourTuple t = example();
  const FourTuple r = t.reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.dst_ip, t.src_ip);
  EXPECT_EQ(r.src_port, t.dst_port);
  EXPECT_EQ(r.dst_port, t.src_port);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FourTuple, CanonicalIsDirectionInsensitive) {
  const FourTuple t = example();
  EXPECT_EQ(t.canonical(), t.reversed().canonical());
}

TEST(FourTuple, HashDiffersFromReverse) {
  // The RT keys on the *data direction* tuple; both directions must map to
  // different keys so SEQ and ACK lookups do not alias.
  const FourTuple t = example();
  EXPECT_NE(hash_tuple(t), hash_tuple(t.reversed()));
}

TEST(FourTuple, HashIsDeterministic) {
  EXPECT_EQ(hash_tuple(example()), hash_tuple(example()));
  EXPECT_EQ(flow_signature(example()), flow_signature(example()));
}

TEST(FourTuple, SignatureSpreadsOverManyFlows) {
  // 4-byte signatures should be collision-rare at the scale the RT sees.
  std::unordered_set<std::uint32_t> signatures;
  const int flows = 20000;
  for (int i = 0; i < flows; ++i) {
    FourTuple t;
    t.src_ip = Ipv4Addr{static_cast<std::uint32_t>(0x0A080000 + i)};
    t.dst_ip = Ipv4Addr{static_cast<std::uint32_t>(0x17340000 + i * 7)};
    t.src_port = static_cast<std::uint16_t>(1024 + (i % 60000));
    t.dst_port = 443;
    signatures.insert(flow_signature(t));
  }
  // Birthday bound: expected collisions ~ flows^2 / 2^33 ~ 0.05.
  EXPECT_GE(signatures.size(), static_cast<std::size_t>(flows - 3));
}

TEST(FourTuple, OrderingIsStrictWeak) {
  const FourTuple a = example();
  FourTuple b = a;
  b.dst_port = 80;
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(FourTuple, ToStringMentionsBothEndpoints) {
  const std::string text = example().to_string();
  EXPECT_NE(text.find("10.8.1.2:41000"), std::string::npos);
  EXPECT_NE(text.find("23.52.0.9:443"), std::string::npos);
}

}  // namespace
}  // namespace dart
