// IPv6 tuple compression (Section 7) and the collision question it raises.
#include "common/ipv6.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/random.hpp"
#include "core/dart_monitor.hpp"

namespace dart {
namespace {

Ipv6Addr addr_from(std::uint64_t seed) {
  Ipv6Addr::Bytes bytes{};
  Rng rng(seed);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return Ipv6Addr{bytes};
}

TEST(Ipv6Addr, ParseFullForm) {
  const auto addr =
      Ipv6Addr::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->bytes()[0], 0x20);
  EXPECT_EQ(addr->bytes()[1], 0x01);
  EXPECT_EQ(addr->bytes()[15], 0x01);
}

TEST(Ipv6Addr, ParseCompressedForms) {
  const auto a = Ipv6Addr::parse("2001:db8::1");
  const auto b = Ipv6Addr::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, *b);

  const auto loopback = Ipv6Addr::parse("::1");
  ASSERT_TRUE(loopback.has_value());
  EXPECT_EQ(loopback->bytes()[15], 1);

  const auto any = Ipv6Addr::parse("::");
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(*any, Ipv6Addr{});

  const auto head = Ipv6Addr::parse("fe80::");
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->bytes()[0], 0xfe);
  EXPECT_EQ(head->bytes()[15], 0);
}

TEST(Ipv6Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv6Addr::parse(""));
  EXPECT_FALSE(Ipv6Addr::parse("1:2:3"));
  EXPECT_FALSE(Ipv6Addr::parse("1:2:3:4:5:6:7:8:9"));
  EXPECT_FALSE(Ipv6Addr::parse("2001:db8::1::2"));
  EXPECT_FALSE(Ipv6Addr::parse("12345::1"));
  EXPECT_FALSE(Ipv6Addr::parse("gggg::1"));
  EXPECT_FALSE(Ipv6Addr::parse("1:2:3:4:5:6:7:8::"));  // :: must elide >=1
}

TEST(Ipv6Addr, RoundTrip) {
  const Ipv6Addr original = addr_from(7);
  const auto parsed = Ipv6Addr::parse(original.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

TEST(Ipv6Compress, ReversalCommutes) {
  Ipv6FourTuple tuple;
  tuple.src_ip = addr_from(1);
  tuple.dst_ip = addr_from(2);
  tuple.src_port = 40000;
  tuple.dst_port = 443;
  // Essential for SEQ/ACK matching: the ACK direction's compressed tuple
  // must be exactly the reverse of the data direction's.
  EXPECT_EQ(compress(tuple.reversed()), compress(tuple).reversed());
  EXPECT_EQ(compress(tuple), compress(tuple));  // deterministic
}

TEST(Ipv6Compress, CollisionRateGovernedByCompressedWidth) {
  // Section 7 worries IPv6's wider tuples collide more at a fixed signature
  // width. With a well-mixed hash the collision rate depends only on the
  // output width: 200k random IPv6 tuples into the 96-bit FourTuple space
  // must not collide at all, and their 32-bit signatures collide at the
  // same birthday rate IPv4 tuples do (~200k^2/2^33 ~ 4.7 expected).
  Rng rng(3);
  const int flows = 200000;
  std::unordered_set<std::uint64_t> compressed;
  std::unordered_set<std::uint32_t> signatures;
  for (int i = 0; i < flows; ++i) {
    Ipv6FourTuple tuple;
    tuple.src_ip = addr_from(rng.next_u64());
    tuple.dst_ip = addr_from(rng.next_u64());
    tuple.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    tuple.dst_port = 443;
    const FourTuple v4 = compress(tuple);
    compressed.insert(hash_tuple(v4));
    signatures.insert(flow_signature(v4));
  }
  EXPECT_EQ(compressed.size(), static_cast<std::size_t>(flows));
  EXPECT_GE(signatures.size(), static_cast<std::size_t>(flows) - 30)
      << "32-bit signature collisions should stay at the birthday rate";
}

TEST(Ipv6Compress, MonitorsWorkOnCompressedFlows) {
  Ipv6FourTuple v6;
  v6.src_ip = *Ipv6Addr::parse("2001:db8:8::10");
  v6.dst_ip = *Ipv6Addr::parse("2600:1406::beef");
  v6.src_port = 50000;
  v6.dst_port = 443;
  const FourTuple flow = compress(v6);

  core::VectorSink sink;
  core::DartMonitor dart(core::DartConfig{}, sink.callback());

  PacketRecord data;
  data.ts = usec(10);
  data.tuple = flow;
  data.seq = 1000;
  data.payload = 1280;  // IPv6 minimum MTU payload-ish
  data.flags = tcp_flag::kAck;
  data.outbound = true;
  dart.process(data);

  PacketRecord ack;
  ack.ts = usec(310);
  ack.tuple = flow.reversed();
  ack.ack = 2280;
  ack.flags = tcp_flag::kAck;
  ack.outbound = false;
  dart.process(ack);

  ASSERT_EQ(sink.samples().size(), 1U);
  EXPECT_EQ(sink.samples()[0].rtt(), usec(300));
}

}  // namespace
}  // namespace dart
