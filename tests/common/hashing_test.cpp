#include "common/hashing.hpp"

#include <gtest/gtest.h>

#include <array>
#include <unordered_set>

namespace dart {
namespace {

TEST(Mix64, IsDeterministicAndNontrivial) {
  EXPECT_EQ(mix64(12345), mix64(12345));
  EXPECT_NE(mix64(12345), mix64(12346));
  EXPECT_NE(mix64(0), 0ULL);
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t base = mix64(0xDEADBEEFCAFEF00DULL);
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t flipped =
        mix64(0xDEADBEEFCAFEF00DULL ^ (1ULL << bit));
    const int popcount = __builtin_popcountll(base ^ flipped);
    EXPECT_GT(popcount, 10) << "weak avalanche at bit " << bit;
    EXPECT_LT(popcount, 54) << "weak avalanche at bit " << bit;
  }
}

TEST(Crc32, MatchesKnownVector) {
  // IEEE CRC-32 of "123456789" is 0xCBF43926.
  const std::array<std::uint8_t, 9> data = {'1', '2', '3', '4', '5',
                                            '6', '7', '8', '9'};
  EXPECT_EQ(crc32(std::span<const std::uint8_t>(data)), 0xCBF43926U);
}

TEST(Crc32, EmptyInputIsZero) {
  EXPECT_EQ(crc32({}), 0U);
}

TEST(Crc32U32, ConsistentWithBytewiseCrc) {
  const std::uint32_t word = 0x01020304U;
  const std::array<std::uint8_t, 4> bytes = {0x04, 0x03, 0x02, 0x01};  // LE
  EXPECT_EQ(crc32_u32(word), crc32(std::span<const std::uint8_t>(bytes)));
}

TEST(HashFamily, StagesAreIndependent) {
  const HashFamily family(99);
  const std::uint64_t key = 0xABCDEF12345ULL;
  std::unordered_set<std::uint64_t> values;
  for (std::uint32_t stage = 0; stage < 8; ++stage) {
    values.insert(family(key, stage));
  }
  EXPECT_EQ(values.size(), 8U);  // all distinct for this key
}

TEST(HashFamily, SeedChangesMapping) {
  const HashFamily a(1);
  const HashFamily b(2);
  EXPECT_NE(a(42, 0), b(42, 0));
}

TEST(HashFamily, StageIndexDistributionIsRoughlyUniform) {
  const HashFamily family(7);
  constexpr std::size_t buckets = 64;
  std::array<int, buckets> counts{};
  const int keys = 64000;
  for (int i = 0; i < keys; ++i) {
    ++counts[family(static_cast<std::uint64_t>(i), 1) % buckets];
  }
  const int expected = keys / buckets;
  for (std::size_t i = 0; i < buckets; ++i) {
    EXPECT_GT(counts[i], expected / 2) << "bucket " << i;
    EXPECT_LT(counts[i], expected * 2) << "bucket " << i;
  }
}

}  // namespace
}  // namespace dart
