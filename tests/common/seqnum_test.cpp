// Wraparound-aware sequence arithmetic: the foundation every tracker's
// correctness rests on.
#include "common/seqnum.hpp"

#include <gtest/gtest.h>

namespace dart {
namespace {

TEST(SeqNum, OrdinaryOrdering) {
  EXPECT_TRUE(seq_lt(100, 200));
  EXPECT_FALSE(seq_lt(200, 100));
  EXPECT_FALSE(seq_lt(100, 100));
  EXPECT_TRUE(seq_le(100, 100));
  EXPECT_TRUE(seq_gt(200, 100));
  EXPECT_TRUE(seq_ge(200, 200));
}

TEST(SeqNum, OrderingAcrossWraparound) {
  const SeqNum near_top = 0xFFFFFF00U;
  const SeqNum wrapped = 0x00000100U;
  // wrapped is 512 bytes *after* near_top in the circular space.
  EXPECT_TRUE(seq_lt(near_top, wrapped));
  EXPECT_FALSE(seq_lt(wrapped, near_top));
  EXPECT_EQ(seq_distance(near_top, wrapped), 512U);
}

TEST(SeqNum, HalfSpaceBoundary) {
  // A distance of exactly 2^31 is ambiguous in serial arithmetic: a - b and
  // b - a are both INT32_MIN, so each side compares "less" than the other.
  // Real flows never span 2^31 bytes of in-flight data, so trackers only
  // rely on comparisons strictly inside the half-space.
  const SeqNum a = 0;
  const SeqNum b = 0x80000000U;
  EXPECT_TRUE(seq_lt(a, b));
  EXPECT_TRUE(seq_lt(b, a));
}

TEST(SeqNum, AddWraps) {
  EXPECT_EQ(seq_add(0xFFFFFFFFU, 1), 0U);
  EXPECT_EQ(seq_add(0xFFFFFF00U, 0x200), 0x100U);
}

TEST(SeqNum, ClosedIntervalContainment) {
  EXPECT_TRUE(seq_in_closed(150, 100, 200));
  EXPECT_TRUE(seq_in_closed(100, 100, 200));
  EXPECT_TRUE(seq_in_closed(200, 100, 200));
  EXPECT_FALSE(seq_in_closed(99, 100, 200));
  EXPECT_FALSE(seq_in_closed(201, 100, 200));
}

TEST(SeqNum, ClosedIntervalAcrossWrap) {
  const SeqNum lo = 0xFFFFFE00U;
  const SeqNum hi = 0x00000200U;
  EXPECT_TRUE(seq_in_closed(0xFFFFFF00U, lo, hi));
  EXPECT_TRUE(seq_in_closed(0x00000100U, lo, hi));
  EXPECT_FALSE(seq_in_closed(0x00000300U, lo, hi));
  EXPECT_FALSE(seq_in_closed(0xFFFFFD00U, lo, hi));
}

TEST(SeqNum, LeftOpenInterval) {
  EXPECT_FALSE(seq_in_left_open(100, 100, 200));  // left edge excluded
  EXPECT_TRUE(seq_in_left_open(101, 100, 200));
  EXPECT_TRUE(seq_in_left_open(200, 100, 200));   // right edge included
  EXPECT_FALSE(seq_in_left_open(201, 100, 200));
}

TEST(SeqNum, EmptyLeftOpenInterval) {
  // A collapsed range (left == right) contains nothing.
  EXPECT_FALSE(seq_in_left_open(500, 500, 500));
  EXPECT_FALSE(seq_in_left_open(499, 500, 500));
  EXPECT_FALSE(seq_in_left_open(501, 500, 500));
}

TEST(SeqNum, WrapDetection) {
  EXPECT_TRUE(seq_wrapped(0xFFFFFF00U, 0x100U));
  EXPECT_FALSE(seq_wrapped(100, 200));
  EXPECT_FALSE(seq_wrapped(200, 100));  // serial regression, not a wrap
}

// Property sweep: for any base b and span s < 2^31, b < b+s serially.
class SeqNumPropertyTest
    : public ::testing::TestWithParam<std::tuple<SeqNum, std::uint32_t>> {};

TEST_P(SeqNumPropertyTest, ForwardSpanOrdersCorrectly) {
  const auto [base, span] = GetParam();
  if (span == 0) {
    EXPECT_FALSE(seq_lt(base, seq_add(base, span)));
  } else {
    EXPECT_TRUE(seq_lt(base, seq_add(base, span)));
    EXPECT_TRUE(seq_gt(seq_add(base, span), base));
    EXPECT_EQ(seq_distance(base, seq_add(base, span)), span);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SeqNumPropertyTest,
    ::testing::Combine(
        ::testing::Values<SeqNum>(0U, 1U, 1000U, 0x7FFFFFFFU, 0x80000000U,
                                  0xFFFFFF00U, 0xFFFFFFFFU),
        ::testing::Values<std::uint32_t>(0U, 1U, 1460U, 0xFFFFU,
                                         0x7FFFFFFFU)));

}  // namespace
}  // namespace dart
