#include "common/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dart {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(9);
  Rng parent2(9);
  Rng fork_a = parent1.fork(5);
  Rng fork_b = parent2.fork(5);
  EXPECT_EQ(fork_a.next_u64(), fork_b.next_u64());

  Rng parent3(9);
  Rng other = parent3.fork(6);
  EXPECT_NE(fork_a.next_u64(), other.next_u64());
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(77);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(31);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3U);
    EXPECT_LE(v, 9U);
    saw_lo |= v == 3;
    saw_hi |= v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(42, 42), 42U);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(17);
  const int trials = 100000;
  int hits = 0;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  const double freq = static_cast<double>(hits) / trials;
  EXPECT_NEAR(freq, 0.3, 0.01);
}

TEST(Rng, NormalMomentsAreSane) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(29);
  const int n = 50001;
  std::vector<double> values(n);
  for (double& v : values) v = rng.lognormal(std::log(10.0), 0.5);
  std::nth_element(values.begin(), values.begin() + n / 2, values.end());
  EXPECT_NEAR(values[n / 2], 10.0, 0.5);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(41);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(43);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.3), 2.0);
  }
}

}  // namespace
}  // namespace dart
