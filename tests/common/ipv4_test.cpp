#include "common/ipv4.hpp"

#include <gtest/gtest.h>

namespace dart {
namespace {

TEST(Ipv4Addr, RoundTripFormatting) {
  const Ipv4Addr addr{10, 9, 1, 200};
  EXPECT_EQ(addr.to_string(), "10.9.1.200");
  const auto parsed = Ipv4Addr::parse("10.9.1.200");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, addr);
}

TEST(Ipv4Addr, ParseEdgeValues) {
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->value(), 0U);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->value(), 0xFFFFFFFFU);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse(""));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Addr::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 "));
}

TEST(Ipv4Prefix, MasksBaseOnConstruction) {
  const Ipv4Prefix prefix{Ipv4Addr{10, 9, 1, 200}, 16};
  EXPECT_EQ(prefix.base(), (Ipv4Addr{10, 9, 0, 0}));
  EXPECT_EQ(prefix.to_string(), "10.9.0.0/16");
}

TEST(Ipv4Prefix, Containment) {
  const Ipv4Prefix prefix{Ipv4Addr{10, 9, 0, 0}, 16};
  EXPECT_TRUE(prefix.contains(Ipv4Addr{10, 9, 255, 1}));
  EXPECT_FALSE(prefix.contains(Ipv4Addr{10, 8, 0, 1}));
}

TEST(Ipv4Prefix, ZeroLengthContainsEverything) {
  const Ipv4Prefix everything{Ipv4Addr{1, 2, 3, 4}, 0};
  EXPECT_TRUE(everything.contains(Ipv4Addr{255, 255, 255, 255}));
  EXPECT_TRUE(everything.contains(Ipv4Addr{0, 0, 0, 0}));
}

TEST(Ipv4Prefix, FullLengthIsExactMatch) {
  const Ipv4Prefix host{Ipv4Addr{10, 9, 1, 200}, 32};
  EXPECT_TRUE(host.contains(Ipv4Addr{10, 9, 1, 200}));
  EXPECT_FALSE(host.contains(Ipv4Addr{10, 9, 1, 201}));
}

TEST(Ipv4Prefix, ParseRoundTrip) {
  const auto prefix = Ipv4Prefix::parse("192.168.4.0/22");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->length(), 22U);
  EXPECT_TRUE(prefix->contains(Ipv4Addr{192, 168, 7, 99}));
  EXPECT_FALSE(prefix->contains(Ipv4Addr{192, 168, 8, 1}));
}

TEST(Ipv4Prefix, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0/8"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/8x"));
}

TEST(Ipv4Prefix, OfNormalizes) {
  EXPECT_EQ(Ipv4Prefix::of(Ipv4Addr{23, 52, 11, 9}, 24),
            (Ipv4Prefix{Ipv4Addr{23, 52, 11, 0}, 24}));
}

}  // namespace
}  // namespace dart
