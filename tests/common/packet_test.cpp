#include "common/packet.hpp"

#include <gtest/gtest.h>

namespace dart {
namespace {

PacketRecord data_packet(SeqNum seq, std::uint16_t payload) {
  PacketRecord p;
  p.seq = seq;
  p.payload = payload;
  p.flags = tcp_flag::kAck | tcp_flag::kPsh;
  return p;
}

TEST(PacketRecord, SeqSpanCountsPayload) {
  EXPECT_EQ(data_packet(100, 1460).seq_span(), 1460U);
  EXPECT_EQ(data_packet(100, 1460).expected_ack(), 1560U);
}

TEST(PacketRecord, SynAndFinConsumeOneSequenceNumber) {
  PacketRecord syn;
  syn.seq = 500;
  syn.flags = tcp_flag::kSyn;
  EXPECT_EQ(syn.seq_span(), 1U);
  EXPECT_EQ(syn.expected_ack(), 501U);
  EXPECT_TRUE(syn.carries_data());

  PacketRecord fin;
  fin.seq = 900;
  fin.flags = tcp_flag::kFin | tcp_flag::kAck;
  fin.payload = 10;
  EXPECT_EQ(fin.seq_span(), 11U);
  EXPECT_EQ(fin.expected_ack(), 911U);
}

TEST(PacketRecord, PureAckCarriesNoData) {
  PacketRecord ack;
  ack.flags = tcp_flag::kAck;
  EXPECT_FALSE(ack.carries_data());
  EXPECT_EQ(ack.seq_span(), 0U);
}

TEST(PacketRecord, ExpectedAckWrapsAroundSequenceSpace) {
  PacketRecord p = data_packet(0xFFFFFFF0U, 0x20);
  EXPECT_EQ(p.expected_ack(), 0x10U);
}

TEST(PacketRecord, FlagPredicates) {
  PacketRecord p;
  p.flags = tcp_flag::kSyn | tcp_flag::kAck;
  EXPECT_TRUE(p.is_syn());
  EXPECT_TRUE(p.is_ack());
  EXPECT_FALSE(p.is_fin());
  EXPECT_FALSE(p.is_rst());
}

TEST(PacketRecord, ToStringShowsFlagsAndDirection) {
  PacketRecord p = data_packet(100, 10);
  p.tuple = FourTuple{Ipv4Addr{10, 0, 0, 1}, Ipv4Addr{10, 0, 0, 2}, 1, 2};
  p.outbound = true;
  const std::string text = p.to_string();
  EXPECT_NE(text.find("seq=100"), std::string::npos);
  EXPECT_NE(text.find("[AP]"), std::string::npos);
  EXPECT_NE(text.find(" out"), std::string::npos);
}

}  // namespace
}  // namespace dart
