#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace dart {
namespace {

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(FormatPercent, MultipliesByHundred) {
  EXPECT_EQ(format_percent(0.123, 1), "12.3%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(FormatCount, GroupsThousands) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(135780000), "135,780,000");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "23456"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 23456 |"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| only |"), std::string::npos);
}

}  // namespace
}  // namespace dart
