// Metamorphic and invariant properties of the monitors — relations that
// must hold for ANY workload, checked on randomized generator output.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baseline/tcptrace_const.hpp"
#include "core/dart_monitor.hpp"
#include "gen/workload.hpp"
#include "trace/trace_io.hpp"

#include <sstream>

namespace dart {
namespace {

using core::DartConfig;
using core::DartMonitor;
using core::RttSample;

trace::Trace workload(std::uint64_t seed) {
  gen::CampusConfig config;
  config.connections = 1200;
  config.duration = sec(8);
  config.seed = seed;
  return gen::build_campus(config);
}

std::vector<RttSample> run(const trace::Trace& trace,
                           const DartConfig& config) {
  std::vector<RttSample> samples;
  DartMonitor dart(config, [&samples](const RttSample& sample) {
    samples.push_back(sample);
  });
  dart.process_all(trace.packets());
  return samples;
}

using SampleKey = std::tuple<std::uint64_t, SeqNum, Timestamp, Timestamp>;

SampleKey key_of(const RttSample& sample) {
  return {hash_tuple(sample.tuple), sample.eack, sample.seq_ts,
          sample.ack_ts};
}

class MonitorProperties : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorProperties,
                         ::testing::Values(1u, 7u, 1234u, 987654u));

TEST_P(MonitorProperties, SamplesAreNeverNegativeOrZero) {
  const trace::Trace trace = workload(GetParam());
  DartConfig config;
  config.rt_size = 1 << 12;
  config.pt_size = 1 << 10;
  for (const RttSample& sample : run(trace, config)) {
    EXPECT_LT(sample.seq_ts, sample.ack_ts);
  }
}

TEST_P(MonitorProperties, BoundedSamplesAreSubsetOfUnbounded) {
  // Memory pressure may only LOSE samples, never invent or alter them: the
  // RT is kept unbounded in both runs, so every bounded-PT sample must
  // appear, timestamps identical, in the unbounded run.
  const trace::Trace trace = workload(GetParam());
  DartConfig unbounded = baseline::tcptrace_const_config(false);
  DartConfig bounded = unbounded;
  bounded.pt_size = 1 << 9;
  bounded.pt_stages = 2;
  bounded.max_recirculations = 2;

  std::set<SampleKey> unbounded_keys;
  for (const RttSample& s : run(trace, unbounded)) {
    unbounded_keys.insert(key_of(s));
  }
  for (const RttSample& s : run(trace, bounded)) {
    EXPECT_TRUE(unbounded_keys.count(key_of(s)))
        << "bounded run invented a sample";
  }
}

TEST_P(MonitorProperties, HashSeedDoesNotAffectUnboundedResults) {
  const trace::Trace trace = workload(GetParam());
  DartConfig a = baseline::tcptrace_const_config(false);
  DartConfig b = a;
  b.hash_seed = 0xFEEDFACE;
  const auto sa = run(trace, a);
  const auto sb = run(trace, b);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(key_of(sa[i]), key_of(sb[i]));
  }
}

TEST_P(MonitorProperties, PerFlowResultsIndependentOfInterleaving) {
  // Processing flows merged or one-by-one must give identical per-flow
  // samples when memory is unbounded (flows share no state).
  gen::CampusConfig config;
  config.connections = 60;
  config.duration = sec(5);
  config.seed = GetParam() ^ 0xABC;
  const trace::Trace merged = gen::build_campus(config);

  // Merged run.
  std::map<std::uint64_t, std::vector<SampleKey>> merged_by_flow;
  for (const RttSample& s :
       run(merged, baseline::tcptrace_const_config(false))) {
    merged_by_flow[hash_tuple(s.tuple)].push_back(key_of(s));
  }

  // Split the merged trace by connection and replay each alone.
  std::map<std::uint64_t, trace::Trace> per_flow;
  for (const PacketRecord& p : merged.packets()) {
    per_flow[hash_tuple(p.tuple.canonical())].add(p);
  }
  std::map<std::uint64_t, std::vector<SampleKey>> solo_by_flow;
  for (const auto& [flow, flow_trace] : per_flow) {
    for (const RttSample& s :
         run(flow_trace, baseline::tcptrace_const_config(false))) {
      solo_by_flow[hash_tuple(s.tuple)].push_back(key_of(s));
    }
  }
  EXPECT_EQ(merged_by_flow, solo_by_flow);
}

TEST_P(MonitorProperties, BinaryRoundTripPreservesMonitorResults) {
  const trace::Trace trace = workload(GetParam());
  std::stringstream buffer;
  ASSERT_TRUE(trace::write_binary(trace, buffer));
  const auto loaded = trace::read_binary(buffer);
  ASSERT_TRUE(loaded.has_value());

  DartConfig config;
  config.rt_size = 1 << 12;
  config.pt_size = 1 << 10;
  const auto original = run(trace, config);
  const auto replayed = run(*loaded, config);
  ASSERT_EQ(original.size(), replayed.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(key_of(original[i]), key_of(replayed[i]));
  }
}

TEST_P(MonitorProperties, StatsAreInternallyConsistent) {
  const trace::Trace trace = workload(GetParam());
  DartConfig config;
  config.rt_size = 1 << 12;
  config.pt_size = 1 << 9;
  config.pt_stages = 2;
  config.max_recirculations = 3;
  DartMonitor dart(config);
  dart.process_all(trace.packets());
  const core::DartStats& s = dart.stats();

  EXPECT_EQ(s.samples, s.pt_lookup_hits);
  EXPECT_EQ(s.ack_advances,
            s.pt_lookup_hits + s.pt_lookup_misses);
  // Every eviction is resolved exactly once: re-inserted (another eviction
  // or a store) or dropped for a counted reason.
  EXPECT_EQ(s.pt_evictions,
            s.recirculations + s.drops_budget + s.drops_cycle +
                s.drops_useless + s.drops_shadow)
      << "evictions must be fully accounted (recirculated or dropped)";
  // Stale self-destructions happen only after a recirculation.
  EXPECT_LE(s.drops_stale, s.recirculations);
  EXPECT_EQ(s.drops_policy, 0U) << "policy drops require kNeverEvict";
}

}  // namespace
}  // namespace dart
