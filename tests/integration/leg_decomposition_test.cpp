// Dual-leg monitoring (Sections 2.1 and 5): the external and internal legs
// measured simultaneously decompose the end-to-end RTT.
#include <gtest/gtest.h>

#include "analytics/percentile.hpp"
#include "core/dart_monitor.hpp"
#include "gen/flow_sim.hpp"
#include "gen/workload.hpp"

namespace dart {
namespace {

gen::FlowProfile two_leg_flow() {
  gen::FlowProfile profile;
  profile.tuple = FourTuple{Ipv4Addr{10, 8, 7, 7},
                            Ipv4Addr{151, 101, 1, 1}, 43210, 443};
  profile.internal = gen::constant_rtt(msec(6));
  profile.external = gen::constant_rtt(msec(30));
  profile.bytes_up = 200 * 1460;
  profile.bytes_down = 200 * 1460;
  profile.ack_every = 1;
  return profile;
}

TEST(LegDecomposition, BothLegsMeasuredSimultaneously) {
  const trace::Trace trace = gen::simulate_flow(two_leg_flow());

  analytics::PercentileSet external;
  analytics::PercentileSet internal;
  core::DartConfig config;
  config.leg = core::LegMode::kBoth;
  core::DartMonitor dart(config, [&](const core::RttSample& sample) {
    if (sample.leg == core::LegMode::kExternal) {
      external.add(sample.rtt());
    } else {
      internal.add(sample.rtt());
    }
  });
  dart.process_all(trace.packets());

  ASSERT_GT(external.count(), 100U);
  ASSERT_GT(internal.count(), 100U);
  // External leg: monitor <-> server = 30 ms; internal: client <-> monitor
  // = 6 ms (per-segment ACKs, constant paths).
  EXPECT_NEAR(external.percentile(50) / 1e6, 30.0, 1.5);
  EXPECT_NEAR(internal.percentile(50) / 1e6, 6.0, 1.5);
  // The legs compose to the end-to-end RTT (Section 2.1).
  EXPECT_NEAR((external.percentile(50) + internal.percentile(50)) / 1e6,
              36.0, 2.0);
}

TEST(LegDecomposition, BothModeEqualsUnionOfSingleModes) {
  const trace::Trace trace = gen::simulate_flow(two_leg_flow());

  auto count_samples = [&trace](core::LegMode leg) {
    std::size_t n = 0;
    core::DartConfig config;
    config.leg = leg;
    core::DartMonitor dart(config,
                           [&n](const core::RttSample&) { ++n; });
    dart.process_all(trace.packets());
    return n;
  };

  const std::size_t external = count_samples(core::LegMode::kExternal);
  const std::size_t internal = count_samples(core::LegMode::kInternal);
  const std::size_t both = count_samples(core::LegMode::kBoth);
  EXPECT_EQ(both, external + internal);
}

TEST(LegDecomposition, DualRoleRecirculationsAccounted) {
  const trace::Trace trace = gen::simulate_flow(two_leg_flow());
  core::DartConfig config;
  config.leg = core::LegMode::kBoth;
  core::DartMonitor dart(config);
  dart.process_all(trace.packets());
  // Bidirectional transfer: data packets carry ACKs, so dual-role
  // recirculations must be plentiful (Section 5's recirculate-with-custom-
  // header cost).
  EXPECT_GT(dart.stats().dual_role_recirculations, 100U);
  EXPECT_GE(dart.stats().recirculations,
            dart.stats().dual_role_recirculations);
}

}  // namespace
}  // namespace dart
