// Configuration-matrix sweep: Dart's correctness invariants must hold for
// every combination of table geometry, budget, and policy — not just the
// configurations the paper evaluates.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "baseline/tcptrace_const.hpp"
#include "core/dart_monitor.hpp"
#include "gen/workload.hpp"

namespace dart {
namespace {

using core::DartConfig;
using core::DartMonitor;
using core::EvictionPolicy;
using core::RttSample;

const trace::Trace& shared_workload() {
  static const trace::Trace trace = [] {
    gen::CampusConfig config;
    config.connections = 1000;
    config.duration = sec(8);
    config.seed = 31;
    return gen::build_campus(config);
  }();
  return trace;
}

const std::set<std::tuple<std::uint64_t, SeqNum, Timestamp, Timestamp>>&
truth_keys() {
  static const auto keys = [] {
    std::set<std::tuple<std::uint64_t, SeqNum, Timestamp, Timestamp>> out;
    core::VectorSink sink;
    DartMonitor unbounded(baseline::tcptrace_const_config(false),
                          sink.callback());
    unbounded.process_all(shared_workload().packets());
    for (const RttSample& s : sink.samples()) {
      out.insert({hash_tuple(s.tuple), s.eack, s.seq_ts, s.ack_ts});
    }
    return out;
  }();
  return keys;
}

struct MatrixParam {
  std::uint32_t stages;
  std::uint32_t budget;
  EvictionPolicy policy;
};

class ConfigMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ConfigMatrix, SamplesAreAccurateAndAccounted) {
  const MatrixParam param = GetParam();
  DartConfig config = baseline::tcptrace_const_config(false);
  config.pt_size = 1 << 9;  // real pressure for every combination
  config.pt_stages = param.stages;
  config.max_recirculations = param.budget;
  config.policy = param.policy;

  std::size_t samples = 0;
  std::size_t wrong = 0;
  DartMonitor dart(config, [&](const RttSample& s) {
    ++samples;
    if (!truth_keys().count(
            {hash_tuple(s.tuple), s.eack, s.seq_ts, s.ack_ts})) {
      ++wrong;
    }
  });
  dart.process_all(shared_workload().packets());

  // 1. No invented samples under any configuration.
  EXPECT_EQ(wrong, 0U);
  // 2. Something is still collected (no configuration bricks the monitor);
  //    kNeverEvict is the designed exception under pressure.
  if (param.policy != EvictionPolicy::kNeverEvict) {
    EXPECT_GT(samples, truth_keys().size() / 4);
  }
  // 3. The eviction ledger balances.
  const core::DartStats& s = dart.stats();
  EXPECT_EQ(s.pt_evictions,
            s.recirculations + s.drops_budget + s.drops_cycle +
                s.drops_useless + s.drops_shadow);
  // 4. Occupancy never exceeds capacity.
  EXPECT_LE(dart.packet_tracker().occupied(),
            dart.packet_tracker().capacity());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfigMatrix,
    ::testing::Values(
        MatrixParam{1, 0, EvictionPolicy::kEvictYoungest},
        MatrixParam{1, 1, EvictionPolicy::kEvictYoungest},
        MatrixParam{1, 8, EvictionPolicy::kEvictYoungest},
        MatrixParam{2, 1, EvictionPolicy::kEvictYoungest},
        MatrixParam{4, 2, EvictionPolicy::kEvictYoungest},
        MatrixParam{8, 1, EvictionPolicy::kEvictYoungest},
        MatrixParam{8, 8, EvictionPolicy::kEvictYoungest},
        MatrixParam{1, 1, EvictionPolicy::kEvictOldest},
        MatrixParam{4, 4, EvictionPolicy::kEvictOldest},
        MatrixParam{1, 1, EvictionPolicy::kNeverEvict},
        MatrixParam{4, 1, EvictionPolicy::kNeverEvict}),
    [](const auto& info) {
      const char* policy =
          info.param.policy == EvictionPolicy::kEvictYoungest ? "Youngest"
          : info.param.policy == EvictionPolicy::kEvictOldest ? "Oldest"
                                                              : "Never";
      return "k" + std::to_string(info.param.stages) + "r" +
             std::to_string(info.param.budget) + policy;
    });

}  // namespace
}  // namespace dart
