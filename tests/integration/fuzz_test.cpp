// Garbage-input hardening: every monitor must survive arbitrary packet
// streams — not just simulator output — without crashing or violating its
// invariants. A gateway vantage point sees scans, floods, corrupted
// headers, and protocol nonsense daily.
#include <gtest/gtest.h>

#include "baseline/dapper.hpp"
#include "baseline/strawman.hpp"
#include "baseline/tcptrace.hpp"
#include "common/random.hpp"
#include "core/dart_monitor.hpp"
#include "quic/spin_bit.hpp"
#include "runtime/sharded_monitor.hpp"

namespace dart {
namespace {

// Uniformly random packets: random tuples (from a small pool so lookups
// collide), random seq/ack/flags/payload, non-decreasing timestamps.
std::vector<PacketRecord> garbage(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<PacketRecord> packets;
  packets.reserve(count);
  Timestamp ts = 0;
  for (std::size_t i = 0; i < count; ++i) {
    PacketRecord p;
    ts += rng.uniform_int(0, 100000);
    p.ts = ts;
    p.tuple.src_ip = Ipv4Addr{static_cast<std::uint32_t>(
        rng.uniform_int(0, 15) | 0x0A080000)};
    p.tuple.dst_ip = Ipv4Addr{static_cast<std::uint32_t>(
        rng.uniform_int(0, 15) | 0x17340000)};
    p.tuple.src_port = static_cast<std::uint16_t>(rng.uniform_int(0, 7));
    p.tuple.dst_port = static_cast<std::uint16_t>(rng.uniform_int(0, 7));
    p.seq = static_cast<SeqNum>(rng.next_u64());
    p.ack = static_cast<SeqNum>(rng.next_u64());
    p.payload = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    p.flags = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    p.outbound = rng.bernoulli(0.5);
    packets.push_back(p);
  }
  return packets;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Values(1u, 42u, 0xF00Du));

TEST_P(Fuzz, DartMonitorSurvivesAndKeepsInvariants) {
  const auto packets = garbage(GetParam(), 50000);
  core::DartConfig config;
  config.rt_size = 1 << 8;
  config.pt_size = 1 << 8;
  config.pt_stages = 4;
  config.max_recirculations = 4;
  config.include_syn = true;  // widest surface
  config.leg = core::LegMode::kBoth;
  config.rt_idle_timeout = msec(500);
  config.shadow_rt = true;
  config.shadow_sync_interval = 64;

  std::uint64_t bad_samples = 0;
  core::DartMonitor dart(config, [&](const core::RttSample& sample) {
    if (sample.ack_ts <= sample.seq_ts) ++bad_samples;
  });
  dart.process_all(packets);

  EXPECT_EQ(bad_samples, 0U) << "RTT samples must be strictly positive";
  const core::DartStats& s = dart.stats();
  EXPECT_EQ(s.packets_processed, packets.size());
  EXPECT_LE(dart.packet_tracker().occupied(),
            dart.packet_tracker().capacity());
  EXPECT_LE(dart.range_tracker().occupied(), std::size_t{1} << 8);
  // recirculations also counts the per-packet dual-role recirculations of
  // LegMode::kBoth (Section 5); the eviction ledger excludes those.
  EXPECT_EQ(s.pt_evictions,
            (s.recirculations - s.dual_role_recirculations) +
                s.drops_budget + s.drops_cycle + s.drops_useless +
                s.drops_shadow);
}

TEST_P(Fuzz, UnboundedDartSurvives) {
  const auto packets = garbage(GetParam() ^ 0x111, 30000);
  core::DartMonitor dart(core::DartConfig{});
  dart.process_all(packets);
  EXPECT_EQ(dart.stats().packets_processed, packets.size());
}

TEST_P(Fuzz, BaselinesSurvive) {
  const auto packets = garbage(GetParam() ^ 0x222, 30000);

  baseline::TcpTraceConfig tt_config;
  baseline::TcpTrace tcptrace(tt_config);
  tcptrace.process_all(packets);
  EXPECT_EQ(tcptrace.stats().packets_processed, packets.size());

  baseline::StrawmanConfig sm_config;
  sm_config.table_size = 256;
  sm_config.entry_timeout = msec(100);
  baseline::Strawman strawman(sm_config);
  strawman.process_all(packets);

  baseline::DapperLike dapper(baseline::DapperConfig{});
  dapper.process_all(packets);

  quic::SpinBitMonitor spin;
  spin.process_all(packets);
  SUCCEED();
}

TEST_P(Fuzz, SamplesReferenceRealTimestamps) {
  // Any emitted sample's timestamps must be timestamps of actual packets.
  const auto packets = garbage(GetParam() ^ 0x333, 20000);
  std::set<Timestamp> known;
  for (const auto& p : packets) known.insert(p.ts);

  core::DartConfig config;
  config.rt_size = 1 << 10;
  config.pt_size = 1 << 10;
  core::DartMonitor dart(config, [&](const core::RttSample& sample) {
    EXPECT_TRUE(known.count(sample.seq_ts));
    EXPECT_TRUE(known.count(sample.ack_ts));
  });
  dart.process_all(packets);
}

TEST_P(Fuzz, ShardedDartSurvivesGarbage) {
  // The sharded runtime must shrug off the same garbage as the
  // single-threaded path: every packet processed exactly once across
  // shards, per-shard invariants intact, samples strictly positive.
  const auto packets = garbage(GetParam() ^ 0x444, 50000);
  core::DartConfig config;
  config.rt_size = 1 << 8;
  config.pt_size = 1 << 8;
  config.pt_stages = 4;
  config.max_recirculations = 4;
  config.include_syn = true;
  config.leg = core::LegMode::kBoth;
  config.rt_idle_timeout = msec(500);
  config.shadow_rt = true;
  config.shadow_sync_interval = 64;

  runtime::ShardedConfig sharded_config;
  sharded_config.shards = 4;
  runtime::ShardedMonitor sharded(sharded_config, config);
  sharded.process_all(packets);
  sharded.finish();

  const core::DartStats s = sharded.merged_stats();
  EXPECT_EQ(s.packets_processed, packets.size());
  EXPECT_EQ(s.pt_evictions,
            (s.recirculations - s.dual_role_recirculations) +
                s.drops_budget + s.drops_cycle + s.drops_useless +
                s.drops_shadow);
  std::uint64_t bad_samples = 0;
  for (const core::RttSample& sample : sharded.merged_samples()) {
    if (sample.ack_ts <= sample.seq_ts) ++bad_samples;
  }
  EXPECT_EQ(bad_samples, 0U) << "RTT samples must be strictly positive";
}

TEST(FuzzDegenerate, ZeroLengthAndExtremeValues) {
  core::DartConfig config;
  config.rt_size = 1;  // single-slot tables
  config.pt_size = 1;
  core::DartMonitor dart(config);

  PacketRecord p;
  p.tuple = FourTuple{Ipv4Addr{0}, Ipv4Addr{0xFFFFFFFF}, 0, 65535};
  p.seq = 0xFFFFFFFF;
  p.payload = 65535;
  p.flags = 0xFF;  // every flag at once
  p.outbound = true;
  dart.process(p);
  p.outbound = false;
  p.ack = 0;
  dart.process(p);
  p.ts = ~Timestamp{0};  // end of time
  dart.process(p);
  SUCCEED();
}

}  // namespace
}  // namespace dart
