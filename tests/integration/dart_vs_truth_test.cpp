// End-to-end validation of Dart against the workload generator's ground
// truth and the tcptrace baseline — the paper's Section 6.1 comparison, as
// test invariants.
#include <gtest/gtest.h>

#include <map>

#include "baseline/tcptrace.hpp"
#include "baseline/tcptrace_const.hpp"
#include "core/dart_monitor.hpp"
#include "gen/workload.hpp"

namespace dart {
namespace {

using core::DartConfig;
using core::DartMonitor;
using core::RttSample;
using core::VectorSink;

gen::CampusConfig clean_campus() {
  gen::CampusConfig config;
  config.connections = 600;
  config.duration = sec(10);
  config.loss_rate = 0.0;
  config.reorder_prob = 0.0;
  config.ack_spike_prob = 0.0;
  config.abort_fraction = 0.0;
  config.wraparound_fraction = 0.0;
  return config;
}

gen::CampusConfig impaired_campus() {
  gen::CampusConfig config;
  config.connections = 800;
  config.duration = sec(10);
  // Loss only on the receiver side of the monitor: every retransmission is
  // visible at the vantage point, so Dart's collapse logic sees everything
  // it needs and never emits a sample ground truth would reject.
  config.loss_rate = 0.0;
  config.reorder_prob = 0.01;
  config.wraparound_fraction = 0.0;
  return config;
}

std::map<std::pair<std::uint64_t, SeqNum>, trace::TruthSample> truth_index(
    const trace::Trace& trace, bool outbound_only) {
  std::map<std::pair<std::uint64_t, SeqNum>, trace::TruthSample> index;
  for (const auto& sample : trace.truth()) {
    // External-leg truth has an internal (10/8 or 10/9) source.
    const bool outbound = sample.tuple.src_ip.value() >> 24 == 10;
    if (outbound_only && !outbound) continue;
    index.emplace(std::make_pair(hash_tuple(sample.tuple), sample.eack),
                  sample);
  }
  return index;
}

TEST(DartVsTruth, UnconstrainedPlusSynMatchesTruthExactlyOnCleanTrace) {
  const trace::Trace trace = gen::build_campus(clean_campus());
  const auto truth = truth_index(trace, /*outbound_only=*/true);
  ASSERT_GT(truth.size(), 500U);

  // Serial-arithmetic mode: random ISNs mean a few multi-MB flows wrap the
  // 32-bit sequence space; with full serial comparisons (the extension of
  // DESIGN.md; ground truth is computed in unwrapped 64-bit space) Dart
  // must match truth EXACTLY. The paper-faithful wraparound reset would
  // deliberately forgo the handful of wrap-spanning samples.
  DartConfig config = baseline::tcptrace_const_config(/*include_syn=*/true);
  config.wraparound_reset = false;
  VectorSink sink;
  DartMonitor dart(config, sink.callback());
  dart.process_all(trace.packets());

  // Every truth sample collected, every collected sample in truth, with
  // identical timestamps.
  EXPECT_EQ(sink.samples().size(), truth.size());
  for (const RttSample& sample : sink.samples()) {
    const auto it =
        truth.find(std::make_pair(hash_tuple(sample.tuple), sample.eack));
    ASSERT_NE(it, truth.end()) << sample.tuple.to_string();
    EXPECT_EQ(sample.seq_ts, it->second.seq_ts);
    EXPECT_EQ(sample.ack_ts, it->second.ack_ts);
  }
}

TEST(DartVsTruth, UnconstrainedSamplesAreAlwaysAccurateUnderImpairments) {
  const trace::Trace trace = gen::build_campus(impaired_campus());
  const auto truth = truth_index(trace, /*outbound_only=*/true);

  VectorSink sink;
  DartMonitor dart(baseline::tcptrace_const_config(/*include_syn=*/true),
                   sink.callback());
  dart.process_all(trace.packets());

  // Under reordering Dart collects FEWER samples (collapses forgo some),
  // but never a wrong one: each emitted sample matches ground truth.
  ASSERT_GT(sink.samples().size(), 100U);
  std::size_t matched = 0;
  for (const RttSample& sample : sink.samples()) {
    const auto it =
        truth.find(std::make_pair(hash_tuple(sample.tuple), sample.eack));
    if (it != truth.end() && sample.seq_ts == it->second.seq_ts &&
        sample.ack_ts == it->second.ack_ts) {
      ++matched;
    }
  }
  EXPECT_EQ(matched, sink.samples().size());
  EXPECT_LE(sink.samples().size(), truth.size());
}

TEST(DartVsTruth, StrawmanProducesWrongSamplesWhereDartDoesNot) {
  // The motivating comparison of Section 2: under retransmissions the
  // strawman emits samples that disagree with ground truth.
  gen::CampusConfig config = impaired_campus();
  config.loss_rate = 0.02;
  const trace::Trace trace = gen::build_campus(config);
  const auto truth = truth_index(trace, true);

  VectorSink dart_sink;
  DartMonitor dart(baseline::tcptrace_const_config(true),
                   dart_sink.callback());
  dart.process_all(trace.packets());
  std::size_t dart_wrong = 0;
  for (const RttSample& sample : dart_sink.samples()) {
    const auto it =
        truth.find(std::make_pair(hash_tuple(sample.tuple), sample.eack));
    if (it == truth.end() || sample.seq_ts != it->second.seq_ts) ++dart_wrong;
  }
  EXPECT_EQ(dart_wrong, 0U);
}

TEST(DartVsTcptrace, BaselineCollectsAtLeastAsManySamples) {
  gen::CampusConfig config = impaired_campus();
  config.loss_rate = 0.004;  // both sides: full Figure 9a conditions
  const trace::Trace trace = gen::build_campus(config);

  VectorSink dart_sink;
  DartMonitor dart(baseline::tcptrace_const_config(false),
                   dart_sink.callback());
  dart.process_all(trace.packets());

  baseline::TcpTraceConfig tt_config;
  tt_config.include_syn = false;
  VectorSink tt_sink;
  baseline::TcpTrace tcptrace(tt_config, tt_sink.callback());
  tcptrace.process_all(trace.packets());

  // tcptrace keeps every outstanding range across holes and applies Karn
  // per segment; Dart's constant-space range can only lose samples
  // relative to it (Figure 9a: Dart collects >82% of tcptrace's samples).
  EXPECT_LE(dart_sink.samples().size(), tt_sink.samples().size());
  EXPECT_GT(static_cast<double>(dart_sink.samples().size()),
            0.80 * static_cast<double>(tt_sink.samples().size()));
}

TEST(DartBounded, NeverCollectsMoreThanUnbounded) {
  const trace::Trace trace = gen::build_campus(impaired_campus());

  VectorSink unbounded_sink;
  DartMonitor unbounded(baseline::tcptrace_const_config(false),
                        unbounded_sink.callback());
  unbounded.process_all(trace.packets());

  DartConfig bounded_config;
  bounded_config.rt_size = 1 << 14;
  bounded_config.pt_size = 1 << 12;
  VectorSink bounded_sink;
  DartMonitor bounded(bounded_config, bounded_sink.callback());
  bounded.process_all(trace.packets());

  EXPECT_LE(bounded_sink.samples().size(), unbounded_sink.samples().size());
  EXPECT_GT(bounded_sink.samples().size(),
            unbounded_sink.samples().size() / 2);
}

TEST(DartBounded, LargerPtCollectsMoreSamples) {
  const trace::Trace trace = gen::build_campus(impaired_campus());
  std::size_t previous = 0;
  for (std::size_t bits : {8, 11, 14}) {
    DartConfig config;
    config.rt_size = 1 << 16;
    config.pt_size = std::size_t{1} << bits;
    VectorSink sink;
    DartMonitor dart(config, sink.callback());
    dart.process_all(trace.packets());
    EXPECT_GE(sink.samples().size(), previous) << "pt bits " << bits;
    previous = sink.samples().size();
  }
}

TEST(DartRobustness, SynFloodCreatesNoState) {
  gen::SynFloodConfig flood;
  flood.syn_count = 5000;
  const trace::Trace trace = gen::build_syn_flood(flood);

  DartConfig config;
  config.rt_size = 1 << 12;
  config.pt_size = 1 << 12;
  DartMonitor dart(config);
  dart.process_all(trace.packets());
  EXPECT_EQ(dart.range_tracker().occupied(), 0U);
  EXPECT_EQ(dart.packet_tracker().occupied(), 0U);
  EXPECT_EQ(dart.stats().syn_ignored, trace.size());

  // +SYN mode, by contrast, lets the flood fill the RT (Figure 10's
  // motivation for ignoring handshake packets).
  DartConfig plus_syn = config;
  plus_syn.include_syn = true;
  DartMonitor vulnerable(plus_syn);
  vulnerable.process_all(trace.packets());
  EXPECT_GT(vulnerable.range_tracker().occupied(), (1U << 12) / 2);
}

TEST(DartRobustness, OptimisticAckersGainNothing) {
  gen::CampusConfig config = clean_campus();
  config.connections = 200;
  const trace::Trace honest_trace = gen::build_campus(config);

  VectorSink honest_sink;
  DartMonitor honest(baseline::tcptrace_const_config(true),
                     honest_sink.callback());
  honest.process_all(honest_trace.packets());

  // Same workload but the remote servers optimistically ACK ahead on every
  // packet (pure ACKs and piggybacked ones alike); Dart must not collect
  // deflated samples from ACKs beyond the right edge.
  trace::Trace tampered = honest_trace;
  for (PacketRecord& p : tampered.packets()) {
    if (!p.outbound && p.is_ack()) {
      p.ack += 50000;  // way beyond anything sent
    }
  }
  VectorSink tampered_sink;
  DartMonitor defender(baseline::tcptrace_const_config(true),
                       tampered_sink.callback());
  defender.process_all(tampered.packets());
  EXPECT_GT(defender.stats().ack_optimistic, 0U);
  EXPECT_TRUE(tampered_sink.samples().empty());
}

}  // namespace
}  // namespace dart
