// End-to-end interception attack detection (paper Section 5.2, Figure 8):
// workload generator -> Dart monitor -> min-filter change detector.
#include <gtest/gtest.h>

#include "analytics/change_detector.hpp"
#include "core/dart_monitor.hpp"
#include "gen/workload.hpp"

namespace dart {
namespace {

struct DetectionRun {
  analytics::ChangeDetector detector{analytics::ChangeDetectorConfig{}};
  std::uint64_t samples_at_attack = 0;
  std::uint64_t samples_at_confirm = 0;
  std::uint64_t samples_total = 0;
  Timestamp confirm_ts = 0;
  bool confirmed = false;
};

DetectionRun run_detection(const gen::InterceptionConfig& config) {
  const trace::Trace trace = gen::build_interception(config);

  DetectionRun run;
  core::DartConfig dart_config;
  dart_config.rt_size = 1 << 12;
  dart_config.pt_size = 1 << 12;

  core::DartMonitor dart(dart_config, [&](const core::RttSample& sample) {
    if (sample.tuple != gen::interception_tuple()) return;
    ++run.samples_total;
    if (sample.ack_ts < config.attack_time) {
      run.samples_at_attack = run.samples_total;
    }
    const auto event = run.detector.add(sample.rtt(), sample.ack_ts);
    if (event && event->state == analytics::DetectionState::kConfirmed &&
        !run.confirmed) {
      run.confirmed = true;
      run.confirm_ts = event->at_ts;
      run.samples_at_confirm = run.samples_total;
    }
  });
  dart.process_all(trace.packets());
  return run;
}

TEST(Interception, AttackIsConfirmed) {
  const gen::InterceptionConfig config;
  const DetectionRun run = run_detection(config);
  ASSERT_TRUE(run.confirmed);
  EXPECT_GT(run.confirm_ts, config.attack_time);
}

TEST(Interception, DetectionIsFast) {
  // The paper confirms within 63 packet exchanges / 2.58 s of onset. Our
  // sample stream is ~1 per RTT, so allow a comparable budget: confirmation
  // within ~40 samples and ~6 seconds of the attack taking effect.
  const gen::InterceptionConfig config;
  const DetectionRun run = run_detection(config);
  ASSERT_TRUE(run.confirmed);
  EXPECT_LE(run.samples_at_confirm - run.samples_at_attack, 40U);
  EXPECT_LE(run.confirm_ts - config.attack_time, sec(6));
}

TEST(Interception, NoFalsePositiveWithoutAttack) {
  gen::InterceptionConfig config;
  // "Attack" after the trace ends: pure steady-state traffic.
  config.attack_time = config.duration + sec(10);
  const DetectionRun run = run_detection(config);
  EXPECT_FALSE(run.confirmed);
  EXPECT_EQ(run.detector.state(), analytics::DetectionState::kNormal);
}

TEST(Interception, DetectorSurvivesJitter) {
  gen::InterceptionConfig config;
  config.jitter_sigma = 0.25;  // noisy path
  const DetectionRun run = run_detection(config);
  EXPECT_TRUE(run.confirmed);
}

TEST(Interception, WorksWithBackgroundTraffic) {
  gen::InterceptionConfig config;
  config.background_flows = 300;
  const DetectionRun run = run_detection(config);
  EXPECT_TRUE(run.confirmed);
}

}  // namespace
}  // namespace dart
