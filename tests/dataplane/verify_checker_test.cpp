// Static pipeline checker (dataplane/verify): every rule gets one passing
// and one failing fixture, and the paper's deployed configurations are
// pinned as feasible while a battery of broken ones is pinned infeasible
// with rule-specific diagnostics.
#include <gtest/gtest.h>

#include "dataplane/resource_model.hpp"
#include "dataplane/verify/checker.hpp"
#include "dataplane/verify/pipeline_program.hpp"

namespace dart::dataplane::verify {
namespace {

// A minimal hand-built program: one 32-bit register table accessed once.
PipelineProgram tiny_program() {
  PipelineProgram program;
  program.name = "tiny";
  TableDecl table;
  table.name = "reg";
  table.kind = TableKind::kRegister;
  table.width_bits = 32;
  table.entries = 1024;
  table.component_tables = 1;
  table.holds_seq_arith = true;
  program.tables.push_back(table);
  Pass pass;
  pass.name = "initial";
  TableAccess access;
  access.table = "reg";
  access.kind = AccessKind::kReadModifyWrite;
  access.hash_units = 1;
  access.crossbar_bytes = 8;
  program.passes.push_back(pass);
  program.passes.front().accesses.push_back(access);
  return program;
}

MonitorShape paper_shape() { return MonitorShape{}; }

// ---------------------------------------------------------------------------
// Acceptance: the paper's configurations are feasible.

TEST(Checker, PaperTofino1Feasible) {
  const CheckReport report =
      check_deployment(DartLayout{}, paper_shape(), tofino1_profile());
  EXPECT_TRUE(report.feasible()) << report.to_string();
  EXPECT_LE(report.stages_used, tofino1_profile().stages);
}

TEST(Checker, PaperTofino2Feasible) {
  const CheckReport report =
      check_deployment(DartLayout{}, paper_shape(), tofino2_profile());
  EXPECT_TRUE(report.feasible()) << report.to_string();
}

TEST(Checker, IngressEgressSplitPrototypeFeasible) {
  // The Tofino1 prototype spans ingress+egress; with the split a 4-stage
  // PT fits even though a single pipeline rejects it.
  MonitorShape shape = paper_shape();
  shape.pt_stages = 4;
  shape.split_ingress_egress = true;
  const CheckReport report =
      check_deployment(DartLayout{}, shape, tofino1_profile());
  EXPECT_TRUE(report.feasible()) << report.to_string();
  EXPECT_GT(report.stages_used, tofino1_profile().stages);
  EXPECT_LE(report.stages_used, 2 * tofino1_profile().stages);
}

TEST(Checker, BothLegsWithShadowRtFeasibleOnTofino2) {
  MonitorShape shape = paper_shape();
  shape.both_legs = true;
  shape.shadow_rt = true;
  const CheckReport report =
      check_deployment(DartLayout{}, shape, tofino2_profile());
  EXPECT_TRUE(report.feasible()) << report.to_string();
}

// ---------------------------------------------------------------------------
// DPL000 config.

TEST(Checker, ConfigPasses) {
  EXPECT_TRUE(check(tiny_program(), tofino1_profile()).feasible());
}

TEST(Checker, ConfigRejectsUndeclaredTable) {
  PipelineProgram program = tiny_program();
  program.passes.front().accesses.front().table = "ghost";
  const CheckReport report = check(program, tofino1_profile());
  EXPECT_TRUE(report.has_rule(Rule::kConfig)) << report.to_string();
}

TEST(Checker, ConfigRejectsZeroComponentTables) {
  PipelineProgram program = tiny_program();
  program.tables.front().component_tables = 0;
  EXPECT_TRUE(
      check(program, tofino1_profile()).has_rule(Rule::kConfig));
}

TEST(Checker, ShapeRejectsZeroPtStages) {
  MonitorShape shape = paper_shape();
  shape.pt_stages = 0;
  const auto diags = check_shape(shape);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags.front().rule, Rule::kConfig);
}

// ---------------------------------------------------------------------------
// DPL001 single access per logical table per pass.

TEST(Checker, SingleAccessPasses) {
  // The emitted paper program touches each register table exactly once per
  // pass, by construction.
  const PipelineProgram program = emit_program(DartLayout{}, paper_shape());
  const CheckReport report = check(program, tofino1_profile());
  EXPECT_FALSE(report.has_rule(Rule::kSingleAccessPerPass))
      << report.to_string();
}

TEST(Checker, SingleAccessRejectsDoubleVisit) {
  PipelineProgram program = tiny_program();
  program.passes.front().accesses.push_back(
      program.passes.front().accesses.front());
  const CheckReport report = check(program, tofino1_profile());
  EXPECT_TRUE(report.has_rule(Rule::kSingleAccessPerPass))
      << report.to_string();
}

// ---------------------------------------------------------------------------
// DPL002 read-modify-write confined to one stage (SALU model).

TEST(Checker, RmwWithinSaluWidthPasses) {
  EXPECT_FALSE(check(tiny_program(), tofino1_profile())
                   .has_rule(Rule::kRmwSingleStage));
}

TEST(Checker, RmwRejectsSplitReadWrite) {
  PipelineProgram program = tiny_program();
  program.passes.front().accesses.front().kind = AccessKind::kRead;
  TableAccess write = program.passes.front().accesses.front();
  write.kind = AccessKind::kWrite;
  program.passes.front().accesses.push_back(write);
  const CheckReport report = check(program, tofino1_profile());
  EXPECT_TRUE(report.has_rule(Rule::kRmwSingleStage)) << report.to_string();
}

TEST(Checker, RmwRejectsRegistersWiderThanSalu) {
  PipelineProgram program = tiny_program();
  program.tables.front().width_bits = 64;
  const CheckReport report = check(program, tofino1_profile());
  EXPECT_TRUE(report.has_rule(Rule::kRmwSingleStage)) << report.to_string();
}

// ---------------------------------------------------------------------------
// DPL003 dependency-respecting stage placement.

TEST(Checker, PlacementFitsPaperProgram) {
  const CheckReport report =
      check(emit_program(DartLayout{}, paper_shape()), tofino1_profile());
  EXPECT_FALSE(report.has_rule(Rule::kStagePlacement)) << report.to_string();
  // RT's three component tables occupy three consecutive stages after the
  // classification stage, before the PT.
  ASSERT_FALSE(report.placements.empty());
}

TEST(Checker, PlacementRejectsFourPtStagesOnSingleTofino1Pipeline) {
  MonitorShape shape = paper_shape();
  shape.pt_stages = 4;
  const CheckReport report =
      check_deployment(DartLayout{}, shape, tofino1_profile());
  EXPECT_FALSE(report.feasible());
  EXPECT_TRUE(report.has_rule(Rule::kStagePlacement)) << report.to_string();
}

TEST(Checker, PlacementRejectsBackwardsOrderInLaterPass) {
  // Pass 0 places A before B; a later pass consuming B before A would need
  // the packet to travel backwards.
  PipelineProgram program = tiny_program();
  TableDecl b = program.tables.front();
  b.name = "reg_b";
  program.tables.push_back(b);
  TableAccess access_b = program.passes.front().accesses.front();
  access_b.table = "reg_b";
  program.passes.front().accesses.push_back(access_b);

  Pass backwards;
  backwards.name = "recirculated";
  backwards.accesses.push_back(access_b);             // reg_b first
  backwards.accesses.push_back(TableAccess{program.passes.front()
                                               .accesses.front()});  // reg
  program.passes.push_back(backwards);
  const CheckReport report = check(program, tofino1_profile());
  EXPECT_TRUE(report.has_rule(Rule::kStagePlacement)) << report.to_string();
}

// ---------------------------------------------------------------------------
// DPL004 per-stage hash-unit / crossbar budgets.

TEST(Checker, StageBudgetPassesForModestDemand) {
  EXPECT_FALSE(
      check(tiny_program(), tofino1_profile()).has_rule(Rule::kStageBudget));
}

TEST(Checker, StageBudgetRejectsHashHungryAccess) {
  PipelineProgram program = tiny_program();
  program.passes.front().accesses.front().hash_units =
      tofino1_profile().hash_units_per_stage + 1;
  const CheckReport report = check(program, tofino1_profile());
  EXPECT_TRUE(report.has_rule(Rule::kStageBudget)) << report.to_string();
}

TEST(Checker, StageBudgetRejectsWideKeysOnNarrowCrossbar) {
  // IPv6 flow keys exceed the per-stage crossbar capacity.
  MonitorShape shape = paper_shape();
  shape.flow_key_bytes = 36;
  const CheckReport report =
      check_deployment(DartLayout{}, shape, tofino1_profile());
  EXPECT_TRUE(report.has_rule(Rule::kStageBudget)) << report.to_string();
}

// ---------------------------------------------------------------------------
// DPL005 recirculation budget and termination.

TEST(Checker, RecirculationWithinBudgetPasses) {
  const CheckReport report =
      check(emit_program(DartLayout{}, paper_shape()), tofino1_profile());
  EXPECT_FALSE(report.has_rule(Rule::kRecirculation)) << report.to_string();
  EXPECT_EQ(report.worst_case_recirculations, 1U);
}

TEST(Checker, RecirculationRejectsBudgetOverrun) {
  MonitorShape shape = paper_shape();
  shape.max_recirculations = tofino1_profile().max_recirculations_per_packet
                             + 1;
  const CheckReport report =
      check_deployment(DartLayout{}, shape, tofino1_profile());
  EXPECT_TRUE(report.has_rule(Rule::kRecirculation)) << report.to_string();
}

TEST(Checker, RecirculationRejectsUnboundedCycle) {
  PipelineProgram program = tiny_program();
  RecircEdge loop;
  loop.from_pass = 0;
  loop.to_pass = 0;
  loop.bounded = false;
  loop.reason = "test loop";
  program.recirc.push_back(loop);
  const CheckReport report = check(program, tofino1_profile());
  ASSERT_TRUE(report.has_rule(Rule::kRecirculation)) << report.to_string();
  bool mentions_termination = false;
  for (const Diagnostic& d : report.diagnostics) {
    mentions_termination |= d.message.find("termination") != std::string::npos;
  }
  EXPECT_TRUE(mentions_termination);
}

TEST(Checker, RecirculationRejectsUnbudgetedEdge) {
  PipelineProgram program = tiny_program();
  Pass second;
  second.name = "recirculated";
  program.passes.push_back(second);
  RecircEdge edge;
  edge.from_pass = 0;
  edge.to_pass = 1;
  edge.bounded = false;
  edge.reason = "test edge";
  program.recirc.push_back(edge);
  const CheckReport report = check(program, tofino1_profile());
  EXPECT_TRUE(report.has_rule(Rule::kRecirculation)) << report.to_string();
}

// ---------------------------------------------------------------------------
// DPL006 register width sufficiency for seq/ack arithmetic.

TEST(Checker, RegisterWidthPassesAt32Bits) {
  EXPECT_FALSE(check(tiny_program(), tofino1_profile())
                   .has_rule(Rule::kRegisterWidth));
}

TEST(Checker, RegisterWidthRejectsNarrowSeqRegisters) {
  PipelineProgram program = tiny_program();
  program.tables.front().width_bits = 16;
  const CheckReport report = check(program, tofino1_profile());
  EXPECT_TRUE(report.has_rule(Rule::kRegisterWidth)) << report.to_string();
}

TEST(Checker, RegisterWidthIgnoresNonSeqTables) {
  PipelineProgram program = tiny_program();
  program.tables.front().width_bits = 16;
  program.tables.front().holds_seq_arith = false;
  EXPECT_FALSE(
      check(program, tofino1_profile()).has_rule(Rule::kRegisterWidth));
}

// ---------------------------------------------------------------------------
// DPL007 memory budgets via check_deployment.

TEST(Checker, MemoryBudgetPassesForPaperLayout) {
  EXPECT_FALSE(
      check_deployment(DartLayout{}, paper_shape(), tofino1_profile())
          .has_rule(Rule::kMemoryBudget));
}

TEST(Checker, MemoryBudgetRejectsOversizedRangeTracker) {
  DartLayout layout;
  layout.rt_slots = 1ULL << 26;
  const CheckReport report =
      check_deployment(layout, paper_shape(), tofino1_profile());
  ASSERT_TRUE(report.has_rule(Rule::kMemoryBudget)) << report.to_string();
  bool mentions_sram = false;
  for (const Diagnostic& d : report.diagnostics) {
    mentions_sram |= d.message.find("SRAM") != std::string::npos;
  }
  EXPECT_TRUE(mentions_sram);
}

TEST(Checker, MemoryBudgetRejectsTcamFlood) {
  DartLayout layout;
  layout.flow_filter_rules = 200000;
  const CheckReport report =
      check_deployment(layout, paper_shape(), tofino1_profile());
  ASSERT_TRUE(report.has_rule(Rule::kMemoryBudget)) << report.to_string();
  bool mentions_tcam = false;
  for (const Diagnostic& d : report.diagnostics) {
    mentions_tcam |= d.message.find("TCAM") != std::string::npos;
  }
  EXPECT_TRUE(mentions_tcam);
}

// ---------------------------------------------------------------------------
// DPL008 dead (never-accessed) tables.

TEST(Checker, DeadTablePassesWhenEveryTableIsAccessed) {
  EXPECT_FALSE(
      check(tiny_program(), tofino1_profile()).has_rule(Rule::kDeadTable));
  EXPECT_FALSE(
      check(emit_program(DartLayout{}, paper_shape()), tofino1_profile())
          .has_rule(Rule::kDeadTable));
}

TEST(Checker, DeadTableRejectsDeclaredButUnaccessedTable) {
  PipelineProgram program = tiny_program();
  TableDecl dead = program.tables.front();
  dead.name = "orphan";
  program.tables.push_back(dead);
  const CheckReport report = check(program, tofino1_profile());
  EXPECT_TRUE(report.has_rule(Rule::kDeadTable)) << report.to_string();
  EXPECT_FALSE(report.feasible());
}

TEST(Checker, DeadTableFiresAlongsideGhostAccess) {
  // Renaming the only access leaves 'reg' dead and the access dangling:
  // DPL000 and DPL008 describe the two halves of the same mistake.
  PipelineProgram program = tiny_program();
  program.passes.front().accesses.front().table = "ghost";
  const CheckReport report = check(program, tofino1_profile());
  EXPECT_TRUE(report.has_rule(Rule::kConfig)) << report.to_string();
  EXPECT_TRUE(report.has_rule(Rule::kDeadTable)) << report.to_string();
}

TEST(Checker, DeadTableViaDeploymentExtraTables) {
  // emit_program never declares a table it does not access, so the paper
  // deployment is DPL008-clean; --extra-table models the generator bug.
  const CheckReport clean =
      check_deployment(DartLayout{}, paper_shape(), tofino1_profile());
  EXPECT_FALSE(clean.has_rule(Rule::kDeadTable)) << clean.to_string();
  const CheckReport dirty = check_deployment(
      DartLayout{}, paper_shape(), tofino1_profile(), {"spin_bit_state"});
  EXPECT_TRUE(dirty.has_rule(Rule::kDeadTable)) << dirty.to_string();
  EXPECT_FALSE(dirty.feasible());
}

// ---------------------------------------------------------------------------
// Report plumbing.

TEST(Checker, DiagnosticCodesAreStable) {
  EXPECT_EQ(rule_code(Rule::kConfig), "DPL000");
  EXPECT_EQ(rule_code(Rule::kSingleAccessPerPass), "DPL001");
  EXPECT_EQ(rule_code(Rule::kRmwSingleStage), "DPL002");
  EXPECT_EQ(rule_code(Rule::kStagePlacement), "DPL003");
  EXPECT_EQ(rule_code(Rule::kStageBudget), "DPL004");
  EXPECT_EQ(rule_code(Rule::kRecirculation), "DPL005");
  EXPECT_EQ(rule_code(Rule::kRegisterWidth), "DPL006");
  EXPECT_EQ(rule_code(Rule::kMemoryBudget), "DPL007");
  EXPECT_EQ(rule_code(Rule::kDeadTable), "DPL008");
}

TEST(Checker, ReportContainsPlacementTableAndVerdict) {
  const CheckReport report =
      check_deployment(DartLayout{}, paper_shape(), tofino1_profile());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("range_tracker"), std::string::npos);
  EXPECT_NE(text.find("FEASIBLE"), std::string::npos);
  EXPECT_NE(text.find("stages used"), std::string::npos);
}

TEST(Checker, InfeasibleReportPrintsErrorCodes) {
  MonitorShape shape = paper_shape();
  shape.pt_stages = 4;
  const CheckReport report =
      check_deployment(DartLayout{}, shape, tofino1_profile());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("error[DPL003]"), std::string::npos) << text;
  EXPECT_NE(text.find("INFEASIBLE"), std::string::npos);
}

}  // namespace
}  // namespace dart::dataplane::verify
