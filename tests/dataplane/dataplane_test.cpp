#include <gtest/gtest.h>

#include "dataplane/resource_model.hpp"
#include "dataplane/stage_table.hpp"

namespace dart::dataplane {
namespace {

struct Entry {
  bool valid = false;
  int value = 0;
};

TEST(StageTable, OneSlotPerKeyPerStage) {
  StageTable<Entry> table(64, /*hash_seed=*/3, /*stage_id=*/1);
  const std::uint64_t key = 0xABCDEF;
  EXPECT_EQ(table.index_of(key), table.index_of(key));
  table.slot_for(key) = Entry{true, 7};
  EXPECT_TRUE(table.slot_for(key).valid);
  EXPECT_EQ(table.slot_for(key).value, 7);
}

TEST(StageTable, DifferentStagesDifferentMapping) {
  StageTable<Entry> s1(1 << 12, 3, 1);
  StageTable<Entry> s2(1 << 12, 3, 2);
  int differing = 0;
  for (std::uint64_t key = 0; key < 100; ++key) {
    if (s1.index_of(key) != s2.index_of(key)) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(StageTable, CountIfScansAllSlots) {
  StageTable<Entry> table(16, 3, 0);
  table.slot_for(1) = Entry{true, 0};
  table.slot_for(2) = Entry{true, 0};
  const std::size_t occupied =
      table.count_if([](const Entry& e) { return e.valid; });
  EXPECT_GE(occupied, 1U);  // keys 1 and 2 may collide in 16 slots
  EXPECT_LE(occupied, 2U);
}

TEST(StageTable, ZeroSizeClampedToOne) {
  StageTable<Entry> table(0, 3, 0);
  EXPECT_EQ(table.size(), 1U);
}

TEST(ResourceModel, SramScalesWithTableSizes) {
  DartLayout small;
  small.rt_slots = 1 << 12;
  small.pt_slots = 1 << 13;
  DartLayout large = small;
  large.pt_slots = 1 << 18;
  EXPECT_GT(estimate_usage(large).sram_bytes,
            estimate_usage(small).sram_bytes);
}

TEST(ResourceModel, HashUnitsScaleWithStages) {
  DartLayout one;
  one.pt_stages = 1;
  DartLayout eight = one;
  eight.pt_stages = 8;
  EXPECT_EQ(estimate_usage(eight).hash_units - estimate_usage(one).hash_units,
            7U);
}

TEST(ResourceModel, UtilizationRowsMatchTable1Structure) {
  const DartLayout layout;
  const auto rows = utilization(estimate_usage(layout), tofino1_profile());
  ASSERT_EQ(rows.size(), 5U);
  EXPECT_EQ(rows[0].resource, "TCAM");
  EXPECT_EQ(rows[1].resource, "SRAM");
  EXPECT_EQ(rows[2].resource, "Hash Units");
  EXPECT_EQ(rows[3].resource, "Logical Tables");
  EXPECT_EQ(rows[4].resource, "Input Crossbars");
  for (const auto& row : rows) {
    EXPECT_GT(row.percent, 0.0) << row.resource;
    EXPECT_LT(row.percent, 100.0) << row.resource;
  }
}

TEST(ResourceModel, Tofino2HasMoreHeadroom) {
  const DartLayout layout;
  const auto usage = estimate_usage(layout);
  const auto t1 = utilization(usage, tofino1_profile());
  const auto t2 = utilization(usage, tofino2_profile());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_LE(t2[i].percent, t1[i].percent) << t1[i].resource;
  }
}

TEST(ResourceModel, PaperScaleConfigurationFitsTofino1) {
  // The paper's deployed configuration must not exceed any chip budget.
  DartLayout layout;
  layout.rt_slots = 1 << 16;
  layout.pt_slots = 1 << 17;
  layout.pt_stages = 1;
  const auto rows = utilization(estimate_usage(layout), tofino1_profile());
  for (const auto& row : rows) {
    EXPECT_LT(row.percent, 60.0) << row.resource;
  }
}

}  // namespace
}  // namespace dart::dataplane
