// The Section 4 payload-size lookup table: must agree with the arithmetic
// it replaces over the entire precomputed range.
#include "dataplane/payload_lut.hpp"

#include <gtest/gtest.h>

#include "dataplane/resource_model.hpp"

namespace dart::dataplane {
namespace {

TEST(PayloadLut, MatchesArithmeticEverywhere) {
  const PayloadLut lut;
  for (std::uint16_t len = PayloadLut::kMinTotalLen;
       len <= PayloadLut::kMaxTotalLen; ++len) {
    for (std::uint16_t tcp = PayloadLut::kMinTcpWords;
         tcp <= PayloadLut::kMaxTcpWords; ++tcp) {
      const auto fast = lut.lookup(len, PayloadLut::kIpHeaderWords, tcp);
      ASSERT_TRUE(fast.has_value());
      EXPECT_EQ(*fast,
                PayloadLut::compute(len, PayloadLut::kIpHeaderWords, tcp));
    }
  }
}

TEST(PayloadLut, KnownValues) {
  const PayloadLut lut;
  // Plain 1500-byte MTU packet is outside (1480 cap); a 1480 total with
  // minimal headers carries 1440 bytes.
  EXPECT_EQ(lut.lookup(1480, 5, 5), std::make_optional<std::uint16_t>(1440));
  // 40-byte total = bare headers = zero payload.
  EXPECT_EQ(lut.lookup(40, 5, 5), std::make_optional<std::uint16_t>(0));
  // Max TCP options: 5 + 15 words = 80 bytes of headers.
  EXPECT_EQ(lut.lookup(100, 5, 15), std::make_optional<std::uint16_t>(20));
}

TEST(PayloadLut, OutOfRangeFallsBackToSlowPath) {
  const PayloadLut lut;
  EXPECT_FALSE(lut.lookup(1500, 5, 5).has_value());   // above cap
  EXPECT_FALSE(lut.lookup(39, 5, 5).has_value());     // below floor
  EXPECT_FALSE(lut.lookup(100, 6, 5).has_value());    // IP options
  EXPECT_FALSE(lut.lookup(100, 5, 4).has_value());    // bogus TCP offset
  EXPECT_FALSE(lut.lookup(100, 5, 16).has_value());
}

TEST(PayloadLut, ComputeClampsMalformedPackets) {
  EXPECT_EQ(PayloadLut::compute(30, 5, 5), 0);  // headers exceed total
}

TEST(PayloadLut, EntryCountMatchesPaperRange) {
  const PayloadLut lut;
  EXPECT_EQ(lut.entries(), (1480u - 40u + 1u) * (15u - 5u + 1u));
}

TEST(ResourceModel, ValidateLayoutAcceptsPaperConfig) {
  DartLayout layout;
  layout.rt_slots = 1 << 16;
  layout.pt_slots = 1 << 17;
  EXPECT_TRUE(validate_layout(layout, tofino1_profile()).empty());
  EXPECT_TRUE(validate_layout(layout, tofino2_profile()).empty());
}

TEST(ResourceModel, ValidateLayoutRejectsOversizedTables) {
  DartLayout layout;
  layout.rt_slots = 1ull << 26;  // ~860 MB of RT: no chip holds that
  layout.pt_slots = 1ull << 26;
  const auto problems = validate_layout(layout, tofino1_profile());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("SRAM"), std::string::npos);
}

TEST(ResourceModel, ValidateLayoutRejectsTooManyStages) {
  DartLayout layout;
  layout.pt_stages = 64;
  const auto problems = validate_layout(layout, tofino1_profile());
  bool stage_problem = false;
  for (const auto& p : problems) {
    stage_problem |= p.find("stages") != std::string::npos;
  }
  EXPECT_TRUE(stage_problem);
}

}  // namespace
}  // namespace dart::dataplane
