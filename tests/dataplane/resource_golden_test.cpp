// Golden-value regression for the audited estimate_usage() accounting and
// edge-budget coverage for validate_layout.
//
// The audit (this PR) fixed two accounting bugs:
//   * both_legs added its extra hash unit *after* the crossbar estimate
//     was derived from the hash count, so dual-leg crossbar usage was
//     under-counted by one;
//   * the stage model divided the PT stage count by the component split
//     (ceil(pt_stages / 3) component groups), under-counting multi-stage
//     PTs — each PT stage is its own logical register spread over 3
//     sequentially-dependent component tables, so PT consumes
//     3 * pt_stages stages (Section 4, Table 1).
// The corrected numbers are pinned exactly here so future edits to the
// model are deliberate.
#include <gtest/gtest.h>

#include "dataplane/resource_model.hpp"
#include "dataplane/verify/static_checks.hpp"

namespace dart::dataplane {
namespace {

TEST(ResourceGolden, DefaultLayoutPaperConfig) {
  const ResourceUsage usage = estimate_usage(DartLayout{});
  // SRAM: 65536 * 13 (RT) + 131072 * 16 (PT) + 15851 * 2 (payload LUT).
  EXPECT_EQ(usage.sram_bytes, 2'980'822ULL);
  // TCAM: 1024 flow rules * 24 B (12 B key + 12 B mask).
  EXPECT_EQ(usage.tcam_bytes, 24'576ULL);
  // RT index + flow signature + 1 PT stage index + PT key fold.
  EXPECT_EQ(usage.hash_units, 4U);
  // 3 RT components + 3 PT components + 6 fixed tables.
  EXPECT_EQ(usage.logical_tables, 12U);
  EXPECT_EQ(usage.input_crossbars, 16U);
  // classification/report (2) + RT components (3) + PT components (3).
  EXPECT_EQ(usage.stages_used, 8U);
}

TEST(ResourceGolden, FourStagePacketTracker) {
  DartLayout layout;
  layout.pt_stages = 4;
  const ResourceUsage usage = estimate_usage(layout);
  EXPECT_EQ(usage.hash_units, 7U);          // 2 + 4 + 1
  EXPECT_EQ(usage.logical_tables, 21U);     // 3 + 3*4 + 6
  EXPECT_EQ(usage.input_crossbars, 28U);
  EXPECT_EQ(usage.stages_used, 17U);        // 2 + 3 + 3*4 — needs the split
  EXPECT_GT(usage.stages_used, tofino1_profile().stages);
}

TEST(ResourceGolden, BothLegsCountsHashBeforeCrossbars) {
  DartLayout layout;
  DartLayout dual = layout;
  dual.both_legs = true;
  const ResourceUsage one = estimate_usage(layout);
  const ResourceUsage two = estimate_usage(dual);
  // The dual-leg role re-hash costs one hash unit AND its crossbar input
  // (the pre-audit model missed the latter).
  EXPECT_EQ(two.hash_units, one.hash_units + 1);
  EXPECT_EQ(two.input_crossbars, one.input_crossbars + 1);
  // Memory, tables, and stages are reused via recirculation: unchanged.
  EXPECT_EQ(two.sram_bytes, one.sram_bytes);
  EXPECT_EQ(two.logical_tables, one.logical_tables);
  EXPECT_EQ(two.stages_used, one.stages_used);
}

TEST(ResourceGolden, ConstexprMirrorsMatchRuntimeModel) {
  // static_checks.hpp mirrors estimate_usage for compile-time assertions;
  // any drift between the two is a bug.
  for (const std::uint32_t pt_stages : {1U, 2U, 4U, 8U}) {
    for (const bool both : {false, true}) {
      DartLayout layout;
      layout.pt_stages = pt_stages;
      layout.both_legs = both;
      const ResourceUsage usage = estimate_usage(layout);
      EXPECT_EQ(verify::static_sram_bytes(layout), usage.sram_bytes);
      EXPECT_EQ(verify::static_stages_used(layout), usage.stages_used);
      EXPECT_EQ(verify::static_hash_units(layout), usage.hash_units);
    }
  }
  const TargetProfile t1 = tofino1_profile();
  EXPECT_EQ(verify::kTofino1Stages, t1.stages);
  EXPECT_EQ(verify::kTofino1SramBytes, t1.sram_bytes);
  EXPECT_EQ(verify::kTofino1HashUnitsPerStage, t1.hash_units_per_stage);
  EXPECT_EQ(verify::kSaluWidthBits, t1.salu_width_bits);
}

// ---------------------------------------------------------------------------
// validate_layout edge budgets: exactly-at-budget fits, one-over fails,
// and each failure names its resource.

TargetProfile exact_budget_profile(const DartLayout& layout) {
  const ResourceUsage usage = estimate_usage(layout);
  TargetProfile p;
  p.name = "exact";
  p.sram_bytes = usage.sram_bytes;
  p.tcam_bytes = usage.tcam_bytes;
  p.hash_units = usage.hash_units;
  p.logical_tables = usage.logical_tables;
  p.input_crossbars = usage.input_crossbars;
  p.stages = usage.stages_used;
  return p;
}

TEST(ValidateLayout, ExactlyAtEveryBudgetFits) {
  const DartLayout layout;
  EXPECT_TRUE(validate_layout(layout, exact_budget_profile(layout)).empty());
}

TEST(ValidateLayout, OneByteOverSramFails) {
  const DartLayout layout;
  TargetProfile target = exact_budget_profile(layout);
  target.sram_bytes -= 1;
  const auto problems = validate_layout(layout, target);
  ASSERT_EQ(problems.size(), 1U);
  EXPECT_NE(problems[0].find("SRAM bytes"), std::string::npos);
}

TEST(ValidateLayout, OneByteOverTcamFails) {
  const DartLayout layout;
  TargetProfile target = exact_budget_profile(layout);
  target.tcam_bytes -= 1;
  const auto problems = validate_layout(layout, target);
  ASSERT_EQ(problems.size(), 1U);
  EXPECT_NE(problems[0].find("TCAM bytes"), std::string::npos);
}

TEST(ValidateLayout, OneHashUnitShortFails) {
  const DartLayout layout;
  TargetProfile target = exact_budget_profile(layout);
  target.hash_units -= 1;
  const auto problems = validate_layout(layout, target);
  ASSERT_EQ(problems.size(), 1U);
  EXPECT_NE(problems[0].find("hash units"), std::string::npos);
}

TEST(ValidateLayout, OneLogicalTableShortFails) {
  const DartLayout layout;
  TargetProfile target = exact_budget_profile(layout);
  target.logical_tables -= 1;
  const auto problems = validate_layout(layout, target);
  ASSERT_EQ(problems.size(), 1U);
  EXPECT_NE(problems[0].find("logical tables"), std::string::npos);
}

TEST(ValidateLayout, OneCrossbarShortFails) {
  const DartLayout layout;
  TargetProfile target = exact_budget_profile(layout);
  target.input_crossbars -= 1;
  const auto problems = validate_layout(layout, target);
  ASSERT_EQ(problems.size(), 1U);
  EXPECT_NE(problems[0].find("input crossbars"), std::string::npos);
}

TEST(ValidateLayout, OneStageShortFails) {
  const DartLayout layout;
  TargetProfile target = exact_budget_profile(layout);
  target.stages -= 1;
  const auto problems = validate_layout(layout, target);
  ASSERT_EQ(problems.size(), 1U);
  EXPECT_NE(problems[0].find("pipeline stages"), std::string::npos);
}

TEST(ValidateLayout, EveryExceededBudgetIsReported) {
  const DartLayout layout;
  TargetProfile target;  // all-zero budgets except defaults
  target.name = "empty";
  target.stages = 1;
  target.sram_bytes = 0;
  target.tcam_bytes = 0;
  target.hash_units = 0;
  target.logical_tables = 0;
  target.input_crossbars = 0;
  const auto problems = validate_layout(layout, target);
  EXPECT_EQ(problems.size(), 6U);  // one message per exhausted resource
}

}  // namespace
}  // namespace dart::dataplane
