// dart-analyze fixture: daemon-class code that waits for socket events in
// bounded slices and re-checks the shutdown predicate between them — the
// daemon::net pattern. Member-call read() on a stream-like object is also
// present to pin down that CON009 only targets free-function syscalls.
// Accepted under --treat-as daemon.
namespace fixture {

struct pollfd {
  int fd = -1;
  short events = 0;
  short revents = 0;
};

int poll(pollfd* fds, unsigned long count, int timeout_ms);
int bounded_accept(int listen_fd, bool (*stop)());
long bounded_read(int fd, unsigned char* buf, unsigned long len,
                  bool (*stop)());

struct ByteStream {
  long read(unsigned char* buf, unsigned long len);
};

long drain(int listen_fd, bool (*stop)(), ByteStream& spool,
           unsigned char* buf, unsigned long len) {
  long total = 0;
  while (!stop()) {
    pollfd pfd;
    pfd.fd = listen_fd;
    if (poll(&pfd, 1, 50) <= 0) continue;  // bounded slice, then re-check
    const int client = bounded_accept(listen_fd, stop);
    if (client < 0) continue;
    total += bounded_read(client, buf, len, stop);
    total += spool.read(buf, len);  // member call: stream I/O, not a syscall
  }
  return total;
}

}  // namespace fixture
