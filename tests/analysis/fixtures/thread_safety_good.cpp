// Thread-safety fixture: annotated locking the clang -Wthread-safety
// build must accept. Compiled (syntax-only) by the clang-gated ctest row
// and the static-analysis CI job; never linked into anything.
#include <cstdint>

#include "common/thread_annotations.hpp"

namespace fixture {

class BarrierState {
 public:
  void bump() {
    const dart::common::MutexLock lock(mutex_);
    ++count_;
  }

  std::uint64_t read() const {
    const dart::common::MutexLock lock(mutex_);
    return count_;
  }

 private:
  mutable dart::common::Mutex mutex_;
  std::uint64_t count_ DART_GUARDED_BY(mutex_) = 0;
};

}  // namespace fixture

int main() {
  fixture::BarrierState state;
  state.bump();
  return static_cast<int>(state.read() - 1);
}
