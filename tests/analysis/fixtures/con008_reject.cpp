// dart-analyze fixture: collector-class code that fences on elapsed wall
// time — a steady_clock::now() read feeding the fencing decision and a
// wait_for deadline — so two runs over one spool can disagree. Rejected
// (CON008 four times: two ::now() reads, two wait_for mentions).
namespace fixture {

struct time_point {
  long long ns = 0;
};

struct steady_clock {
  static time_point now();
};

struct condition_variable {
  template <typename Lock>
  bool wait_for(Lock& lock, long long timeout_ns);
};

struct Vantage {
  time_point last_progress;
  bool fenced = false;
};

void fence_if_silent(Vantage& vantage, long long deadline_ns) {
  const time_point current = steady_clock::now();
  if (current.ns - vantage.last_progress.ns > deadline_ns) {
    vantage.fenced = true;
  }
}

template <typename Lock>
bool await_frame(condition_variable& cv, Lock& lock, Vantage& vantage) {
  const bool signalled = cv.wait_for(lock, 1000000LL);
  if (signalled) vantage.last_progress = steady_clock::now();
  return signalled;
}

}  // namespace fixture
