// dart-analyze fixture: deterministic code advances virtual (trace) time
// arithmetically, never by asking a clock. Accepted under
// --treat-as deterministic.
#include <cstdint>

namespace fixture {

inline std::uint64_t advance_vtime(std::uint64_t now_ns,
                                   std::uint64_t delta_ns) {
  return now_ns + delta_ns;
}

}  // namespace fixture
