// dart-analyze fixture: exporter-class code writing the published name
// directly — an ofstream straight onto the spool path plus a bare
// rename() — exactly the torn-frame window telemetry::write_atomic
// closes. Rejected (CON007 four times: ofstream, fopen, fwrite, rename).
namespace fixture {

class ofstream {
 public:
  explicit ofstream(const char* path);
  void write(const char* data, unsigned long size);
};

bool publish_frame(const char* path, const char* data, unsigned long size) {
  ofstream out(path);
  out.write(data, size);
  return true;
}

bool publish_via_stdio(const char* path, const char* data,
                       unsigned long size) {
  void* handle = fopen(path, "wb");
  if (handle == nullptr) return false;
  return fwrite(data, 1, size, handle) == size;
}

bool publish_then_swap(const char* tmp_path, const char* final_path) {
  return rename(tmp_path, final_path) == 0;
}

}  // namespace fixture
