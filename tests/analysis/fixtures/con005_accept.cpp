// dart-analyze fixture: every field sharing a class with the mutex is
// annotated, or waived with a reason. Accepted under any classification.
#include <cstdint>

#define DART_GUARDED_BY(x)

namespace fixture {

class Mutex {};

class Guarded {
 private:
  Mutex mutex_;
  std::uint64_t count_ DART_GUARDED_BY(mutex_) = 0;
  // con-ok(CON005): owned by the constructing thread, set before start()
  std::uint64_t seed_ = 0;
};

}  // namespace fixture
