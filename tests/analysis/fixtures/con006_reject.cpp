// dart-analyze fixture: bare lock()/unlock() pair that an early return or
// an exception could unbalance. Rejected (CON006 twice).
namespace fixture {

class Mutex {
 public:
  void lock() {}
  void unlock() {}
};

class Guarded {
 public:
  void touch() {
    mutex_.lock();
    ++count_;
    mutex_.unlock();
  }

 private:
  Mutex mutex_;
  int count_ = 0;  // con-ok(CON005): fixture exercises CON006 only
};

}  // namespace fixture
