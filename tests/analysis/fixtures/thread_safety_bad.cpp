// Thread-safety fixture: the guarded field is read without its mutex — a
// clang -Wthread-safety build must refuse to compile this file (the ctest
// row is WILL_FAIL and registered only for clang toolchains). Under GCC
// the annotations are no-ops and this compiles, which is exactly why the
// enforcement lives in the clang static-analysis job.
#include <cstdint>

#include "common/thread_annotations.hpp"

namespace fixture {

class BarrierState {
 public:
  void bump() {
    const dart::common::MutexLock lock(mutex_);
    ++count_;
  }

  std::uint64_t racy_read() const { return count_; }

 private:
  mutable dart::common::Mutex mutex_;
  std::uint64_t count_ DART_GUARDED_BY(mutex_) = 0;
};

}  // namespace fixture

int main() {
  fixture::BarrierState state;
  state.bump();
  return static_cast<int>(state.racy_read() - 1);
}
