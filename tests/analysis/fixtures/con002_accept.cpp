// dart-analyze fixture: no raw thread creation; std::this_thread calls
// must not trip the raw-thread rule. Accepted under the default (plain)
// classification.
#include <thread>

namespace fixture {

inline void backoff() { std::this_thread::yield(); }

}  // namespace fixture
