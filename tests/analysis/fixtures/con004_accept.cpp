// dart-analyze fixture: exported output built by probing the unordered
// map with caller-ordered keys; the map itself is never iterated.
// Accepted under --treat-as export.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Exporter {
  std::unordered_map<std::uint64_t, std::uint64_t> table;

  std::vector<std::uint64_t> export_sorted(
      const std::vector<std::uint64_t>& keys) const {
    std::vector<std::uint64_t> out;
    for (const std::uint64_t key : keys) {
      const auto it = table.find(key);
      if (it != table.end()) out.push_back(it->second);
    }
    return out;
  }
};

}  // namespace fixture
