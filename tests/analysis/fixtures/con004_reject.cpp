// dart-analyze fixture: hash-order iteration feeding exported output.
// Rejected under --treat-as export (CON004).
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Exporter {
  std::unordered_map<std::uint64_t, std::uint64_t> table;

  std::vector<std::uint64_t> export_unstable() const {
    std::vector<std::uint64_t> out;
    for (const auto& [key, value] : table) out.push_back(value);
    return out;
  }
};

}  // namespace fixture
