// dart-analyze fixture: wall-clock read in deterministic code. Rejected
// under --treat-as deterministic (CON003).
#include <chrono>
#include <cstdint>

namespace fixture {

inline std::uint64_t now_ns() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

}  // namespace fixture
