// dart-analyze fixture: a waiver that suppresses nothing is itself an
// error, so fixed code cannot leave silent holes behind. Rejected
// (stale-waiver).
namespace fixture {

// con-ok(CON003): stale — the next line reads no clock at all
inline int forty_two() { return 42; }

}  // namespace fixture
