// dart-analyze fixture: collector-class code whose fencing and grace
// decisions are counted in poll attempts, pacing between polls with a
// plain sleep_for (legal — no decision observes a clock). Accepted under
// --treat-as collector.
namespace fixture {

void sleep_for(unsigned long nanoseconds);

struct Vantage {
  unsigned long attempts_without_progress = 0;
  bool fenced = false;
};

bool poll_once(Vantage& vantage);

unsigned long run(Vantage& vantage, unsigned long fence_after_attempts,
                  unsigned long max_attempts) {
  unsigned long polls = 0;
  while (polls < max_attempts && !vantage.fenced) {
    ++polls;
    if (poll_once(vantage)) {
      vantage.attempts_without_progress = 0;
    } else if (++vantage.attempts_without_progress >= fence_after_attempts) {
      vantage.fenced = true;
    }
    sleep_for(1000000UL * polls);
  }
  return polls;
}

}  // namespace fixture
