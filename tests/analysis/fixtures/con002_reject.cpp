// dart-analyze fixture: raw std::thread plus detach() outside the shard
// runtime. Rejected under the default classification (CON002 twice);
// accepted under --treat-as threads-ok, the shard runtime's exemption —
// the ctest matrix runs this file both ways.
#include <thread>

namespace fixture {

inline void fire_and_forget() {
  std::thread worker([] {});
  worker.detach();
}

}  // namespace fixture
