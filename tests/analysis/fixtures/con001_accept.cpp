// dart-analyze fixture: hot-path atomics with explicit memory_order.
// Accepted under --treat-as hotpath (no CON001 findings).
#include <atomic>
#include <cstdint>

namespace fixture {

struct Counter {
  std::atomic<std::uint64_t> value{0};

  void bump() { value.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t read_acquire() const {
    return value.load(std::memory_order_acquire);
  }
  void publish(std::uint64_t next) {
    value.store(next, std::memory_order_release);
  }
};

}  // namespace fixture
