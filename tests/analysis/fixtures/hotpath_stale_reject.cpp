// lint_hotpath fixture (reject): the waiver below excuses nothing — the
// line it sits on matches no lint rule — so the lint must fail with a
// [stale-waiver] finding instead of silently carrying the permission slip.
#include <cstdint>

namespace fixture {

struct Counter {
  std::uint64_t hits = 0;  // hotpath-ok: only bumped at shutdown
};

}  // namespace fixture

int main() {
  fixture::Counter counter;
  counter.hits += 1;
  return static_cast<int>(counter.hits - 1);
}
