// dart-analyze fixture: locking only through RAII scopes. Accepted under
// any classification.
#define DART_GUARDED_BY(x)

namespace fixture {

class Mutex {};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) : mutex_(mutex) {}

 private:
  Mutex& mutex_;
};

class Guarded {
 public:
  void touch() {
    const MutexLock lock(mutex_);
    ++count_;
  }

 private:
  Mutex mutex_;
  int count_ DART_GUARDED_BY(mutex_) = 0;
};

}  // namespace fixture
