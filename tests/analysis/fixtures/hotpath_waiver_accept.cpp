// lint_hotpath fixture (accept): both waiver forms shield a genuine
// finding, so the lint reports nothing and neither waiver is stale.
#include <memory>
#include <string>

namespace fixture {

struct Setup {
  // Same-line form: the construct and its excuse share a line.
  std::unique_ptr<int> slot =
      std::make_unique<int>(0);  // hotpath-ok: constructed once at startup

  // Comment-only-line form, for declarations too long to annotate inline.
  // hotpath-ok: report label built at shutdown, never per packet
  std::string label;
};

}  // namespace fixture

int main() {
  fixture::Setup setup;
  return *setup.slot;
}
