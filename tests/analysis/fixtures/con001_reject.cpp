// dart-analyze fixture: defaulted and explicit seq_cst atomics on the hot
// path. Rejected under --treat-as hotpath (CON001 twice).
#include <atomic>
#include <cstdint>

namespace fixture {

struct Counter {
  std::atomic<std::uint64_t> value{0};

  void bump() { value.fetch_add(1); }
  std::uint64_t read() const {
    return value.load(std::memory_order_seq_cst);
  }
};

}  // namespace fixture
