// dart-analyze fixture: exporter-class code that publishes only through
// write_atomic and reads through an ifstream. Accepted under
// --treat-as exporter — reads cannot tear a published frame, and the
// tmp + rename discipline lives inside write_atomic itself.
namespace fixture {

bool write_atomic(const char* path, const char* data, unsigned long size);

class ifstream {
 public:
  explicit ifstream(const char* path);
  bool read(char* out, unsigned long size);
};

bool publish_frame(const char* path, const char* data, unsigned long size) {
  return write_atomic(path, data, size);
}

bool load_frame(const char* path, char* out, unsigned long size) {
  ifstream in(path);
  return in.read(out, size);
}

}  // namespace fixture
