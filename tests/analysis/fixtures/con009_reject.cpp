// dart-analyze fixture: daemon-class code that parks the thread in
// unbounded blocking socket waits — a raw accept(), a raw recv(), a raw
// ::read(), and a poll() with an infinite timeout. None of them ever wakes
// to look at a shutdown flag, so SIGTERM cannot drain the daemon. Rejected
// (CON009 four times).
namespace fixture {

struct pollfd {
  int fd = -1;
  short events = 0;
  short revents = 0;
};

int accept(int listen_fd, void* addr, unsigned* addr_len);
long recv(int fd, void* buf, unsigned long len, int flags);
long read(int fd, void* buf, unsigned long len);
int poll(pollfd* fds, unsigned long count, int timeout_ms);

long serve_forever(int listen_fd, unsigned char* buf, unsigned long len) {
  long total = 0;
  for (;;) {
    pollfd pfd;
    pfd.fd = listen_fd;
    if (poll(&pfd, 1, -1) <= 0) continue;  // infinite wait: never re-checks
    const int client = accept(listen_fd, nullptr, nullptr);
    if (client < 0) continue;
    total += recv(client, buf, len, 0);
    total += ::read(client, buf, len);
  }
  return total;
}

}  // namespace fixture
