// dart-analyze fixture: a field sharing a class with a mutex, with no
// DART_GUARDED_BY annotation and no waiver. Rejected (CON005).
#include <cstdint>

namespace fixture {

class Mutex {};

class Guarded {
 private:
  Mutex mutex_;
  std::uint64_t count_ = 0;
};

}  // namespace fixture
