#include "analytics/histogram.hpp"

#include <gtest/gtest.h>

namespace dart::analytics {
namespace {

TEST(LogHistogram, CountsAndExtremes) {
  LogHistogram hist;
  hist.add(msec(1));
  hist.add(msec(10));
  hist.add(msec(100));
  EXPECT_EQ(hist.count(), 3U);
  EXPECT_EQ(hist.min(), msec(1));
  EXPECT_EQ(hist.max(), msec(100));
}

TEST(LogHistogram, QuantileWithinBinResolution) {
  LogHistogram hist(usec(10), sec(10), 40);
  for (int i = 0; i < 1000; ++i) hist.add(msec(20));
  // All mass in one bin: every quantile lands near 20 ms (within the bin's
  // geometric width, ~6% at 40 bins/decade).
  EXPECT_NEAR(hist.quantile(0.5) / 1e6, 20.0, 2.0);
  EXPECT_NEAR(hist.quantile(0.99) / 1e6, 20.0, 2.0);
}

TEST(LogHistogram, CdfIsMonotone) {
  LogHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.add(msec(i % 200 + 1));
  double prev = 0.0;
  for (Timestamp t = msec(1); t <= msec(300); t += msec(10)) {
    const double c = hist.cdf_at(t);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(hist.cdf_at(sec(100)), 1.0);
}

TEST(LogHistogram, ClampsOutOfRangeValues) {
  LogHistogram hist(msec(1), sec(1), 10);
  hist.add(1);        // below range -> first bin
  hist.add(sec(100)); // above range -> last bin
  EXPECT_EQ(hist.count(), 2U);
  EXPECT_GT(hist.quantile(0.99), hist.quantile(0.01));
}

TEST(LogHistogram, MergeCombinesMass) {
  LogHistogram a;
  LogHistogram b;
  for (int i = 0; i < 100; ++i) a.add(msec(5));
  for (int i = 0; i < 100; ++i) b.add(msec(50));
  a.merge(b);
  EXPECT_EQ(a.count(), 200U);
  EXPECT_EQ(a.min(), msec(5));
  EXPECT_EQ(a.max(), msec(50));
  EXPECT_NEAR(a.cdf_at(msec(20)), 0.5, 0.02);
}

// Regression: the old merge() summed bins only up to min(size, other.size)
// but still added the *full* other.total_, so mass in the dropped tail bins
// vanished while the quantile/cdf denominators grew — every downstream
// quantile was silently biased low. Merging into the smaller histogram must
// give exactly what adding all raw values into it directly gives.
TEST(LogHistogram, MergeDifferentSizesMatchesCombined) {
  LogHistogram small(usec(10), sec(1), 20);    // fewer bins
  LogHistogram large(usec(10), sec(120), 20);  // same geometry, longer tail
  ASSERT_LT(small.bins().size(), large.bins().size());

  LogHistogram combined(usec(10), sec(1), 20);  // the single-histogram truth
  for (int i = 0; i < 100; ++i) {
    small.add(usec(100));
    combined.add(usec(100));
  }
  for (int i = 0; i < 50; ++i) {
    large.add(msec(1));
    combined.add(msec(1));
  }
  for (int i = 0; i < 50; ++i) {
    large.add(sec(60));  // beyond small's range: lived in the dropped tail
    combined.add(sec(60));
  }

  small.merge(large);
  EXPECT_EQ(small.count(), combined.count());
  EXPECT_EQ(small.bins(), combined.bins());
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(small.quantile(q), combined.quantile(q)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(small.cdf_at(msec(100)), combined.cdf_at(msec(100)));
  EXPECT_DOUBLE_EQ(small.cdf_at(msec(100)), 150.0 / 200.0);
  EXPECT_EQ(small.min(), usec(100));
  EXPECT_EQ(small.max(), sec(60));
}

TEST(LogHistogram, MergeDifferentResolutionPreservesMass) {
  LogHistogram coarse(usec(10), sec(120), 5);
  LogHistogram fine(usec(100), sec(10), 40);  // different log_min and step
  for (int i = 0; i < 300; ++i) fine.add(msec(7));
  for (int i = 0; i < 100; ++i) fine.add(msec(200));
  coarse.add(msec(1));

  coarse.merge(fine);
  // Remapping may shift mass by up to a bin width, but never loses or
  // invents samples: counts and CDF denominators stay exact.
  EXPECT_EQ(coarse.count(), 401U);
  std::uint64_t bin_sum = 0;
  for (const std::uint64_t c : coarse.bins()) bin_sum += c;
  EXPECT_EQ(bin_sum, coarse.count());
  EXPECT_DOUBLE_EQ(coarse.cdf_at(sec(100)), 1.0);
  // 7 ms holds 300 of 401 samples; the median must land within one coarse
  // bin (10^(1/5) ~ 1.58x) of it.
  EXPECT_GT(coarse.quantile(0.5) / 1e6, 7.0 / 1.6);
  EXPECT_LT(coarse.quantile(0.5) / 1e6, 7.0 * 1.6);
}

TEST(LogHistogram, MergeIntoEmptyAdoptsMass) {
  LogHistogram empty(usec(10), sec(1), 20);
  LogHistogram full(usec(10), sec(120), 20);
  for (int i = 0; i < 10; ++i) full.add(msec(3));
  empty.merge(full);
  EXPECT_EQ(empty.count(), 10U);
  EXPECT_EQ(empty.min(), msec(3));
  EXPECT_EQ(empty.max(), msec(3));
}

// Regression: quantile(0) used to answer bin_value(0) even when bin 0 was
// empty (cumulative 0 >= target 0) — a value no sample ever took.
TEST(LogHistogram, QuantileZeroAnswersFirstOccupiedBin) {
  LogHistogram hist(usec(10), sec(120), 20);
  for (int i = 0; i < 100; ++i) hist.add(msec(50));  // bin 0 stays empty
  ASSERT_EQ(hist.bins()[0], 0U);
  const double q0 = hist.quantile(0.0);
  EXPECT_NEAR(q0 / 1e6, 50.0, 6.0);  // within one bin width of 50 ms
  EXPECT_DOUBLE_EQ(q0, hist.quantile(1.0));  // all mass in one bin
}

TEST(LogHistogram, QuantileBoundariesOnSingleSample) {
  LogHistogram hist;
  hist.add(msec(25));
  const double expected = hist.quantile(0.5);
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), expected);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), expected);
  EXPECT_NEAR(expected / 1e6, 25.0, 4.0);
}

TEST(LogHistogram, FromLayoutRoundTrips) {
  LogHistogram hist(usec(10), sec(120), 20);
  for (int i = 1; i <= 500; ++i) hist.add(msec(i % 90 + 1));
  LogHistogram rebuilt = LogHistogram::from_layout(
      hist.log_min(), hist.log_step(), hist.bins(), hist.min(), hist.max());
  EXPECT_EQ(rebuilt.count(), hist.count());
  EXPECT_EQ(rebuilt.bins(), hist.bins());
  EXPECT_DOUBLE_EQ(rebuilt.quantile(0.5), hist.quantile(0.5));
  EXPECT_DOUBLE_EQ(rebuilt.cdf_at(msec(45)), hist.cdf_at(msec(45)));
  EXPECT_TRUE(rebuilt.same_layout(hist));
}

TEST(LogHistogram, EmptyHistogramIsWellBehaved) {
  LogHistogram hist;
  EXPECT_EQ(hist.count(), 0U);
  EXPECT_DOUBLE_EQ(hist.cdf_at(msec(10)), 0.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace dart::analytics
