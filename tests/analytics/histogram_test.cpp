#include "analytics/histogram.hpp"

#include <gtest/gtest.h>

namespace dart::analytics {
namespace {

TEST(LogHistogram, CountsAndExtremes) {
  LogHistogram hist;
  hist.add(msec(1));
  hist.add(msec(10));
  hist.add(msec(100));
  EXPECT_EQ(hist.count(), 3U);
  EXPECT_EQ(hist.min(), msec(1));
  EXPECT_EQ(hist.max(), msec(100));
}

TEST(LogHistogram, QuantileWithinBinResolution) {
  LogHistogram hist(usec(10), sec(10), 40);
  for (int i = 0; i < 1000; ++i) hist.add(msec(20));
  // All mass in one bin: every quantile lands near 20 ms (within the bin's
  // geometric width, ~6% at 40 bins/decade).
  EXPECT_NEAR(hist.quantile(0.5) / 1e6, 20.0, 2.0);
  EXPECT_NEAR(hist.quantile(0.99) / 1e6, 20.0, 2.0);
}

TEST(LogHistogram, CdfIsMonotone) {
  LogHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.add(msec(i % 200 + 1));
  double prev = 0.0;
  for (Timestamp t = msec(1); t <= msec(300); t += msec(10)) {
    const double c = hist.cdf_at(t);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(hist.cdf_at(sec(100)), 1.0);
}

TEST(LogHistogram, ClampsOutOfRangeValues) {
  LogHistogram hist(msec(1), sec(1), 10);
  hist.add(1);        // below range -> first bin
  hist.add(sec(100)); // above range -> last bin
  EXPECT_EQ(hist.count(), 2U);
  EXPECT_GT(hist.quantile(0.99), hist.quantile(0.01));
}

TEST(LogHistogram, MergeCombinesMass) {
  LogHistogram a;
  LogHistogram b;
  for (int i = 0; i < 100; ++i) a.add(msec(5));
  for (int i = 0; i < 100; ++i) b.add(msec(50));
  a.merge(b);
  EXPECT_EQ(a.count(), 200U);
  EXPECT_EQ(a.min(), msec(5));
  EXPECT_EQ(a.max(), msec(50));
  EXPECT_NEAR(a.cdf_at(msec(20)), 0.5, 0.02);
}

TEST(LogHistogram, EmptyHistogramIsWellBehaved) {
  LogHistogram hist;
  EXPECT_EQ(hist.count(), 0U);
  EXPECT_DOUBLE_EQ(hist.cdf_at(msec(10)), 0.0);
  EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace dart::analytics
